//! # nra-graph
//!
//! Graph substrate for the reproduction of Suciu & Paredaens (1994):
//! generators for the paper's input families (the chain `rₙ`, cycles,
//! deterministic/functional graphs, layered DAGs, grids, cliques, seeded
//! random graphs), classical polynomial transitive-closure algorithms
//! (the ground truth and E3 baselines), a dense bitset, and conversions
//! to/from complex objects of type `{N × N}`.

#![deny(missing_docs)]

pub mod bitset;
pub mod digraph;
pub mod encode;
pub mod tc;

/// The arena-native word-parallel primitives ([`nra_core::value::dense`])
/// re-exported as this crate's bit-twiddling vocabulary: [`BitSet`] and
/// the closure algorithms in [`mod@tc`] delegate to these, so the graph layer
/// carries no private duplicate of the word ops.
pub use nra_core::value::dense;

pub use bitset::BitSet;
pub use digraph::DiGraph;
pub use encode::{graph_to_value, graph_to_vid, value_to_graph, vid_to_graph};
pub use tc::{bfs_per_source, semi_naive, tc, tc_arena, warshall};
