//! A dense fixed-capacity bitset, the substrate for the Warshall baseline.

/// A fixed-capacity set of small integers backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// An empty bitset able to hold values `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Capacity in bits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Insert `i`; returns true if it was newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "bit {} out of capacity {}",
            i,
            self.capacity
        );
        let (w, b) = (i / 64, i % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Remove `i`; returns true if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.capacity);
        let (w, b) = (i / 64, i % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        self.words[w] & (1 << b) != 0
    }

    /// In-place union; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let before = *a;
            *a |= b;
            changed |= *a != before;
        }
        changed
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True iff no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate the set bits in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert!(!s.contains(0));
    }

    #[test]
    fn union() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        b.insert(70);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union is a no-op");
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 70]);
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(1000));
    }

    #[test]
    fn empty() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
