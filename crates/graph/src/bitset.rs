//! A dense growable bitset, the substrate for the Warshall baseline.
//!
//! The word-level arithmetic is `nra_core::value::dense` — the same
//! vocabulary the value arena's dense sidecars and the arena-native
//! transitive-closure backend compute with — so every layer that ORs
//! adjacency rows agrees on semantics (zero-padded comparison, growth
//! on capacity mismatch) and there is exactly one implementation of
//! each primitive.

use nra_core::value::dense;

/// A set of small integers backed by `u64` words.
///
/// `capacity` is a *starting* size, not a ceiling: the in-place
/// operations grow the receiver as needed (a shorter operand reads as
/// zero-padded), mirroring the growing convention of
/// [`nra_core::value::dense`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// An empty bitset able to hold values `0..capacity` without
    /// reallocating.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Capacity in bits (grows when an operation needs more room).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The packed words — the view the shared
    /// [`dense`] primitives operate on.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Insert `i`; returns true if it was newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "bit {} out of capacity {}",
            i,
            self.capacity
        );
        let (w, b) = (i / 64, i % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Remove `i`; returns true if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.capacity);
        let (w, b) = (i / 64, i % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        dense::get_bit(&self.words, i)
    }

    /// In-place union; returns true if `self` changed. A larger operand
    /// grows the receiver (both word length and capacity) instead of
    /// panicking, so rows from differently-sized universes compose.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let changed = dense::union_into(&mut self.words, &other.words);
        self.capacity = self.capacity.max(other.capacity);
        changed
    }

    /// In-place intersection: `self &= other`. Bits beyond `other`'s
    /// words are cleared (a missing word is zero).
    pub fn intersect_with(&mut self, other: &BitSet) {
        dense::intersect_into(&mut self.words, &other.words);
    }

    /// In-place difference: `self &= !other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        dense::difference_into(&mut self.words, &other.words);
    }

    /// Whether every bit of `self` is also set in `other` (zero-padded,
    /// so capacities need not match).
    pub fn is_subset(&self, other: &BitSet) -> bool {
        dense::is_subset_words(&self.words, &other.words)
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        dense::popcount(&self.words) as usize
    }

    /// True iff no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate the set bits in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        dense::iter_ones(&self.words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert!(!s.contains(0));
    }

    #[test]
    fn union() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        b.insert(70);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union is a no-op");
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 70]);
    }

    #[test]
    fn union_grows_on_capacity_mismatch() {
        // regression: this used to panic on the capacity assert
        let mut small = BitSet::new(10);
        let mut large = BitSet::new(200);
        small.insert(3);
        large.insert(150);
        assert!(small.union_with(&large));
        assert_eq!(small.capacity(), 200);
        assert!(small.contains(3) && small.contains(150));
        assert!(small.insert(199), "grown capacity is usable");
        // the smaller operand zero-pads: union with it changes nothing
        let mut large2 = BitSet::new(200);
        large2.insert(150);
        let mut tiny = BitSet::new(10);
        tiny.insert(150 % 10);
        assert!(large2.union_with(&tiny));
        assert_eq!(large2.capacity(), 200);
        assert_eq!(large2.iter().collect::<Vec<_>>(), vec![0, 150]);
    }

    #[test]
    fn intersect_difference_subset_words() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        for i in [1, 5, 70] {
            a.insert(i);
        }
        for i in [5, 70, 90] {
            b.insert(i);
        }
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![5, 70]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1]);
        assert!(i.is_subset(&a) && i.is_subset(&b));
        assert!(!a.is_subset(&b));
        // words() exposes the packed view the shared primitives use
        assert_eq!(a.words().len(), 2);
        assert_eq!(nra_core::value::dense::popcount(a.words()), 3);
        // intersection with a shorter operand clears the tail
        let mut short = BitSet::new(10);
        short.insert(1);
        let mut c = a.clone();
        c.intersect_with(&short);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(1000));
    }

    #[test]
    fn empty() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
