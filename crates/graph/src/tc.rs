//! Classical transitive-closure algorithms — the polynomial ground truth
//! against which every `NRA(powerset)` evaluation is checked, and the
//! baselines of experiment E3.
//!
//! Three algorithms with different complexity profiles:
//! * [`warshall`] — dense bitset Warshall, `O(V³/64)`;
//! * [`semi_naive`] — delta-driven datalog-style iteration, the classical
//!   implementation of the paper's `while` query;
//! * [`bfs_per_source`] — `O(V·(V+E))` adjacency-list search.
//!
//! All three agree (property-tested); `tc` picks the BFS variant.

use crate::bitset::BitSet;
use crate::digraph::DiGraph;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Transitive closure via per-source BFS (the default).
pub fn tc(g: &DiGraph) -> DiGraph {
    bfs_per_source(g)
}

/// Warshall's algorithm over dense bitsets. Nodes are compacted first, so
/// sparse id spaces cost only `O(V)` extra.
pub fn warshall(g: &DiGraph) -> DiGraph {
    let nodes: Vec<u64> = g.nodes().into_iter().collect();
    let index: BTreeMap<u64, usize> = nodes.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let n = nodes.len();
    let mut rows: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
    for (a, b) in g.edges() {
        rows[index[&a]].insert(index[&b]);
    }
    for k in 0..n {
        let row_k = rows[k].clone();
        for row in rows.iter_mut() {
            if row.contains(k) {
                row.union_with(&row_k);
            }
        }
    }
    DiGraph::from_edges(rows.iter().enumerate().flat_map(|(i, row)| {
        let nodes = &nodes;
        row.iter().map(move |j| (nodes[i], nodes[j]))
    }))
}

/// Semi-naive evaluation: iterate `Δ ← (Δ ∘ r) ∖ acc` to a fixpoint. This
/// is the efficient implementation of the paper's `while(λr. r ∪ r∘r)`
/// query, evaluating only the *new* pairs each round.
pub fn semi_naive(g: &DiGraph) -> DiGraph {
    let succ = g.successors();
    let mut acc: BTreeSet<(u64, u64)> = g.edges().collect();
    let mut delta: BTreeSet<(u64, u64)> = acc.clone();
    while !delta.is_empty() {
        let mut next = BTreeSet::new();
        for &(a, b) in &delta {
            if let Some(outs) = succ.get(&b) {
                for &c in outs {
                    if !acc.contains(&(a, c)) {
                        next.insert((a, c));
                    }
                }
            }
        }
        acc.extend(next.iter().copied());
        delta = next;
    }
    DiGraph::from_edges(acc)
}

/// Per-source breadth-first search.
pub fn bfs_per_source(g: &DiGraph) -> DiGraph {
    let succ = g.successors();
    let mut out = BTreeSet::new();
    for &src in succ.keys() {
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        let mut queue: VecDeque<u64> = VecDeque::new();
        queue.push_back(src);
        // note: src itself is only reachable if on a cycle, so we do not
        // pre-seed `seen` with it as "reached".
        while let Some(v) = queue.pop_front() {
            if let Some(outs) = succ.get(&v) {
                for &w in outs {
                    if seen.insert(w) {
                        queue.push_back(w);
                    }
                }
            }
        }
        for w in seen {
            out.insert((src, w));
        }
    }
    DiGraph::from_edges(out)
}

/// Number of semi-naive rounds needed (the `while` iteration count is
/// `⌈log₂(diameter)⌉`-ish for the squaring step, but linear for the
/// edge-extension step used here; exposed for the E3 report).
pub fn semi_naive_rounds(g: &DiGraph) -> u64 {
    let succ = g.successors();
    let mut acc: BTreeSet<(u64, u64)> = g.edges().collect();
    let mut delta = acc.clone();
    let mut rounds = 0;
    while !delta.is_empty() {
        rounds += 1;
        let mut next = BTreeSet::new();
        for &(a, b) in &delta {
            if let Some(outs) = succ.get(&b) {
                for &c in outs {
                    if !acc.contains(&(a, c)) {
                        next.insert((a, c));
                    }
                }
            }
        }
        acc.extend(next.iter().copied());
        delta = next;
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_algorithms(g: &DiGraph) -> [DiGraph; 3] {
        [warshall(g), semi_naive(g), bfs_per_source(g)]
    }

    #[test]
    fn chain_closure_is_the_paper_q_n() {
        for n in 0..8u64 {
            let g = DiGraph::chain(n);
            let expect =
                DiGraph::from_edges((0..=n).flat_map(|x| (x + 1..=n).map(move |y| (x, y))));
            for (i, got) in all_algorithms(&g).into_iter().enumerate() {
                assert_eq!(got, expect, "algorithm {i}, n = {n}");
            }
        }
    }

    #[test]
    fn cycle_closure_is_complete() {
        let g = DiGraph::cycle(4);
        let expect = DiGraph::from_edges((0..4).flat_map(|a| (0..4).map(move |b| (a, b))));
        for got in all_algorithms(&g) {
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn self_loop() {
        let g = DiGraph::from_edges([(3, 3)]);
        for got in all_algorithms(&g) {
            assert_eq!(got, g);
        }
    }

    #[test]
    fn algorithms_agree_on_random_graphs() {
        for seed in 0..20 {
            let g = DiGraph::random(12, 0.15, seed);
            let [w, s, b] = all_algorithms(&g);
            assert_eq!(w, s, "seed {seed}");
            assert_eq!(s, b, "seed {seed}");
        }
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new();
        for got in all_algorithms(&g) {
            assert_eq!(got, g);
        }
    }

    #[test]
    fn rounds_reflect_diameter() {
        assert_eq!(semi_naive_rounds(&DiGraph::chain(1)), 1);
        assert!(semi_naive_rounds(&DiGraph::chain(8)) >= 7);
        assert_eq!(semi_naive_rounds(&DiGraph::new()), 0);
    }

    #[test]
    fn closure_is_transitive_and_contains_input() {
        for seed in 0..5 {
            let g = DiGraph::random(10, 0.2, seed);
            let c = tc(&g);
            for (a, b) in g.edges() {
                assert!(c.has_edge(a, b));
            }
            for (a, b) in c.edges() {
                for (c2, d) in c.edges() {
                    if b == c2 {
                        assert!(c.has_edge(a, d), "({a},{b}),({c2},{d})");
                    }
                }
            }
        }
    }
}
