//! Classical transitive-closure algorithms — the polynomial ground truth
//! against which every `NRA(powerset)` evaluation is checked, and the
//! baselines of experiment E3.
//!
//! Four algorithms with different complexity profiles:
//! * [`warshall`] — dense bitset Warshall, `O(V³/64)`;
//! * [`semi_naive`] — delta-driven datalog-style iteration, the classical
//!   implementation of the paper's `while` query;
//! * [`bfs_per_source`] — `O(V·(V+E))` adjacency-list search;
//! * [`tc_arena`] — closure of an *interned* relation, choosing its route
//!   by the arena's dense switch: word-parallel bitmap Warshall over the
//!   shared [`dense`] primitives when on, sorted
//!   arena merges when off — identical closure `VId` either way.
//!
//! All agree (property-tested); `tc` picks the BFS variant.

use crate::bitset::BitSet;
use crate::digraph::DiGraph;
use nra_core::value::dense;
use nra_core::value::intern::{VId, ValueArena};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Transitive closure via per-source BFS (the default).
pub fn tc(g: &DiGraph) -> DiGraph {
    bfs_per_source(g)
}

/// Warshall's algorithm over dense bitsets. Nodes are compacted first, so
/// sparse id spaces cost only `O(V)` extra.
pub fn warshall(g: &DiGraph) -> DiGraph {
    let nodes: Vec<u64> = g.nodes().into_iter().collect();
    let index: BTreeMap<u64, usize> = nodes.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let n = nodes.len();
    let mut rows: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
    for (a, b) in g.edges() {
        rows[index[&a]].insert(index[&b]);
    }
    for k in 0..n {
        let row_k = rows[k].clone();
        for row in rows.iter_mut() {
            if row.contains(k) {
                row.union_with(&row_k);
            }
        }
    }
    DiGraph::from_edges(rows.iter().enumerate().flat_map(|(i, row)| {
        let nodes = &nodes;
        row.iter().map(move |j| (nodes[i], nodes[j]))
    }))
}

/// Semi-naive evaluation: iterate `Δ ← (Δ ∘ r) ∖ acc` to a fixpoint. This
/// is the efficient implementation of the paper's `while(λr. r ∪ r∘r)`
/// query, evaluating only the *new* pairs each round.
pub fn semi_naive(g: &DiGraph) -> DiGraph {
    let succ = g.successors();
    let mut acc: BTreeSet<(u64, u64)> = g.edges().collect();
    let mut delta: BTreeSet<(u64, u64)> = acc.clone();
    while !delta.is_empty() {
        let mut next = BTreeSet::new();
        for &(a, b) in &delta {
            if let Some(outs) = succ.get(&b) {
                for &c in outs {
                    if !acc.contains(&(a, c)) {
                        next.insert((a, c));
                    }
                }
            }
        }
        acc.extend(next.iter().copied());
        delta = next;
    }
    DiGraph::from_edges(acc)
}

/// Per-source breadth-first search.
pub fn bfs_per_source(g: &DiGraph) -> DiGraph {
    let succ = g.successors();
    let mut out = BTreeSet::new();
    for &src in succ.keys() {
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        let mut queue: VecDeque<u64> = VecDeque::new();
        queue.push_back(src);
        // note: src itself is only reachable if on a cycle, so we do not
        // pre-seed `seen` with it as "reached".
        while let Some(v) = queue.pop_front() {
            if let Some(outs) = succ.get(&v) {
                for &w in outs {
                    if seen.insert(w) {
                        queue.push_back(w);
                    }
                }
            }
        }
        for w in seen {
            out.insert((src, w));
        }
    }
    DiGraph::from_edges(out)
}

/// Transitive closure of an interned relation `{N × N}`, computed in the
/// representation the arena is configured for and returned as the
/// canonical interned closure handle. `None` if `rel` is not a relation
/// of nat pairs.
///
/// With [`ValueArena::dense_enabled`] the closure runs as word-parallel
/// bitmap Warshall (`O(V³/64)` over the shared
/// [`dense`] primitives, node ids compacted
/// first) and the result set is interned **once** at the end — no
/// per-round interning at all. With dense off it runs the classical
/// semi-naive iteration, interning each frontier and folding it in by
/// the arena's sorted-spine merges — the sorted rung the dense route is
/// benchmarked against. Canonical dedup guarantees both routes return
/// the *same* `VId` for the same input, which the differential suites
/// assert across all graph families.
///
/// ```
/// use nra_core::value::intern::ValueArena;
/// use nra_graph::tc_arena;
///
/// let mut va = ValueArena::new();
/// let r = va.chain(100);
/// let closure = tc_arena(&mut va, r).unwrap();
/// assert_eq!(closure, va.chain_tc(100));
/// ```
pub fn tc_arena(va: &mut ValueArena, rel: VId) -> Option<VId> {
    let edges = va.to_edges(rel)?;
    if edges.is_empty() {
        return Some(rel); // the closure of the empty relation is itself
    }
    if va.dense_enabled() {
        Some(va.relation(dense_closure(&edges)))
    } else {
        sorted_closure_arena(va, rel, &edges)
    }
}

/// Bitmap Warshall over compacted node indices: bit `j` of row `i` means
/// an `i → j` path. Pure word arithmetic — the per-element costs (decode
/// and the one final intern) live in [`tc_arena`].
fn dense_closure(edges: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut nodes: Vec<u64> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let idx = |v: u64| nodes.binary_search(&v).expect("node was collected");
    let n = nodes.len();
    let mut rows: Vec<Vec<u64>> = vec![vec![0u64; dense::words_for_bits(n)]; n];
    for &(a, b) in edges {
        dense::set_bit(&mut rows[idx(a)], idx(b));
    }
    for k in 0..n {
        // a clone of row k is enough: within iteration k the row only
        // ever absorbs itself (a no-op), exactly as in [`warshall`]
        let row_k = rows[k].clone();
        for row in rows.iter_mut() {
            if dense::get_bit(row, k) {
                dense::union_into(row, &row_k);
            }
        }
    }
    let mut out = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        out.extend(dense::iter_ones(row).map(|j| (nodes[i], nodes[j])));
    }
    out
}

/// Semi-naive closure on sorted arena spines: each round's new pairs are
/// interned as a frontier relation and folded into the accumulator with
/// [`ValueArena::set_union`] — per-element interning plus an `O(|acc|)`
/// sorted merge per round, the honest cost profile of the sorted
/// representation.
fn sorted_closure_arena(va: &mut ValueArena, rel: VId, edges: &[(u64, u64)]) -> Option<VId> {
    let mut succ: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for &(a, b) in edges {
        succ.entry(a).or_default().push(b);
    }
    let mut seen: BTreeSet<(u64, u64)> = edges.iter().copied().collect();
    let mut acc = rel;
    let mut delta: Vec<(u64, u64)> = edges.to_vec();
    while !delta.is_empty() {
        let mut next: Vec<(u64, u64)> = Vec::new();
        for &(a, b) in &delta {
            if let Some(outs) = succ.get(&b) {
                for &c in outs {
                    if seen.insert((a, c)) {
                        next.push((a, c));
                    }
                }
            }
        }
        if !next.is_empty() {
            let frontier = va.relation(next.iter().copied());
            acc = va.set_union(acc, frontier)?;
        }
        delta = next;
    }
    Some(acc)
}

/// Number of semi-naive rounds needed (the `while` iteration count is
/// `⌈log₂(diameter)⌉`-ish for the squaring step, but linear for the
/// edge-extension step used here; exposed for the E3 report).
pub fn semi_naive_rounds(g: &DiGraph) -> u64 {
    let succ = g.successors();
    let mut acc: BTreeSet<(u64, u64)> = g.edges().collect();
    let mut delta = acc.clone();
    let mut rounds = 0;
    while !delta.is_empty() {
        rounds += 1;
        let mut next = BTreeSet::new();
        for &(a, b) in &delta {
            if let Some(outs) = succ.get(&b) {
                for &c in outs {
                    if !acc.contains(&(a, c)) {
                        next.insert((a, c));
                    }
                }
            }
        }
        acc.extend(next.iter().copied());
        delta = next;
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_algorithms(g: &DiGraph) -> [DiGraph; 3] {
        [warshall(g), semi_naive(g), bfs_per_source(g)]
    }

    #[test]
    fn chain_closure_is_the_paper_q_n() {
        for n in 0..8u64 {
            let g = DiGraph::chain(n);
            let expect =
                DiGraph::from_edges((0..=n).flat_map(|x| (x + 1..=n).map(move |y| (x, y))));
            for (i, got) in all_algorithms(&g).into_iter().enumerate() {
                assert_eq!(got, expect, "algorithm {i}, n = {n}");
            }
        }
    }

    #[test]
    fn cycle_closure_is_complete() {
        let g = DiGraph::cycle(4);
        let expect = DiGraph::from_edges((0..4).flat_map(|a| (0..4).map(move |b| (a, b))));
        for got in all_algorithms(&g) {
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn self_loop() {
        let g = DiGraph::from_edges([(3, 3)]);
        for got in all_algorithms(&g) {
            assert_eq!(got, g);
        }
    }

    #[test]
    fn algorithms_agree_on_random_graphs() {
        for seed in 0..20 {
            let g = DiGraph::random(12, 0.15, seed);
            let [w, s, b] = all_algorithms(&g);
            assert_eq!(w, s, "seed {seed}");
            assert_eq!(s, b, "seed {seed}");
        }
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new();
        for got in all_algorithms(&g) {
            assert_eq!(got, g);
        }
    }

    #[test]
    fn rounds_reflect_diameter() {
        assert_eq!(semi_naive_rounds(&DiGraph::chain(1)), 1);
        assert!(semi_naive_rounds(&DiGraph::chain(8)) >= 7);
        assert_eq!(semi_naive_rounds(&DiGraph::new()), 0);
    }

    #[test]
    fn tc_arena_routes_agree_with_the_classical_algorithms() {
        for seed in 0..10 {
            let g = DiGraph::random(12, 0.15, seed);
            let expect = tc(&g);
            // one arena, both routes: canonical dedup must hand the two
            // closures the *same* interned handle
            let mut va = ValueArena::new();
            let rel = va.relation(g.edges());
            va.set_dense_enabled(false);
            let c_sorted = tc_arena(&mut va, rel).unwrap();
            va.set_dense_enabled(true);
            let c_dense = tc_arena(&mut va, rel).unwrap();
            assert_eq!(
                c_dense, c_sorted,
                "seed {seed}: dense and sorted routes split"
            );
            let got = DiGraph::from_edges(va.to_edges(c_dense).unwrap());
            assert_eq!(got, expect, "seed {seed}: tc_arena vs BFS closure");
        }
    }

    #[test]
    fn tc_arena_edge_cases() {
        let mut va = ValueArena::new();
        let empty = va.relation([]);
        assert_eq!(tc_arena(&mut va, empty), Some(empty));
        let nat = va.nat(3);
        assert_eq!(tc_arena(&mut va, nat), None, "not a relation");
        let loops = va.relation([(3, 3)]);
        assert_eq!(tc_arena(&mut va, loops), Some(loops));
        // ids beyond the dense coordinate bound still close correctly
        // (the Warshall rows index *compacted* ids, not raw labels)
        let wide = va.relation([(1_000_000, 2_000_000), (2_000_000, 3_000_000)]);
        let c = tc_arena(&mut va, wide).unwrap();
        let got: BTreeSet<(u64, u64)> = va.to_edges(c).unwrap().into_iter().collect();
        let expect: BTreeSet<(u64, u64)> = [
            (1_000_000, 2_000_000),
            (1_000_000, 3_000_000),
            (2_000_000, 3_000_000),
        ]
        .into_iter()
        .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn closure_is_transitive_and_contains_input() {
        for seed in 0..5 {
            let g = DiGraph::random(10, 0.2, seed);
            let c = tc(&g);
            for (a, b) in g.edges() {
                assert!(c.has_edge(a, b));
            }
            for (a, b) in c.edges() {
                for (c2, d) in c.edges() {
                    if b == c2 {
                        assert!(c.has_edge(a, d), "({a},{b}),({c2},{d})");
                    }
                }
            }
        }
    }
}
