//! Conversions between [`DiGraph`] and complex objects of type `{N × N}`.

use crate::digraph::DiGraph;
use nra_core::value::Value;

/// Encode a graph as the complex object `{(a, b), …}` of type `{N × N}`.
pub fn graph_to_value(g: &DiGraph) -> Value {
    Value::relation(g.edges())
}

/// Decode a complex object of type `{N × N}` back into a graph. Returns
/// `None` if the value is not a binary relation over naturals.
pub fn value_to_graph(v: &Value) -> Option<DiGraph> {
    Some(DiGraph::from_edges(v.to_edges()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_core::types::Type;

    #[test]
    fn round_trip() {
        for g in [
            DiGraph::new(),
            DiGraph::chain(5),
            DiGraph::cycle(3),
            DiGraph::random(8, 0.3, 1),
        ] {
            let v = graph_to_value(&g);
            assert!(v.has_type(&Type::nat_rel()));
            assert_eq!(value_to_graph(&v).unwrap(), g);
        }
    }

    #[test]
    fn chain_matches_value_chain() {
        assert_eq!(graph_to_value(&DiGraph::chain(4)), Value::chain(4));
    }

    #[test]
    fn non_relations_decode_to_none() {
        assert_eq!(value_to_graph(&Value::nat(3)), None);
        assert_eq!(value_to_graph(&Value::set([Value::nat(1)])), None);
    }
}
