//! Conversions between [`DiGraph`] and complex objects of type `{N × N}`.
//!
//! Two parallel encodings are provided: the tree representation
//! ([`graph_to_value`] / [`value_to_graph`]) for display and the parser
//! surface, and the hash-consed representation ([`graph_to_vid`] /
//! [`vid_to_graph`]) that feeds graphs straight into the interned
//! evaluation hot path of `nra-eval` without ever building a tree.

use crate::digraph::DiGraph;
use nra_core::value::intern::{self, VId};
use nra_core::value::Value;

/// Encode a graph as the complex object `{(a, b), …}` of type `{N × N}`.
pub fn graph_to_value(g: &DiGraph) -> Value {
    Value::relation(g.edges())
}

/// Decode a complex object of type `{N × N}` back into a graph. Returns
/// `None` if the value is not a binary relation over naturals.
pub fn value_to_graph(v: &Value) -> Option<DiGraph> {
    Some(DiGraph::from_edges(v.to_edges()?))
}

/// Encode a graph directly into the thread-local interning arena as a
/// handle of type `{N × N}` — the zero-copy entry to the interned
/// evaluators (`nra_eval::evaluate_vid`).
pub fn graph_to_vid(g: &DiGraph) -> VId {
    intern::relation(g.edges())
}

/// Decode an interned `{N × N}` handle back into a graph. Returns `None`
/// if the handle is not a binary relation over naturals.
pub fn vid_to_graph(v: VId) -> Option<DiGraph> {
    Some(DiGraph::from_edges(intern::to_edges(v)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_core::types::Type;

    #[test]
    fn round_trip() {
        for g in [
            DiGraph::new(),
            DiGraph::chain(5),
            DiGraph::cycle(3),
            DiGraph::random(8, 0.3, 1),
        ] {
            let v = graph_to_value(&g);
            assert!(v.has_type(&Type::nat_rel()));
            assert_eq!(value_to_graph(&v).unwrap(), g);
        }
    }

    #[test]
    fn chain_matches_value_chain() {
        assert_eq!(graph_to_value(&DiGraph::chain(4)), Value::chain(4));
    }

    #[test]
    fn non_relations_decode_to_none() {
        assert_eq!(value_to_graph(&Value::nat(3)), None);
        assert_eq!(value_to_graph(&Value::set([Value::nat(1)])), None);
    }

    #[test]
    fn interned_round_trip_matches_tree_encoding() {
        for g in [
            DiGraph::new(),
            DiGraph::chain(5),
            DiGraph::cycle(3),
            DiGraph::random(8, 0.3, 1),
        ] {
            let vid = graph_to_vid(&g);
            // the two encodings intern to the same handle…
            assert_eq!(vid, intern::intern(&graph_to_value(&g)));
            // …and decode to the same graph
            assert_eq!(vid_to_graph(vid).unwrap(), g);
        }
    }

    #[test]
    fn interned_non_relations_decode_to_none() {
        assert_eq!(vid_to_graph(intern::nat(3)), None);
        let s = intern::set([intern::nat(1)]);
        assert_eq!(vid_to_graph(s), None);
    }
}
