//! Directed graphs over `u64` node ids, with the generators the
//! experiments need: the paper's chain `rₙ`, cycles, functional graphs
//! (outdegree ≤ 1 — the *deterministic* transitive-closure inputs of
//! Immerman \[8\] that Theorem 4.1 also covers), layered DAGs and random
//! graphs.

use std::collections::{BTreeMap, BTreeSet};

/// A directed graph as a duplicate-free edge set (matching the `{N × N}`
/// complex-object representation).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DiGraph {
    edges: BTreeSet<(u64, u64)>,
}

impl DiGraph {
    /// The empty graph.
    pub fn new() -> Self {
        DiGraph::default()
    }

    /// Build from an edge iterator (deduplicating).
    pub fn from_edges<I: IntoIterator<Item = (u64, u64)>>(edges: I) -> Self {
        DiGraph {
            edges: edges.into_iter().collect(),
        }
    }

    /// The paper's chain `rₙ = {(0,1), …, (n−1,n)}`.
    pub fn chain(n: u64) -> Self {
        DiGraph::from_edges((0..n).map(|i| (i, i + 1)))
    }

    /// A directed cycle on `n ≥ 1` nodes: `0 → 1 → … → n−1 → 0`.
    pub fn cycle(n: u64) -> Self {
        assert!(n >= 1);
        DiGraph::from_edges((0..n).map(|i| (i, (i + 1) % n)))
    }

    /// A functional graph (outdegree exactly 1) given by `succ[i]` —
    /// deterministic TC inputs in the sense of Immerman \[8\].
    pub fn functional(succ: &[u64]) -> Self {
        DiGraph::from_edges(succ.iter().enumerate().map(|(i, &j)| (i as u64, j)))
    }

    /// A directed grid: `rows × cols` nodes (node `(i, j)` has id
    /// `i·cols + j`) with an edge to the right neighbour `(i, j+1)` and
    /// the down neighbour `(i+1, j)` — the standard planar-DAG family
    /// whose closure relates each node to its entire lower-right
    /// quadrant.
    pub fn grid(rows: u64, cols: u64) -> Self {
        let mut edges = BTreeSet::new();
        for i in 0..rows {
            for j in 0..cols {
                if j + 1 < cols {
                    edges.insert((i * cols + j, i * cols + j + 1));
                }
                if i + 1 < rows {
                    edges.insert((i * cols + j, (i + 1) * cols + j));
                }
            }
        }
        DiGraph { edges }
    }

    /// The complete directed graph (clique) on `n` nodes: every ordered
    /// pair `(a, b)` with `a ≠ b` is an edge. Maximally dense — its
    /// closure only adds the self-loops — so it stresses the evaluators'
    /// set algebra rather than path discovery.
    pub fn clique(n: u64) -> Self {
        let mut edges = BTreeSet::new();
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    edges.insert((a, b));
                }
            }
        }
        DiGraph { edges }
    }

    /// A layered DAG: `layers` layers of `width` nodes, every node edged to
    /// every node of the next layer.
    pub fn layered(layers: u64, width: u64) -> Self {
        let mut edges = BTreeSet::new();
        for l in 0..layers.saturating_sub(1) {
            for a in 0..width {
                for b in 0..width {
                    edges.insert((l * width + a, (l + 1) * width + b));
                }
            }
        }
        DiGraph { edges }
    }

    /// A pseudo-random graph on `n` nodes where each of the `n²` ordered
    /// pairs is an edge with probability `p`, deterministic in `seed`
    /// (xorshift; no external dependency so the substrate stays
    /// self-contained).
    pub fn random(n: u64, p: f64, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let threshold = (p.clamp(0.0, 1.0) * (u64::MAX as f64)) as u64;
        let mut edges = BTreeSet::new();
        for a in 0..n {
            for b in 0..n {
                if next() <= threshold {
                    edges.insert((a, b));
                }
            }
        }
        DiGraph { edges }
    }

    /// A pseudo-random DAG on `n` nodes: each forward pair `(a, b)` with
    /// `a < b` is an edge with probability `p`, deterministic in `seed`
    /// (same xorshift substrate as [`DiGraph::random`]). Acyclic by
    /// construction.
    pub fn random_dag(n: u64, p: f64, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let threshold = (p.clamp(0.0, 1.0) * (u64::MAX as f64)) as u64;
        let mut edges = BTreeSet::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if next() <= threshold {
                    edges.insert((a, b));
                }
            }
        }
        DiGraph { edges }
    }

    /// The same graph with every node id shifted up by `offset`.
    pub fn shifted(&self, offset: u64) -> Self {
        DiGraph::from_edges(self.edges().map(|(a, b)| (a + offset, b + offset)))
    }

    /// The union of two edge sets — a disjoint union when the node ranges
    /// are disjoint (e.g. after [`DiGraph::shifted`]), giving disconnected
    /// multi-component inputs.
    pub fn union(&self, other: &Self) -> Self {
        DiGraph::from_edges(self.edges().chain(other.edges()))
    }

    /// Add an edge; returns true if newly added.
    pub fn add_edge(&mut self, a: u64, b: u64) -> bool {
        self.edges.insert((a, b))
    }

    /// Edge membership.
    pub fn has_edge(&self, a: u64, b: u64) -> bool {
        self.edges.contains(&(a, b))
    }

    /// The edge set.
    pub fn edges(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.edges.iter().copied()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The nodes occurring in at least one edge (the complex-object world
    /// has no isolated nodes: a graph *is* its edge relation).
    pub fn nodes(&self) -> BTreeSet<u64> {
        self.edges.iter().flat_map(|&(a, b)| [a, b]).collect()
    }

    /// Out-neighbour adjacency map.
    pub fn successors(&self) -> BTreeMap<u64, Vec<u64>> {
        let mut map: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for &(a, b) in &self.edges {
            map.entry(a).or_default().push(b);
        }
        map
    }

    /// Maximum outdegree (≤ 1 ⟺ the deterministic-TC regime).
    pub fn max_outdegree(&self) -> usize {
        self.successors().values().map(Vec::len).max().unwrap_or(0)
    }

    /// True iff every node has outdegree ≤ 1.
    pub fn is_deterministic(&self) -> bool {
        self.max_outdegree() <= 1
    }
}

impl FromIterator<(u64, u64)> for DiGraph {
    fn from_iter<I: IntoIterator<Item = (u64, u64)>>(iter: I) -> Self {
        DiGraph::from_edges(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape() {
        let g = DiGraph::chain(3);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(0, 1) && g.has_edge(2, 3));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.nodes().len(), 4);
        assert!(g.is_deterministic());
    }

    #[test]
    fn cycle_wraps() {
        let g = DiGraph::cycle(4);
        assert!(g.has_edge(3, 0));
        assert_eq!(g.edge_count(), 4);
        assert!(g.is_deterministic());
        let g1 = DiGraph::cycle(1);
        assert!(g1.has_edge(0, 0));
    }

    #[test]
    fn functional_graphs_are_deterministic() {
        let g = DiGraph::functional(&[1, 2, 0, 0]);
        assert!(g.is_deterministic());
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn grid_shape() {
        let g = DiGraph::grid(2, 3);
        // right edges: 2 rows × 2 = 4; down edges: 1 × 3 = 3
        assert_eq!(g.edge_count(), 7);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2)); // along the top row
        assert!(g.has_edge(0, 3) && g.has_edge(2, 5)); // downward
        assert!(!g.has_edge(2, 3), "no wrap between rows");
        assert_eq!(g.nodes().len(), 6);
        // degenerate shapes
        assert_eq!(DiGraph::grid(1, 4), DiGraph::chain(3));
        assert_eq!(DiGraph::grid(0, 5).edge_count(), 0);
        assert_eq!(DiGraph::grid(3, 1).edge_count(), 2);
    }

    #[test]
    fn clique_is_complete() {
        let g = DiGraph::clique(4);
        assert_eq!(g.edge_count(), 12); // n(n−1) ordered pairs
        assert!(g.has_edge(0, 3) && g.has_edge(3, 0));
        assert!(!g.has_edge(2, 2), "no self-loops");
        assert_eq!(DiGraph::clique(1).edge_count(), 0);
        assert_eq!(DiGraph::clique(0), DiGraph::new());
    }

    #[test]
    fn layered_counts() {
        let g = DiGraph::layered(3, 2);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.nodes().len(), 6);
        assert_eq!(g.max_outdegree(), 2);
    }

    #[test]
    fn random_dag_is_acyclic_and_deterministic() {
        for seed in 0..10 {
            let g = DiGraph::random_dag(8, 0.4, seed);
            assert!(g.edges().all(|(a, b)| a < b), "forward edges only");
            assert_eq!(g, DiGraph::random_dag(8, 0.4, seed));
        }
        assert_eq!(DiGraph::random_dag(8, 1.0, 3).edge_count(), 28);
        assert_eq!(DiGraph::random_dag(8, 0.0, 3).edge_count(), 0);
        assert_eq!(DiGraph::random_dag(0, 1.0, 3).edge_count(), 0);
    }

    #[test]
    fn shifted_union_builds_disconnected_graphs() {
        let a = DiGraph::chain(2);
        let b = DiGraph::cycle(3).shifted(100);
        assert!(b.has_edge(102, 100));
        let g = a.union(&b);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.nodes().len(), 6);
        // union with self is idempotent
        assert_eq!(g.union(&g), g);
    }

    #[test]
    fn random_is_deterministic_in_seed() {
        let a = DiGraph::random(10, 0.3, 42);
        let b = DiGraph::random(10, 0.3, 42);
        let c = DiGraph::random(10, 0.3, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let dense = DiGraph::random(10, 1.0, 7);
        assert_eq!(dense.edge_count(), 100);
        let empty = DiGraph::random(10, 0.0, 7);
        assert_eq!(empty.edge_count(), 0);
    }
}
