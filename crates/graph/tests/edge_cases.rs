//! Edge-case unit tests for `graph::bitset` and `graph::tc`: empty
//! structures, n = 0/1, self-loops, word-size boundaries, and inputs that
//! are already transitively closed.

use nra_graph::{bfs_per_source, semi_naive, tc, warshall, BitSet, DiGraph};

fn all_algorithms(g: &DiGraph) -> [DiGraph; 3] {
    [warshall(g), semi_naive(g), bfs_per_source(g)]
}

// -- bitset ---------------------------------------------------------------

#[test]
fn bitset_zero_capacity() {
    let s = BitSet::new(0);
    assert_eq!(s.capacity(), 0);
    assert!(s.is_empty());
    assert_eq!(s.len(), 0);
    assert_eq!(s.iter().count(), 0);
    assert!(!s.contains(0));
}

#[test]
fn bitset_word_boundaries() {
    // bits 63/64/65 straddle the u64 word boundary; 127/128 the second
    let mut s = BitSet::new(129);
    for i in [0usize, 63, 64, 65, 127, 128] {
        assert!(s.insert(i), "bit {i} should be fresh");
        assert!(s.contains(i), "bit {i} should be set");
    }
    assert_eq!(s.len(), 6);
    assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 65, 127, 128]);
    for i in [63usize, 128] {
        assert!(s.remove(i));
        assert!(!s.contains(i));
    }
    assert_eq!(s.len(), 4);
}

#[test]
fn bitset_insert_is_idempotent() {
    let mut s = BitSet::new(10);
    assert!(s.insert(3));
    assert!(!s.insert(3), "second insert reports not-fresh");
    assert_eq!(s.len(), 1);
    assert!(s.remove(3));
    assert!(!s.remove(3), "second remove reports absent");
    assert!(s.is_empty());
}

#[test]
fn bitset_union_with_empty_is_noop() {
    let mut a = BitSet::new(70);
    a.insert(5);
    a.insert(69);
    let empty = BitSet::new(70);
    assert!(!a.union_with(&empty), "∪ ∅ must not change the set");
    assert_eq!(a.len(), 2);
    let mut b = BitSet::new(70);
    assert!(b.union_with(&a), "∅ ∪ a must change the empty set");
    assert_eq!(b.iter().collect::<Vec<_>>(), vec![5, 69]);
}

#[test]
fn bitset_contains_beyond_capacity_is_false() {
    let s = BitSet::new(10);
    assert!(!s.contains(10));
    assert!(!s.contains(usize::MAX));
}

// -- transitive closure ---------------------------------------------------

#[test]
fn tc_of_empty_graph_is_empty() {
    let g = DiGraph::new();
    for (i, got) in all_algorithms(&g).into_iter().enumerate() {
        assert_eq!(got, g, "algorithm {i}");
    }
    assert_eq!(tc(&g).edge_count(), 0);
}

#[test]
fn tc_of_chain_0_and_1() {
    // chain(0) has no edges at all (the empty relation)
    let g0 = DiGraph::chain(0);
    assert_eq!(g0.edge_count(), 0);
    for got in all_algorithms(&g0) {
        assert_eq!(got, g0);
    }
    // chain(1) = {(0,1)} is its own closure
    let g1 = DiGraph::chain(1);
    for got in all_algorithms(&g1) {
        assert_eq!(got, g1);
    }
}

#[test]
fn tc_of_single_self_loop() {
    let g = DiGraph::from_edges([(7, 7)]);
    for got in all_algorithms(&g) {
        assert_eq!(got, g, "a self-loop is its own closure");
    }
}

#[test]
fn tc_with_self_loops_everywhere() {
    // self-loops on a chain must not add spurious reachability…
    let g = DiGraph::from_edges([(0, 0), (0, 1), (1, 1), (1, 2), (2, 2)]);
    let expect = DiGraph::from_edges([(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)]);
    for got in all_algorithms(&g) {
        assert_eq!(got, expect);
    }
}

#[test]
fn tc_is_idempotent_on_closed_inputs() {
    // already-transitively-closed inputs are fixed points of tc
    let closed = [
        DiGraph::from_edges((0..=4u64).flat_map(|x| (x + 1..=4).map(move |y| (x, y)))), // chain_tc(4)
        DiGraph::from_edges((0..4u64).flat_map(|a| (0..4u64).map(move |b| (a, b)))), // complete w/ loops
        DiGraph::from_edges([(3, 3)]),
        DiGraph::new(),
    ];
    for g in &closed {
        for (i, got) in all_algorithms(g).into_iter().enumerate() {
            assert_eq!(&got, g, "algorithm {i} must fix a closed input");
        }
    }
    // and tc∘tc = tc on arbitrary inputs
    for seed in 0..10u64 {
        let g = DiGraph::random(8, 0.2, seed);
        let once = tc(&g);
        assert_eq!(tc(&once), once, "seed {seed}");
    }
}

#[test]
fn tc_ignores_node_labels() {
    // sparse, large labels — Warshall's compaction must handle them
    let g = DiGraph::from_edges([(1_000_000, 2_000_000), (2_000_000, 3_000_000)]);
    let expect = DiGraph::from_edges([
        (1_000_000, 2_000_000),
        (1_000_000, 3_000_000),
        (2_000_000, 3_000_000),
    ]);
    for got in all_algorithms(&g) {
        assert_eq!(got, expect);
    }
}
