//! Criterion timings for the complexity experiments E1–E4 and E11:
//! transitive closure via powerset vs while vs classical algorithms, the
//! approximations, and the lazy strategy.

use nra_bench::tinybench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nra_core::{queries, Value};
use nra_eval::{evaluate, evaluate_lazy, EvalConfig};
use nra_graph::DiGraph;
use std::hint::black_box;

fn e1_tc_powerset(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_tc_powerset_paths");
    group.sample_size(10);
    let q = queries::tc_paths();
    let cfg = EvalConfig::default();
    for n in [6u64, 8, 10] {
        let input = Value::chain(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            b.iter(|| {
                let ev = evaluate(black_box(&q), black_box(input), &cfg);
                black_box(ev.stats.max_object_size)
            })
        });
    }
    group.finish();
}

fn e2_tc_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_tc_naive");
    group.sample_size(10);
    let q = queries::tc_naive();
    let cfg = EvalConfig::default();
    for n in [1u64, 2] {
        let input = Value::chain(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            b.iter(|| {
                let ev = evaluate(black_box(&q), black_box(input), &cfg);
                black_box(ev.result.unwrap())
            })
        });
    }
    group.finish();
}

fn e3_tc_while(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_tc_while");
    group.sample_size(10);
    let q = queries::tc_while();
    let cfg = EvalConfig::default();
    for n in [8u64, 16, 32] {
        let input = Value::chain(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            b.iter(|| {
                let ev = evaluate(black_box(&q), black_box(input), &cfg);
                black_box(ev.result.unwrap())
            })
        });
    }
    group.finish();
}

fn e3_classical_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_classical");
    for n in [64u64, 256] {
        let g = DiGraph::chain(n);
        group.bench_with_input(BenchmarkId::new("warshall", n), &g, |b, g| {
            b.iter(|| black_box(nra_graph::warshall(black_box(g))))
        });
        group.bench_with_input(BenchmarkId::new("semi_naive", n), &g, |b, g| {
            b.iter(|| black_box(nra_graph::semi_naive(black_box(g))))
        });
        group.bench_with_input(BenchmarkId::new("bfs", n), &g, |b, g| {
            b.iter(|| black_box(nra_graph::bfs_per_source(black_box(g))))
        });
    }
    group.finish();
}

fn e4_approximation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_powerset_m");
    group.sample_size(10);
    let cfg = EvalConfig::default();
    let n = 8u64;
    let input = Value::chain(n);
    for m in [2u64, 4, 8] {
        let q = queries::tc_paths_approx(m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &q, |b, q| {
            b.iter(|| {
                let ev = evaluate(black_box(q), black_box(&input), &cfg);
                black_box(ev.result.unwrap())
            })
        });
    }
    group.finish();
}

fn e11_lazy_vs_eager(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_strategies");
    group.sample_size(10);
    let q = queries::tc_paths();
    let cfg = EvalConfig::default();
    let input = Value::chain(10);
    group.bench_function("eager_n10", |b| {
        b.iter(|| black_box(evaluate(&q, black_box(&input), &cfg).stats.max_object_size))
    });
    group.bench_function("lazy_n10", |b| {
        b.iter(|| {
            black_box(
                evaluate_lazy(&q, black_box(&input), &cfg)
                    .stats
                    .peak_resident,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    e1_tc_powerset,
    e2_tc_naive,
    e3_tc_while,
    e3_classical_baselines,
    e4_approximation,
    e11_lazy_vs_eager
);
criterion_main!(benches);
