//! Criterion timings for the symbolic machinery (E5–E7), the circuit
//! compiler (E8) and the Ramsey search (E9).

use nra_bench::tinybench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nra_circuits::relalg;
use nra_core::{queries, Value};
use nra_symbolic::{
    analyze_cardinality, apply, chain_aexpr, chain_tc_impossibility, ramsey, Env, SymCtx, VarGen,
};
use std::hint::black_box;

fn e5_symbolic_vs_concrete(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_evaluation_lemma");
    let mut gen = VarGen::new();
    let chain = chain_aexpr(&mut gen);
    let step = queries::tc_step();
    group.bench_function("symbolic_apply_tc_step", |b| {
        b.iter(|| {
            let mut ctx = SymCtx::for_expr(&chain);
            black_box(apply(black_box(&step), black_box(&chain), &mut ctx).unwrap())
        })
    });
    for n in [16u64, 64, 256] {
        let input = Value::chain(n);
        group.bench_with_input(
            BenchmarkId::new("concrete_tc_step", n),
            &input,
            |b, input| b.iter(|| black_box(nra_eval::eval(&step, black_box(input)).unwrap())),
        );
    }
    // evaluating the symbolic result at a given n
    let mut ctx = SymCtx::for_expr(&chain);
    let symbolic = apply(&step, &chain, &mut ctx).unwrap();
    group.bench_function("denote_symbolic_result_n64", |b| {
        b.iter(|| black_box(symbolic.eval(64, &Env::new()).unwrap()))
    });
    group.finish();
}

fn e6_affine(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_affine");
    let mut gen = VarGen::new();
    let chain = chain_aexpr(&mut gen);
    group.bench_function("corollary_5_3_analysis", |b| {
        b.iter(|| black_box(chain_tc_impossibility(black_box(&chain)).unwrap()))
    });
    group.finish();
}

fn e7_dichotomy(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_dichotomy");
    let mut gen = VarGen::new();
    let chain = chain_aexpr(&mut gen);
    group.bench_function("analyze_chain", |b| {
        b.iter(|| black_box(analyze_cardinality(black_box(&chain)).unwrap()))
    });
    group.finish();
}

fn e8_circuits(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_circuits");
    let q = relalg::tc_step_query();
    for d in [4u64, 8, 16] {
        group.bench_with_input(BenchmarkId::new("compile", d), &d, |b, &d| {
            b.iter(|| black_box(relalg::compile(black_box(&q), &[2], d)))
        });
        let compiled = relalg::compile(&q, &[2], d);
        let rel: std::collections::BTreeSet<Vec<u64>> =
            (0..d - 1).map(|i| vec![i, i + 1]).collect();
        group.bench_with_input(BenchmarkId::new("run", d), &rel, |b, rel| {
            b.iter(|| black_box(compiled.run(std::slice::from_ref(black_box(rel)))))
        });
    }
    group.finish();
}

fn e9_ramsey(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_ramsey");
    for m in [3usize, 4, 5] {
        let vertices = ramsey::ramsey_bound(m as u64) as usize;
        let color = |u: usize, v: usize| {
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            (a.wrapping_mul(2654435761) ^ b.wrapping_mul(40503)) % 2 == 0
        };
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| black_box(ramsey::monochromatic_clique(vertices, m, &color).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    e5_symbolic_vs_concrete,
    e6_affine,
    e7_dichotomy,
    e8_circuits,
    e9_ramsey
);
criterion_main!(benches);
