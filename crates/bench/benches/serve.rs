//! Sustained serving throughput through the `nra-serve` front.
//!
//! Four tenants submit a mixed workload drawn from all seven
//! differential graph families — the polynomial zoo (`tc_while`,
//! `tc_step`, `siblings_powerset`) on seeded graphs, plus
//! certified-exponential `tc_paths` submissions that admission must
//! turn away with their Theorem 4.1 citation — over the
//! newline-delimited wire to one shared server. Every answered frame
//! counts toward qps (a structured rejection is a served answer); an
//! evaluation error fails the CI gate. Results land in
//! `BENCH_serve.json` at the repository root.
//!
//! ```sh
//! NRA_BENCH_SAMPLES=2 cargo bench -p nra-bench --bench serve
//! ```

use nra_bench::bench_samples;
use nra_bench::serve::{run_serve_workload, write_bench_serve_json, SERVE_TENANTS};

fn main() {
    let samples = bench_samples();
    let report = run_serve_workload(samples);

    println!(
        "serving front: {} tenants, {samples} graphs/family/tenant, mixed 7-family workload:",
        SERVE_TENANTS
    );
    println!(
        "{:<14} {:>6} {:>9} {:>9} {:>6} {:>7} {:>12} {:>10}",
        "family", "jobs", "admitted", "rejected", "ok", "failed", "elapsed", "qps"
    );
    for w in &report.workloads {
        println!(
            "{:<14} {:>6} {:>9} {:>9} {:>6} {:>7} {:>12} {:>10.1}",
            w.family,
            w.jobs,
            w.admitted,
            w.rejected_exponential,
            w.ok,
            w.failed,
            nra_bench::fmt_duration(w.elapsed),
            w.qps()
        );
    }
    println!(
        "total: {} jobs in {} — sustained {:.1} qps; {} admitted, {} rejected \
         (certified exponential), {} errors; warm hits {} across {} tenants",
        report.jobs(),
        nra_bench::fmt_duration(report.elapsed()),
        report.sustained_qps(),
        report.admitted(),
        report.rejected_exponential(),
        report.errors,
        report.warm_hits,
        report.warm_tenants
    );

    let path = write_bench_serve_json(&report).expect("write BENCH_serve.json");
    println!("wrote {}", path.display());
}
