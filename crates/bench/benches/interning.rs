//! Interned vs tree evaluation on the differential-suite graph families.
//!
//! The §3 measure observes `size(C)` at every rule application; the
//! hash-consed arena (`nra_core::value::intern`) turns those observations,
//! `clone`s and fixpoint equality tests into `O(1)` handle operations.
//! This bench quantifies the win on the same workloads the differential
//! harness (`tests/differential.rs`) verifies — transitive closure on
//! chains and random DAGs via the `while` route, and the powerset route on
//! small chains — and appends the results to `BENCH_eval.json` at the
//! repository root so the perf trajectory accumulates across PRs.
//!
//! ```sh
//! NRA_BENCH_SAMPLES=2 cargo bench -p nra-bench --bench interning
//! ```

use nra_bench::{
    bench_samples, fmt_duration, standard_eval_comparisons, write_bench_eval_json, EvalComparison,
};

fn main() {
    let samples = bench_samples();
    // chain r_n and random-DAG families through the while route (object
    // sizes Θ(n⁴) at the self-product), plus the powerset route on a
    // small chain — see nra_bench::standard_eval_comparisons
    let comparisons = standard_eval_comparisons(samples);

    println!("interned vs tree eager evaluation ({samples} samples, median):");
    println!(
        "{:<20} {:>4} {:>12} {:>12} {:>9}",
        "workload", "n", "tree", "interned", "speedup"
    );
    for c in &comparisons {
        println!(
            "{:<20} {:>4} {:>12} {:>12} {:>8.2}x",
            c.workload,
            c.n,
            fmt_duration(c.tree),
            fmt_duration(c.interned),
            c.speedup()
        );
    }
    let min = comparisons
        .iter()
        .map(EvalComparison::speedup)
        .fold(f64::INFINITY, f64::min);
    println!("minimum speedup across workloads: {min:.2}x");

    let path = write_bench_eval_json(&comparisons, samples).expect("write BENCH_eval.json");
    println!("wrote {}", path.display());
}
