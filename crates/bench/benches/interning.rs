//! Tree vs interned vs memoised evaluation on the differential-suite
//! graph families.
//!
//! The §3 measure observes `size(C)` at every rule application; the
//! hash-consed arena (`nra_core::value::intern`) turns those observations,
//! `clone`s and fixpoint equality tests into `O(1)` handle operations, and
//! the apply cache (`EvalConfig::memoised`, keyed `(EId, VId) → VId` on
//! the expression arena of `nra_core::expr::intern`) skips re-deriving
//! judgments already seen — the BDD-style trick that collapses the
//! repeated body applications inside `while`. This bench quantifies both
//! wins on the workloads the differential harnesses verify — transitive
//! closure on chains, random DAGs, grids, cliques and sparse random
//! graphs via the `while` route, and the powerset route on a small chain
//! — and appends the results to `BENCH_eval.json` at the repository root
//! so the perf trajectory accumulates across PRs.
//!
//! ```sh
//! NRA_BENCH_SAMPLES=2 cargo bench -p nra-bench --bench interning
//! ```

use nra_bench::{
    bench_samples, fmt_duration, standard_dense_comparisons, standard_eval_comparisons,
    write_bench_eval_json, EvalComparison,
};

fn main() {
    let samples = bench_samples();
    // chain/DAG/grid/clique/sparse families through the while route
    // (object sizes Θ(n⁴) at the self-product), plus the powerset route
    // on a small chain — see nra_bench::standard_eval_comparisons
    let comparisons = standard_eval_comparisons(samples);
    // the serving-scale dense-vs-sorted closure table (tc_arena's two
    // representation routes on the 512-node graph families)
    let dense = standard_dense_comparisons(samples);

    println!(
        "tree vs interned vs memoised vs semi-naive eager evaluation, plus session warm \
         re-evaluation and the {}-job/{}-worker batch ({samples} samples, median):",
        nra_bench::BATCH_JOBS,
        nra_bench::BATCH_WORKERS
    );
    println!(
        "{:<20} {:>4} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "workload",
        "n",
        "tree",
        "interned",
        "memoised",
        "seminaive",
        "compiled",
        "optimised",
        "warm",
        "batch",
        "shwarm",
        "intern×",
        "memo×",
        "semi×",
        "comp×",
        "opt×",
        "warm×",
        "batch×",
        "shwarm×"
    );
    for c in &comparisons {
        println!(
            "{:<20} {:>4} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>7.2}x {:>7.2}x {:>7.2}x {:>7.2}x {:>7.2}x {:>7.2}x {:>7.2}x {:>7.2}x",
            c.workload,
            c.n,
            fmt_duration(c.tree),
            fmt_duration(c.interned),
            fmt_duration(c.memoised),
            fmt_duration(c.seminaive),
            fmt_duration(c.compiled),
            fmt_duration(c.optimised),
            fmt_duration(c.warm),
            fmt_duration(c.batch),
            fmt_duration(c.shared_warm),
            c.speedup(),
            c.memo_speedup(),
            c.seminaive_speedup(),
            c.compiled_speedup(),
            c.optimised_speedup(),
            c.warm_speedup(),
            c.batch_speedup(),
            c.shared_warm_speedup()
        );
    }
    let min = comparisons
        .iter()
        .map(EvalComparison::speedup)
        .fold(f64::INFINITY, f64::min);
    let min_memo = comparisons
        .iter()
        .map(EvalComparison::memo_speedup)
        .fold(f64::INFINITY, f64::min);
    let min_semi = comparisons
        .iter()
        .map(EvalComparison::seminaive_speedup)
        .fold(f64::INFINITY, f64::min);
    let min_compiled = comparisons
        .iter()
        .map(EvalComparison::compiled_speedup)
        .fold(f64::INFINITY, f64::min);
    let min_optimised = comparisons
        .iter()
        .map(EvalComparison::optimised_speedup)
        .fold(f64::INFINITY, f64::min);
    let min_warm = comparisons
        .iter()
        .map(EvalComparison::warm_speedup)
        .fold(f64::INFINITY, f64::min);
    let min_batch = comparisons
        .iter()
        .map(EvalComparison::batch_speedup)
        .fold(f64::INFINITY, f64::min);
    let min_shared_warm = comparisons
        .iter()
        .map(EvalComparison::shared_warm_speedup)
        .fold(f64::INFINITY, f64::min);
    println!("minimum interned speedup across workloads:   {min:.2}x");
    println!("minimum memo speedup across workloads:       {min_memo:.2}x");
    println!("minimum semi-naive speedup across workloads: {min_semi:.2}x");
    println!("minimum compiled speedup across workloads:   {min_compiled:.2}x");
    println!("minimum optimised speedup across workloads:  {min_optimised:.2}x");
    println!("minimum warm-start speedup across workloads: {min_warm:.2}x");
    println!("minimum batch speedup across workloads:      {min_batch:.2}x");
    println!("minimum shared-warm speedup across workloads: {min_shared_warm:.2}x");

    println!();
    println!("dense vs sorted transitive closure (tc_arena) on the serving-scale families:");
    println!(
        "{:<22} {:>4} {:>7} {:>10} {:>10} {:>8}",
        "workload", "n", "edges", "sorted", "dense", "dense×"
    );
    for d in &dense {
        println!(
            "{:<22} {:>4} {:>7} {:>10} {:>10} {:>7.2}x",
            d.workload,
            d.n,
            d.edges,
            fmt_duration(d.sorted),
            fmt_duration(d.dense),
            d.dense_speedup()
        );
    }
    let geomean_dense = (dense.iter().map(|d| d.dense_speedup().ln()).sum::<f64>()
        / dense.len().max(1) as f64)
        .exp();
    println!("geomean dense speedup: {geomean_dense:.2}x");

    let path = write_bench_eval_json(&comparisons, &dense, samples).expect("write BENCH_eval.json");
    println!("wrote {}", path.display());
}
