//! # nra-bench
//!
//! Shared measurement helpers for the experiment suite (E1–E12 of
//! DESIGN.md): complexity series over the chain inputs, slope fits for
//! exponential/polynomial growth classification, wall-clock timing, and
//! the tree-vs-interned-vs-memoised evaluator comparison
//! ([`compare_eval`]) whose results accumulate in `BENCH_eval.json` at
//! the repository root ([`write_bench_eval_json`]), plus the serving
//! benchmark ([`serve`]) behind `BENCH_serve.json` — sustained qps
//! through the `nra-serve` front under a mixed 7-family, multi-tenant
//! workload.

#![deny(missing_docs)]

pub mod serve;
pub mod tinybench;

use nra_core::expr::Expr;
use nra_core::value::Value;
use nra_eval::{eval_batch, evaluate, evaluate_tree, EvalConfig, EvalError, EvalSession};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Jobs per batch workload: each query replicated this many times — a
/// serving-style batch (many clients asking the same closures). Three
/// jobs per worker, so each worker pays one cold evaluation and serves
/// the rest from its chunk-local warm cache.
pub const BATCH_JOBS: usize = 12;
/// Worker sessions the batch workload fans across.
pub const BATCH_WORKERS: usize = 4;

/// Outcome of measuring one evaluation at one input size.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Chain length n.
    pub n: u64,
    /// The §3 complexity: measured when the run fits the budget, or the
    /// *predicted requirement* when the budget was exceeded.
    pub complexity: u64,
    /// Whether the run completed (false = budget cut it off; complexity
    /// is then the reported requirement, still exact for powerset cuts).
    pub completed: bool,
    /// Wall-clock time of the evaluation (meaningless when not completed).
    pub wall: Duration,
    /// Derivation-tree nodes.
    pub nodes: u64,
    /// Sum of object sizes across the derivation tree.
    pub total_size: u64,
}

/// Evaluate `query` on the chain `rₙ` for each n, under a space budget,
/// recording complexity (measured or required).
pub fn chain_series(query: &Expr, ns: &[u64], budget: u64) -> Vec<Measurement> {
    let cfg = EvalConfig::with_space_budget(budget);
    ns.iter()
        .map(|&n| {
            let input = Value::chain(n);
            let start = Instant::now();
            let ev = evaluate(query, &input, &cfg);
            let wall = start.elapsed();
            match ev.result {
                Ok(out) => {
                    debug_assert_eq!(out, Value::chain_tc(n), "closure check n={n}");
                    Measurement {
                        n,
                        complexity: ev.stats.max_object_size,
                        completed: true,
                        wall,
                        nodes: ev.stats.nodes,
                        total_size: ev.stats.total_size,
                    }
                }
                Err(EvalError::SpaceBudgetExceeded { required, .. }) => Measurement {
                    n,
                    complexity: required,
                    completed: false,
                    wall,
                    nodes: ev.stats.nodes,
                    total_size: ev.stats.total_size,
                },
                Err(e) => panic!("n={n}: {e}"),
            }
        })
        .collect()
}

/// Least-squares slope of `y` against `x`.
pub fn slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Slope of `log₂(complexity)` vs `n`: ≈ c > 0 for `Ω(2^{cn})` growth,
/// ≈ 0 for polynomial growth.
pub fn log2_slope(series: &[Measurement]) -> f64 {
    let pts: Vec<(f64, f64)> = series
        .iter()
        .map(|m| (m.n as f64, (m.complexity as f64).log2()))
        .collect();
    slope(&pts)
}

/// Slope of `log(complexity)` vs `log(n)` — the polynomial degree.
pub fn loglog_slope(series: &[Measurement]) -> f64 {
    let pts: Vec<(f64, f64)> = series
        .iter()
        .filter(|m| m.n > 0)
        .map(|m| ((m.n as f64).ln(), (m.complexity as f64).ln()))
        .collect();
    slope(&pts)
}

/// Number of timed samples per benchmark, honouring the
/// `NRA_BENCH_SAMPLES` environment variable (default 10) — the same knob
/// [`tinybench`] uses, so CI smoke runs stay cheap.
pub fn bench_samples() -> usize {
    tinybench::default_samples()
}

/// One timed comparison of the five eager evaluation paths — the
/// tree-walking baseline, the interned (hash-consed) path, the
/// memoised path (interned + the `(EId, VId) → VId` apply cache), the
/// semi-naive path (apply cache + delta-driven `while` iteration,
/// [`nra_eval::EvalConfig::optimised`]), and the compiled path (the
/// optimised switches run by the bytecode register VM,
/// [`nra_eval::EvalConfig::compiled`]) — on the same query and input,
/// plus the compiled path re-run on the **rewrite-optimised** query
/// ([`nra_opt::optimise_expr`]), isolating the `nra-opt` pass's win
/// over the compiled rung.
#[derive(Debug, Clone)]
pub struct EvalComparison {
    /// Workload label, e.g. `"chain/tc_while"`.
    pub workload: String,
    /// Input scale (chain length, node count, …).
    pub n: u64,
    /// Median wall-clock of [`nra_eval::evaluate_tree`].
    pub tree: Duration,
    /// Median wall-clock of [`nra_eval::evaluate`] (the interned path).
    pub interned: Duration,
    /// Median wall-clock of [`nra_eval::evaluate`] under
    /// [`nra_eval::EvalConfig::memoised`] (interned + apply cache).
    pub memoised: Duration,
    /// Median wall-clock of [`nra_eval::evaluate`] under
    /// [`nra_eval::EvalConfig::optimised`] (apply cache + semi-naive
    /// delta-driven iteration).
    pub seminaive: Duration,
    /// Median wall-clock of [`nra_eval::evaluate`] under
    /// [`nra_eval::EvalConfig::compiled`] (the optimised switches
    /// executed by the bytecode register VM instead of the tree-walking
    /// interpreter; the compiled program is cached per root, so this is
    /// the steady-state dispatch cost).
    pub compiled: Duration,
    /// Median wall-clock of the **rewrite-optimised** query
    /// ([`nra_opt::optimise_expr`]) under the same compiled
    /// configuration — the steady-state cost after the `nra-opt` pass
    /// has run once (sessions cache the rewrite per root, exactly as
    /// the program cache amortises compilation). On workloads the rules
    /// leave unchanged this column times the identical program as
    /// [`EvalComparison::compiled`]; on the powerset-route rows the
    /// rescue rewrite moves the query into the polynomial class.
    pub optimised: Duration,
    /// Median wall-clock of a **warm** re-evaluation: the same query on
    /// the same input through an [`nra_eval::EvalSession`] (optimised
    /// config) that already evaluated it once — the cross-query apply
    /// cache serves the whole judgment.
    pub warm: Duration,
    /// Median wall-clock of the [`BATCH_JOBS`]-query batch (the query
    /// replicated) fanned across [`BATCH_WORKERS`] worker sessions via
    /// [`nra_eval::eval_batch`].
    pub batch: Duration,
    /// Median wall-clock of the same [`BATCH_JOBS`] queries evaluated
    /// sequentially, each in a fresh (cold) session — the status-quo
    /// one-shot cost the batch API is compared against.
    pub batch_seq: Duration,
    /// Median wall-clock of the batch re-run on a **persistent shared
    /// parent**: the session stays on the shared concurrent store
    /// between batches, so every worker serves its jobs from the apply
    /// table earlier batches (and other workers) filled — the
    /// steady-state serving cost.
    pub shared_warm: Duration,
}

impl EvalComparison {
    /// How many times faster the interned path is (tree / interned).
    pub fn speedup(&self) -> f64 {
        self.tree.as_secs_f64() / self.interned.as_secs_f64().max(1e-12)
    }

    /// How many times faster the apply cache makes the interned path
    /// (interned / memoised). Recorded per workload (and as a geomean)
    /// in `BENCH_eval.json`; CI prints it but gates only on the
    /// interned-over-tree geomean.
    pub fn memo_speedup(&self) -> f64 {
        self.interned.as_secs_f64() / self.memoised.as_secs_f64().max(1e-12)
    }

    /// How many times faster semi-naive (delta-driven) iteration makes
    /// the *memoised* path (memoised / seminaive) — the incremental win
    /// on top of the apply cache. Recorded per workload and as
    /// `geomean_seminaive_speedup` in `BENCH_eval.json`; the CI gate
    /// fails if the geomean drops below 1.
    pub fn seminaive_speedup(&self) -> f64 {
        self.memoised.as_secs_f64() / self.seminaive.as_secs_f64().max(1e-12)
    }

    /// How many times faster the full compiled stack (apply cache +
    /// semi-naive delta rules + bytecode VM, `EvalConfig::compiled`)
    /// runs than **memoised interpretation** (memoised / compiled) —
    /// the headline metric of the compiled backend, measured against
    /// the same rung the semi-naive column is measured against, so the
    /// dispatch-only ratio is `compiled_speedup / seminaive_speedup`.
    /// Recorded per workload and as `geomean_compiled_speedup` in
    /// `BENCH_eval.json`; the CI gate fails if any workload drops
    /// below 1.
    pub fn compiled_speedup(&self) -> f64 {
        self.memoised.as_secs_f64() / self.compiled.as_secs_f64().max(1e-12)
    }

    /// How many times faster the rewrite-optimised query runs than the
    /// raw query on the **same compiled rung** (compiled / optimised)
    /// — the win of the `nra-opt` pass in isolation, with every other
    /// switch held fixed. ≈ 1 on workloads the rules leave unchanged;
    /// large on the powerset-route rows the TC rescue rewrites into
    /// the polynomial class. Recorded per workload and as
    /// `geomean_optimised_speedup` in `BENCH_eval.json`; the CI gate
    /// fails if the geomean drops below 1.
    pub fn optimised_speedup(&self) -> f64 {
        self.compiled.as_secs_f64() / self.optimised.as_secs_f64().max(1e-12)
    }

    /// How many times faster a warm session re-evaluation is than the
    /// best cold run (seminaive / warm) — the cross-query warm-start
    /// win. Recorded per workload and as `geomean_warm_speedup` in
    /// `BENCH_eval.json`; the CI gate fails if the geomean drops
    /// below 1.
    pub fn warm_speedup(&self) -> f64 {
        self.seminaive.as_secs_f64() / self.warm.as_secs_f64().max(1e-12)
    }

    /// How many times faster the 4-worker batch evaluates its job list
    /// than sequential one-shot (cold-session) evaluation of the same
    /// list (batch_seq / batch). The win combines parallel workers with
    /// per-worker warm sharing across each chunk, so it holds even on a
    /// single core. Recorded per workload and as
    /// `geomean_batch_speedup`; the CI gate fails below 1.
    pub fn batch_speedup(&self) -> f64 {
        self.batch_seq.as_secs_f64() / self.batch.as_secs_f64().max(1e-12)
    }

    /// How many times faster the batch runs on a warm shared store than
    /// from a cold start (batch / shared_warm) — the cross-batch win of
    /// keeping one shared store resident: workers re-serve every
    /// judgment from the shared apply table instead of re-deriving it.
    /// Recorded per workload and as `geomean_shared_warm_speedup`; the
    /// CI gate fails below 1.
    pub fn shared_warm_speedup(&self) -> f64 {
        self.batch.as_secs_f64() / self.shared_warm.as_secs_f64().max(1e-12)
    }
}

/// One timed dense-vs-sorted comparison of the arena-native transitive
/// closure ([`nra_graph::tc_arena`]) on a serving-scale graph: the same
/// relation closed twice, once with the dense word-parallel
/// representation disabled (per-round frontier interning and sorted
/// `set_union` merges) and once with it enabled (bitmap Warshall over
/// packed words, one final intern). Both routes produce the identical
/// closure handle — [`compare_dense`] asserts it before timing.
#[derive(Debug, Clone)]
pub struct DenseComparison {
    /// Workload label, e.g. `"road_grid/tc_arena"`.
    pub workload: String,
    /// Node-domain bound of the input graph.
    pub n: u64,
    /// Edges in the input relation.
    pub edges: u64,
    /// Median wall-clock of the sorted-merge route (dense disabled).
    pub sorted: Duration,
    /// Median wall-clock of the dense route (dense enabled).
    pub dense: Duration,
}

impl DenseComparison {
    /// How many times faster the dense representation closes the
    /// relation (sorted / dense). Recorded per workload and as
    /// `geomean_dense_speedup` in `BENCH_eval.json`; the CI gate fails
    /// if the geomean drops below 1.
    pub fn dense_speedup(&self) -> f64 {
        self.sorted.as_secs_f64() / self.dense.as_secs_f64().max(1e-12)
    }
}

/// Time [`nra_graph::tc_arena`]'s two routes on one edge list, first
/// asserting they intern the identical closure handle. Every timed run
/// builds a fresh arena, so neither route is served the other's
/// interned intermediates.
pub fn compare_dense(
    workload: &str,
    n: u64,
    edges: &[(u64, u64)],
    samples: usize,
) -> DenseComparison {
    use nra_core::value::intern::ValueArena;
    {
        let mut va = ValueArena::new();
        va.set_dense_enabled(false);
        let r = va.relation(edges.iter().copied());
        let sorted_out = nra_graph::tc_arena(&mut va, r).expect("sorted closure");
        va.set_dense_enabled(true);
        let dense_out = nra_graph::tc_arena(&mut va, r).expect("dense closure");
        assert_eq!(
            sorted_out, dense_out,
            "tc_arena routes disagree on {workload} n={n}"
        );
    }
    let [sorted, dense] = interleaved_medians(
        samples,
        &mut [
            &mut || {
                let mut va = ValueArena::new();
                va.set_dense_enabled(false);
                let r = va.relation(edges.iter().copied());
                std::hint::black_box(nra_graph::tc_arena(&mut va, r));
            },
            &mut || {
                let mut va = ValueArena::new();
                va.set_dense_enabled(true);
                let r = va.relation(edges.iter().copied());
                std::hint::black_box(nra_graph::tc_arena(&mut va, r));
            },
        ],
    );
    DenseComparison {
        workload: workload.to_string(),
        n,
        edges: edges.len() as u64,
        sorted,
        dense,
    }
}

/// The serving-scale dense-vs-sorted TC workloads feeding the
/// `dense_workloads` table of `BENCH_eval.json`: the three large-graph
/// families (road grid, preferential-attachment power law, two thinly
/// bridged communities) at n = 512 through [`nra_graph::tc_arena`]'s
/// two routes. Shared by `benches/interning.rs` and the `report`
/// binary, like [`standard_eval_comparisons`].
pub fn standard_dense_comparisons(samples: usize) -> Vec<DenseComparison> {
    let mut rng = nra_testkit::Rng::new(0xD3A5E);
    nra_testkit::graphs::large_family_graphs(&mut rng, 512)
        .into_iter()
        .map(|g| {
            let edges: Vec<(u64, u64)> = g.edges.iter().copied().collect();
            compare_dense(&format!("{}/tc_arena", g.family), 512, &edges, samples)
        })
        .collect()
}

/// Median of `samples` timed runs of `f`, after one warm-up run.
pub fn median_time<R>(samples: usize, mut f: impl FnMut() -> R) -> Duration {
    std::hint::black_box(f());
    let mut times: Vec<Duration> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Median of each column over `samples` *interleaved* rounds: every
/// round visits each function back to back, so ambient machine noise
/// (a shared or single-core box) degrades all columns equally instead
/// of whichever happened to run in the noisy phase — the speedup
/// *ratios* stay meaningful even when absolute times wobble.
///
/// Within a round each function runs **twice and only the second
/// execution is timed** (the Criterion steady-state discipline): the
/// untimed first run refills the caches the *previous* column's
/// evaluation just evicted, which otherwise taxes the fast columns
/// disproportionately — a 40 ms tree walk trashes megabytes of memo
/// table and arena that a 0.5 ms delta-driven run then pays to page
/// back in.
fn interleaved_medians<const K: usize>(
    samples: usize,
    fs: &mut [&mut dyn FnMut(); K],
) -> [Duration; K] {
    for f in fs.iter_mut() {
        f(); // warm-up
    }
    let mut columns: [Vec<Duration>; K] = std::array::from_fn(|_| Vec::with_capacity(samples));
    for _ in 0..samples.max(1) {
        for (f, column) in fs.iter_mut().zip(columns.iter_mut()) {
            f(); // steady-state: refill what the previous column evicted
            let start = Instant::now();
            f();
            column.push(start.elapsed());
        }
    }
    std::array::from_fn(|i| {
        columns[i].sort_unstable();
        columns[i][columns[i].len() / 2]
    })
}

/// Time the tree-walking, interned, memoised, semi-naive and compiled
/// eager evaluators — plus the compiled evaluator on the
/// rewrite-optimised query — on one workload (asserting along the way
/// that all six produce the same result) and return the comparison.
pub fn compare_eval(
    workload: &str,
    n: u64,
    query: &Expr,
    input: &Value,
    samples: usize,
) -> EvalComparison {
    let cfg = EvalConfig::default();
    let memo_cfg = EvalConfig::memoised();
    let semi_cfg = EvalConfig::optimised();
    let compiled_cfg = EvalConfig::compiled();
    let tree_out = evaluate_tree(query, input, &cfg).result.expect("tree eval");
    let interned_out = evaluate(query, input, &cfg).result.expect("interned eval");
    assert_eq!(tree_out, interned_out, "paths disagree on {workload} n={n}");
    let memo_out = evaluate(query, input, &memo_cfg)
        .result
        .expect("memoised eval");
    assert_eq!(
        interned_out, memo_out,
        "memoised path disagrees on {workload} n={n}"
    );
    let semi_out = evaluate(query, input, &semi_cfg)
        .result
        .expect("semi-naive eval");
    assert_eq!(
        interned_out, semi_out,
        "semi-naive path disagrees on {workload} n={n}"
    );
    let compiled_out = evaluate(query, input, &compiled_cfg)
        .result
        .expect("compiled eval");
    assert_eq!(
        interned_out, compiled_out,
        "compiled path disagrees on {workload} n={n}"
    );
    // the rewrite runs once up front — sessions cache the pass per
    // root, so steady state times the optimised program, not the
    // rewrite itself (the same amortisation the program cache gives
    // compilation)
    let opt_query = nra_opt::optimise_expr(query);
    let optimised_out = evaluate(&opt_query, input, &compiled_cfg)
        .result
        .expect("optimised eval");
    assert_eq!(
        interned_out, optimised_out,
        "rewrite-optimised query disagrees on {workload} n={n}"
    );
    let [tree, interned, memoised, seminaive, compiled, optimised] = interleaved_medians(
        samples,
        &mut [
            &mut || {
                std::hint::black_box(evaluate_tree(query, input, &cfg));
            },
            &mut || {
                std::hint::black_box(evaluate(query, input, &cfg));
            },
            &mut || {
                std::hint::black_box(evaluate(query, input, &memo_cfg));
            },
            &mut || {
                std::hint::black_box(evaluate(query, input, &semi_cfg));
            },
            &mut || {
                std::hint::black_box(evaluate(query, input, &compiled_cfg));
            },
            &mut || {
                std::hint::black_box(evaluate(&opt_query, input, &compiled_cfg));
            },
        ],
    );
    // warm: re-evaluation through a session whose apply cache survived
    // the seeding call — the whole judgment is served from the cache
    let mut warm_session = EvalSession::new(EvalConfig::optimised());
    warm_session
        .eval(query, input)
        .result
        .expect("warm-seed eval");
    let warm = median_time(samples, || {
        std::hint::black_box(warm_session.eval(query, input));
    });
    // batch: BATCH_JOBS replicas across BATCH_WORKERS worker sessions,
    // against the sequential cold-session evaluation of the same list.
    // Each sample runs on a *fresh* parent — the shared store persists
    // across batches, so re-using one parent would silently measure the
    // warm column below instead of the cold batch cost.
    // thread spawns make single-digit-sample medians jittery; floor the
    // sample count so the batch columns stay meaningful in smoke runs
    let batch_samples = samples.max(5);
    let mut cold_parents: Vec<_> = (0..batch_samples + 1) // +1: median_time's warm-up run
        .map(|_| {
            let mut parent = EvalSession::new(EvalConfig::optimised());
            let qe = parent.intern_expr(query);
            let iv = parent.intern_value(input);
            (parent, vec![(qe, iv); BATCH_JOBS])
        })
        .collect();
    let mut cold_iter = cold_parents.iter_mut();
    let batch = median_time(batch_samples, || {
        let (parent, jobs) = cold_iter.next().expect("one parent per sample");
        std::hint::black_box(eval_batch(parent, jobs, BATCH_WORKERS));
    });
    let batch_seq = median_time(batch_samples, || {
        for _ in 0..BATCH_JOBS {
            let mut cold = EvalSession::new(EvalConfig::optimised());
            std::hint::black_box(cold.eval(query, input));
        }
    });
    // shared-warm: the steady serving state — one parent stays on the
    // shared store, a seeding batch fills the shared apply table, and
    // every subsequent batch re-serves its jobs from it
    let mut shared_parent = EvalSession::new(EvalConfig::optimised());
    let qe = shared_parent.intern_expr(query);
    let iv = shared_parent.intern_value(input);
    let shared_jobs = vec![(qe, iv); BATCH_JOBS];
    eval_batch(&mut shared_parent, &shared_jobs, BATCH_WORKERS);
    let shared_warm = median_time(batch_samples, || {
        std::hint::black_box(eval_batch(&mut shared_parent, &shared_jobs, BATCH_WORKERS));
    });
    EvalComparison {
        workload: workload.to_string(),
        n,
        tree,
        interned,
        memoised,
        seminaive,
        compiled,
        optimised,
        warm,
        batch,
        batch_seq,
        shared_warm,
    }
}

/// The canonical tree-vs-interned-vs-memoised workload set feeding
/// `BENCH_eval.json` — the chain and DAG families of the differential
/// suite through the `while` route, the powerset route on a small chain,
/// the grid/clique/random-sparse families added with the apply cache,
/// and the deep-dispatch workloads (chain n=16, a depth-24 compose
/// spine) added with the bytecode backend. Shared by
/// `benches/interning.rs` and the `report` binary so the two entry
/// points can never drift apart.
pub fn standard_eval_comparisons(samples: usize) -> Vec<EvalComparison> {
    let tc_while = nra_core::queries::tc_while();
    let mut comparisons = Vec::new();
    for n in [8u64, 12] {
        comparisons.push(compare_eval(
            "chain/tc_while",
            n,
            &tc_while,
            &Value::chain(n),
            samples,
        ));
    }
    for (n, seed) in [(8u64, 1u64), (10, 2)] {
        let g = nra_graph::DiGraph::random_dag(n, 1.0 / 3.0, seed);
        comparisons.push(compare_eval(
            "dag/tc_while",
            n,
            &tc_while,
            &nra_graph::graph_to_value(&g),
            samples,
        ));
    }
    comparisons.push(compare_eval(
        "chain/tc_paths",
        10,
        &nra_core::queries::tc_paths(),
        &Value::chain(10),
        samples,
    ));
    // the families added with the apply cache: a 3×4 grid (17 edges), the
    // complete digraph on 5 nodes (20 edges), and a seeded sparse random
    // graph — all through the polynomial while route
    let grid = nra_graph::DiGraph::grid(3, 4);
    comparisons.push(compare_eval(
        "grid/tc_while",
        12,
        &tc_while,
        &nra_graph::graph_to_value(&grid),
        samples,
    ));
    let clique = nra_graph::DiGraph::clique(5);
    comparisons.push(compare_eval(
        "clique/tc_while",
        5,
        &tc_while,
        &nra_graph::graph_to_value(&clique),
        samples,
    ));
    let sparse = nra_graph::DiGraph::random(10, 0.15, 7);
    comparisons.push(compare_eval(
        "sparse/tc_while",
        10,
        &tc_while,
        &nra_graph::graph_to_value(&sparse),
        samples,
    ));
    // deep-dispatch workloads, added with the bytecode backend: a longer
    // chain through the while route (more fixpoint iterates, so the
    // per-iterate dispatch overhead compounds), and a depth-24 spine of
    // composed `tc_step`s — a tall DAG of small rule applications where
    // interpretive dispatch, not set algebra, dominates
    comparisons.push(compare_eval(
        "chain/tc_while",
        16,
        &tc_while,
        &Value::chain(16),
        samples,
    ));
    let tc_step = nra_core::queries::tc_step();
    let spine = (1..24).fold(tc_step.clone(), |acc, _| {
        nra_core::builder::compose(tc_step.clone(), acc)
    });
    comparisons.push(compare_eval(
        "compose_spine/tc_step24",
        24,
        &spine,
        &Value::chain(8),
        samples,
    ));
    comparisons
}

/// The repository root, resolved from this crate's manifest directory
/// (`crates/bench` → two levels up).
pub fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

/// Write `BENCH_eval.json` at the repository root from a set of
/// interned-vs-tree comparisons, so the perf trajectory accumulates
/// across PRs. `samples` must be the count the comparisons were actually
/// timed with (it is recorded in the file). Returns the path written.
pub fn write_bench_eval_json(
    comparisons: &[EvalComparison],
    dense: &[DenseComparison],
    samples: usize,
) -> std::io::Result<PathBuf> {
    write_bench_eval_json_to(
        repo_root().join("BENCH_eval.json"),
        comparisons,
        dense,
        samples,
    )
}

/// [`write_bench_eval_json`] with an explicit destination — so tests can
/// exercise the format without clobbering the real repo-root artifact.
pub fn write_bench_eval_json_to(
    path: PathBuf,
    comparisons: &[EvalComparison],
    dense: &[DenseComparison],
    samples: usize,
) -> std::io::Result<PathBuf> {
    let mut out = String::from("{\n  \"bench\": \"eval\",\n");
    out.push_str(&format!("  \"samples\": {samples},\n"));
    out.push_str("  \"unit\": \"ns\",\n  \"workloads\": [\n");
    for (i, c) in comparisons.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"n\": {}, \"tree_ns\": {}, \"interned_ns\": {}, \"memo_ns\": {}, \"seminaive_ns\": {}, \"compiled_ns\": {}, \"optimised_ns\": {}, \"warm_ns\": {}, \"batch_ns\": {}, \"batch_seq_ns\": {}, \"shared_warm_ns\": {}, \"speedup\": {:.3}, \"memo_speedup\": {:.3}, \"seminaive_speedup\": {:.3}, \"compiled_speedup\": {:.3}, \"optimised_speedup\": {:.3}, \"warm_speedup\": {:.3}, \"batch_speedup\": {:.3}, \"shared_warm_speedup\": {:.3}}}{}\n",
            c.workload,
            c.n,
            c.tree.as_nanos(),
            c.interned.as_nanos(),
            c.memoised.as_nanos(),
            c.seminaive.as_nanos(),
            c.compiled.as_nanos(),
            c.optimised.as_nanos(),
            c.warm.as_nanos(),
            c.batch.as_nanos(),
            c.batch_seq.as_nanos(),
            c.shared_warm.as_nanos(),
            c.speedup(),
            c.memo_speedup(),
            c.seminaive_speedup(),
            c.compiled_speedup(),
            c.optimised_speedup(),
            c.warm_speedup(),
            c.batch_speedup(),
            c.shared_warm_speedup(),
            if i + 1 == comparisons.len() { "" } else { "," }
        ));
    }
    let min = if comparisons.is_empty() {
        0.0 // keep the JSON finite when there is nothing to report
    } else {
        comparisons
            .iter()
            .map(EvalComparison::speedup)
            .fold(f64::INFINITY, f64::min)
    };
    let geomean = (comparisons.iter().map(|c| c.speedup().ln()).sum::<f64>()
        / comparisons.len().max(1) as f64)
        .exp();
    let geomean_memo = (comparisons
        .iter()
        .map(|c| c.memo_speedup().ln())
        .sum::<f64>()
        / comparisons.len().max(1) as f64)
        .exp();
    let geomean_seminaive = (comparisons
        .iter()
        .map(|c| c.seminaive_speedup().ln())
        .sum::<f64>()
        / comparisons.len().max(1) as f64)
        .exp();
    let geomean_compiled = (comparisons
        .iter()
        .map(|c| c.compiled_speedup().ln())
        .sum::<f64>()
        / comparisons.len().max(1) as f64)
        .exp();
    let geomean_optimised = (comparisons
        .iter()
        .map(|c| c.optimised_speedup().ln())
        .sum::<f64>()
        / comparisons.len().max(1) as f64)
        .exp();
    let geomean_warm = (comparisons
        .iter()
        .map(|c| c.warm_speedup().ln())
        .sum::<f64>()
        / comparisons.len().max(1) as f64)
        .exp();
    let geomean_batch = (comparisons
        .iter()
        .map(|c| c.batch_speedup().ln())
        .sum::<f64>()
        / comparisons.len().max(1) as f64)
        .exp();
    let geomean_shared_warm = (comparisons
        .iter()
        .map(|c| c.shared_warm_speedup().ln())
        .sum::<f64>()
        / comparisons.len().max(1) as f64)
        .exp();
    out.push_str("  ],\n");
    // the dense-vs-sorted closure table lives in its own array: its
    // rows time `tc_arena`'s two representation routes, not the
    // evaluator rungs, so the per-workload key set is different
    out.push_str("  \"dense_workloads\": [\n");
    for (i, d) in dense.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"n\": {}, \"edges\": {}, \"sorted_ns\": {}, \"dense_ns\": {}, \"dense_speedup\": {:.3}}}{}\n",
            d.workload,
            d.n,
            d.edges,
            d.sorted.as_nanos(),
            d.dense.as_nanos(),
            d.dense_speedup(),
            if i + 1 == dense.len() { "" } else { "," }
        ));
    }
    let geomean_dense = (dense.iter().map(|d| d.dense_speedup().ln()).sum::<f64>()
        / dense.len().max(1) as f64)
        .exp();
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"geomean_dense_speedup\": {:.3},\n",
        geomean_dense
    ));
    out.push_str(&format!(
        "  \"batch_jobs\": {BATCH_JOBS},\n  \"batch_workers\": {BATCH_WORKERS},\n"
    ));
    out.push_str(&format!("  \"min_speedup\": {:.3},\n", min));
    out.push_str(&format!("  \"geomean_speedup\": {:.3},\n", geomean));
    out.push_str(&format!(
        "  \"geomean_memo_speedup\": {:.3},\n",
        geomean_memo
    ));
    out.push_str(&format!(
        "  \"geomean_seminaive_speedup\": {:.3},\n",
        geomean_seminaive
    ));
    out.push_str(&format!(
        "  \"geomean_compiled_speedup\": {:.3},\n",
        geomean_compiled
    ));
    out.push_str(&format!(
        "  \"geomean_optimised_speedup\": {:.3},\n",
        geomean_optimised
    ));
    out.push_str(&format!(
        "  \"geomean_warm_speedup\": {:.3},\n",
        geomean_warm
    ));
    out.push_str(&format!(
        "  \"geomean_shared_warm_speedup\": {:.3},\n",
        geomean_shared_warm
    ));
    out.push_str(&format!(
        "  \"geomean_batch_speedup\": {:.3}\n}}\n",
        geomean_batch
    ));
    let mut file = std::fs::File::create(&path)?;
    file.write_all(out.as_bytes())?;
    Ok(path)
}

/// Format a duration compactly.
pub fn fmt_duration(d: Duration) -> String {
    if d.as_secs() >= 1 {
        format!("{:.2}s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{:.1}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.0}µs", d.as_secs_f64() * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_core::queries;

    #[test]
    fn slope_of_a_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        assert!((slope(&pts) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn chain_series_measures_powerset_growth() {
        let series = chain_series(&queries::tc_paths(), &[3, 4, 5, 6], u64::MAX);
        assert!(series.iter().all(|m| m.completed));
        let c = log2_slope(&series);
        assert!(c > 0.8 && c < 1.5, "exponential slope ≈ 1, got {c}");
    }

    #[test]
    fn chain_series_reports_requirements_over_budget() {
        let series = chain_series(&queries::tc_paths(), &[18], 10_000);
        assert!(!series[0].completed);
        assert!(series[0].complexity > 1 << 18);
    }

    #[test]
    fn while_series_is_polynomial() {
        let series = chain_series(&queries::tc_while(), &[4, 8, 16], u64::MAX);
        let d = loglog_slope(&series);
        assert!(d < 5.0, "polynomial degree ≈ 4, got {d}");
        let c = log2_slope(&series);
        assert!(c < 1.0, "not exponential, got {c}");
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }

    #[test]
    fn compare_eval_checks_agreement_and_times_all_four_paths() {
        let c = compare_eval(
            "chain/tc_while",
            6,
            &queries::tc_while(),
            &Value::chain(6),
            2,
        );
        assert_eq!(c.workload, "chain/tc_while");
        assert!(c.tree > Duration::ZERO);
        assert!(c.interned > Duration::ZERO);
        assert!(c.memoised > Duration::ZERO);
        assert!(c.seminaive > Duration::ZERO);
        assert!(c.compiled > Duration::ZERO);
        assert!(c.optimised > Duration::ZERO);
        assert!(c.warm > Duration::ZERO);
        assert!(c.batch > Duration::ZERO);
        assert!(c.batch_seq > Duration::ZERO);
        assert!(c.shared_warm > Duration::ZERO);
        assert!(c.speedup() > 0.0);
        assert!(c.memo_speedup() > 0.0);
        assert!(c.seminaive_speedup() > 0.0);
        assert!(c.compiled_speedup() > 0.0);
        assert!(c.optimised_speedup() > 0.0);
        assert!(c.warm_speedup() > 0.0);
        assert!(c.batch_speedup() > 0.0);
        assert!(c.shared_warm_speedup() > 0.0);
    }

    #[test]
    fn bench_eval_json_is_written_and_well_formed() {
        let comparisons = vec![
            EvalComparison {
                workload: "chain/tc_while".into(),
                n: 8,
                tree: Duration::from_micros(400),
                interned: Duration::from_micros(100),
                memoised: Duration::from_micros(50),
                seminaive: Duration::from_micros(25),
                compiled: Duration::from_micros(10),
                optimised: Duration::from_micros(8),
                warm: Duration::from_micros(5),
                batch: Duration::from_micros(100),
                batch_seq: Duration::from_micros(200),
                shared_warm: Duration::from_micros(50),
            },
            EvalComparison {
                workload: "dag/tc_while".into(),
                n: 8,
                tree: Duration::from_micros(300),
                interned: Duration::from_micros(150),
                memoised: Duration::from_micros(75),
                seminaive: Duration::from_micros(25),
                compiled: Duration::from_micros(20),
                optimised: Duration::from_micros(10),
                warm: Duration::from_micros(5),
                batch: Duration::from_micros(100),
                batch_seq: Duration::from_micros(200),
                shared_warm: Duration::from_micros(25),
            },
        ];
        let dense = vec![
            DenseComparison {
                workload: "road_grid/tc_arena".into(),
                n: 512,
                edges: 950,
                sorted: Duration::from_micros(400),
                dense: Duration::from_micros(100),
            },
            DenseComparison {
                workload: "power_law/tc_arena".into(),
                n: 512,
                edges: 980,
                sorted: Duration::from_micros(900),
                dense: Duration::from_micros(100),
            },
        ];
        // write to a scratch path — the repo-root BENCH_eval.json is a
        // real measured artifact that `cargo test` must never clobber
        let dest =
            std::env::temp_dir().join(format!("BENCH_eval_test_{}.json", std::process::id()));
        let path =
            write_bench_eval_json_to(dest.clone(), &comparisons, &dense, 2).expect("write json");
        let text = std::fs::read_to_string(&path).expect("read back");
        std::fs::remove_file(&dest).ok();
        // shape checks a JSON parser would enforce
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert!(text.contains("\"bench\": \"eval\""));
        assert!(text.contains("\"workload\": \"chain/tc_while\""));
        assert!(text.contains("\"samples\": 2"));
        assert!(text.contains("\"speedup\": 4.000"));
        assert!(text.contains("\"memo_ns\": 50000"));
        assert!(text.contains("\"memo_speedup\": 2.000"));
        assert!(text.contains("\"seminaive_ns\": 25000"));
        assert!(text.contains("\"seminaive_speedup\": 2.000"));
        assert!(text.contains("\"seminaive_speedup\": 3.000"));
        assert!(text.contains("\"compiled_ns\": 10000"));
        assert!(text.contains("\"compiled_speedup\": 5.000"));
        assert!(text.contains("\"compiled_ns\": 20000"));
        assert!(text.contains("\"compiled_speedup\": 3.750"));
        assert!(text.contains("\"optimised_ns\": 8000"));
        assert!(text.contains("\"optimised_speedup\": 1.250"));
        assert!(text.contains("\"optimised_ns\": 10000"));
        assert!(text.contains("\"optimised_speedup\": 2.000"));
        assert!(text.contains("\"warm_ns\": 5000"));
        assert!(text.contains("\"warm_speedup\": 5.000"));
        assert!(text.contains("\"batch_ns\": 100000"));
        assert!(text.contains("\"batch_seq_ns\": 200000"));
        assert!(text.contains("\"batch_speedup\": 2.000"));
        assert!(text.contains("\"shared_warm_ns\": 50000"));
        assert!(text.contains("\"shared_warm_speedup\": 2.000"));
        assert!(text.contains("\"shared_warm_ns\": 25000"));
        assert!(text.contains("\"shared_warm_speedup\": 4.000"));
        assert!(text.contains("\"dense_workloads\""));
        assert!(text.contains("\"workload\": \"road_grid/tc_arena\""));
        assert!(text.contains("\"edges\": 950"));
        assert!(text.contains("\"sorted_ns\": 400000"));
        assert!(text.contains("\"dense_ns\": 100000"));
        assert!(text.contains("\"dense_speedup\": 4.000"));
        assert!(text.contains("\"dense_speedup\": 9.000"));
        assert!(text.contains("\"geomean_dense_speedup\": 6.000"));
        assert!(text.contains("\"batch_jobs\": 12"));
        assert!(text.contains("\"batch_workers\": 4"));
        assert!(text.contains("\"min_speedup\": 2.000"));
        assert!(text.contains("\"geomean_memo_speedup\": 2.000"));
        assert!(text.contains("\"geomean_seminaive_speedup\": 2.449"));
        assert!(text.contains("\"geomean_compiled_speedup\": 4.330"));
        assert!(text.contains("\"geomean_optimised_speedup\": 1.581"));
        assert!(text.contains("\"geomean_warm_speedup\": 5.000"));
        assert!(text.contains("\"geomean_shared_warm_speedup\": 2.828"));
        assert!(text.contains("\"geomean_batch_speedup\": 2.000"));
        // balanced braces/brackets (no trailing-comma style breakage)
        assert_eq!(
            text.matches('{').count(),
            text.matches('}').count(),
            "{text}"
        );
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }
}
