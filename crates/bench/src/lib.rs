//! # nra-bench
//!
//! Shared measurement helpers for the experiment suite (E1–E11 of
//! DESIGN.md): complexity series over the chain inputs, slope fits for
//! exponential/polynomial growth classification, and wall-clock timing.

#![warn(missing_docs)]

pub mod tinybench;

use nra_core::expr::Expr;
use nra_core::value::Value;
use nra_eval::{evaluate, EvalConfig, EvalError};
use std::time::{Duration, Instant};

/// Outcome of measuring one evaluation at one input size.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Chain length n.
    pub n: u64,
    /// The §3 complexity: measured when the run fits the budget, or the
    /// *predicted requirement* when the budget was exceeded.
    pub complexity: u64,
    /// Whether the run completed (false = budget cut it off; complexity
    /// is then the reported requirement, still exact for powerset cuts).
    pub completed: bool,
    /// Wall-clock time of the evaluation (meaningless when not completed).
    pub wall: Duration,
    /// Derivation-tree nodes.
    pub nodes: u64,
    /// Sum of object sizes across the derivation tree.
    pub total_size: u64,
}

/// Evaluate `query` on the chain `rₙ` for each n, under a space budget,
/// recording complexity (measured or required).
pub fn chain_series(query: &Expr, ns: &[u64], budget: u64) -> Vec<Measurement> {
    let cfg = EvalConfig::with_space_budget(budget);
    ns.iter()
        .map(|&n| {
            let input = Value::chain(n);
            let start = Instant::now();
            let ev = evaluate(query, &input, &cfg);
            let wall = start.elapsed();
            match ev.result {
                Ok(out) => {
                    debug_assert_eq!(out, Value::chain_tc(n), "closure check n={n}");
                    Measurement {
                        n,
                        complexity: ev.stats.max_object_size,
                        completed: true,
                        wall,
                        nodes: ev.stats.nodes,
                        total_size: ev.stats.total_size,
                    }
                }
                Err(EvalError::SpaceBudgetExceeded { required, .. }) => Measurement {
                    n,
                    complexity: required,
                    completed: false,
                    wall,
                    nodes: ev.stats.nodes,
                    total_size: ev.stats.total_size,
                },
                Err(e) => panic!("n={n}: {e}"),
            }
        })
        .collect()
}

/// Least-squares slope of `y` against `x`.
pub fn slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Slope of `log₂(complexity)` vs `n`: ≈ c > 0 for `Ω(2^{cn})` growth,
/// ≈ 0 for polynomial growth.
pub fn log2_slope(series: &[Measurement]) -> f64 {
    let pts: Vec<(f64, f64)> = series
        .iter()
        .map(|m| (m.n as f64, (m.complexity as f64).log2()))
        .collect();
    slope(&pts)
}

/// Slope of `log(complexity)` vs `log(n)` — the polynomial degree.
pub fn loglog_slope(series: &[Measurement]) -> f64 {
    let pts: Vec<(f64, f64)> = series
        .iter()
        .filter(|m| m.n > 0)
        .map(|m| ((m.n as f64).ln(), (m.complexity as f64).ln()))
        .collect();
    slope(&pts)
}

/// Format a duration compactly.
pub fn fmt_duration(d: Duration) -> String {
    if d.as_secs() >= 1 {
        format!("{:.2}s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{:.1}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.0}µs", d.as_secs_f64() * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_core::queries;

    #[test]
    fn slope_of_a_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        assert!((slope(&pts) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn chain_series_measures_powerset_growth() {
        let series = chain_series(&queries::tc_paths(), &[3, 4, 5, 6], u64::MAX);
        assert!(series.iter().all(|m| m.completed));
        let c = log2_slope(&series);
        assert!(c > 0.8 && c < 1.5, "exponential slope ≈ 1, got {c}");
    }

    #[test]
    fn chain_series_reports_requirements_over_budget() {
        let series = chain_series(&queries::tc_paths(), &[18], 10_000);
        assert!(!series[0].completed);
        assert!(series[0].complexity > 1 << 18);
    }

    #[test]
    fn while_series_is_polynomial() {
        let series = chain_series(&queries::tc_while(), &[4, 8, 16], u64::MAX);
        let d = loglog_slope(&series);
        assert!(d < 5.0, "polynomial degree ≈ 4, got {d}");
        let c = log2_slope(&series);
        assert!(c < 1.0, "not exponential, got {c}");
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }
}
