//! A minimal, dependency-free benchmark harness with a Criterion-shaped
//! API surface.
//!
//! The workspace must build offline, so the real `criterion` crate is not
//! available; this module provides the subset its bench files use —
//! [`Criterion`], [`BenchmarkId`], benchmark groups, `b.iter(..)`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by plain
//! [`std::time::Instant`] sampling. Swapping back to upstream criterion is
//! a one-line import change in each bench target.
//!
//! Sample counts honour the `NRA_BENCH_SAMPLES` environment variable
//! (default 10), so CI can smoke-run every benchmark cheaply with
//! `NRA_BENCH_SAMPLES=2 cargo bench`.
//!
//! [`criterion_group!`]: crate::criterion_group
//! [`criterion_main!`]: crate::criterion_main

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Default number of timed samples per benchmark, overridable via the
/// `NRA_BENCH_SAMPLES` environment variable. The single source of truth
/// for that knob — `nra_bench::bench_samples` delegates here.
pub fn default_samples() -> usize {
    std::env::var("NRA_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10)
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            samples: default_samples(),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            samples: self.samples,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.samples);
        f(&mut b);
        b.report("", name);
        self
    }
}

/// A named benchmark group (stand-in for `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Set the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // honour an explicit NRA_BENCH_SAMPLES override even over the
        // per-group request, so CI can force cheap smoke runs
        if std::env::var_os("NRA_BENCH_SAMPLES").is_none() {
            self.samples = n.max(1);
        }
        self
    }

    /// Benchmark a closure that receives a shared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.samples);
        f(&mut b, input);
        b.report(&self.name, &id.into().0);
        self
    }

    /// Benchmark a closure with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.samples);
        f(&mut b);
        b.report(&self.name, &id.into().0);
        self
    }

    /// Finish the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// An id rendered from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Collects timing samples for one benchmark (stand-in for
/// `criterion::Bencher`).
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            durations: Vec::with_capacity(samples),
        }
    }

    /// Time `routine`, one call per sample, after a single warm-up call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }

    fn report(&mut self, group: &str, id: &str) {
        let label = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        if self.durations.is_empty() {
            println!("{label:<50} (no samples)");
            return;
        }
        self.durations.sort_unstable();
        let min = self.durations[0];
        let median = self.durations[self.durations.len() / 2];
        let max = self.durations[self.durations.len() - 1];
        println!(
            "{label:<50} [{} {} {}] ({} samples)",
            crate::fmt_duration(min),
            crate::fmt_duration(median),
            crate::fmt_duration(max),
            self.durations.len(),
        );
    }
}

/// Define a function `$name` that runs each listed benchmark function with
/// a default [`Criterion`] (stand-in for `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::tinybench::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the listed groups (stand-in for
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

// Make the macros importable alongside the types:
// `use nra_bench::tinybench::{criterion_group, criterion_main, Criterion};`
pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        let mut calls = 0u32;
        group.bench_function(BenchmarkId::from_parameter(1), |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        // warm-up + samples
        assert!(calls >= 2);
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 8).0, "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).0, "8");
    }
}
