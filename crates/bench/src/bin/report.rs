//! Regenerates every table of EXPERIMENTS.md:
//!
//! ```sh
//! cargo run --release -p nra-bench --bin report > EXPERIMENTS.md
//! ```
//!
//! Each section reproduces one numbered claim of Suciu & Paredaens (1994);
//! see DESIGN.md §4 for the experiment index.
//!
//! As a side effect the run refreshes `BENCH_eval.json` at the repository
//! root (the tree-vs-interned-vs-memoised evaluator comparison, same
//! format as `cargo bench -p nra-bench --bench interning`), so either
//! entry point keeps the perf trajectory current.

use nra_bench::{chain_series, fmt_duration, log2_slope, loglog_slope, median_time};
use nra_circuits::relalg::{self, compile, compile_bool, BoolQuery, FlatQuery};
use nra_core::{builder, derived, queries, Type, Value};
use nra_eval::{evaluate, evaluate_lazy, EvalConfig, EvalError};
use nra_graph::{graph_to_value, DiGraph};
use nra_symbolic::{
    aexpr::grid_aexpr, affine::AffineSpace, apply, chain_aexpr, chain_tc_impossibility, ramsey,
    AExpr, Condition, Env, SetCardinality, SimpleExpr, SymCtx, SymbolicError, VarGen,
};
use std::time::Instant;

fn main() {
    if std::env::args().any(|a| a == "--disasm") {
        disasm();
        return;
    }
    header();
    e1_powerset_tc();
    e2_naive_tc();
    e3_while_baseline();
    e4_approximation();
    e5_evaluation_lemma();
    e6_affine_spaces();
    e7_dichotomy();
    e8_circuits();
    e9_ramsey();
    e10_measure_robustness();
    e11_lazy();
    e12_apply_cache();
    e13_delta_frontiers();
    e14_optimiser();
    footer();
    bench_eval_json();
}

/// Debug aid (`--disasm`): instead of regenerating EXPERIMENTS.md, print
/// the bytecode the compiled backend emits for the standard queries —
/// the same text `nra_eval::compile::parse` round-trips, so the dump is
/// also a machine-readable program description.
fn disasm() {
    let mut session = nra_eval::EvalSession::new(EvalConfig::compiled());
    for (name, q) in [
        ("tc_step", queries::tc_step()),
        ("tc_while", queries::tc_while()),
        ("tc_paths", queries::tc_paths()),
    ] {
        let eid = session.intern_expr(&q);
        let program = session.compiled_program(eid);
        println!("# {name}");
        println!("{}", nra_eval::disassemble(&program));
    }
}

/// Refresh `BENCH_eval.json` at the repo root, from the same workload set
/// as `benches/interning.rs`. Stdout is the EXPERIMENTS.md stream, so
/// progress goes to stderr.
fn bench_eval_json() {
    let samples = nra_bench::bench_samples();
    let comparisons = nra_bench::standard_eval_comparisons(samples);
    let dense = nra_bench::standard_dense_comparisons(samples);
    let path = nra_bench::write_bench_eval_json(&comparisons, &dense, samples)
        .expect("write BENCH_eval.json");
    eprintln!("report: refreshed {}", path.display());
}

fn e13_delta_frontiers() {
    println!("## E13 — semi-naive iteration: the (total, delta) frontier trace");
    println!();
    println!("Under `EvalConfig::semi_naive` the `while` rule threads a `(total, delta)`");
    println!("pair: each iterate's body runs on the frontier only (the facts the fixpoint");
    println!("gained since the previous iterate), and the new facts are folded in by the");
    println!("arena's one-pass merge algebra. Results are bit-for-bit the naive-iteration");
    println!("results and the iteration count is exact — only the re-derivation of the");
    println!("accumulated closure disappears. The frontier trace per workload (`|cₖ₊₁ ∖");
    println!("cₖ|` per iterate; the final 0 is the fixpoint test), with the §3 node");
    println!("counts the delta rules avoided:");
    println!();
    println!(
        "| workload | n | iterations | frontier sizes | naive nodes | semi-naive nodes | skipped |"
    );
    println!("|--|--:|--:|--|--:|--:|--:|");
    let cfg = EvalConfig::default();
    let semi_cfg = EvalConfig::semi_naive();
    let tc_while = queries::tc_while();
    let workloads: Vec<(&str, u64, Value)> = vec![
        ("chain/tc_while", 8, Value::chain(8)),
        ("chain/tc_while", 12, Value::chain(12)),
        (
            "dag/tc_while",
            10,
            graph_to_value(&DiGraph::random_dag(10, 1.0 / 3.0, 2)),
        ),
        ("grid/tc_while", 12, graph_to_value(&DiGraph::grid(3, 4))),
        ("clique/tc_while", 5, graph_to_value(&DiGraph::clique(5))),
        (
            "sparse/tc_while",
            10,
            graph_to_value(&DiGraph::random(10, 0.15, 7)),
        ),
    ];
    for (label, n, input) in &workloads {
        let naive = evaluate(&tc_while, input, &cfg);
        let semi = evaluate(&tc_while, input, &semi_cfg);
        assert_eq!(
            naive.result.unwrap(),
            semi.result.unwrap(),
            "semi-naive disagrees on {label} n={n}"
        );
        assert_eq!(naive.stats.while_iterations, semi.stats.while_iterations);
        let frontiers: Vec<String> = semi
            .stats
            .while_frontiers
            .iter()
            .map(u64::to_string)
            .collect();
        println!(
            "| {} | {} | {} | {} | {} | {} | {} |",
            label,
            n,
            semi.stats.while_iterations,
            frontiers.join(" → "),
            naive.stats.nodes,
            semi.stats.nodes,
            semi.stats.delta_skipped,
        );
    }
    println!();
    println!("The frontiers shrink to 0 exactly when the naive iterate reaches its");
    println!("fixpoint — the trajectory is threaded, never approximated — while the");
    println!("node column shows the point of semi-naive evaluation: the dominant");
    println!("`O(iterations × |closure|²)` re-scan of the accumulated closure is gone.");
    println!();
}

fn e14_optimiser() {
    println!("## E14 — the rewrite optimiser: optimised vs raw on the compiled rung");
    println!();
    println!("`nra-opt` rewrites the hash-consed expression DAG before evaluation:");
    println!("identity/fusion/pushdown rules from `RULES.json` (every entry");
    println!("differentially verified), plus the headline *rescue* — structural");
    println!("recognition of the powerset-route TC idiom and rewrite to the while");
    println!("route, turning Theorem 4.1's separation into an optimisation. Both");
    println!("columns run under `EvalConfig::compiled`, so the delta is the rewrite");
    println!("alone:");
    println!();
    println!("| workload | n | raw | optimised | speedup | rewritten |");
    println!("|--|--:|--:|--:|--:|--:|");
    let samples = nra_bench::bench_samples();
    let cfg = EvalConfig::compiled();
    let spine = (1..8).fold(queries::tc_step(), |acc, _| {
        builder::compose(queries::tc_step(), acc)
    });
    let workloads: Vec<(&str, u64, nra_core::Expr, Value)> = vec![
        ("chain/tc_while", 12, queries::tc_while(), Value::chain(12)),
        ("chain/tc_paths", 10, queries::tc_paths(), Value::chain(10)),
        (
            "chain/siblings_powerset",
            10,
            queries::siblings_powerset(),
            Value::chain(10),
        ),
        ("compose_spine/tc_step8", 8, spine, Value::chain(8)),
    ];
    for (label, n, q, input) in &workloads {
        let opt = nra_opt::optimise_expr(q);
        let raw_out = evaluate(q, input, &cfg).result.expect("raw eval");
        let opt_out = evaluate(&opt, input, &cfg).result.expect("optimised eval");
        assert_eq!(raw_out, opt_out, "optimiser changed {label} n={n}");
        let t_raw = median_time(samples, || {
            std::hint::black_box(evaluate(q, input, &cfg));
        });
        let t_opt = median_time(samples, || {
            std::hint::black_box(evaluate(&opt, input, &cfg));
        });
        println!(
            "| {} | {} | {} | {} | {:.2}x | {} |",
            label,
            n,
            fmt_duration(t_raw),
            fmt_duration(t_opt),
            t_raw.as_secs_f64() / t_opt.as_secs_f64().max(1e-12),
            if opt == *q { "–" } else { "yes" },
        );
    }
    println!();
    println!("The rescue respects admission semantics end to end: under a space budget");
    println!("only the while route can satisfy, the raw powerset route is refused while");
    println!("the rewritten query completes —");
    println!();
    // 2¹⁹ sits between the while route's largest derivation object on
    // r₂₀ (280 001) and the powerset route's (~3.3·10⁷): the rewrite
    // is exactly the difference between refused and answered
    let strict = EvalConfig {
        max_object_size: Some(1 << 19),
        ..EvalConfig::compiled()
    };
    let input = Value::chain(20);
    let raw = evaluate(&queries::tc_paths(), &input, &strict);
    let opt = nra_opt::optimise_expr(&queries::tc_paths());
    let rescued = evaluate(&opt, &input, &strict);
    assert!(raw.result.is_err(), "powerset route must exceed the budget");
    println!(
        "- raw `tc_paths` on r₂₀ under a 2¹⁹ budget: **{}**",
        match raw.result {
            Err(e) => format!("refused ({e})"),
            Ok(_) => "unexpectedly completed".into(),
        }
    );
    println!(
        "- optimised (`tc_paths` → while route) on the same budget: **{}**",
        match rescued.result {
            Ok(v) => format!(
                "completed, {} facts, correct = {}",
                v.cardinality().unwrap_or(0),
                v == Value::chain_tc(20)
            ),
            Err(e) => panic!("rescued route must fit the budget: {e}"),
        }
    );
    println!();
    println!("This is the serving-door behaviour `BENCH_serve.json` gates on: every");
    println!("family's `rescued` column counts powerset-route submissions admission");
    println!("would reject as written, answered correctly through the rewrite.");
    println!();
}

fn header() {
    println!("# EXPERIMENTS — paper claims vs. measurements");
    println!();
    println!("Reproduction of Suciu & Paredaens, *\"Any Algorithm in the Complex Object");
    println!("Algebra with Powerset Needs Exponential Space to Compute Transitive");
    println!("Closure\"* (UPenn MS-CIS-94-04, 1994). The paper is a lower-bound result");
    println!("with no tables or figures of its own; every numbered claim is turned into");
    println!("a measurable experiment (index in DESIGN.md §4). All tables below are");
    println!("regenerated by `cargo run --release -p nra-bench --bin report`.");
    println!();
    println!("Complexity always means the paper's §3 measure: the size of the largest");
    println!("complex object occurring in the derivation tree of the eager evaluation.");
    println!();
}

fn footer() {
    println!("---");
    println!();
    println!("*Generated by `nra-bench`'s `report` binary; timings are from the machine");
    println!("that produced this file and matter only for orders of magnitude — the");
    println!("reproduction target is the shape of each growth curve, not constants.*");
}

// ---------------------------------------------------------------------------

fn e1_powerset_tc() {
    println!("## E1 — Theorem 4.1: TC via powerset needs Ω(2^cn) space");
    println!();
    println!("**Paper claim.** Every `f ∈ NRA(powerset)` with `f(rₙ) ⇓ tc(rₙ)` has");
    println!("evaluation complexity `Ω(2^{{cn}})` for some c > 0.");
    println!();
    println!("**Measured.** The witness construction `tc_paths` (subsets of `r` as path");
    println!("witnesses, through one `powerset`):");
    println!();
    println!("| n | complexity | log₂ | ×prev | wall |");
    println!("|--:|--:|--:|--:|--:|");
    let ns: Vec<u64> = (1..=14).collect();
    let series = chain_series(&queries::tc_paths(), &ns, u64::MAX);
    let mut prev: Option<u64> = None;
    for m in &series {
        let ratio = prev
            .map(|p| format!("{:.2}", m.complexity as f64 / p as f64))
            .unwrap_or_else(|| "–".into());
        println!(
            "| {} | {} | {:.1} | {} | {} |",
            m.n,
            m.complexity,
            (m.complexity as f64).log2(),
            ratio,
            fmt_duration(m.wall)
        );
        prev = Some(m.complexity);
    }
    let c = log2_slope(&series[4..]);
    println!();
    println!(
        "Fitted `log₂(complexity)` slope (n ≥ 5): **c ≈ {:.3}** — the measured curve is",
        c
    );
    println!("`2^(≈n)`, matching the theorem's `Ω(2^{{cn}})` with c ≈ 1 for this query.");
    println!("Beyond memory, the budgeted evaluator still reports the exact requirement");
    println!("(the powerset output size is computed combinatorially before materialising):");
    println!();
    println!("| n | required space (predicted) |");
    println!("|--:|--:|");
    for n in [20u64, 30, 40, 60] {
        let s = chain_series(&queries::tc_paths(), &[n], 1_000_000);
        println!("| {} | {:.3e} |", n, s[0].complexity as f64);
    }
    println!();
}

fn e2_naive_tc() {
    println!("## E2 — the textbook Abiteboul–Beeri query is 2^Θ(n²)");
    println!();
    println!("**Paper claim (§1).** \"the obvious way of doing that is by a query whose");
    println!("naturally associated algorithm requires exponential space\" — the naive");
    println!("construction intersects all transitive supersets of r inside");
    println!("`powerset(V × V)`, i.e. `2^{{(n+1)²}}` candidate relations.");
    println!();
    println!("| n | complexity (measured / >required) | completed |");
    println!("|--:|--:|--:|");
    for n in 1..=6u64 {
        let budget = if n <= 3 { u64::MAX } else { 10_000_000 };
        let s = chain_series(&queries::tc_naive(), &[n], budget);
        let m = &s[0];
        let cell = if m.completed {
            format!("{}", m.complexity)
        } else {
            format!(">{:.3e}", m.complexity as f64)
        };
        println!("| {} | {} | {} |", n, cell, m.completed);
    }
    println!();
    println!("Already at n = 4 the candidate space alone needs ~10⁹ units; the witness");
    println!("construction of E1 (2^Θ(n)) is what makes the theorem's *scale* measurable.");
    println!();
}

fn e3_while_baseline() {
    println!("## E3 — §1 remark: `while` computes TC in polynomial time and space");
    println!();
    println!("**Paper claim.** \"adding while to the algebra, instead of powerset, gives");
    println!("us the same computational power but it evidently only uses polynomial time");
    println!("(and space) for computing transitive closure.\"");
    println!();
    println!("| n | while complexity | wall | Warshall | semi-naive |");
    println!("|--:|--:|--:|--:|--:|");
    for n in [2u64, 4, 8, 16, 32] {
        let s = chain_series(&queries::tc_while(), &[n], u64::MAX);
        let g = DiGraph::chain(n);
        let t0 = Instant::now();
        let w = nra_graph::warshall(&g);
        let t_warshall = t0.elapsed();
        let t0 = Instant::now();
        let sn = nra_graph::semi_naive(&g);
        let t_semi = t0.elapsed();
        assert_eq!(w, sn);
        println!(
            "| {} | {} | {} | {} | {} |",
            n,
            s[0].complexity,
            fmt_duration(s[0].wall),
            fmt_duration(t_warshall),
            fmt_duration(t_semi)
        );
    }
    let series = chain_series(&queries::tc_while(), &[4, 8, 16, 32], u64::MAX);
    println!();
    println!(
        "log–log slope of the `while` complexity: **degree ≈ {:.2}** (the biggest",
        loglog_slope(&series)
    );
    println!("object is the closure's self-product, Θ(n⁴) for this term) — polynomial,");
    println!("versus the 2^Θ(n) of E1 for the *same* function computed with `powerset`.");
    println!("Crossover: the powerset route already loses at n ≈ 8 and is unrunnable");
    println!("past n ≈ 20; `while` handles n = 32 in about a second, and the classical");
    println!("implementations of the same fixpoint (Warshall, semi-naive) in micro- to");
    println!("milliseconds.");
    println!();
}

fn e4_approximation() {
    println!("## E4 — Proposition 4.2: the powersetₘ approximations");
    println!();
    println!("**Paper claim.** For every f, either some approximation fₘ (replacing each");
    println!("`powerset` with the NRA-definable `powersetₘ`) computes the same results on");
    println!("all chains, or f costs Ω(2^cn).");
    println!();
    println!("`tc_paths` vs its approximations (✓ = exact, ✗ = strict subset):");
    println!();
    print!("| n\\m |");
    for m in 0..=8u64 {
        print!(" {m} |");
    }
    println!();
    print!("|--:|");
    for _ in 0..=8 {
        print!("--:|");
    }
    println!();
    for n in 1..=7u64 {
        let input = Value::chain(n);
        let full = nra_eval::eval(&queries::tc_paths(), &input).unwrap();
        print!("| {n} |");
        for m in 0..=8u64 {
            let approx = nra_eval::eval(&queries::tc_paths_approx(m), &input).unwrap();
            print!(" {} |", if approx == full { "✓" } else { "✗" });
        }
        println!();
    }
    println!();
    println!("The frontier is the diagonal m = n: **no finite m is exact for every n**,");
    println!("so TC falls on the Ω(2^cn) side of the dichotomy — exactly Prop 4.2.");
    println!();
    println!("The bounded side: `siblings` (pairs of edges sharing a target, through");
    println!("powerset) stabilises at m = 2 for *every* input, and equals its");
    println!("powerset-free `NRA` version (the paper's closing conjecture, on this query):");
    println!();
    println!("| graph | edges | m=1 exact | m=2 exact | powerset-free agrees |");
    println!("|--|--:|--:|--:|--:|");
    for seed in 0..4u64 {
        let g = DiGraph::random(5, 0.25, seed);
        let input = graph_to_value(&g);
        let full = nra_eval::eval(&queries::siblings_powerset(), &input).unwrap();
        let a1 = nra_eval::eval(&queries::siblings_approx(1), &input).unwrap() == full;
        let a2 = nra_eval::eval(&queries::siblings_approx(2), &input).unwrap() == full;
        let direct = nra_eval::eval(&queries::siblings_direct(), &input).unwrap() == full;
        println!(
            "| random(5, .25, {seed}) | {} | {} | {} | {} |",
            g.edge_count(),
            a1,
            a2,
            direct
        );
    }
    println!();
    println!("(`m=1 exact` is true only when the graph happens to have no sibling pairs.)");
    println!();
}

fn e5_evaluation_lemma() {
    println!("## E5 — Lemma 5.1: NRA evaluates on abstract expressions");
    println!();
    println!("**Paper claim.** For every `f ∈ NRA` and abstract expression A there is an");
    println!("A' with `f(A) ⇓ A'`, i.e. `∀n ∀ρ: f([A]ρ) ⇓ [A']ρ`.");
    println!();
    let mut gen = VarGen::new();
    let chain = chain_aexpr(&mut gen);
    let corpus: Vec<(&str, nra_core::Expr)> = vec![
        ("map(π₁)", builder::map(builder::fst())),
        ("map(swap)", builder::map(builder::swap())),
        (
            "μ ∘ map(η)",
            builder::compose(builder::flatten(), builder::map(builder::sng())),
        ),
        ("nodes", derived::rel_nodes()),
        (
            "σ₌ (select)",
            derived::select(builder::eq_nat(), Type::prod(Type::Nat, Type::Nat)),
        ),
        ("empty", builder::is_empty()),
        ("r ∪ r∘r (tc_step)", queries::tc_step()),
    ];
    println!("| f | A' blocks | symbolic time | checked n | all agree |");
    println!("|--|--:|--:|--|--:|");
    for (name, f) in &corpus {
        let mut ctx = SymCtx::for_expr(&chain);
        let t0 = Instant::now();
        let out = apply(f, &chain, &mut ctx).expect("Lemma 5.1");
        let t_sym = t0.elapsed();
        let blocks = match &out {
            AExpr::Set(blocks) => blocks.len().to_string(),
            _ => "–".into(),
        };
        let mut all = true;
        for n in 1..=8u64 {
            let concrete = nra_eval::eval(f, &Value::chain(n)).unwrap();
            let symbolic = out.eval(n, &Env::new()).unwrap();
            all &= concrete == symbolic;
        }
        println!(
            "| {} | {} | {} | 1..8 | {} |",
            name,
            blocks,
            fmt_duration(t_sym),
            all
        );
    }
    println!();
    println!("One symbolic evaluation covers *every* n: the symbolic time is");
    println!("n-independent, while concrete evaluation grows with n:");
    println!();
    println!("| n | concrete tc_step(rₙ) | symbolic (once, all n) |");
    println!("|--:|--:|--:|");
    let mut ctx = SymCtx::for_expr(&chain);
    let t0 = Instant::now();
    let _ = apply(&queries::tc_step(), &chain, &mut ctx).unwrap();
    let t_sym = t0.elapsed();
    for n in [8u64, 32, 128, 512] {
        let input = Value::chain(n);
        let t0 = Instant::now();
        let _ = nra_eval::eval(&queries::tc_step(), &input).unwrap();
        let t_con = t0.elapsed();
        println!(
            "| {} | {} | {} |",
            n,
            fmt_duration(t_con),
            fmt_duration(t_sym)
        );
    }
    println!();
}

fn e6_affine_spaces() {
    println!("## E6 — Prop 5.2 and Corollary 5.3: affine spaces and the tc(rₙ) gap");
    println!();
    println!("**Paper claim.** A p-dimensional affine space has `nᵖ − O(nᵖ⁻¹)` points;");
    println!("closed `{{N×N}}` abstract expressions denote unions of affine spaces, which");
    println!("can never be `tc(rₙ)` (dimension ≥ 2 ⇒ too many points, all ≤ 1 ⇒ too few).");
    println!();
    println!("Measured point counts vs `nᵖ`:");
    println!();
    println!("| space | p | n=8 | n=16 | n=32 | count/nᵖ at 32 |");
    println!("|--|--:|--:|--:|--:|--:|");
    let spaces: Vec<(&str, AffineSpace)> = vec![
        (
            "{(3, n−1)}",
            AffineSpace {
                dimension: 0,
                coords: vec![
                    nra_symbolic::affine::Coord::Const(3),
                    nra_symbolic::affine::Coord::NMinus(1),
                ],
                exclusions: vec![],
            },
        ),
        (
            "{(α, α+1) ∣ α ≠ n}",
            AffineSpace {
                dimension: 1,
                coords: vec![
                    nra_symbolic::affine::Coord::Param(0, 0),
                    nra_symbolic::affine::Coord::Param(0, 1),
                ],
                exclusions: vec![(
                    nra_symbolic::affine::Coord::Param(0, 0),
                    nra_symbolic::affine::Coord::NMinus(0),
                )],
            },
        ),
        (
            "{(α, β) ∣ α ≠ β}",
            AffineSpace {
                dimension: 2,
                coords: vec![
                    nra_symbolic::affine::Coord::Param(0, 0),
                    nra_symbolic::affine::Coord::Param(1, 0),
                ],
                exclusions: vec![(
                    nra_symbolic::affine::Coord::Param(0, 0),
                    nra_symbolic::affine::Coord::Param(1, 0),
                )],
            },
        ),
    ];
    for (name, s) in &spaces {
        let counts: Vec<usize> = [8u64, 16, 32]
            .iter()
            .map(|&n| s.count(n, &Env::new()))
            .collect();
        let norm = counts[2] as f64 / (32f64.powi(s.dimension as i32));
        println!(
            "| {} | {} | {} | {} | {} | {:.2} |",
            name, s.dimension, counts[0], counts[1], counts[2], norm
        );
    }
    println!();
    println!("Corollary 5.3 on the chain expression `{{(x, x+1) when x ≠ n | x}}`:");
    println!();
    let mut gen = VarGen::new();
    let chain = chain_aexpr(&mut gen);
    let analysis = chain_tc_impossibility(&chain).unwrap();
    for line in analysis.to_string().lines() {
        println!("> {}", line);
    }
    println!();
    println!("| n | affine upper bound | n(n+1)/2 = card tc(rₙ) |");
    println!("|--:|--:|--:|");
    for n in [8u64, 16, 32, 64] {
        println!(
            "| {} | {} | {} |",
            n,
            analysis.cardinality_upper_bound(n),
            n * (n + 1) / 2
        );
    }
    println!();
    println!("The O(n) bound falls behind `|tc(rₙ)|` from n = 5 on — no abstract");
    println!("expression (hence no sub-exponential evaluation, by Lemma 5.8) denotes the");
    println!("closure.");
    println!();
}

fn e7_dichotomy() {
    println!("## E7 — Lemma 5.8: the powerset dichotomy, with certificates");
    println!();
    println!("**Paper claim.** Applying `powerset` to an abstract set either (1) keeps an");
    println!("abstract form — the set has at most m elements, and the query is equivalent");
    println!("to its m-th approximation — or (2) the set has Ω(n) elements and the");
    println!("evaluation costs Ω(2^cn).");
    println!();
    let mut gen = VarGen::new();
    let x = gen.fresh();
    let suite: Vec<(String, AExpr)> = vec![
        ("chain rₙ".into(), chain_aexpr(&mut gen)),
        (
            "{3} ∪ {n}".into(),
            AExpr::union(
                AExpr::singleton(AExpr::num(3)),
                AExpr::singleton(AExpr::Num(SimpleExpr::n())),
            ),
        ),
        (
            "{7 | x = 0,n}".into(),
            AExpr::comprehension(vec![x], AExpr::num(7)),
        ),
        ("grid {(x,y) | x; y}".into(), grid_aexpr(&mut gen)),
        (
            "{(x, n−1) when x = 3 | x}".into(),
            AExpr::guarded_comprehension(
                vec![x],
                Condition::eq(SimpleExpr::var(x), SimpleExpr::Const(3)),
                AExpr::pair(AExpr::var(x), AExpr::Num(SimpleExpr::NMinus(1))),
            ),
        ),
    ];
    println!("| A | verdict | bound m | measured |[A]| at n=8/16/32 |");
    println!("|--|--|--:|--|");
    for (name, a) in &suite {
        let verdict = nra_symbolic::analyze_cardinality(a).unwrap();
        let (v, m) = match &verdict {
            SetCardinality::Bounded { witnesses } => ("Bounded", witnesses.len().to_string()),
            SetCardinality::LinearlyMany(_) => ("Ω(n)", "–".into()),
        };
        let counts: Vec<String> = [8u64, 16, 32]
            .iter()
            .map(|&n| {
                a.eval(n, &Env::new())
                    .and_then(|v| v.cardinality())
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "–".into())
            })
            .collect();
        println!("| {} | {} | {} | {} |", name, v, m, counts.join("/"));
    }
    println!();
    println!("Cross-check: Bounded verdicts have n-independent cardinalities; Ω(n)");
    println!("verdicts grow linearly (chain: 8/16/32) or faster (grid: dimension 2).");
    println!();
    println!("Mechanised Theorem 4.1, step by step: `powerset` applied to the chain's");
    println!("abstract expression yields the case-2 certificate");
    println!();
    let mut ctx = SymCtx::with_dichotomy(&suite[0].1, 16);
    match apply(&builder::powerset(), &suite[0].1, &mut ctx) {
        Err(SymbolicError::ExponentialPowerset(cert)) => println!("> {}", cert),
        other => println!("> unexpected: {other:?}"),
    }
    println!();
    println!("while the bounded `{{3}} ∪ {{n}}` yields an abstract 4-subset powerset —");
    println!("case 1 with m = 2, i.e. `powerset ≡ powerset₂` on that set.");
    println!();
    println!("**Constructive corollary** (the bounded branch of Prop 4.2): when every");
    println!("powerset application in a query is bounded, the library rewrites the query");
    println!("to plain `NRA` by substituting `powersetₘ*`:");
    println!();
    let mut gen2 = VarGen::new();
    let chain2 = chain_aexpr(&mut gen2);
    let bounded_query =
        builder::pipeline([queries::sources(), builder::powerset(), builder::flatten()]);
    match nra_symbolic::approximation_order(&bounded_query, &chain2, 8) {
        Ok(order) => {
            let rewritten = nra_symbolic::eliminate_powerset(&bounded_query, &chain2, 8).unwrap();
            println!(
                "- `μ ∘ powerset ∘ sources`: order m* = {} — rewritten to level `{}`",
                order,
                rewritten.level()
            );
        }
        Err(e) => println!("- unexpected: {e}"),
    }
    match nra_symbolic::approximation_order(&queries::tc_paths(), &chain2, 8) {
        Err(SymbolicError::ExponentialPowerset(_)) => {
            println!("- `tc_paths`: refused with the Ω(n) certificate — no m* exists (Thm 4.1)")
        }
        other => println!("- unexpected: {other:?}"),
    }
    println!();
}

fn e8_circuits() {
    println!("## E8 — Proposition 4.3: the tractable fragment fits in TC⁰");
    println!();
    println!("**Paper claim.** All polynomially-bounded `NRA(powerset)` functions are in");
    println!("TC⁰ (constant-depth, poly-size circuits with threshold gates); `NRA ⊆ AC⁰`.");
    println!();
    println!("The flat one-round TC step `r ∪ π₀,₃(σ₁₌₂(r×r))`, compiled over growing");
    println!("domains `[d]`, agrees with the NRA evaluator and keeps constant depth:");
    println!();
    println!("| d | input wires | gates | depth | = NRA output |");
    println!("|--:|--:|--:|--:|--:|");
    let q = relalg::tc_step_query();
    for d in [2u64, 3, 4, 6, 8, 12, 16] {
        let compiled = compile(&q, &[2], d);
        let edges: std::collections::BTreeSet<(u64, u64)> =
            (0..d - 1).map(|i| (i, i + 1)).collect();
        let (nra_out, circ_out) =
            nra_circuits::bridge::run_both(&nra_circuits::bridge::tc_step_bridge(), &edges, d);
        println!(
            "| {} | {} | {} | {} | {} |",
            d,
            compiled.circuit.num_inputs,
            compiled.circuit.size(),
            compiled.circuit.depth(),
            nra_out == circ_out
        );
    }
    println!();
    println!("Size grows ≈ d⁴ (the σ∘× join dominates) — polynomial; depth never moves.");
    println!("Threshold gates appear exactly where counting does:");
    println!();
    println!("| boolean query | depth | gates | uses threshold |");
    println!("|--|--:|--:|--:|");
    let d = 4;
    for (name, bq) in [
        (
            "empty(σ₀₌₁ r)",
            BoolQuery::IsEmpty(FlatQuery::SelectEq(Box::new(FlatQuery::Input(0, 2)), 0, 1)),
        ),
        (
            "r ⊆ r∘r",
            BoolQuery::Subset(FlatQuery::Input(0, 2), relalg::join_query()),
        ),
        (
            "card(r) ≥ 5",
            BoolQuery::CardAtLeast(FlatQuery::Input(0, 2), 5),
        ),
    ] {
        let compiled = compile_bool(&bq, &[2], d);
        println!(
            "| {} | {} | {} | {} |",
            name,
            compiled.circuit.depth(),
            compiled.circuit.size(),
            compiled.circuit.uses_threshold()
        );
    }
    println!();
}

fn e9_ramsey() {
    println!("## E9 — Lemma 5.7: the Ramsey bound, constructively");
    println!();
    println!("**Paper claim** ([Bollobás 79]): a complete graph on `C(2m−2, m−1)` vertices");
    println!("2-coloured in any way contains a monochromatic `K_m`.");
    println!();
    println!("| m | bound C(2m−2, m−1) | random colourings tried | clique always found |");
    println!("|--:|--:|--:|--:|");
    for m in 2..=5usize {
        let bound = ramsey::ramsey_bound(m as u64) as usize;
        let trials = 100;
        let mut found = 0;
        for seed in 0..trials as u64 {
            let color = move |u: usize, v: usize| {
                let (a, b) = if u < v { (u, v) } else { (v, u) };
                let mut h = seed
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add((a * 2654435761 + b) as u64);
                h ^= h >> 33;
                h = h.wrapping_mul(0xFF51AFD7ED558CCD);
                h ^= h >> 33;
                h % 2 == 0
            };
            if let Some((clique, is_red)) = ramsey::monochromatic_clique(bound, m, &color) {
                // verify
                let ok = clique[..m]
                    .iter()
                    .enumerate()
                    .all(|(i, &u)| clique[i + 1..m].iter().all(|&v| color(u, v) == is_red));
                if ok {
                    found += 1;
                }
            }
        }
        println!("| {} | {} | {} | {} |", m, bound, trials, found == trials);
    }
    println!();
    println!("This is the pigeonhole engine behind Lemma 5.6: a long enough sequence");
    println!("included in a disjunction `D = D₁ ∨ … ∨ Dₖ` forces a long sequence included");
    println!("in a single `Dᵢ`, which then yields the Ω(n) affine space of case 2.");
    println!();
}

fn e10_measure_robustness() {
    println!("## E10 — §3: the complexity measure is robust");
    println!();
    println!("**Paper claim.** \"the total number of nodes of the evaluation tree is");
    println!("polynomially bounded by this complexity, while the sum of the sizes of all");
    println!("complex objects in a tree is polynomially related to it.\"");
    println!();
    println!("| query | n | complexity | nodes | total size | nodes/c² | total/c² |");
    println!("|--|--:|--:|--:|--:|--:|--:|");
    let cfg = EvalConfig::default();
    for (name, q, ns) in [
        ("tc_step", queries::tc_step(), vec![4u64, 8, 16]),
        ("tc_paths", queries::tc_paths(), vec![4, 6, 8]),
        (
            "siblings_powerset",
            queries::siblings_powerset(),
            vec![4, 6, 8],
        ),
        ("nodes", derived::rel_nodes(), vec![8, 32, 128]),
    ] {
        for &n in &ns {
            let ev = evaluate(&q, &Value::chain(n), &cfg);
            assert!(ev.result.is_ok());
            let c = ev.stats.max_object_size as f64;
            println!(
                "| {} | {} | {} | {} | {} | {:.3} | {:.3} |",
                name,
                n,
                ev.stats.max_object_size,
                ev.stats.nodes,
                ev.stats.total_size,
                ev.stats.nodes as f64 / (c * c),
                ev.stats.total_size as f64 / (c * c),
            );
        }
    }
    println!();
    println!("Both ratios stay bounded (and shrink) as n grows: nodes = O(c²) and");
    println!("total = O(c²) across the corpus, so any of the three measures yields the");
    println!("same exponential-vs-polynomial classification.");
    println!();
}

fn e11_lazy() {
    println!("## E11 — §3 caveat: a lazy strategy changes space, not work");
    println!();
    println!("**Paper remark.** \"it is not obvious whether it [the lower bound] still");
    println!("holds for a lazy evaluation strategy.\" Streaming the subsets of `powerset`");
    println!("instead of materialising them:");
    println!();
    println!("| n | eager complexity | lazy peak resident | subsets streamed | outputs agree |");
    println!("|--:|--:|--:|--:|--:|");
    let q = queries::tc_paths();
    let cfg = EvalConfig::default();
    for n in [4u64, 6, 8, 10, 12] {
        let input = Value::chain(n);
        let eager = evaluate(&q, &input, &cfg);
        let lazy = evaluate_lazy(&q, &input, &cfg);
        println!(
            "| {} | {} | {} | {} | {} |",
            n,
            eager.stats.max_object_size,
            lazy.stats.peak_resident,
            lazy.stats.streamed_subsets,
            eager.result.unwrap() == lazy.result.unwrap()
        );
    }
    println!();
    println!("The eager measure doubles per step (Theorem 4.1); the streamed strategy's");
    println!("resident set stays polynomial — but it performs 2ⁿ subset evaluations, so");
    println!("the exponential cost moves from space to time. This is why the theorem is");
    println!("stated for the eager strategy, and why the paper's open question about lazy");
    println!("strategies is about *space* only.");
    println!();
    // keep the unused-import checker honest about EvalError usage above
    let _ = EvalError::WhileDiverged { iterations: 0 };
}

fn e12_apply_cache() {
    println!("## E12 — the apply cache: hit rates and arena occupancy");
    println!();
    println!("The memoised evaluator (`EvalConfig::memoised`) keys a table");
    println!("`(EId, VId) → VId` on the hash-consed expression and value arenas: a hit");
    println!("returns the cached result handle in O(1) instead of re-running the §3");
    println!("derivation. Results are bit-for-bit identical to the unmemoised path (the");
    println!("differential harnesses enforce this); hits are reported *separately* from");
    println!("the §3 counters, which the default (memo-off) mode keeps exact.");
    println!();
    println!("| workload | n | memo hits | misses | hit rate | derivation nodes saved |");
    println!("|--|--:|--:|--:|--:|--:|");
    let cfg = EvalConfig::default();
    let memo_cfg = EvalConfig::memoised();
    let tc_while = queries::tc_while();
    let workloads: Vec<(&str, u64, Value)> = vec![
        ("chain/tc_while", 8, Value::chain(8)),
        ("chain/tc_while", 12, Value::chain(12)),
        ("grid/tc_while", 12, graph_to_value(&DiGraph::grid(3, 4))),
        ("clique/tc_while", 5, graph_to_value(&DiGraph::clique(5))),
        (
            "sparse/tc_while",
            10,
            graph_to_value(&DiGraph::random(10, 0.15, 7)),
        ),
    ];
    for (label, n, input) in &workloads {
        let plain = evaluate(&tc_while, input, &cfg);
        let memo = evaluate(&tc_while, input, &memo_cfg);
        assert_eq!(
            plain.result.unwrap(),
            memo.result.unwrap(),
            "memoised path disagrees on {label} n={n}"
        );
        println!(
            "| {} | {} | {} | {} | {:.1}% | {} |",
            label,
            n,
            memo.stats.memo_hits,
            memo.stats.memo_misses,
            100.0 * memo.stats.memo_hit_rate(),
            plain.stats.nodes - memo.stats.nodes,
        );
    }
    println!();
    println!("Arena occupancy after the sweep (thread-local, monotone within a run):");
    println!();
    let vstats = nra_core::value::intern::arena_stats();
    println!("| arena | nodes | approx resident |");
    println!("|--|--:|--:|");
    println!(
        "| values (`ValueArena`) | {} | {:.1} MiB |",
        vstats.nodes,
        vstats.approx_bytes as f64 / (1024.0 * 1024.0)
    );
    println!(
        "| expressions (`ExprArena`) | {} | — |",
        nra_core::expr::intern::node_count()
    );
    println!();
    println!("High hit rates on the while route are the point: each iterate re-applies");
    println!("the body to a set sharing most elements with the previous one, so the");
    println!("per-element sub-derivations are found in the cache and skipped.");
    println!();
}
