//! The serving benchmark behind `BENCH_serve.json`: sustained
//! queries-per-second through the full `nra-serve` front — wire
//! framing, admission, cache-aware scheduling, budget accounting —
//! under a mixed workload drawn from all seven differential graph
//! families — plus a serving-scale 512-node road-grid burst through
//! the one-shot polynomial joins — submitted by multiple tenants over
//! one shared server.
//!
//! Each family row measures one drained burst: every tenant submits
//! the family's polynomial zoo (`tc_while`, `tc_step`,
//! `siblings_powerset`) on `samples` seeded graphs, plus a
//! powerset-route `tc_paths` submission long enough that admission
//! would reject it as submitted — the optimiser rewrites it to the
//! while route at the door and it is counted in the row's `rescued`
//! column — plus a bare `powerset` submission with nothing to rewrite,
//! rejected with its Theorem 4.1 citation. So the measured loop always
//! exercises the rescue and rejection paths too, at serving speed.
//! Elapsed time runs from the first frame sent to the last response
//! received; `qps` counts *answered* frames (completions and
//! structured rejections both count — a rejection is a served answer;
//! an error never counts and fails the CI gate).

use nra_core::{queries, Value};
use nra_serve::{encode_request, spawn, Outcome, Request, ServeConfig};
use nra_testkit::{graphs, Rng};
use std::io::Write;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Tenants submitting concurrently-accounted workloads.
pub const SERVE_TENANTS: usize = 4;

/// One family's measured burst.
#[derive(Debug, Clone)]
pub struct ServeWorkload {
    /// Graph family (e.g. `"chain"`).
    pub family: &'static str,
    /// Frames submitted.
    pub jobs: u64,
    /// Frames that cleared admission.
    pub admitted: u64,
    /// Frames rejected with a certified-exponential citation.
    pub rejected_exponential: u64,
    /// Admitted frames whose *submitted* form admission would have
    /// rejected — rescued into the admissible class by the optimiser's
    /// rewrite (powerset-route → while-route transitive closure).
    pub rescued: u64,
    /// Admitted frames answered `ok`.
    pub ok: u64,
    /// Admitted frames answered `failed` (must be zero).
    pub failed: u64,
    /// First frame sent → last response received.
    pub elapsed: Duration,
}

impl ServeWorkload {
    /// Answered frames per second over the burst.
    pub fn qps(&self) -> f64 {
        self.jobs as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// The whole run: per-family rows plus the server's own closing books.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// One row per graph family.
    pub workloads: Vec<ServeWorkload>,
    /// Graphs per family per tenant.
    pub samples: usize,
    /// Tenants that ended the run with cross-query warm hits — the
    /// shared-store payoff the CI gate requires to span ≥ 2 tenants.
    pub warm_tenants: usize,
    /// Total cross-tenant warm hits.
    pub warm_hits: u64,
    /// Evaluation errors across the run (gated to zero).
    pub errors: u64,
}

impl ServeBenchReport {
    /// Total frames answered.
    pub fn jobs(&self) -> u64 {
        self.workloads.iter().map(|w| w.jobs).sum()
    }
    /// Total admitted.
    pub fn admitted(&self) -> u64 {
        self.workloads.iter().map(|w| w.admitted).sum()
    }
    /// Total certified-exponential rejections.
    pub fn rejected_exponential(&self) -> u64 {
        self.workloads.iter().map(|w| w.rejected_exponential).sum()
    }
    /// Total rescued admissions.
    pub fn rescued(&self) -> u64 {
        self.workloads.iter().map(|w| w.rescued).sum()
    }
    /// Total elapsed across bursts.
    pub fn elapsed(&self) -> Duration {
        self.workloads.iter().map(|w| w.elapsed).sum()
    }
    /// Sustained qps over the whole run.
    pub fn sustained_qps(&self) -> f64 {
        self.jobs() as f64 / self.elapsed().as_secs_f64().max(1e-9)
    }
}

/// Run the mixed 7-family serving workload: `samples` seeded graphs per
/// family per tenant through one shared server, measured burst by
/// burst.
pub fn run_serve_workload(samples: usize) -> ServeBenchReport {
    type FamilyBuilder = fn(&mut Rng) -> graphs::FamilyGraph;
    let (mut client, handle) = spawn(ServeConfig::default());
    let families: [(&'static str, FamilyBuilder); 7] = [
        ("chain", graphs::random_chain),
        ("cycle", graphs::random_cycle),
        ("dag", graphs::random_dag),
        ("disconnected", graphs::random_disconnected),
        ("grid", graphs::random_grid),
        ("clique", graphs::random_clique),
        ("sparse", graphs::random_sparse),
    ];
    let zoo = [
        queries::tc_while(),
        queries::tc_step(),
        queries::siblings_powerset(),
    ];

    let mut id = 0u64;
    let mut workloads = Vec::new();
    for (f, (family, builder)) in families.iter().enumerate() {
        // build the burst up front so the clock measures serving, not
        // generation
        let mut lines = Vec::new();
        let mut rescuable = std::collections::BTreeSet::new();
        for tenant in 0..SERVE_TENANTS {
            let mut rng = Rng::new(0xBE7C_0000 ^ ((f as u64) << 32) ^ tenant as u64);
            for _ in 0..samples {
                let g = builder(&mut rng);
                let input = Value::relation(g.edges.iter().copied());
                for q in &zoo {
                    id += 1;
                    lines.push(
                        encode_request(&Request {
                            tenant: format!("tenant-{tenant}"),
                            id,
                            query: q.clone(),
                            input: input.clone(),
                        })
                        .expect("encodable"),
                    );
                }
            }
            // one rescuable powerset-route submission per tenant per
            // family — rejected as submitted, rewritten to the while
            // route at the door — the rescue path is part of the
            // sustained load
            id += 1;
            rescuable.insert(id);
            lines.push(
                encode_request(&Request {
                    tenant: format!("tenant-{tenant}"),
                    id,
                    query: queries::tc_paths(),
                    input: Value::chain(20 + f as u64),
                })
                .expect("encodable"),
            );
            // …and one certified-exponential submission with nothing to
            // rewrite: the rejection path too
            id += 1;
            lines.push(
                encode_request(&Request {
                    tenant: format!("tenant-{tenant}"),
                    id,
                    query: nra_core::builder::powerset(),
                    input: Value::chain(20 + f as u64),
                })
                .expect("encodable"),
            );
        }

        let start = Instant::now();
        for line in &lines {
            client.tx.send_line(line).expect("server inbox open");
        }
        let mut row = ServeWorkload {
            family,
            jobs: lines.len() as u64,
            admitted: 0,
            rejected_exponential: 0,
            rescued: 0,
            ok: 0,
            failed: 0,
            elapsed: Duration::ZERO,
        };
        for _ in 0..lines.len() {
            let resp = client.recv().expect("server alive").expect("decodable");
            match resp.outcome {
                Outcome::Ok { .. } => {
                    row.admitted += 1;
                    row.ok += 1;
                    if rescuable.contains(&resp.id) {
                        row.rescued += 1;
                    }
                }
                Outcome::Rejected { reason } => {
                    assert!(
                        reason.contains("Theorem 4.1"),
                        "[{family}] unexpected rejection: {reason}"
                    );
                    row.rejected_exponential += 1;
                }
                Outcome::Failed { detail } => {
                    row.failed += 1;
                    eprintln!("[{family}] FAILED: {detail}");
                }
            }
        }
        row.elapsed = start.elapsed();
        workloads.push(row);
    }

    // the serving-scale row: all tenants query one 512-node road-grid
    // relation through the one-shot polynomial joins (the while route's
    // self-product is quartic in the closure and correctly priced out at
    // this scale; these joins are exactly what the domain-word admission
    // pricing exists to let through), sharing the store so later tenants
    // are served warm — plus a bare `powerset` per tenant, rejected with
    // its certificate without ever touching the 512-node relation
    {
        let mut rng = Rng::new(0xBE7C_0000 ^ (7u64 << 32));
        let g = graphs::road_grid(&mut rng, 512);
        let input = Value::relation(g.edges.iter().copied());
        let large_zoo = [
            queries::tc_step(),
            queries::compose_rel(),
            queries::siblings_direct(),
        ];
        let mut lines = Vec::new();
        for tenant in 0..SERVE_TENANTS {
            for q in &large_zoo {
                id += 1;
                lines.push(
                    encode_request(&Request {
                        tenant: format!("tenant-{tenant}"),
                        id,
                        query: q.clone(),
                        input: input.clone(),
                    })
                    .expect("encodable"),
                );
            }
            id += 1;
            lines.push(
                encode_request(&Request {
                    tenant: format!("tenant-{tenant}"),
                    id,
                    query: nra_core::builder::powerset(),
                    input: input.clone(),
                })
                .expect("encodable"),
            );
        }
        let start = Instant::now();
        for line in &lines {
            client.tx.send_line(line).expect("server inbox open");
        }
        let mut row = ServeWorkload {
            family: "road_grid",
            jobs: lines.len() as u64,
            admitted: 0,
            rejected_exponential: 0,
            rescued: 0,
            ok: 0,
            failed: 0,
            elapsed: Duration::ZERO,
        };
        for _ in 0..lines.len() {
            let resp = client.recv().expect("server alive").expect("decodable");
            match resp.outcome {
                Outcome::Ok { .. } => {
                    row.admitted += 1;
                    row.ok += 1;
                }
                Outcome::Rejected { reason } => {
                    assert!(
                        reason.contains("Theorem 4.1"),
                        "[road_grid] unexpected rejection: {reason}"
                    );
                    row.rejected_exponential += 1;
                }
                Outcome::Failed { detail } => {
                    row.failed += 1;
                    eprintln!("[road_grid] FAILED: {detail}");
                }
            }
        }
        row.elapsed = start.elapsed();
        workloads.push(row);
    }

    client.shutdown().expect("shutdown frame");
    let report = handle.join().expect("server thread");
    ServeBenchReport {
        workloads,
        samples,
        warm_tenants: report.tenants.values().filter(|t| t.warm_hits > 0).count(),
        warm_hits: report.tenants.values().map(|t| t.warm_hits).sum(),
        errors: report.errors,
    }
}

/// Write `BENCH_serve.json` at the repository root. Returns the path.
pub fn write_bench_serve_json(report: &ServeBenchReport) -> std::io::Result<PathBuf> {
    write_bench_serve_json_to(crate::repo_root().join("BENCH_serve.json"), report)
}

/// [`write_bench_serve_json`] with an explicit destination, so tests can
/// exercise the format without clobbering the measured artifact.
pub fn write_bench_serve_json_to(
    path: PathBuf,
    report: &ServeBenchReport,
) -> std::io::Result<PathBuf> {
    let mut out = String::from("{\n  \"bench\": \"serve\",\n");
    out.push_str(&format!("  \"samples\": {},\n", report.samples));
    out.push_str(&format!("  \"tenants\": {SERVE_TENANTS},\n"));
    out.push_str("  \"unit\": \"ns\",\n  \"workloads\": [\n");
    for (i, w) in report.workloads.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"jobs\": {}, \"admitted\": {}, \"rejected_exponential\": {}, \"rescued\": {}, \"ok\": {}, \"failed\": {}, \"elapsed_ns\": {}, \"qps\": {:.1}}}{}\n",
            w.family,
            w.jobs,
            w.admitted,
            w.rejected_exponential,
            w.rescued,
            w.ok,
            w.failed,
            w.elapsed.as_nanos(),
            w.qps(),
            if i + 1 == report.workloads.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"total_jobs\": {},\n", report.jobs()));
    out.push_str(&format!("  \"admitted\": {},\n", report.admitted()));
    out.push_str(&format!(
        "  \"rejected_exponential\": {},\n",
        report.rejected_exponential()
    ));
    out.push_str(&format!("  \"rescued\": {},\n", report.rescued()));
    out.push_str(&format!("  \"errors\": {},\n", report.errors));
    out.push_str(&format!("  \"warm_hits\": {},\n", report.warm_hits));
    out.push_str(&format!("  \"warm_tenants\": {},\n", report.warm_tenants));
    out.push_str(&format!(
        "  \"total_elapsed_ns\": {},\n",
        report.elapsed().as_nanos()
    ));
    out.push_str(&format!(
        "  \"sustained_qps\": {:.1}\n}}\n",
        report.sustained_qps()
    ));
    let mut file = std::fs::File::create(&path)?;
    file.write_all(out.as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_workload_runs_and_its_json_is_well_formed() {
        let report = run_serve_workload(1);
        assert_eq!(
            report.workloads.len(),
            8,
            "one row per family plus the serving-scale road-grid burst"
        );
        assert_eq!(report.errors, 0);
        assert!(report.admitted() > 0);
        assert!(
            report.rejected_exponential() >= 8 * SERVE_TENANTS as u64,
            "every family burst carries its rejections"
        );
        for w in &report.workloads {
            if w.family == "road_grid" {
                // the serving-scale burst submits no rescuable idiom —
                // the rescued while-route TC is priced out at 512 nodes
                assert_eq!(w.failed, 0, "road_grid burst must not fail: {w:?}");
                assert_eq!(
                    w.admitted,
                    3 * SERVE_TENANTS as u64,
                    "every tenant's polynomial joins clear admission: {w:?}"
                );
                continue;
            }
            assert!(
                w.rescued >= 1,
                "[{}] the powerset-route idiom must be rescued at least once: {w:?}",
                w.family
            );
        }
        assert_eq!(
            report.rescued(),
            7 * SERVE_TENANTS as u64,
            "every tenant's tc_paths submission is rescued in every family"
        );
        assert!(
            report.warm_tenants >= 2,
            "shared-store warm hits must span tenants: {report:?}"
        );
        assert!(report.sustained_qps() > 0.0);

        let dest =
            std::env::temp_dir().join(format!("BENCH_serve_test_{}.json", std::process::id()));
        let path = write_bench_serve_json_to(dest.clone(), &report).expect("write json");
        let text = std::fs::read_to_string(&path).expect("read back");
        std::fs::remove_file(&dest).ok();
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert!(text.contains("\"bench\": \"serve\""));
        assert!(text.contains("\"workload\": \"chain\""));
        assert!(text.contains("\"rescued\""));
        assert!(text.contains("\"sustained_qps\""));
        assert!(text.contains("\"warm_tenants\""));
        assert!(text.contains("\"errors\": 0"));
    }
}
