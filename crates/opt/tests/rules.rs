//! Re-verification of the shipped `RULES.json` against the
//! differential oracle — the gate that makes the rule file *data* the
//! repository can still trust: a drive-by edit cannot smuggle in an
//! unverified equivalence, because CI replays every rule here.
//!
//! Every data-borne rule is instantiated with **guard-respecting**
//! substitutions (`:nra` variables get `powerset`/`while`-free terms,
//! `:empty` variables get typed empty-set constants, unguarded ones
//! additionally get a `while`-carrying term so loop preservation is
//! exercised, not just asserted), type-checked, and replayed one-sided:
//! whenever the left-hand (rewritten-away) instance evaluates
//! successfully, the right-hand instance must produce the identical
//! value — and, since no shipped rule is a rescue, the identical
//! `while_iterations` — under interpreted, memo+semi-naive and compiled
//! configurations alike.

use nra_core::{builder, output_type, queries, Expr, Type, Value};
use nra_eval::{evaluate, EvalConfig};
use nra_opt::{Guard, Pat, Rule, RuleKind, RuleSet, VarUse, EMBEDDED_RULES, MAX_VARS};
use nra_testkit::{graphs, Rng};

/// Build the concrete expression a pattern denotes under `subst`.
fn instantiate(p: &Pat, subst: &[Expr; MAX_VARS]) -> Expr {
    match p {
        Pat::Var(i, _) => subst[*i as usize].clone(),
        Pat::Ground(e) => e.clone(),
        Pat::Tuple(a, b) => builder::tuple(instantiate(a, subst), instantiate(b, subst)),
        Pat::Map(f) => builder::map(instantiate(f, subst)),
        Pat::Cond(c, t, e) => builder::cond(
            instantiate(c, subst),
            instantiate(t, subst),
            instantiate(e, subst),
        ),
        Pat::Compose(g, f) => builder::compose(instantiate(g, subst), instantiate(f, subst)),
        Pat::While(f) => builder::while_fix(instantiate(f, subst)),
    }
}

/// Candidate substitutions honouring a guard. The `Any` pool extends
/// the `nra` pool with a literal `while` loop, so unguarded variables
/// exercise the loop-preservation side of the contract.
fn pool(guard: Guard) -> Vec<Expr> {
    let nra = vec![
        builder::id(),
        builder::sng(),
        builder::map(builder::sng()),
        builder::compose(
            builder::union(),
            builder::tuple(builder::id(), builder::id()),
        ),
        builder::is_empty(),
        builder::eq_nat(),
        builder::fst(),
    ];
    match guard {
        Guard::Nra => nra,
        Guard::Any => {
            let mut any = nra;
            any.push(queries::tc_while());
            any
        }
        Guard::Empty => vec![
            builder::compose(builder::empty_set(Type::nat_rel()), builder::bang()),
            builder::compose(
                builder::empty_set(Type::set(Type::nat_rel())),
                builder::bang(),
            ),
        ],
    }
}

/// Inputs for a rule instance whose domain is `dom`.
fn inputs_for(dom: &Type) -> Vec<Value> {
    if *dom == Type::nat_rel() {
        return vec![
            Value::pair(Value::nat(0), Value::nat(1)),
            Value::pair(Value::nat(2), Value::nat(2)),
        ];
    }
    if *dom == Type::set(Type::set(Type::nat_rel())) {
        return vec![
            Value::empty_set(),
            Value::set([Value::relation([(0, 1)]), Value::chain(3)]),
            Value::set([Value::empty_set(), Value::relation([(1, 1), (0, 2)])]),
        ];
    }
    let mut inputs = vec![
        Value::relation([]),
        Value::relation([(0, 1)]),
        Value::relation([(0, 0), (0, 1), (1, 2)]),
        Value::chain(4),
    ];
    let mut rng = Rng::new(0x5EED_0001);
    for g in graphs::family_graphs(&mut rng) {
        inputs.push(Value::relation(g.edges.iter().copied()));
    }
    inputs
}

/// One-sided differential on one instance: whenever the left succeeds,
/// the right must produce the identical value and (no shipped rule is a
/// rescue) the identical `while_iterations`, under every config mix.
fn oracle_ok(rule: &str, lhs: &Expr, rhs: &Expr, dom: &Type) {
    let configs = [
        EvalConfig::with_space_budget(1 << 16),
        EvalConfig {
            max_object_size: Some(1 << 16),
            ..EvalConfig::optimised()
        },
        EvalConfig {
            max_object_size: Some(1 << 16),
            ..EvalConfig::compiled()
        },
    ];
    for input in inputs_for(dom) {
        for config in &configs {
            let l = evaluate(lhs, &input, config);
            if let Ok(expected) = l.result {
                let r = evaluate(rhs, &input, config);
                let got = r.result.unwrap_or_else(|e| {
                    panic!("{rule}: rhs failed where lhs succeeded on {input}: {e}")
                });
                assert_eq!(got, expected, "{rule}: disagreement on {input}");
                assert_eq!(
                    l.stats.while_iterations, r.stats.while_iterations,
                    "{rule}: while_iterations drifted on {input}"
                );
            }
        }
    }
}

/// All guard-respecting substitution assignments over the variables the
/// rule actually uses, capped per rule so the suite stays fast.
fn assignments(uses: &[VarUse; MAX_VARS]) -> Vec<[Expr; MAX_VARS]> {
    let vars: Vec<(usize, Guard)> = (0..MAX_VARS)
        .filter(|&i| uses[i].count > 0)
        .map(|i| (i, uses[i].guard.unwrap_or(Guard::Any)))
        .collect();
    let mut out: Vec<[Expr; MAX_VARS]> = vec![std::array::from_fn(|_| builder::id())];
    for (i, guard) in vars {
        let mut next = Vec::new();
        for base in &out {
            for candidate in pool(guard) {
                let mut subst = base.clone();
                subst[i] = candidate;
                next.push(subst);
            }
        }
        out = next;
    }
    out
}

#[test]
fn every_shipped_rule_survives_the_differential_oracle() {
    let shipped = RuleSet::from_json(EMBEDDED_RULES).expect("RULES.json validates");
    let domains = [
        Type::set(Type::nat_rel()),
        Type::nat_rel(),
        Type::set(Type::set(Type::nat_rel())),
    ];
    for rule in shipped.rules() {
        assert_ne!(rule.kind, RuleKind::Rescue, "rescues are code, not data");
        let mut uses = [VarUse::default(); MAX_VARS];
        rule.lhs.collect_vars(&mut uses);
        let mut verified = 0usize;
        for subst in assignments(&uses) {
            let lhs = instantiate(&rule.lhs, &subst);
            let rhs = instantiate(&rule.rhs, &subst);
            for dom in &domains {
                // both sides must type at the same output type for the
                // instance to be a meaningful equivalence claim
                let (Ok(lt), Ok(rt)) = (output_type(&lhs, dom), output_type(&rhs, dom)) else {
                    continue;
                };
                assert_eq!(lt, rt, "{}: instance types diverge at {dom}", rule.name);
                oracle_ok(&rule.name, &lhs, &rhs, dom);
                verified += 1;
            }
            if verified >= 6 {
                break; // enough independent instances for this rule
            }
        }
        assert!(
            verified > 0,
            "{}: no guard-respecting instantiation type-checked — the rule is dead \
             or the test pools are too poor",
            rule.name
        );
    }
}

/// The code-built rescues are verified too — against the paper's own
/// query pairs, where `while_iterations` is *expected* to change (the
/// whole point is replacing a powerset tower with a loop).
#[test]
fn rescue_rules_agree_on_results_across_families() {
    let pairs = [
        (queries::tc_paths(), queries::tc_while()),
        (queries::siblings_powerset(), queries::siblings_direct()),
    ];
    let config = EvalConfig::with_space_budget(1 << 16);
    let mut rng = Rng::new(0x5EED_0002);
    for g in graphs::family_graphs(&mut rng) {
        let input = Value::relation(g.edges.iter().copied());
        for (lhs, rhs) in &pairs {
            if let Ok(expected) = evaluate(lhs, &input, &config).result {
                assert_eq!(
                    evaluate(rhs, &input, &config).result.expect("while route"),
                    expected,
                    "{lhs} vs {rhs} on {input}"
                );
            }
        }
    }
}

/// Corruption fuzz over every shipped entry: each mutation must be
/// rejected by [`RuleSet::from_json`] — the loader, not the optimiser,
/// is the trust boundary for data-borne rules.
#[test]
fn every_corrupted_rule_entry_is_rejected_at_load() {
    let shipped = RuleSet::from_json(EMBEDDED_RULES).expect("RULES.json validates");
    let rules: Vec<Rule> = shipped.rules().to_vec();
    type Corruption = (&'static str, Box<dyn Fn(&Rule) -> Rule>);
    let corruptions: Vec<Corruption> = vec![
        (
            "unbound rhs variable",
            Box::new(|r: &Rule| Rule {
                rhs: Pat::parse("?7").unwrap(),
                ..r.clone()
            }),
        ),
        (
            "bare-variable lhs",
            Box::new(|r: &Rule| Rule {
                lhs: Pat::parse("?0").unwrap(),
                rhs: Pat::parse("id").unwrap(),
                ..r.clone()
            }),
        ),
        (
            "rhs introduces a while",
            Box::new(|r: &Rule| Rule {
                rhs: Pat::While(Box::new(r.lhs.clone())),
                ..r.clone()
            }),
        ),
        (
            "rhs introduces a powerset",
            Box::new(|r: &Rule| Rule {
                rhs: Pat::Compose(
                    Box::new(Pat::Ground(builder::powerset())),
                    Box::new(r.lhs.clone()),
                ),
                ..r.clone()
            }),
        ),
        (
            "identical sides",
            Box::new(|r: &Rule| Rule {
                rhs: r.lhs.clone(),
                ..r.clone()
            }),
        ),
    ];
    for i in 0..rules.len() {
        for (what, corrupt) in &corruptions {
            let mut mutated = rules.clone();
            mutated[i] = corrupt(&rules[i]);
            if mutated[i].rhs.literal_level().0 && mutated[i].lhs.literal_level().0 {
                // a powerset-carrying lhs legitimises a powerset rhs;
                // this mutation is not a corruption for such a rule
                continue;
            }
            let text = nra_opt::rules_to_json(&mutated);
            assert!(
                RuleSet::from_json(&text).is_err(),
                "corrupting \"{}\" with {what} must fail the load",
                rules[i].name
            );
        }
    }

    // document-level corruptions
    let good = nra_opt::rules_to_json(&rules);
    for (what, bad) in [
        (
            "wrong version",
            good.replace("\"version\": 1", "\"version\": 2"),
        ),
        ("duplicated name", {
            let mut twice = rules.clone();
            twice.push(rules[0].clone());
            nra_opt::rules_to_json(&twice)
        }),
        (
            "smuggled rescue kind",
            good.replace("\"kind\": \"seed\"", "\"kind\": \"rescue\""),
        ),
        ("truncated document", good[..good.len() / 2].to_string()),
        (
            "no rules at all",
            "{\n  \"version\": 1,\n  \"rules\": []\n}".to_string(),
        ),
    ] {
        assert!(
            RuleSet::from_json(&bad).is_err(),
            "document corruption {what} must fail the load"
        );
    }
}
