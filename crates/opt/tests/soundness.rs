//! The optimiser's soundness contract, enforced differentially: for
//! every expression, **optimised and raw evaluation agree bit-for-bit
//! on results whenever raw evaluation succeeds**, across all seven
//! [`nra_testkit::graphs`] families and every
//! `memo`/`semi_naive`/`compiled` configuration mix — and, whenever no
//! rescue fired (the rewrite introduced no `while` the raw expression
//! lacked), on `while_iterations` too. Rescues are *allowed* to change
//! the iteration count: replacing a powerset tower with a loop is the
//! entire point.

use nra_core::generate::{random_expr, GenConfig, Rng as GenRng};
use nra_core::{queries, Expr, Type, Value};
use nra_eval::{evaluate, EvalConfig};
use nra_testkit::{graphs, Rng};

/// Every `memo`/`semi_naive`/`compiled` combination, space-budgeted so
/// the powerset-route queries fail fast instead of materialising
/// exponential families on the larger graphs.
fn config_mixes() -> Vec<(&'static str, EvalConfig)> {
    let mut mixes = Vec::new();
    for (memo, semi_naive, compiled) in [
        (false, false, false),
        (true, false, false),
        (false, true, false),
        (true, true, false),
        (true, true, true),
    ] {
        let name: &'static str = match (memo, semi_naive, compiled) {
            (false, false, false) => "plain",
            (true, false, false) => "memo",
            (false, true, false) => "semi-naive",
            (true, true, false) => "memo+semi-naive",
            _ => "compiled",
        };
        mixes.push((
            name,
            EvalConfig {
                memo,
                semi_naive,
                compiled,
                max_object_size: Some(1 << 16),
                ..EvalConfig::default()
            },
        ));
    }
    mixes
}

/// The one-sided bit-for-bit check on one (expression, input) pair.
fn check(label: &str, raw: &Expr, optimised: &Expr, input: &Value) {
    // a rescue is the only rewrite allowed to change the loop count:
    // it introduces a `while` the raw expression did not have
    let rescued = !raw.level().while_loop && optimised.level().while_loop;
    for (mode, config) in config_mixes() {
        let r = evaluate(raw, input, &config);
        if let Ok(expected) = r.result {
            let o = evaluate(optimised, input, &config);
            let got = o
                .result
                .unwrap_or_else(|e| panic!("{label} [{mode}]: optimised failed on {input}: {e}"));
            assert_eq!(got, expected, "{label} [{mode}]: disagreement on {input}");
            if !rescued {
                assert_eq!(
                    r.stats.while_iterations, o.stats.while_iterations,
                    "{label} [{mode}]: while_iterations drifted on {input}"
                );
            }
        }
    }
}

/// The paper's query zoo over all seven graph families: results agree
/// under every configuration, and the two powerset-route queries are
/// both actually rewritten (the rescue is live, not vacuous).
#[test]
fn optimised_zoo_agrees_with_raw_on_all_families() {
    let zoo = [
        queries::tc_paths(),
        queries::tc_while(),
        queries::tc_step(),
        queries::siblings_powerset(),
        queries::siblings_direct(),
        queries::compose_rel(),
    ];
    let mut rescued = 0;
    for q in &zoo {
        let optimised = nra_opt::optimise_expr(q);
        if optimised != *q && !q.level().while_loop && optimised.level().while_loop {
            rescued += 1;
        }
        let mut rng = Rng::new(0x0DD5_0001);
        for (i, g) in graphs::family_graphs(&mut rng).into_iter().enumerate() {
            let input = Value::relation(g.edges.iter().copied());
            check(&format!("{q} (family {i})"), q, &optimised, &input);
        }
    }
    assert!(
        rescued >= 1,
        "at least one zoo query must be rescued from the powerset route"
    );
}

/// Random well-typed expressions — `powerset`, `powersetₘ` and `while`
/// all enabled — survive optimisation bit-for-bit across families and
/// configuration mixes. This is the fuzzing arm of the contract: the
/// zoo exercises the rules we *meant* to write, the generator exercises
/// the expressions nobody meant.
#[test]
fn random_expressions_survive_optimisation() {
    let dom = Type::set(Type::nat_rel());
    let gen_cfg = GenConfig {
        max_depth: 4,
        allow_while: true,
        ..GenConfig::default()
    };
    let mut optimised_count = 0usize;
    for seed in 0..60u64 {
        let mut rng = GenRng::new(seed);
        let e = random_expr(&dom, &gen_cfg, &mut rng);
        let o = nra_opt::optimise_expr(&e);
        if o != e {
            optimised_count += 1;
        }
        let mut grng = Rng::new(0x0DD5_0002 ^ seed);
        let graph = &graphs::family_graphs(&mut grng)[(seed % 7) as usize];
        let inputs = [
            Value::relation([]),
            Value::chain(3),
            Value::relation(graph.edges.iter().copied()),
        ];
        for input in &inputs {
            check(&format!("seed {seed}: {e}"), &e, &o, input);
        }
    }
    assert!(
        optimised_count >= 5,
        "the generator should produce rewriteable expressions \
         (got {optimised_count}/60) — pools too narrow?"
    );
}

/// The rescue respects admission semantics end to end: under a space
/// budget only the while route can satisfy, the raw powerset route
/// fails and the optimised expression completes with the right answer.
#[test]
fn rescue_differential_holds_under_the_separating_budget() {
    let input = Value::chain(12);
    let strict = EvalConfig {
        max_object_size: Some(1 << 16),
        ..EvalConfig::compiled()
    };
    let raw = evaluate(&queries::tc_paths(), &input, &strict);
    assert!(raw.result.is_err(), "powerset route must blow the budget");
    let optimised = nra_opt::optimise_expr(&queries::tc_paths());
    assert_eq!(optimised, queries::tc_while(), "the headline rescue");
    let o = evaluate(&optimised, &input, &strict);
    assert_eq!(o.result.unwrap(), Value::chain_tc(12));
}
