//! The cost gate: a rewrite is taken only when it provably does not
//! worsen the expression's *space class*.
//!
//! The model is [`nra_symbolic::classify_space`] — the paper's Lemma 5.8
//! dichotomy — folded onto a total order of ranks:
//!
//! ```text
//! Polynomial{d} < BoundedPowerset{m} < Exponential < Unanalyzed
//! ```
//!
//! with `Polynomial` ordered by degree and `BoundedPowerset` by order.
//! `Unanalyzed` ranks *worst*: an expression the analyser cannot place
//! must not be the destination of a rewrite away from one it can. The
//! gate [`Gate::allows`] accepts a rewrite iff `rank(after) ≤
//! rank(before)`; strict improvement is not required, so
//! class-preserving simplifications (identity elimination, fusion) still
//! fire, while a rescue (`Exponential → Polynomial`) is a strict drop.
//!
//! Classification walks the *resolved* expression and can be costly, so
//! the gate memoises per [`EId`] — sound within one optimiser invocation
//! because hash-consing makes `EId → Expr` injective per arena
//! generation, and the rewriter consults the gate only when a rule has
//! already matched.

use nra_core::{EId, ExprArena};
use nra_symbolic::{classify_space, SpaceClass};
use std::collections::HashMap;

/// A space class collapsed to an orderable rank (smaller is better).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Rank(u8, u64);

/// Rank a space class; see the [module docs](self) for the order.
pub fn rank(class: &SpaceClass) -> Rank {
    match class {
        SpaceClass::Polynomial { degree } => Rank(0, *degree as u64),
        SpaceClass::BoundedPowerset { order } => Rank(1, *order),
        SpaceClass::Exponential { .. } => Rank(2, 0),
        SpaceClass::Unanalyzed { .. } => Rank(3, 0),
    }
}

/// A memoising cost gate, scoped to one optimiser invocation.
#[derive(Debug, Default)]
pub struct Gate {
    ranks: HashMap<EId, Rank>,
}

impl Gate {
    /// A fresh gate with an empty memo.
    pub fn new() -> Gate {
        Gate::default()
    }

    /// The (memoised) rank of an interned expression.
    pub fn rank_of(&mut self, ea: &ExprArena, eid: EId) -> Rank {
        if let Some(r) = self.ranks.get(&eid) {
            return *r;
        }
        let r = rank(&classify_space(&ea.resolve(eid)));
        self.ranks.insert(eid, r);
        r
    }

    /// Whether rewriting `before` into `after` is admissible: the space
    /// class must not worsen.
    pub fn allows(&mut self, ea: &ExprArena, before: EId, after: EId) -> bool {
        if before == after {
            return false;
        }
        self.rank_of(ea, after) <= self.rank_of(ea, before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_core::queries;

    #[test]
    fn ranks_follow_the_dichotomy() {
        assert!(
            rank(&classify_space(&queries::tc_while()))
                < rank(&classify_space(&queries::tc_paths()))
        );
        assert!(
            rank(&classify_space(&queries::siblings_direct()))
                < rank(&classify_space(&queries::siblings_powerset()))
        );
    }

    #[test]
    fn gate_admits_rescues_and_refuses_regressions() {
        let mut ea = ExprArena::new();
        let exp = ea.intern(&queries::tc_paths());
        let poly = ea.intern(&queries::tc_while());
        let mut gate = Gate::new();
        assert!(gate.allows(&ea, exp, poly), "rescue must pass the gate");
        assert!(!gate.allows(&ea, poly, exp), "regression must be refused");
        assert!(!gate.allows(&ea, poly, poly), "no-op is not a rewrite");
    }

    #[test]
    fn equal_rank_rewrites_pass() {
        let mut ea = ExprArena::new();
        let a = ea.intern(&nra_core::builder::compose(
            nra_core::builder::id(),
            queries::tc_while(),
        ));
        let b = ea.intern(&queries::tc_while());
        let mut gate = Gate::new();
        assert!(gate.allows(&ea, a, b));
    }
}
