//! # nra-opt
//!
//! A pre-evaluation **rewrite optimiser** over the hash-consed
//! expression DAG, turning the paper's separation theorem into an
//! automatic optimisation: the *powerset route* to transitive closure
//! (certified exponential by `nra-symbolic`, Theorem 4.1) is recognised
//! structurally and rewritten to the *while route* (polynomial, Theorem
//! 5.2) — a query the serving door would reject is **rescued** into the
//! admissible class. Around that headline rule sits a conventional
//! rewrite engine:
//!
//! * [`pattern`] — patterns over the core concrete syntax with typed
//!   metavariables (`?0:nra`, `?2:empty`);
//! * [`rules`] — the rule format, `RULES.json` loader with load-time
//!   validation, and the code-built rescue rules;
//! * [`cost`] — the cost gate: a rewrite fires only when
//!   [`nra_symbolic::classify_space`] proves the space class does not
//!   worsen;
//! * [`mod@rewrite`] — the bottom-up, memoised, fixpoint engine over
//!   [`ExprArena`];
//! * [`synth`] — the ruler-style enumerate → fingerprint → verify →
//!   admit harness that produced the `synthesised` section of
//!   `RULES.json`.
//!
//! The evaluator knows nothing about rules: `nra-eval` exposes a
//! [`RewritePass`] hook on [`EvalSession`], and
//! [`install`] plugs this crate's pass into it. [`EvalConfig::rewritten`]
//! is the full stack — rewriting + apply cache + semi-naive + bytecode.
//!
//! ```
//! use nra_core::{queries, Value};
//! use nra_eval::EvalConfig;
//!
//! // the exponential-route query is rewritten to the while route…
//! let optimised = nra_opt::optimise_expr(&queries::tc_paths());
//! assert_eq!(optimised, queries::tc_while());
//!
//! // …and a session with the pass installed serves it in polynomial
//! // space, bit-for-bit equal to the raw evaluation
//! let mut session = nra_opt::optimising_session(EvalConfig::rewritten());
//! let input = Value::chain(6);
//! let ev = session.eval(&queries::tc_paths(), &input);
//! assert_eq!(ev.result.unwrap(), Value::chain_tc(6));
//! ```

#![deny(missing_docs)]

pub mod cost;
pub mod json;
pub mod pattern;
pub mod rewrite;
pub mod rules;
pub mod synth;

pub use cost::{rank, Gate, Rank};
pub use pattern::{Guard, Pat, PatternError, VarUse, MAX_VARS};
pub use rewrite::{rewrite, OptStats, MAX_PASSES, MAX_SPINS};
pub use rules::{
    rescue_rules, rules_to_json, validate_rule, Rule, RuleError, RuleKind, RuleSet, EMBEDDED_RULES,
};
pub use synth::{synthesise, SynthConfig};

use nra_core::{EId, Expr, ExprArena};
use nra_eval::{EvalConfig, EvalSession, RewritePass};
use std::sync::OnceLock;

/// The default rule set — rescues first, then the validated
/// `RULES.json` rules — built once per process.
pub fn default_rules() -> &'static RuleSet {
    static RULES: OnceLock<RuleSet> = OnceLock::new();
    RULES.get_or_init(RuleSet::builtin)
}

/// Rewrite the DAG rooted at `root` with the [`default_rules`],
/// discarding statistics. The workhorse behind [`pass`].
pub fn optimise(ea: &mut ExprArena, root: EId) -> EId {
    rewrite(ea, root, default_rules()).0
}

/// [`optimise`] with the what-happened statistics.
pub fn optimise_with_stats(ea: &mut ExprArena, root: EId) -> (EId, OptStats) {
    rewrite(ea, root, default_rules())
}

/// Optimise a tree-form expression in a private arena — the convenience
/// entry point for benches and one-shot callers.
pub fn optimise_expr(e: &Expr) -> Expr {
    let mut ea = ExprArena::new();
    let root = ea.intern(e);
    let out = optimise(&mut ea, root);
    ea.resolve(out)
}

/// This crate's rewrite pass as an injectable [`RewritePass`] for
/// [`EvalSession::set_rewriter`].
pub fn pass() -> RewritePass {
    std::sync::Arc::new(|ea: &mut ExprArena, root: EId| optimise(ea, root))
}

/// Install the default pass on a session (the session still only runs
/// it when its config has [`EvalConfig::optimise`] set).
pub fn install(session: &mut EvalSession) {
    session.set_rewriter(Some(pass()));
}

/// A fresh [`EvalSession`] with the pass already installed.
pub fn optimising_session(config: EvalConfig) -> EvalSession {
    let mut session = EvalSession::new(config);
    install(&mut session);
    session
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_core::{queries, Value};

    #[test]
    fn session_pass_is_transparent_for_results() {
        let input = Value::chain(6);
        let mut plain = EvalSession::new(EvalConfig::compiled());
        let mut optimising = optimising_session(EvalConfig::rewritten());
        for q in [queries::tc_while(), queries::tc_paths(), queries::tc_step()] {
            let raw = plain
                .eval(&q, &input)
                .result
                .expect("raw evaluation succeeds");
            let opt = optimising
                .eval(&q, &input)
                .result
                .expect("optimised evaluation succeeds");
            assert_eq!(raw, opt, "{q}");
        }
    }

    #[test]
    fn rescued_query_escapes_the_space_budget() {
        // chain(12): the powerset route materialises the 2^12-subset
        // family (§3 size ≈ 78k units), the while route peaks at ≈ 32k
        // (the cartesian product inside tc_step) — a budget between the
        // two is satisfiable only through the rewrite
        let input = Value::chain(12);
        let budget = 1 << 16;
        let strict = EvalConfig {
            max_object_size: Some(budget),
            ..EvalConfig::compiled()
        };
        let raw = EvalSession::new(strict.clone())
            .eval(&queries::tc_paths(), &input)
            .result;
        assert!(raw.is_err(), "powerset route must blow the budget");
        let rescued = optimising_session(EvalConfig {
            optimise: true,
            ..strict
        })
        .eval(&queries::tc_paths(), &input)
        .result;
        assert_eq!(rescued.unwrap(), Value::chain_tc(12));
    }

    #[test]
    fn optimise_flag_without_installed_pass_is_identity() {
        let mut session = EvalSession::new(EvalConfig::rewritten());
        let eid = session.intern_expr(&queries::tc_paths());
        assert_eq!(session.optimise_eid(eid), eid);
    }

    #[test]
    fn pass_memoises_per_root() {
        let mut session = optimising_session(EvalConfig::rewritten());
        let eid = session.intern_expr(&queries::tc_paths());
        let first = session.optimise_eid(eid);
        let second = session.optimise_eid(eid);
        assert_eq!(first, second);
        assert_ne!(first, eid, "the rescue must have fired");
    }
}
