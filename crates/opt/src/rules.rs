//! Rewrite rules: the `RULES.json` format, its loader/validator, and the
//! code-built *rescue* rules.
//!
//! A rule is `lhs → rhs` over [`Pat`] patterns. The shipped rule set
//! lives in `RULES.json` at the repository root (embedded at compile
//! time, so the optimiser needs no filesystem access) and is validated
//! on load — malformed JSON, unparseable patterns, unbound right-hand
//! variables, or a rule that is not loop-preserving by construction all
//! make [`RuleSet::from_json`] fail rather than silently applying a
//! corrupted rule. The *rescue* rules (whole-query powerset-route →
//! while-route rewrites, the paper's separation theorem run backwards)
//! are built in code from [`nra_core::queries`], because their concrete
//! syntax is large and their right-hand sides intentionally introduce a
//! `while` loop, which the JSON validator forbids for data-borne rules.
//!
//! ## Loop preservation
//!
//! The optimiser's soundness contract (see `tests/soundness.rs`) is that
//! optimised and raw evaluation agree bit-for-bit on results whenever
//! raw evaluation succeeds, and — for every rule *except* the rescues —
//! on `while_iterations` too. A JSON rule is loop-preserving by
//! construction when (a) any variable whose occurrence count differs
//! between the two sides carries an `nra` or `empty` guard (dropped or
//! duplicated subterms cannot hide a loop or a powerset), and (b) the
//! right-hand side introduces no literal `while`/`powerset` the left-hand
//! side does not already match. Rescues are exempt from (b) by design:
//! they *add* a `while` loop to remove a certified-exponential powerset.

use crate::pattern::{Guard, Pat, VarUse, MAX_VARS};
use crate::{json, json::Json};
use nra_core::queries;
use std::fmt;

/// Where a rule came from; recorded in `RULES.json` and in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleKind {
    /// Hand-written, part of the seeded rule set.
    Seed,
    /// Admitted by the [`crate::synth`] harness.
    Synthesised,
    /// A code-built whole-query rescue (powerset route → while route).
    Rescue,
}

impl fmt::Display for RuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleKind::Seed => write!(f, "seed"),
            RuleKind::Synthesised => write!(f, "synthesised"),
            RuleKind::Rescue => write!(f, "rescue"),
        }
    }
}

/// One rewrite rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Unique, human-readable name (cited in reports and errors).
    pub name: String,
    /// Provenance.
    pub kind: RuleKind,
    /// Left-hand side — what to match.
    pub lhs: Pat,
    /// Right-hand side — what to build.
    pub rhs: Pat,
}

/// A rule-set load/validation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleError {
    /// The document is not the JSON subset the format uses.
    Json(json::JsonError),
    /// The document parses but is not a rule file (missing/mistyped
    /// fields, wrong version, …).
    Format(String),
    /// A rule failed validation; the name (when known) and the reason.
    Invalid {
        /// The offending rule's name, or `"<unnamed>"`.
        rule: String,
        /// Why it was rejected.
        reason: String,
    },
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::Json(e) => write!(f, "rule file is not valid JSON: {e}"),
            RuleError::Format(m) => write!(f, "rule file malformed: {m}"),
            RuleError::Invalid { rule, reason } => {
                write!(f, "rule \"{rule}\" rejected: {reason}")
            }
        }
    }
}

impl std::error::Error for RuleError {}

/// The format version this loader understands.
pub const RULES_VERSION: i64 = 1;

/// The `RULES.json` shipped at the repository root, embedded at compile
/// time.
pub const EMBEDDED_RULES: &str = include_str!("../../../RULES.json");

/// A validated, ordered rule set.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// The rules, in application-priority order (rescues first).
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Parse and validate a `RULES.json` document. Data-borne rules may
    /// only be `seed` or `synthesised`; every rule must pass
    /// [`validate_rule`].
    pub fn from_json(text: &str) -> Result<RuleSet, RuleError> {
        let doc = json::parse(text).map_err(RuleError::Json)?;
        let version = doc
            .get("version")
            .and_then(Json::as_num)
            .ok_or_else(|| RuleError::Format("missing integer \"version\"".into()))?;
        if version != RULES_VERSION {
            return Err(RuleError::Format(format!(
                "unsupported version {version} (expected {RULES_VERSION})"
            )));
        }
        let entries = doc
            .get("rules")
            .and_then(Json::as_arr)
            .ok_or_else(|| RuleError::Format("missing array \"rules\"".into()))?;
        let mut rules = Vec::with_capacity(entries.len());
        let mut names: Vec<&str> = Vec::new();
        for entry in entries {
            let field = |key: &str| -> Result<&str, RuleError> {
                entry.get(key).and_then(Json::as_str).ok_or_else(|| {
                    RuleError::Format(format!("rule entry missing string \"{key}\""))
                })
            };
            let name = field("name")?;
            if name.is_empty() {
                return Err(RuleError::Format("empty rule name".into()));
            }
            if names.contains(&name) {
                return Err(RuleError::Format(format!("duplicate rule name \"{name}\"")));
            }
            names.push(name);
            let kind = match field("kind")? {
                "seed" => RuleKind::Seed,
                "synthesised" => RuleKind::Synthesised,
                other => {
                    return Err(RuleError::Invalid {
                        rule: name.to_string(),
                        reason: format!(
                            "kind \"{other}\" is not data-borne (rescues are code-built)"
                        ),
                    })
                }
            };
            let pat = |key: &str| -> Result<Pat, RuleError> {
                Pat::parse(field(key)?).map_err(|e| RuleError::Invalid {
                    rule: name.to_string(),
                    reason: format!("{key} does not parse: {e}"),
                })
            };
            let rule = Rule {
                name: name.to_string(),
                kind,
                lhs: pat("lhs")?,
                rhs: pat("rhs")?,
            };
            validate_rule(&rule)?;
            rules.push(rule);
        }
        if rules.is_empty() {
            return Err(RuleError::Format("rule file contains no rules".into()));
        }
        Ok(RuleSet { rules })
    }

    /// The default rule set: the code-built rescues (highest priority)
    /// followed by the validated `RULES.json` rules.
    pub fn builtin() -> RuleSet {
        let mut rules = rescue_rules();
        let shipped = RuleSet::from_json(EMBEDDED_RULES)
            .expect("the shipped RULES.json must validate — CI gates this");
        rules.extend(shipped.rules);
        RuleSet { rules }
    }

    /// A rule set from an explicit rule list (used by the synthesis
    /// harness); every rule is validated.
    pub fn from_rules(rules: Vec<Rule>) -> Result<RuleSet, RuleError> {
        for rule in &rules {
            validate_rule(rule)?;
        }
        Ok(RuleSet { rules })
    }

    /// A rule set that skips [`validate_rule`] — for the synthesis
    /// shrink step only, which rewrites with deliberately guard-relaxed
    /// rules that the validator would (rightly) refuse to ship.
    pub(crate) fn from_rules_unchecked(rules: Vec<Rule>) -> RuleSet {
        RuleSet { rules }
    }

    /// Serialise data-borne rules back to the `RULES.json` format.
    /// Rescue rules are skipped (they are code, not data).
    pub fn to_json(&self) -> String {
        rules_to_json(
            self.rules
                .iter()
                .filter(|r| r.kind != RuleKind::Rescue)
                .cloned()
                .collect::<Vec<_>>()
                .as_slice(),
        )
    }
}

/// Serialise rules to the `RULES.json` document format.
pub fn rules_to_json(rules: &[Rule]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"rules\": [\n");
    for (i, r) in rules.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"kind\": \"{}\", \"lhs\": \"{}\", \"rhs\": \"{}\"}}{}\n",
            r.name,
            r.kind,
            r.lhs,
            r.rhs,
            if i + 1 == rules.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Structural validation of one rule — the conditions that make it safe
/// to *apply* mechanically (semantic equivalence is established
/// separately: by hand for seeds, by the differential oracle for
/// synthesised rules, by the paper's separation argument for rescues).
pub fn validate_rule(rule: &Rule) -> Result<(), RuleError> {
    let fail = |reason: String| {
        Err(RuleError::Invalid {
            rule: rule.name.clone(),
            reason,
        })
    };
    if matches!(rule.lhs, Pat::Var(..)) {
        return fail("left-hand side is a bare metavariable (matches everything)".into());
    }
    if rule.lhs == rule.rhs {
        return fail("left- and right-hand sides are identical".into());
    }
    let mut lhs_uses = [VarUse::default(); MAX_VARS];
    let mut rhs_uses = [VarUse::default(); MAX_VARS];
    rule.lhs.collect_vars(&mut lhs_uses);
    rule.rhs.collect_vars(&mut rhs_uses);
    for i in 0..MAX_VARS {
        let (l, r) = (&lhs_uses[i], &rhs_uses[i]);
        if l.conflicting || r.conflicting {
            return fail(format!("?{i} carries conflicting guards"));
        }
        if r.count > 0 && l.count == 0 {
            return fail(format!("?{i} occurs on the right but is never bound"));
        }
        if r.guard.is_some() && r.guard != l.guard && r.guard != Some(Guard::Any) {
            return fail(format!(
                "?{i} is guarded on the right; guards belong on the binding side"
            ));
        }
        if l.count != r.count && !matches!(l.guard, Some(Guard::Nra | Guard::Empty)) {
            return fail(format!(
                "?{i} occurs {} time(s) on the left and {} on the right but is not \
                 nra/empty-guarded — dropped or duplicated subterms could change \
                 while_iterations or hide a powerset",
                l.count, r.count
            ));
        }
    }
    if rule.kind != RuleKind::Rescue {
        let (lhs_pow, lhs_while) = rule.lhs.literal_level();
        let (rhs_pow, rhs_while) = rule.rhs.literal_level();
        if rhs_pow && !lhs_pow {
            return fail("right-hand side introduces a literal powerset".into());
        }
        if rhs_while && !lhs_while {
            return fail(
                "right-hand side introduces a literal while (only rescue rules may)".into(),
            );
        }
    }
    Ok(())
}

/// The code-built rescue rules: whole-query recognition of the
/// powerset-route idioms, rewritten to their polynomial counterparts.
/// Matching is a single hash-consed `EId` comparison per rule.
pub fn rescue_rules() -> Vec<Rule> {
    vec![
        Rule {
            name: "rescue-tc-powerset-route".into(),
            kind: RuleKind::Rescue,
            lhs: Pat::Ground(queries::tc_paths()),
            rhs: Pat::Ground(queries::tc_while()),
        },
        Rule {
            name: "rescue-siblings-powerset-route".into(),
            kind: RuleKind::Rescue,
            lhs: Pat::Ground(queries::siblings_powerset()),
            rhs: Pat::Ground(queries::siblings_direct()),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_shipped_rule_file_loads() {
        let rules = RuleSet::from_json(EMBEDDED_RULES).expect("RULES.json validates");
        assert!(rules.rules().len() >= 10, "rule set unexpectedly small");
        assert!(rules.rules().iter().any(|r| r.kind == RuleKind::Seed));
        assert!(rules
            .rules()
            .iter()
            .any(|r| r.kind == RuleKind::Synthesised));
    }

    #[test]
    fn builtin_rules_put_rescues_first() {
        let rules = RuleSet::builtin();
        assert_eq!(rules.rules()[0].kind, RuleKind::Rescue);
        assert!(rules.rules().iter().any(|r| r.kind == RuleKind::Seed));
    }

    #[test]
    fn json_round_trips() {
        let shipped = RuleSet::from_json(EMBEDDED_RULES).unwrap();
        let again = RuleSet::from_json(&shipped.to_json()).unwrap();
        assert_eq!(shipped.rules(), again.rules());
    }

    #[test]
    fn unbound_rhs_variable_is_rejected() {
        let r = Rule {
            name: "bad".into(),
            kind: RuleKind::Seed,
            lhs: Pat::parse("compose(?0, id)").unwrap(),
            rhs: Pat::parse("?1").unwrap(),
        };
        assert!(matches!(validate_rule(&r), Err(RuleError::Invalid { .. })));
    }

    #[test]
    fn unguarded_dropped_variable_is_rejected() {
        let r = Rule {
            name: "bad".into(),
            kind: RuleKind::Seed,
            lhs: Pat::parse("compose(fst, tuple(?0, ?1))").unwrap(),
            rhs: Pat::parse("?0").unwrap(),
        };
        let err = validate_rule(&r).unwrap_err();
        assert!(err.to_string().contains("?1"), "{err}");
    }

    #[test]
    fn data_borne_while_introduction_is_rejected() {
        let r = Rule {
            name: "bad".into(),
            kind: RuleKind::Seed,
            lhs: Pat::parse("compose(?0, id)").unwrap(),
            rhs: Pat::parse("while(?0)").unwrap(),
        };
        let err = validate_rule(&r).unwrap_err();
        assert!(err.to_string().contains("while"), "{err}");
    }
}
