//! A minimal, strict JSON reader for `RULES.json`.
//!
//! The workspace builds fully offline, so there is no serde; this module
//! parses exactly the JSON subset the rule file uses — objects, arrays,
//! strings (with `\"`, `\\`, `\n`, `\t` escapes), integers and booleans —
//! and rejects everything else loudly. Strictness is a feature: the
//! corruption fuzz loop in `tests/rules.rs` relies on malformed input
//! failing at load rather than being guessed at.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the rule file never needs floats).
    Num(i64),
    /// A string, escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in source order (duplicate keys rejected).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Field lookup on an object; `None` on missing field or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The integer payload, if this is a number.
    pub fn as_num(&self) -> Option<i64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure with byte position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input after document"));
    }
    Ok(v)
}

/// Nesting guard: the rule file is shallow; anything deeper is garbage.
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floats are not part of the rule format"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = match self.peek() {
                        Some(b'"') => '"',
                        Some(b'\\') => '\\',
                        Some(b'/') => '/',
                        Some(b'n') => '\n',
                        Some(b't') => '\t',
                        _ => return Err(self.err("unsupported escape")),
                    };
                    out.push(escaped);
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // multi-byte UTF-8 passes through untouched
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate key \"{key}\"")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_rule_file_shape() {
        let doc = parse(r#"{"version": 1, "rules": [{"name": "x", "lhs": "id"}]}"#).unwrap();
        assert_eq!(doc.get("version").and_then(Json::as_num), Some(1));
        let rules = doc.get("rules").and_then(Json::as_arr).unwrap();
        assert_eq!(rules[0].get("name").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\": 1,}",
            "{\"a\": 1} trailing",
            "{\"a\": 1, \"a\": 2}",
            "{\"a\": 1.5}",
            "\"unterminated",
            "{\"a\": \\x}",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escapes_resolve() {
        assert_eq!(
            parse(r#""a\"b\\c\nd""#).unwrap(),
            Json::Str("a\"b\\c\nd".into())
        );
    }
}
