//! Ruler-style rule synthesis: enumerate, fingerprint, verify, admit.
//!
//! The workflow is the enumo loop from `ruler`, specialised to NRA
//! combinators over the relation domain `{nat * nat}`:
//!
//! 1. **Enumerate** every combinator term up to [`SynthConfig::max_size`]
//!    AST nodes (loop-free: `while` is excluded, so every candidate
//!    terminates and the admitted rules are trivially loop-preserving),
//!    keeping only terms that type-check against the relation domain.
//! 2. **Fingerprint** each term on a fixed battery of seeded inputs —
//!    hand-picked edge cases plus [`nra_testkit`]-seeded random relations
//!    — under a budgeted evaluator; the fingerprint is the vector of
//!    `Ok` results (`None` where evaluation failed).
//! 3. **Conjecture**: terms sharing a fingerprint are conjectured equal;
//!    each bucket pairs every term with its smallest member.
//! 4. **Verify** each conjecture with the differential oracle on inputs
//!    the fingerprints never saw — all 7 [`nra_testkit::graphs`]
//!    families across several seeds and every evaluator configuration.
//!    The check is one-sided, matching the optimiser's contract: whenever
//!    the *left* (rewritten-away) term succeeds, the right term must
//!    produce the identical value.
//! 5. **Admit** survivors as ground [`RuleKind::Synthesised`] rules,
//!    subject to the same [`validate_rule`] gate as hand-written ones.
//!
//! `examples/synthesise.rs` (facade crate) runs this and prints the
//! `RULES.json` document; the shipped file's `synthesised` section is its
//! output, and CI re-verifies every shipped rule against the same oracle
//! (`tests/rules.rs`), so a drive-by edit of `RULES.json` cannot smuggle
//! in an unverified equivalence.
//!
//! Caveat, documented deliberately: fingerprints are taken at *one*
//! domain (`{nat * nat}`), so the harness can only conjecture laws
//! observable there. That is the same trade `ruler` makes; the oracle
//! pass and the load-time validator are what keep it sound.

use crate::pattern::{Guard, Pat};
use crate::rules::{validate_rule, Rule, RuleKind, RuleSet};
use nra_core::{builder, output_type, Expr, ExprArena, Type, Value};
use nra_eval::{evaluate, EvalConfig};
use nra_testkit::{graphs, Rng};

/// Synthesis parameters.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Maximum AST size ([`Expr::size`]) of enumerated terms.
    pub max_size: usize,
    /// Seed for the random fingerprint inputs.
    pub seed: u64,
    /// How many random relations join the hand-picked fingerprint inputs.
    pub random_inputs: usize,
    /// How many seeds of the 7-family graph battery the oracle replays.
    pub oracle_rounds: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            max_size: 5,
            seed: 0x5EED_CAFE,
            random_inputs: 4,
            oracle_rounds: 3,
        }
    }
}

/// The atoms the enumerator composes. `while` is deliberately absent —
/// see the [module docs](self); `powerset` is present so rules that
/// *remove* one (`flatten ∘ powerset = id`) can be discovered.
fn atoms() -> Vec<Expr> {
    vec![
        builder::id(),
        builder::bang(),
        builder::fst(),
        builder::snd(),
        builder::sng(),
        builder::flatten(),
        builder::union(),
        builder::powerset(),
        builder::is_empty(),
    ]
}

/// Enumerate all terms of exactly `size` AST nodes, smallest first.
/// `by_size[s]` caches the terms of size `s` (`by_size[0]` unused).
fn terms_of_size(size: usize, by_size: &mut Vec<Vec<Expr>>) {
    while by_size.len() <= size {
        let s = by_size.len();
        let mut out = Vec::new();
        if s == 1 {
            out.extend(atoms());
        } else if s >= 2 {
            for f in &by_size[s - 1] {
                out.push(builder::map(f.clone()));
            }
            for left in 1..(s - 1) {
                let right = s - 1 - left;
                for g in by_size[left].clone() {
                    for f in &by_size[right] {
                        out.push(builder::compose(g.clone(), f.clone()));
                        out.push(builder::tuple(g.clone(), f.clone()));
                    }
                }
            }
        }
        by_size.push(out);
    }
}

/// The fingerprint input battery: edge cases plus seeded random
/// relations. All are values of type `{nat * nat}`.
fn fingerprint_inputs(cfg: &SynthConfig) -> Vec<Value> {
    let mut inputs = vec![
        Value::relation([]),
        Value::relation([(0, 1)]),
        Value::relation([(0, 0)]),
        Value::relation([(0, 1), (1, 0)]),
        Value::chain(3),
        Value::relation([(0, 1), (0, 2), (1, 2)]),
    ];
    let mut rng = Rng::new(cfg.seed);
    for _ in 0..cfg.random_inputs {
        let n = 2 + rng.below(3);
        let mut edges = Vec::new();
        for _ in 0..(1 + rng.below(4)) {
            edges.push((rng.below(n), rng.below(n)));
        }
        inputs.push(Value::relation(edges));
    }
    inputs
}

/// The budgeted config fingerprinting runs under: large enough for every
/// law-abiding small term, small enough that `powerset` towers fail fast
/// instead of materialising.
fn fingerprint_config() -> EvalConfig {
    EvalConfig {
        max_nodes: Some(200_000),
        ..EvalConfig::with_space_budget(1 << 12)
    }
}

/// Evaluate `e` on every fingerprint input; `None` where it fails.
fn fingerprint(e: &Expr, inputs: &[Value], config: &EvalConfig) -> Vec<Option<Value>> {
    inputs
        .iter()
        .map(|input| evaluate(e, input, config).result.ok())
        .collect()
}

/// Strip every metavariable guard. Shrink-step only: a guard can keep a
/// seed from firing on (say) a powerset-carrying binding, and the
/// congruence instance the seed would have discharged then gets
/// re-admitted as a fresh ground rule. Relaxing guards while shrinking
/// can only make the harness *skip* candidates (under-admit) — admission
/// soundness still rests entirely on the oracle.
fn relax(p: &Pat) -> Pat {
    match p {
        Pat::Var(i, _) => Pat::Var(*i, Guard::Any),
        Pat::Ground(e) => Pat::Ground(e.clone()),
        Pat::Tuple(a, b) => Pat::Tuple(Box::new(relax(a)), Box::new(relax(b))),
        Pat::Map(f) => Pat::Map(Box::new(relax(f))),
        Pat::Cond(c, t, e) => Pat::Cond(Box::new(relax(c)), Box::new(relax(t)), Box::new(relax(e))),
        Pat::Compose(g, f) => Pat::Compose(Box::new(relax(g)), Box::new(relax(f))),
        Pat::While(f) => Pat::While(Box::new(relax(f))),
    }
}

/// The guard-relaxed shrink rule set for the current `known` list.
fn shrink_rules(known: &[Rule]) -> RuleSet {
    RuleSet::from_rules_unchecked(
        known
            .iter()
            .map(|r| Rule {
                name: r.name.clone(),
                kind: r.kind,
                lhs: relax(&r.lhs),
                rhs: relax(&r.rhs),
            })
            .collect(),
    )
}

/// One-sided differential check on one input: whenever `lhs` succeeds,
/// `rhs` must produce the identical value (under every config mix).
fn agrees_on(lhs: &Expr, rhs: &Expr, input: &Value) -> bool {
    let configs = [
        EvalConfig::with_space_budget(1 << 16),
        EvalConfig {
            max_object_size: Some(1 << 16),
            ..EvalConfig::optimised()
        },
        EvalConfig {
            max_object_size: Some(1 << 16),
            ..EvalConfig::compiled()
        },
    ];
    for config in &configs {
        let l = evaluate(lhs, input, config).result;
        if let Ok(expected) = l {
            match evaluate(rhs, input, config).result {
                Ok(got) if got == expected => {}
                _ => return false,
            }
        }
    }
    true
}

/// The oracle: replay the conjecture over every graph family for
/// several seeds, plus the fingerprint battery itself.
fn oracle_verifies(lhs: &Expr, rhs: &Expr, cfg: &SynthConfig) -> bool {
    for input in fingerprint_inputs(cfg) {
        if !agrees_on(lhs, rhs, &input) {
            return false;
        }
    }
    for round in 0..cfg.oracle_rounds {
        let mut rng = Rng::new(cfg.seed ^ (0xA11CE << 8) ^ round);
        for g in graphs::family_graphs(&mut rng) {
            let input = Value::relation(g.edges.iter().copied());
            if !agrees_on(lhs, rhs, &input) {
                return false;
            }
        }
    }
    true
}

/// Run the full enumerate → fingerprint → verify → admit loop.
pub fn synthesise(cfg: &SynthConfig) -> Vec<Rule> {
    let dom = Type::set(Type::nat_rel());
    let inputs = fingerprint_inputs(cfg);
    let fp_config = fingerprint_config();

    let mut by_size: Vec<Vec<Expr>> = vec![Vec::new()];
    terms_of_size(cfg.max_size, &mut by_size);

    // bucket by fingerprint; enumeration order is smallest-first, so the
    // first member of a bucket is its canonical (smallest) form
    let mut buckets: Vec<(Vec<Option<Value>>, Vec<Expr>)> = Vec::new();
    for bucket in by_size.iter().take(cfg.max_size + 1).skip(1) {
        for e in bucket {
            if output_type(e, &dom).is_err() {
                continue;
            }
            let fp = fingerprint(e, &inputs, &fp_config);
            // Demand evidence on a *majority* of the battery. A term
            // that only succeeds on degenerate inputs (e.g. `map(powerset)`
            // succeeds solely on the empty relation) would otherwise be
            // conjectured equal to anything sharing that sliver of
            // behaviour — vacuously "verified", semantically garbage.
            if fp.iter().filter(|v| v.is_some()).count() * 2 < inputs.len() {
                continue;
            }
            match buckets.iter_mut().find(|(key, _)| *key == fp) {
                Some((_, members)) => members.push(e.clone()),
                None => buckets.push((fp, vec![e.clone()])),
            }
        }
    }

    // ruler's shrink step: a candidate the *current* rule set (the
    // hand-written seeds plus everything admitted so far) already
    // rewrites is derivable — admitting it would only bloat RULES.json
    // with congruence instances of known rules
    let seeds: Vec<Rule> = RuleSet::from_json(crate::rules::EMBEDDED_RULES)
        .map(|rs| {
            rs.rules()
                .iter()
                .filter(|r| r.kind == RuleKind::Seed)
                .cloned()
                .collect()
        })
        .unwrap_or_default();
    let mut known = seeds;
    let mut ruleset = shrink_rules(&known);

    let mut rules = Vec::new();
    for (_, members) in &buckets {
        let canonical = &members[0];
        for candidate in &members[1..] {
            if candidate.size() <= canonical.size() {
                continue; // only shrink
            }
            let mut ea = ExprArena::new();
            let root = ea.intern(candidate);
            if crate::rewrite::rewrite(&mut ea, root, &ruleset).0 != root {
                continue; // already derivable — see above
            }
            if !oracle_verifies(candidate, canonical, cfg) {
                continue;
            }
            let rule = Rule {
                name: format!("synth-{:04}", rules.len()),
                kind: RuleKind::Synthesised,
                lhs: crate::pattern::Pat::Ground(candidate.clone()),
                rhs: crate::pattern::Pat::Ground(canonical.clone()),
            };
            if validate_rule(&rule).is_ok() {
                known.push(rule.clone());
                ruleset = shrink_rules(&known);
                rules.push(rule);
            }
        }
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full loop at a reduced size, so it stays test-suite fast; the
    /// shipped `RULES.json` was produced by `examples/synthesise.rs` at
    /// the default size.
    #[test]
    fn small_synthesis_finds_the_flatten_laws() {
        let cfg = SynthConfig {
            max_size: 3,
            ..SynthConfig::default()
        };
        let rules = synthesise(&cfg);
        assert!(!rules.is_empty(), "size-3 synthesis found nothing");
        let descriptions: Vec<String> = rules
            .iter()
            .map(|r| format!("{} => {}", r.lhs, r.rhs))
            .collect();
        assert!(
            descriptions
                .iter()
                .any(|d| d == "compose(flatten, sng) => id"),
            "missing flatten∘sng law in {descriptions:?}"
        );
        assert!(
            descriptions
                .iter()
                .any(|d| d == "compose(flatten, powerset) => id"),
            "missing flatten∘powerset law in {descriptions:?}"
        );
    }

    #[test]
    fn enumeration_is_smallest_first_and_typed_filtering_works() {
        let mut by_size = vec![Vec::new()];
        terms_of_size(3, &mut by_size);
        assert_eq!(by_size[1].len(), atoms().len());
        assert!(!by_size[2].is_empty());
        let dom = Type::set(Type::nat_rel());
        // `fst` alone does not type against a set domain
        assert!(output_type(&builder::fst(), &dom).is_err());
        assert!(output_type(&builder::id(), &dom).is_ok());
    }
}
