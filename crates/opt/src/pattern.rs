//! Rewrite patterns: the core concrete syntax plus typed metavariables.
//!
//! A pattern is an [`Expr`]-shaped tree whose leaves may additionally be
//! metavariables `?0 … ?7`, optionally guarded:
//!
//! * `?3` — matches any subterm;
//! * `?3:nra` — matches only a plain-`NRA` subterm (`powerset`-,
//!   `powersetₘ`- and `while`-free). This is the guard that keeps a rule
//!   *loop-preserving*: a variable the rule drops, duplicates or moves
//!   into a different evaluation context must be `nra`-guarded so the
//!   optimised expression reproduces `while_iterations` bit-for-bit;
//! * `?3:empty` — matches only an empty-set constant (`emptyset[t]`, or
//!   the any-domain form `compose(emptyset[t], bang)`), binding it so the
//!   right-hand side can re-use the *same typed* empty where the type is
//!   not otherwise expressible in a pattern.
//!
//! Everything else is exactly the grammar of [`nra_core::parser`], so a
//! ground pattern round-trips through the core [`std::fmt::Display`]
//! syntax. A
//! fully ground subtree is collapsed to [`Pat::Ground`] at parse time:
//! the rewriter interns it once per pass and matches it with a single
//! `EId` comparison, which is what makes whole-query *rescue* rules
//! (`tc_paths → tc_while`) O(1) to recognise under hash-consing.

use nra_core::builder;
use nra_core::parser::{parse_expr, parse_type};
use nra_core::Expr;
use std::fmt;

/// Number of metavariable slots a rule may use (`?0` … `?7`).
pub const MAX_VARS: usize = 8;

/// A metavariable guard — see the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Guard {
    /// Matches anything.
    Any,
    /// Matches only `powerset`/`powersetₘ`/`while`-free subterms.
    Nra,
    /// Matches only empty-set constants (`emptyset[t]`, possibly
    /// pre-composed with `bang`).
    Empty,
}

/// One rewrite pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum Pat {
    /// A metavariable `?i`, with its guard.
    Var(u8, Guard),
    /// A fully ground subtree (no metavariables anywhere below).
    Ground(Expr),
    /// `tuple(a, b)` with at least one metavariable below.
    Tuple(Box<Pat>, Box<Pat>),
    /// `map(f)` with a metavariable below.
    Map(Box<Pat>),
    /// `if(c, t, e)` with a metavariable below.
    Cond(Box<Pat>, Box<Pat>, Box<Pat>),
    /// `compose(g, f)` (`f` applied first) with a metavariable below.
    Compose(Box<Pat>, Box<Pat>),
    /// `while(f)` with a metavariable below.
    While(Box<Pat>),
}

/// A pattern parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pattern error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for PatternError {}

/// Per-variable usage summary, produced by [`Pat::collect_vars`].
#[derive(Debug, Clone, Copy, Default)]
pub struct VarUse {
    /// How many times the variable occurs in this pattern.
    pub count: u32,
    /// Strongest guard seen on any occurrence ([`Guard::Any`] if none).
    pub guard: Option<Guard>,
    /// Whether two occurrences carried *different* non-`Any` guards.
    pub conflicting: bool,
}

impl Pat {
    /// Parse a pattern from the extended concrete syntax.
    pub fn parse(input: &str) -> Result<Pat, PatternError> {
        let mut p = PatParser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let pat = p.pat()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing input after pattern"));
        }
        Ok(collapse(pat))
    }

    /// True when no metavariable occurs anywhere in this pattern.
    pub fn is_ground(&self) -> bool {
        matches!(self, Pat::Ground(_))
    }

    /// Accumulate per-variable occurrence counts and guards.
    pub fn collect_vars(&self, uses: &mut [VarUse; MAX_VARS]) {
        match self {
            Pat::Var(i, guard) => {
                let u = &mut uses[*i as usize];
                u.count += 1;
                match (*guard, u.guard) {
                    (Guard::Any, _) => {}
                    (g, None | Some(Guard::Any)) => u.guard = Some(g),
                    (g, Some(prev)) if g != prev => u.conflicting = true,
                    _ => {}
                }
            }
            Pat::Ground(_) => {}
            Pat::Map(f) | Pat::While(f) => f.collect_vars(uses),
            Pat::Tuple(a, b) | Pat::Compose(a, b) => {
                a.collect_vars(uses);
                b.collect_vars(uses);
            }
            Pat::Cond(c, t, e) => {
                c.collect_vars(uses);
                t.collect_vars(uses);
                e.collect_vars(uses);
            }
        }
    }

    /// Language-level flags of the pattern's *literal* content (ground
    /// parts and constructors — metavariables contribute nothing). Used
    /// by rule validation: a right-hand side may not introduce a literal
    /// `while` or `powerset` its left-hand side does not already match.
    pub fn literal_level(&self) -> (bool, bool) {
        match self {
            Pat::Var(..) => (false, false),
            Pat::Ground(e) => {
                let level = e.level();
                (level.powerset || level.powerset_m, level.while_loop)
            }
            Pat::Map(f) => f.literal_level(),
            Pat::While(f) => {
                let (p, _) = f.literal_level();
                (p, true)
            }
            Pat::Tuple(a, b) | Pat::Compose(a, b) => {
                let (pa, wa) = a.literal_level();
                let (pb, wb) = b.literal_level();
                (pa || pb, wa || wb)
            }
            Pat::Cond(c, t, e) => {
                let (pc, wc) = c.literal_level();
                let (pt, wt) = t.literal_level();
                let (pe, we) = e.literal_level();
                (pc || pt || pe, wc || wt || we)
            }
        }
    }
}

impl fmt::Display for Pat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pat::Var(i, Guard::Any) => write!(f, "?{i}"),
            Pat::Var(i, Guard::Nra) => write!(f, "?{i}:nra"),
            Pat::Var(i, Guard::Empty) => write!(f, "?{i}:empty"),
            Pat::Ground(e) => write!(f, "{e}"),
            Pat::Tuple(a, b) => write!(f, "tuple({a}, {b})"),
            Pat::Map(g) => write!(f, "map({g})"),
            Pat::Cond(c, t, e) => write!(f, "if({c}, {t}, {e})"),
            Pat::Compose(g, h) => write!(f, "compose({g}, {h})"),
            Pat::While(g) => write!(f, "while({g})"),
        }
    }
}

/// Collapse var-free composite subtrees into [`Pat::Ground`].
fn collapse(p: Pat) -> Pat {
    fn as_ground(p: &Pat) -> Option<Expr> {
        match p {
            Pat::Ground(e) => Some(e.clone()),
            _ => None,
        }
    }
    match p {
        Pat::Var(..) | Pat::Ground(_) => p,
        Pat::Map(f) => {
            let f = collapse(*f);
            match as_ground(&f) {
                Some(e) => Pat::Ground(builder::map(e)),
                None => Pat::Map(Box::new(f)),
            }
        }
        Pat::While(f) => {
            let f = collapse(*f);
            match as_ground(&f) {
                Some(e) => Pat::Ground(builder::while_fix(e)),
                None => Pat::While(Box::new(f)),
            }
        }
        Pat::Tuple(a, b) => {
            let (a, b) = (collapse(*a), collapse(*b));
            match (as_ground(&a), as_ground(&b)) {
                (Some(x), Some(y)) => Pat::Ground(builder::tuple(x, y)),
                _ => Pat::Tuple(Box::new(a), Box::new(b)),
            }
        }
        Pat::Compose(g, h) => {
            let (g, h) = (collapse(*g), collapse(*h));
            match (as_ground(&g), as_ground(&h)) {
                (Some(x), Some(y)) => Pat::Ground(builder::compose(x, y)),
                _ => Pat::Compose(Box::new(g), Box::new(h)),
            }
        }
        Pat::Cond(c, t, e) => {
            let (c, t, e) = (collapse(*c), collapse(*t), collapse(*e));
            match (as_ground(&c), as_ground(&t), as_ground(&e)) {
                (Some(x), Some(y), Some(z)) => Pat::Ground(builder::cond(x, y, z)),
                _ => Pat::Cond(Box::new(c), Box::new(t), Box::new(e)),
            }
        }
    }
}

struct PatParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PatParser<'a> {
    fn err(&self, message: &str) -> PatternError {
        PatternError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), PatternError> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn ident(&mut self) -> &'a str {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii ident")
    }

    fn number(&mut self) -> Result<u64, PatternError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a number"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits")
            .parse()
            .map_err(|_| self.err("number out of range"))
    }

    fn pat(&mut self) -> Result<Pat, PatternError> {
        self.skip_ws();
        if self.peek() == Some(b'?') {
            self.pos += 1;
            let idx = self.number()?;
            if idx >= MAX_VARS as u64 {
                return Err(self.err(&format!("metavariable index must be < {MAX_VARS}")));
            }
            let guard = if self.peek() == Some(b':') {
                self.pos += 1;
                match self.ident() {
                    "nra" => Guard::Nra,
                    "empty" => Guard::Empty,
                    other => return Err(self.err(&format!("unknown guard \"{other}\""))),
                }
            } else {
                Guard::Any
            };
            return Ok(Pat::Var(idx as u8, guard));
        }
        let name = self.ident();
        match name {
            "id" => Ok(Pat::Ground(Expr::Id)),
            "bang" => Ok(Pat::Ground(Expr::Bang)),
            "fst" => Ok(Pat::Ground(Expr::Fst)),
            "snd" => Ok(Pat::Ground(Expr::Snd)),
            "sng" => Ok(Pat::Ground(Expr::Sng)),
            "flatten" => Ok(Pat::Ground(Expr::Flatten)),
            "pairwith" => Ok(Pat::Ground(Expr::PairWith)),
            "union" => Ok(Pat::Ground(Expr::Union)),
            "eq" => Ok(Pat::Ground(Expr::EqNat)),
            "isempty" => Ok(Pat::Ground(Expr::IsEmpty)),
            "true" => Ok(Pat::Ground(Expr::ConstTrue)),
            "false" => Ok(Pat::Ground(Expr::ConstFalse)),
            "powerset" => Ok(Pat::Ground(Expr::Powerset)),
            "tuple" => {
                self.expect(b'(')?;
                let a = self.pat()?;
                self.expect(b',')?;
                let b = self.pat()?;
                self.expect(b')')?;
                Ok(Pat::Tuple(Box::new(a), Box::new(b)))
            }
            "map" => {
                self.expect(b'(')?;
                let f = self.pat()?;
                self.expect(b')')?;
                Ok(Pat::Map(Box::new(f)))
            }
            "while" => {
                self.expect(b'(')?;
                let f = self.pat()?;
                self.expect(b')')?;
                Ok(Pat::While(Box::new(f)))
            }
            "if" => {
                self.expect(b'(')?;
                let c = self.pat()?;
                self.expect(b',')?;
                let t = self.pat()?;
                self.expect(b',')?;
                let e = self.pat()?;
                self.expect(b')')?;
                Ok(Pat::Cond(Box::new(c), Box::new(t), Box::new(e)))
            }
            "compose" => {
                self.expect(b'(')?;
                let g = self.pat()?;
                self.expect(b',')?;
                let h = self.pat()?;
                self.expect(b')')?;
                Ok(Pat::Compose(Box::new(g), Box::new(h)))
            }
            "emptyset" => {
                self.expect(b'[')?;
                let ty = self.balanced_until(b'[', b']')?;
                let t = parse_type(ty).map_err(|e| self.err(&format!("bad type: {e}")))?;
                self.expect(b']')?;
                Ok(Pat::Ground(Expr::EmptySet(t)))
            }
            "powerset_m" => {
                self.expect(b'(')?;
                self.skip_ws();
                let m = self.number()?;
                self.expect(b')')?;
                Ok(Pat::Ground(Expr::PowersetM(m)))
            }
            "const" => {
                // delegate the whole const literal to the core parser
                self.pos -= name.len();
                let start = self.pos;
                self.pos += name.len();
                self.expect(b'(')?;
                let _ = self.balanced_until(b'(', b')')?;
                self.expect(b')')?;
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
                let e = parse_expr(text).map_err(|e| self.err(&format!("bad const: {e}")))?;
                Ok(Pat::Ground(e))
            }
            "" => Err(self.err("expected a pattern")),
            other => Err(self.err(&format!("unknown combinator \"{other}\""))),
        }
    }

    /// The slice from the current position up to (not including) the
    /// delimiter that closes an already-opened `open`. Position advances
    /// to the closing delimiter.
    fn balanced_until(&mut self, open: u8, close: u8) -> Result<&'a str, PatternError> {
        let start = self.pos;
        let mut depth = 1usize;
        while let Some(c) = self.peek() {
            if c == open {
                depth += 1;
            } else if c == close {
                depth -= 1;
                if depth == 0 {
                    return Ok(std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii"));
                }
            }
            self.pos += 1;
        }
        Err(self.err("unbalanced delimiters"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_patterns_collapse_and_round_trip() {
        let p = Pat::parse("compose(flatten, map(sng))").unwrap();
        match &p {
            Pat::Ground(e) => assert_eq!(e.to_string(), "compose(flatten, map(sng))"),
            other => panic!("expected ground, got {other:?}"),
        }
        assert_eq!(Pat::parse(&p.to_string()).unwrap(), p);
    }

    #[test]
    fn metavariables_and_guards_parse_and_display() {
        let p = Pat::parse("compose(map(?0:nra), map(?1))").unwrap();
        assert_eq!(p.to_string(), "compose(map(?0:nra), map(?1))");
        assert_eq!(Pat::parse(&p.to_string()).unwrap(), p);
        let mut uses = [VarUse::default(); MAX_VARS];
        p.collect_vars(&mut uses);
        assert_eq!(uses[0].count, 1);
        assert_eq!(uses[0].guard, Some(Guard::Nra));
        assert_eq!(uses[1].count, 1);
        assert_eq!(uses[1].guard, None);
    }

    #[test]
    fn emptyset_types_parse() {
        let p = Pat::parse("emptyset[{nat * nat}]").unwrap();
        match p {
            Pat::Ground(Expr::EmptySet(t)) => assert_eq!(t, nra_core::Type::nat_rel()),
            other => panic!("expected emptyset, got {other:?}"),
        }
    }

    #[test]
    fn core_display_syntax_is_a_subset() {
        // every query in the zoo round-trips through the pattern parser
        for q in [
            nra_core::queries::tc_paths(),
            nra_core::queries::tc_while(),
            nra_core::queries::siblings_powerset(),
            nra_core::queries::siblings_direct(),
        ] {
            match Pat::parse(&q.to_string()).unwrap() {
                Pat::Ground(e) => assert_eq!(e, q),
                other => panic!("expected ground, got {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_patterns_are_rejected() {
        for bad in [
            "",
            "?9",
            "?0:weird",
            "frobnicate",
            "compose(id)",
            "map(id",
            "tuple(id, id) extra",
            "emptyset[wat]",
            "while(?0:nra) :",
        ] {
            assert!(Pat::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn conflicting_guards_are_reported() {
        let p = Pat::parse("tuple(?0:nra, ?0:empty)").unwrap();
        let mut uses = [VarUse::default(); MAX_VARS];
        p.collect_vars(&mut uses);
        assert!(uses[0].conflicting);
    }
}
