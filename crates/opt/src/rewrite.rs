//! The rewrite engine: bottom-up, memoised, cost-gated rule application
//! over the hash-consed [`ExprArena`] DAG.
//!
//! Per [`rewrite`] invocation the rule patterns are *compiled* against
//! the target arena: every ground subtree is interned once, so matching
//! it is a single `EId` comparison — which makes whole-query rescue
//! rules (`tc_paths → tc_while`) O(1) to recognise anywhere in the DAG.
//! The pass walks each node bottom-up (children first, so an inner
//! powerset-route idiom is rescued before its context is considered),
//! memoising `EId → EId` so shared subterms are rewritten once. Passes
//! repeat to a fixpoint, capped at [`MAX_PASSES`]; rules spin at a
//! single node at most [`MAX_SPINS`] times per pass. Every candidate
//! rewrite is submitted to the [`Gate`]: it is taken only when the
//! space class of the replacement does not worsen the original's.
//!
//! Unchanged nodes keep their `EId`s, so a query the rules never touch
//! comes back as the *same* handle — callers (the eval session, the
//! serving door) use `rewritten != original` as the "optimiser did
//! something" signal without any extra bookkeeping.

use crate::cost::Gate;
use crate::pattern::{Guard, Pat, MAX_VARS};
use crate::rules::{Rule, RuleKind, RuleSet};
use nra_core::expr::intern::ENode;
use nra_core::{builder, EId, Expr, ExprArena};
use std::collections::{BTreeMap, HashMap};

/// Fixpoint cap: how many full bottom-up passes one invocation may run.
pub const MAX_PASSES: usize = 8;

/// How many times the rule list may re-fire at a single node per pass.
pub const MAX_SPINS: usize = 4;

/// What one [`rewrite`] invocation did.
#[derive(Debug, Clone, Default)]
pub struct OptStats {
    /// Total rule applications taken (gate-approved).
    pub rewrites: u64,
    /// How many of those were [`RuleKind::Rescue`] applications.
    pub rescues: u64,
    /// Full passes run (1 even when nothing fired).
    pub passes: u64,
    /// Per-rule fire counts, by rule name.
    pub fired: BTreeMap<String, u64>,
}

/// A pattern compiled against a concrete arena: ground subtrees interned.
#[derive(Debug, Clone)]
enum CPat {
    Var(u8, Guard),
    Ground(EId),
    Tuple(Box<CPat>, Box<CPat>),
    Map(Box<CPat>),
    Cond(Box<CPat>, Box<CPat>, Box<CPat>),
    Compose(Box<CPat>, Box<CPat>),
    While(Box<CPat>),
}

struct CRule {
    name: String,
    kind: RuleKind,
    lhs: CPat,
    rhs: CPat,
}

fn compile_pat(ea: &mut ExprArena, p: &Pat) -> CPat {
    match p {
        Pat::Var(i, g) => CPat::Var(*i, *g),
        Pat::Ground(e) => CPat::Ground(ea.intern(e)),
        Pat::Tuple(a, b) => CPat::Tuple(Box::new(compile_pat(ea, a)), Box::new(compile_pat(ea, b))),
        Pat::Map(f) => CPat::Map(Box::new(compile_pat(ea, f))),
        Pat::Cond(c, t, e) => CPat::Cond(
            Box::new(compile_pat(ea, c)),
            Box::new(compile_pat(ea, t)),
            Box::new(compile_pat(ea, e)),
        ),
        Pat::Compose(g, h) => {
            CPat::Compose(Box::new(compile_pat(ea, g)), Box::new(compile_pat(ea, h)))
        }
        Pat::While(f) => CPat::While(Box::new(compile_pat(ea, f))),
    }
}

/// Shared mutable state for one invocation.
struct Pass {
    gate: Gate,
    /// `EId → (has powerset/powersetₘ, has while)`, memoised DAG-wide.
    levels: HashMap<EId, (bool, bool)>,
    stats: OptStats,
}

impl Pass {
    fn level_of(&mut self, ea: &ExprArena, eid: EId) -> (bool, bool) {
        if let Some(l) = self.levels.get(&eid) {
            return *l;
        }
        let l = match ea.node(eid) {
            ENode::Leaf(e) => {
                let level = e.level();
                (level.powerset || level.powerset_m, level.while_loop)
            }
            ENode::Map(f) => self.level_of(ea, f),
            ENode::While(f) => {
                let (p, _) = self.level_of(ea, f);
                (p, true)
            }
            ENode::Tuple(a, b) | ENode::Compose(a, b) => {
                let (pa, wa) = self.level_of(ea, a);
                let (pb, wb) = self.level_of(ea, b);
                (pa || pb, wa || wb)
            }
            ENode::Cond(c, t, e) => {
                let (pc, wc) = self.level_of(ea, c);
                let (pt, wt) = self.level_of(ea, t);
                let (pe, we) = self.level_of(ea, e);
                (pc || pt || pe, wc || wt || we)
            }
        };
        self.levels.insert(eid, l);
        l
    }

    fn guard_ok(&mut self, ea: &ExprArena, guard: Guard, eid: EId) -> bool {
        match guard {
            Guard::Any => true,
            Guard::Nra => self.level_of(ea, eid) == (false, false),
            Guard::Empty => is_empty_const(ea, eid),
        }
    }

    fn matches(
        &mut self,
        ea: &ExprArena,
        pat: &CPat,
        eid: EId,
        binds: &mut [Option<EId>; MAX_VARS],
    ) -> bool {
        match pat {
            CPat::Ground(g) => *g == eid,
            CPat::Var(i, guard) => {
                if !self.guard_ok(ea, *guard, eid) {
                    return false;
                }
                match binds[*i as usize] {
                    // non-linear occurrence: hash-consing makes equal
                    // subterms share an EId, so this is exact equality
                    Some(prev) => prev == eid,
                    None => {
                        binds[*i as usize] = Some(eid);
                        true
                    }
                }
            }
            CPat::Tuple(a, b) => match ea.node(eid) {
                ENode::Tuple(x, y) => {
                    self.matches(ea, a, x, binds) && self.matches(ea, b, y, binds)
                }
                _ => false,
            },
            CPat::Map(f) => match ea.node(eid) {
                ENode::Map(x) => self.matches(ea, f, x, binds),
                _ => false,
            },
            CPat::While(f) => match ea.node(eid) {
                ENode::While(x) => self.matches(ea, f, x, binds),
                _ => false,
            },
            CPat::Compose(g, h) => match ea.node(eid) {
                ENode::Compose(x, y) => {
                    self.matches(ea, g, x, binds) && self.matches(ea, h, y, binds)
                }
                _ => false,
            },
            CPat::Cond(c, t, e) => match ea.node(eid) {
                ENode::Cond(x, y, z) => {
                    self.matches(ea, c, x, binds)
                        && self.matches(ea, t, y, binds)
                        && self.matches(ea, e, z, binds)
                }
                _ => false,
            },
        }
    }

    fn instantiate(
        &mut self,
        ea: &mut ExprArena,
        rhs: &CPat,
        binds: &[Option<EId>; MAX_VARS],
    ) -> EId {
        let e = build_expr(ea, rhs, binds);
        ea.intern(&e)
    }

    /// Spin the rule list at one (already child-rewritten) node.
    fn apply_rules(&mut self, ea: &mut ExprArena, rules: &[CRule], mut eid: EId) -> EId {
        'spin: for _ in 0..MAX_SPINS {
            for rule in rules {
                let mut binds = [None; MAX_VARS];
                if !self.matches(ea, &rule.lhs, eid, &mut binds) {
                    continue;
                }
                let replacement = self.instantiate(ea, &rule.rhs, &binds);
                if !self.gate.allows(ea, eid, replacement) {
                    continue;
                }
                self.stats.rewrites += 1;
                if rule.kind == RuleKind::Rescue {
                    self.stats.rescues += 1;
                }
                *self.stats.fired.entry(rule.name.clone()).or_insert(0) += 1;
                eid = replacement;
                continue 'spin;
            }
            break;
        }
        eid
    }

    /// One bottom-up pass over the DAG rooted at `eid`.
    fn walk(
        &mut self,
        ea: &mut ExprArena,
        rules: &[CRule],
        eid: EId,
        memo: &mut HashMap<EId, EId>,
    ) -> EId {
        if let Some(&done) = memo.get(&eid) {
            return done;
        }
        let rebuilt = match ea.node(eid) {
            ENode::Leaf(_) => eid,
            ENode::Tuple(a, b) => {
                let (a2, b2) = (self.walk(ea, rules, a, memo), self.walk(ea, rules, b, memo));
                if (a2, b2) == (a, b) {
                    eid
                } else {
                    let e = builder::tuple(ea.resolve(a2), ea.resolve(b2));
                    ea.intern(&e)
                }
            }
            ENode::Map(f) => {
                let f2 = self.walk(ea, rules, f, memo);
                if f2 == f {
                    eid
                } else {
                    let e = builder::map(ea.resolve(f2));
                    ea.intern(&e)
                }
            }
            ENode::While(f) => {
                let f2 = self.walk(ea, rules, f, memo);
                if f2 == f {
                    eid
                } else {
                    let e = builder::while_fix(ea.resolve(f2));
                    ea.intern(&e)
                }
            }
            ENode::Compose(g, f) => {
                let (g2, f2) = (self.walk(ea, rules, g, memo), self.walk(ea, rules, f, memo));
                if (g2, f2) == (g, f) {
                    eid
                } else {
                    let e = builder::compose(ea.resolve(g2), ea.resolve(f2));
                    ea.intern(&e)
                }
            }
            ENode::Cond(c, t, e) => {
                let (c2, t2, e2) = (
                    self.walk(ea, rules, c, memo),
                    self.walk(ea, rules, t, memo),
                    self.walk(ea, rules, e, memo),
                );
                if (c2, t2, e2) == (c, t, e) {
                    eid
                } else {
                    let x = builder::cond(ea.resolve(c2), ea.resolve(t2), ea.resolve(e2));
                    ea.intern(&x)
                }
            }
        };
        let out = self.apply_rules(ea, rules, rebuilt);
        memo.insert(eid, out);
        out
    }
}

fn build_expr(ea: &ExprArena, pat: &CPat, binds: &[Option<EId>; MAX_VARS]) -> Expr {
    match pat {
        CPat::Var(i, _) => {
            let bound = binds[*i as usize].expect("validated rule: rhs vars bound on lhs");
            ea.resolve(bound)
        }
        CPat::Ground(g) => ea.resolve(*g),
        CPat::Tuple(a, b) => builder::tuple(build_expr(ea, a, binds), build_expr(ea, b, binds)),
        CPat::Map(f) => builder::map(build_expr(ea, f, binds)),
        CPat::While(f) => builder::while_fix(build_expr(ea, f, binds)),
        CPat::Compose(g, h) => builder::compose(build_expr(ea, g, binds), build_expr(ea, h, binds)),
        CPat::Cond(c, t, e) => builder::cond(
            build_expr(ea, c, binds),
            build_expr(ea, t, binds),
            build_expr(ea, e, binds),
        ),
    }
}

/// `emptyset[t]`, or the any-domain form `compose(emptyset[t], bang)`.
fn is_empty_const(ea: &ExprArena, eid: EId) -> bool {
    let leaf_is = |id: EId, f: &dyn Fn(&Expr) -> bool| match ea.node(id) {
        ENode::Leaf(e) => f(&e),
        _ => false,
    };
    match ea.node(eid) {
        ENode::Leaf(e) => matches!(&*e, Expr::EmptySet(_)),
        ENode::Compose(g, f) => {
            leaf_is(g, &|e| matches!(e, Expr::EmptySet(_))) && leaf_is(f, &|e| e == &Expr::Bang)
        }
        _ => false,
    }
}

/// Rewrite the DAG rooted at `root` with `rules`, to a fixpoint capped
/// at [`MAX_PASSES`]. Returns the (possibly unchanged) root and what
/// happened.
pub fn rewrite(ea: &mut ExprArena, root: EId, rules: &RuleSet) -> (EId, OptStats) {
    let compiled: Vec<CRule> = rules
        .rules()
        .iter()
        .map(|r: &Rule| CRule {
            name: r.name.clone(),
            kind: r.kind,
            lhs: compile_pat(ea, &r.lhs),
            rhs: compile_pat(ea, &r.rhs),
        })
        .collect();
    let mut pass = Pass {
        gate: Gate::new(),
        levels: HashMap::new(),
        stats: OptStats::default(),
    };
    let mut current = root;
    for _ in 0..MAX_PASSES {
        pass.stats.passes += 1;
        let mut memo = HashMap::new();
        let next = pass.walk(ea, &compiled, current, &mut memo);
        if next == current {
            break;
        }
        current = next;
    }
    (current, pass.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_core::queries;

    fn opt(e: &Expr) -> (Expr, OptStats) {
        let mut ea = ExprArena::new();
        let root = ea.intern(e);
        let (out, stats) = rewrite(&mut ea, root, &RuleSet::builtin());
        (ea.resolve(out), stats)
    }

    #[test]
    fn identity_composition_is_eliminated() {
        let (out, stats) = opt(&builder::compose(queries::tc_while(), builder::id()));
        assert_eq!(out, queries::tc_while());
        assert!(stats.rewrites >= 1);
        assert_eq!(stats.rescues, 0);
    }

    #[test]
    fn powerset_route_tc_is_rescued_at_the_root() {
        let (out, stats) = opt(&queries::tc_paths());
        assert_eq!(out, queries::tc_while());
        assert_eq!(stats.rescues, 1);
        assert!(stats.fired.contains_key("rescue-tc-powerset-route"));
    }

    #[test]
    fn nested_powerset_route_is_rescued_and_context_simplified() {
        let wrapped = builder::compose(queries::tc_paths(), builder::id());
        let (out, stats) = opt(&wrapped);
        assert_eq!(out, queries::tc_while());
        assert_eq!(stats.rescues, 1);
    }

    #[test]
    fn siblings_powerset_route_is_rescued() {
        let (out, stats) = opt(&queries::siblings_powerset());
        assert_eq!(out, queries::siblings_direct());
        assert_eq!(stats.rescues, 1);
    }

    #[test]
    fn untouched_queries_keep_their_eid() {
        let mut ea = ExprArena::new();
        let root = ea.intern(&queries::tc_while());
        let (out, stats) = rewrite(&mut ea, root, &RuleSet::builtin());
        assert_eq!(out, root, "no rule fired, same handle must come back");
        assert_eq!(stats.rewrites, 0);
    }

    #[test]
    fn map_fusion_fires_and_exposes_projection() {
        let e = builder::compose(
            builder::map(builder::fst()),
            builder::map(builder::tuple(builder::snd(), builder::fst())),
        );
        let (out, stats) = opt(&e);
        // fusion produces map(compose(fst, tuple(snd, fst))), and the
        // now-adjacent projection collapses it further: map(snd)
        assert_eq!(out, builder::map(builder::snd()));
        assert!(stats.fired.contains_key("map-fusion"));
        assert!(stats.fired.contains_key("fst-tuple"));
    }

    #[test]
    fn dead_branch_elimination_fires() {
        let e = builder::cond(
            builder::always_true(),
            builder::sng(),
            builder::empty_at(nra_core::Type::nat_rel()),
        );
        let (out, _) = opt(&e);
        assert_eq!(out, builder::sng());
    }

    #[test]
    fn rewrite_does_not_worsen_space_class() {
        use nra_symbolic::classify_space;
        // powerset over a `while`-route body: Unanalyzed — rules must
        // leave it alone rather than risk a class regression
        let e = builder::compose(queries::tc_while(), builder::powerset());
        let before = classify_space(&e);
        let (out, _) = opt(&e);
        let after = classify_space(&out);
        assert!(
            crate::cost::rank(&after) <= crate::cost::rank(&before),
            "{before:?} -> {after:?}"
        );
    }
}
