//! Property-based tests for the §5 machinery: the for-large-n decision
//! procedure, quantifier elimination and affine decompositions are checked
//! against brute-force enumeration on randomly generated conditions, and
//! solution witnesses against the conditions they claim to satisfy.

use nra_symbolic::affine::AffineSpace;
use nra_symbolic::condition::{solve_conjunct, Atom, Cmp, Condition, Conjunct};
use nra_symbolic::{Env, SimpleExpr, VarId};
use nra_testkit::{check, Rng};
use std::collections::BTreeSet;

fn var(i: u32) -> VarId {
    VarId(i)
}

fn gen_simple_expr(rng: &mut Rng) -> SimpleExpr {
    match rng.below(3) {
        0 => SimpleExpr::Const(rng.range_i64(0, 5)),
        1 => SimpleExpr::NMinus(rng.range_i64(0, 3)),
        _ => SimpleExpr::Var(var(rng.below(3) as u32), rng.range_i64(-2, 3)),
    }
}

fn gen_atom(rng: &mut Rng) -> Atom {
    Atom {
        lhs: gen_simple_expr(rng),
        rhs: gen_simple_expr(rng),
        cmp: if rng.bool() { Cmp::Eq } else { Cmp::Neq },
    }
}

fn gen_conjunct(rng: &mut Rng, max_atoms: usize) -> Conjunct {
    let len = 1 + rng.usize_below(max_atoms);
    Conjunct {
        atoms: (0..len).map(|_| gen_atom(rng)).collect(),
    }
}

fn gen_condition(rng: &mut Rng) -> Condition {
    let len = 1 + rng.usize_below(2);
    Condition {
        conjuncts: (0..len).map(|_| gen_conjunct(rng, 3)).collect(),
    }
}

/// Brute-force: does an assignment of `vars` into `[0,n]` satisfy `c`?
fn brute_sat(c: &Condition, vars: &[VarId], n: u64) -> bool {
    fn rec(c: &Condition, vars: &[VarId], i: usize, n: u64, env: &mut Env) -> bool {
        if i == vars.len() {
            return c.eval(n, env).unwrap();
        }
        for v in 0..=n {
            env.insert(vars[i], v);
            if rec(c, vars, i + 1, n, env) {
                return true;
            }
        }
        false
    }
    rec(c, vars, 0, n, &mut Env::new())
}

#[test]
fn satisfiability_for_large_n_matches_brute_force() {
    check(
        "satisfiability_for_large_n_matches_brute_force",
        128,
        |_, rng| {
            let c = gen_condition(rng);
            let vars: Vec<VarId> = c.vars().into_iter().collect();
            let verdict = c.satisfiable_large_n();
            // "for large n": check at two consecutive sizes well past the
            // constants involved, to dodge single-n coincidences
            let brute = brute_sat(&c, &vars, 25) && brute_sat(&c, &vars, 26);
            assert_eq!(verdict, brute, "{}", c);
        },
    );
}

#[test]
fn negation_complements_pointwise() {
    check("negation_complements_pointwise", 128, |_, rng| {
        let c = gen_condition(rng);
        let n = rng.range_u64(8, 14);
        let neg = c.not();
        let vars: Vec<VarId> = c.vars().union(&neg.vars()).copied().collect();
        // sample a handful of environments
        for salt in 0..8u64 {
            let env: Env = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    (
                        v,
                        (salt.wrapping_mul(7).wrapping_add(i as u64 * 3)) % (n + 1),
                    )
                })
                .collect();
            assert_eq!(
                c.eval(n, &env).unwrap(),
                !neg.eval(n, &env).unwrap(),
                "env {:?}",
                env
            );
        }
    });
}

#[test]
fn and_or_are_pointwise() {
    check("and_or_are_pointwise", 128, |_, rng| {
        let a = gen_condition(rng);
        let b = gen_condition(rng);
        let n = rng.range_u64(8, 12);
        let both = a.and(&b);
        let either = a.or(&b);
        let vars: Vec<VarId> = both
            .vars()
            .union(&either.vars())
            .copied()
            .chain(a.vars())
            .chain(b.vars())
            .collect();
        for salt in 0..6u64 {
            let env: Env = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, (salt.wrapping_add(i as u64 * 5)) % (n + 1)))
                .collect();
            let av = a.eval(n, &env).unwrap();
            let bv = b.eval(n, &env).unwrap();
            assert_eq!(both.eval(n, &env).unwrap(), av && bv);
            assert_eq!(either.eval(n, &env).unwrap(), av || bv);
        }
    });
}

#[test]
fn quantifier_elimination_matches_brute_exists() {
    check(
        "quantifier_elimination_matches_brute_exists",
        128,
        |_, rng| {
            let c = gen_condition(rng);
            // eliminate x0; the residual is over the remaining variables
            let elim = c.exists_elim(&[var(0)]);
            let rest: Vec<VarId> = c
                .vars()
                .union(&elim.vars())
                .copied()
                .filter(|v| *v != var(0))
                .collect();
            let n = 24u64;
            // sample environments for the remaining variables
            for salt in 0..10u64 {
                let env: Env = rest
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        (
                            v,
                            (salt.wrapping_mul(11).wrapping_add(i as u64 * 7)) % (n + 1),
                        )
                    })
                    .collect();
                let mut brute = false;
                let mut probe = env.clone();
                for x in 0..=n {
                    probe.insert(var(0), x);
                    if c.eval(n, &probe).unwrap() {
                        brute = true;
                        break;
                    }
                }
                assert_eq!(
                    elim.eval(n, &env).unwrap(),
                    brute,
                    "c = {}, elim = {}, env {:?}",
                    c,
                    elim,
                    env
                );
            }
        },
    );
}

#[test]
fn affine_space_points_equal_conjunct_solutions() {
    check(
        "affine_space_points_equal_conjunct_solutions",
        128,
        |_, rng| {
            let conj = gen_conjunct(rng, 3);
            let vars: Vec<VarId> = conj.vars().into_iter().collect();
            if vars.is_empty() {
                return;
            }
            let n = 11u64;
            let space = AffineSpace::from_conjunct(&conj, &vars);
            // brute-force the solutions
            let mut expect: BTreeSet<Vec<i128>> = BTreeSet::new();
            let k = vars.len();
            let total = (n as usize + 1).pow(k as u32);
            for idx in 0..total {
                let mut env = Env::new();
                let mut rem = idx;
                for &v in &vars {
                    env.insert(v, (rem % (n as usize + 1)) as u64);
                    rem /= n as usize + 1;
                }
                if conj.eval(n, &env) == Some(true) {
                    expect.insert(vars.iter().map(|v| env[v] as i128).collect());
                }
            }
            match space {
                None => {
                    // unsat for large n: allow a small-n mismatch only if the
                    // solutions also vanish at n+13 … they might not (boundary
                    // effects) — so only require: solutions are not "growing".
                    let later = {
                        let mut any = false;
                        let n2 = n + 13;
                        let total = (n2 as usize + 1).pow(k as u32).min(200_000);
                        for idx in 0..total {
                            let mut env = Env::new();
                            let mut rem = idx;
                            for &v in &vars {
                                env.insert(v, (rem % (n2 as usize + 1)) as u64);
                                rem /= n2 as usize + 1;
                            }
                            if conj.eval(n2, &env) == Some(true) {
                                any = true;
                                break;
                            }
                        }
                        any
                    };
                    assert!(
                        !later,
                        "solver says unsat-for-large-n but {} has solutions at n=24",
                        conj
                    );
                }
                Some(space) => {
                    assert_eq!(
                        space.enumerate(n, &Env::new()),
                        expect,
                        "conjunct {}, space {}",
                        conj,
                        space
                    );
                }
            }
        },
    );
}

#[test]
fn solution_witnesses_satisfy() {
    check("solution_witnesses_satisfy", 128, |_, rng| {
        let conj = gen_conjunct(rng, 4);
        let vars: Vec<VarId> = conj.vars().into_iter().collect();
        if let Some(sol) = solve_conjunct(&conj, &vars) {
            // the witness must satisfy the conjunct at a large n
            let n = 30u64;
            if let Some(env) = sol.witness(n, &Env::new()) {
                assert_eq!(conj.eval(n, &env), Some(true), "{} with {:?}", conj, env);
            }
        }
    });
}
