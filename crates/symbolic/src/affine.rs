//! Affine spaces and variable affine spaces (§5.3).
//!
//! > "We define an **affine space** to be a subset U of `[n]ᵏ`, of the form
//! > `{ē(ᾱ) | ᾱ ∈ [n]ᵖ, Γ(ᾱ)}`, where `ē(ᾱ)` is a vector of simple
//! > expressions whose free variables are exactly `ᾱ`, and `Γ(ᾱ)` is a
//! > conjunction of negative simple conditions. `p` is called the
//! > **dimension** of U."
//!
//! Properties implemented and tested (Prop 5.2):
//! 1. every satisfiable conjunctive condition describes an affine space,
//!    and conversely ([`AffineSpace::from_conjunct`]);
//! 2. a p-dimensional space has `nᵖ − O(nᵖ⁻¹)` elements — in particular a
//!    0-dimensional space has exactly one and no space is empty
//!    ([`AffineSpace::count`], checked in tests and experiment E6);
//! 3. the intersection of two affine spaces is empty or affine
//!    ([`AffineSpace::intersect`]).
//!
//! A **variable** affine space `V(y⃗)` (Prop 5.5) additionally mentions
//! rigid parameter variables in its coordinates; the decomposition
//! `C(x⃗, y⃗) ⟺ y⃗ ∈ U ∧ x⃗ ∈ V(y⃗)` is [`decompose`].

use crate::condition::{solve_conjunct, Atom, Conjunct, FixedTerm, Resolved, Solution};
use crate::simple::SimpleExpr;
use crate::vars::{Env, VarId};
use std::collections::BTreeSet;
use std::fmt;

/// One coordinate expression `eᵢ(ᾱ)` of an affine space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Coord {
    /// A constant.
    Const(i64),
    /// `n − c`.
    NMinus(i64),
    /// `αₚ + c` for parameter index `p` — the coordinate is *free* (§5.3).
    Param(usize, i64),
    /// `y + c` for a rigid variable `y` — occurs only in *variable* affine
    /// spaces (Prop 5.5).
    Rigid(VarId, i64),
}

impl Coord {
    fn from_resolved(r: Resolved) -> Coord {
        match r {
            Resolved::Fixed(FixedTerm::Const(c)) => Coord::Const(c),
            Resolved::Fixed(FixedTerm::NMinus(c)) => Coord::NMinus(c),
            Resolved::Fixed(FixedTerm::Rigid(v, c)) => Coord::Rigid(v, c),
            Resolved::Free(p, c) => Coord::Param(p, c),
        }
    }

    /// Integer value under a parameter assignment and rigid environment.
    pub fn eval(&self, n: u64, params: &[u64], rigid: &Env) -> Option<i128> {
        Some(match *self {
            Coord::Const(c) => c as i128,
            Coord::NMinus(c) => n as i128 - c as i128,
            Coord::Param(p, c) => *params.get(p)? as i128 + c as i128,
            Coord::Rigid(v, c) => *rigid.get(&v)? as i128 + c as i128,
        })
    }

    /// True iff the coordinate mentions a parameter (§5.3: the space is
    /// *free along* this dimension).
    pub fn is_free(&self) -> bool {
        matches!(self, Coord::Param(_, _))
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Coord::Const(c) => write!(f, "{}", c),
            Coord::NMinus(0) => write!(f, "n"),
            Coord::NMinus(c) if c > 0 => write!(f, "n-{}", c),
            Coord::NMinus(c) => write!(f, "n+{}", -c),
            Coord::Param(p, 0) => write!(f, "a{}", p),
            Coord::Param(p, c) if c > 0 => write!(f, "a{}+{}", p, c),
            Coord::Param(p, c) => write!(f, "a{}-{}", p, -c),
            Coord::Rigid(v, 0) => write!(f, "{}", v),
            Coord::Rigid(v, c) if c > 0 => write!(f, "{}+{}", v, c),
            Coord::Rigid(v, c) => write!(f, "{}-{}", v, -c),
        }
    }
}

/// An affine space `{ē(ᾱ) | ᾱ ∈ [n]ᵖ, Γ(ᾱ)}` (§5.3), possibly *variable*
/// (mentioning rigid variables `y⃗`, Prop 5.5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineSpace {
    /// The dimension `p` — number of parameters.
    pub dimension: usize,
    /// The coordinate vector `ē(ᾱ)`.
    pub coords: Vec<Coord>,
    /// Γ: pairs required to *differ* (negative simple conditions).
    pub exclusions: Vec<(Coord, Coord)>,
}

impl AffineSpace {
    /// Build the affine solution space of a conjunct over the variable
    /// vector `vars` (which fixes the coordinate order). Returns `None`
    /// when the conjunct is unsatisfiable for large `n` (Prop 5.2.1:
    /// satisfiable conjunctive conditions ⟺ affine spaces).
    ///
    /// Variables of the conjunct outside `vars` become rigid
    /// ([`Coord::Rigid`]) — the variable-affine-space case.
    pub fn from_conjunct(conjunct: &Conjunct, vars: &[VarId]) -> Option<AffineSpace> {
        let sol = solve_conjunct(conjunct, vars)?;
        Some(AffineSpace::from_solution(&sol, vars))
    }

    /// Build from an already-computed solver [`Solution`].
    pub fn from_solution(sol: &Solution, vars: &[VarId]) -> AffineSpace {
        let coords = vars
            .iter()
            .map(|v| Coord::from_resolved(sol.assignments[v]))
            .collect();
        let exclusions = sol
            .exclusions
            .iter()
            .map(|&(a, b)| (Coord::from_resolved(a), Coord::from_resolved(b)))
            .collect();
        AffineSpace {
            dimension: sol.dimension,
            coords,
            exclusions,
        }
    }

    /// True iff the space mentions rigid variables (Prop 5.5).
    pub fn is_variable(&self) -> bool {
        let mentions = |c: &Coord| matches!(c, Coord::Rigid(_, _));
        self.coords.iter().any(mentions)
            || self
                .exclusions
                .iter()
                .any(|(a, b)| mentions(a) || mentions(b))
    }

    /// Dimensions along which the space is free/bound (§5.3).
    pub fn free_dimensions(&self) -> Vec<usize> {
        self.coords
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_free())
            .map(|(i, _)| i)
            .collect()
    }

    /// Enumerate the points at a concrete `n` (and rigid environment, for
    /// variable spaces). Points with a negative coordinate are outside
    /// `[n]ᵏ`'s ambient ℕᵏ and are skipped.
    pub fn enumerate(&self, n: u64, rigid: &Env) -> BTreeSet<Vec<i128>> {
        let mut out = BTreeSet::new();
        let mut params = vec![0u64; self.dimension];
        self.enumerate_rec(n, rigid, 0, &mut params, &mut out);
        out
    }

    fn enumerate_rec(
        &self,
        n: u64,
        rigid: &Env,
        depth: usize,
        params: &mut Vec<u64>,
        out: &mut BTreeSet<Vec<i128>>,
    ) {
        if depth == self.dimension {
            for (a, b) in &self.exclusions {
                let (Some(av), Some(bv)) = (a.eval(n, params, rigid), b.eval(n, params, rigid))
                else {
                    return;
                };
                if av == bv {
                    return;
                }
            }
            let mut point = Vec::with_capacity(self.coords.len());
            for c in &self.coords {
                // §5.3: an affine space is a subset of [n]ᵏ.
                match c.eval(n, params, rigid) {
                    Some(v) if v >= 0 && v <= n as i128 => point.push(v),
                    _ => return,
                }
            }
            out.insert(point);
            return;
        }
        for v in 0..=n {
            params[depth] = v;
            self.enumerate_rec(n, rigid, depth + 1, params, out);
        }
    }

    /// Number of points at a concrete `n` (Prop 5.2.2 predicts
    /// `nᵖ − O(nᵖ⁻¹)`).
    pub fn count(&self, n: u64, rigid: &Env) -> usize {
        self.enumerate(n, rigid).len()
    }

    /// Intersection of two **closed** affine spaces of equal arity
    /// (Prop 5.2.3: empty or affine). `None` = empty for large n.
    pub fn intersect(&self, other: &AffineSpace) -> Option<AffineSpace> {
        assert_eq!(
            self.coords.len(),
            other.coords.len(),
            "intersection requires equal arity"
        );
        assert!(
            !self.is_variable() && !other.is_variable(),
            "intersection is defined for closed spaces"
        );
        // Encode: variables v0..v_{k-1} for the joint point, u_i for
        // self's parameters, w_j for other's parameters.
        let k = self.coords.len() as u32;
        let p1 = self.dimension as u32;
        let point = |i: u32| VarId(i);
        let par1 = |i: usize| VarId(k + i as u32);
        let par2 = |i: usize| VarId(k + p1 + i as u32);

        let coord_expr = |c: &Coord, par: &dyn Fn(usize) -> VarId| -> SimpleExpr {
            match *c {
                Coord::Const(cc) => SimpleExpr::Const(cc),
                Coord::NMinus(cc) => SimpleExpr::NMinus(cc),
                Coord::Param(p, cc) => SimpleExpr::Var(par(p), cc),
                Coord::Rigid(v, cc) => SimpleExpr::Var(v, cc),
            }
        };

        let mut atoms = Vec::new();
        for (i, (a, b)) in self.coords.iter().zip(&other.coords).enumerate() {
            atoms.push(Atom::eq(
                SimpleExpr::var(point(i as u32)),
                coord_expr(a, &par1),
            ));
            atoms.push(Atom::eq(
                SimpleExpr::var(point(i as u32)),
                coord_expr(b, &par2),
            ));
        }
        for (a, b) in &self.exclusions {
            atoms.push(Atom::neq(coord_expr(a, &par1), coord_expr(b, &par1)));
        }
        for (a, b) in &other.exclusions {
            atoms.push(Atom::neq(coord_expr(a, &par2), coord_expr(b, &par2)));
        }
        let conjunct = Conjunct { atoms };
        let all_vars: Vec<VarId> = (0..k + p1 + other.dimension as u32).map(VarId).collect();
        let sol = solve_conjunct(&conjunct, &all_vars)?;
        // Project onto the point variables.
        let coords = (0..k)
            .map(|i| Coord::from_resolved(sol.assignments[&point(i)]))
            .collect::<Vec<_>>();
        // Keep only exclusions among parameters that the point coords
        // mention (others constrain dead parameters; dropping them can
        // only grow the space, but every dead parameter is free so the
        // exclusion removes nothing for large n).
        let mentioned: BTreeSet<usize> = coords
            .iter()
            .filter_map(|c| match c {
                Coord::Param(p, _) => Some(*p),
                _ => None,
            })
            .collect();
        let exclusions = sol
            .exclusions
            .iter()
            .map(|&(a, b)| (Coord::from_resolved(a), Coord::from_resolved(b)))
            .filter(|(a, b)| {
                let param_of = |c: &Coord| match c {
                    Coord::Param(p, _) => Some(*p),
                    _ => None,
                };
                [param_of(a), param_of(b)]
                    .into_iter()
                    .flatten()
                    .all(|p| mentioned.contains(&p))
            })
            .collect();
        // Renumber parameters densely.
        let renumbering: std::collections::BTreeMap<usize, usize> = mentioned
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();
        let renum = |c: Coord| match c {
            Coord::Param(p, off) => Coord::Param(renumbering[&p], off),
            other => other,
        };
        Some(AffineSpace {
            dimension: renumbering.len(),
            coords: coords.into_iter().map(renum).collect(),
            exclusions: {
                let ex: Vec<(Coord, Coord)> = exclusions;
                ex.into_iter().map(|(a, b)| (renum(a), renum(b))).collect()
            },
        })
    }
}

impl fmt::Display for AffineSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", c)?;
        }
        write!(f, ") | ā ∈ [n]^{}", self.dimension)?;
        for (a, b) in &self.exclusions {
            write!(f, ", {} ≠ {}", a, b)?;
        }
        write!(f, "}}")
    }
}

/// Prop 5.5: decompose a satisfiable conjunctive condition `C(x⃗, y⃗)` into
/// an affine space `U` (over `y⃗`) and a variable affine space `V(y⃗)`
/// (over `x⃗`) with `C(x⃗, y⃗) ⟺ y⃗ ∈ U ∧ x⃗ ∈ V(y⃗)` and `V(y⃗) ≠ ∅` for
/// every `y⃗ ∈ U` (n large). Returns `None` when `C` is unsatisfiable.
pub fn decompose(
    conjunct: &Conjunct,
    xs: &[VarId],
    ys: &[VarId],
) -> Option<(AffineSpace, AffineSpace)> {
    let sol_x = solve_conjunct(conjunct, xs)?;
    let v_space = AffineSpace::from_solution(&sol_x, xs);
    let u_space = AffineSpace::from_conjunct(&sol_x.residual, ys)?;
    Some((u_space, v_space))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }
    fn x(i: u32) -> SimpleExpr {
        SimpleExpr::var(v(i))
    }
    fn c(k: i64) -> SimpleExpr {
        SimpleExpr::Const(k)
    }
    fn nm(k: i64) -> SimpleExpr {
        SimpleExpr::NMinus(k)
    }

    /// The paper's Example 5.4, U₁: condition x₁ = 3 ∧ x₂ = x₄ − 5 over
    /// (x₁, x₂, x₃, x₄): an affine space of dimension 2.
    #[test]
    fn example_5_4_u1() {
        let conj = Conjunct {
            atoms: vec![Atom::eq(x(1), c(3)), Atom::eq(x(2), x(4).shift(-5))],
        };
        let space = AffineSpace::from_conjunct(&conj, &[v(1), v(2), v(3), v(4)]).unwrap();
        assert_eq!(space.dimension, 2);
        assert!(!space.is_variable());
        // bound along dimension 0 (the coordinate x₁ = 3), free elsewhere
        assert_eq!(space.free_dimensions(), vec![1, 2, 3]);
        // count: x₄ ∈ [5, n] (since x₂ = x₄ − 5 ≥ 0 at point level), x₃ free
        // wait: Example 5.4's U₁ = {(3, α₁ − 5, α₂, α₁)}: for points to be
        // in ℕ⁴ we need α₁ ≥ 5, so count = (n−4)(n+1) = n² − O(n).
        let n = 20;
        assert_eq!(space.count(n, &Env::new()), ((n - 4) * (n + 1)) as usize);
    }

    /// The paper's Example 5.4, U₂: dimension 3 with exclusions.
    #[test]
    fn example_5_4_u2() {
        // U₂ = {(n−3, α₁, α₂, α₃) | α₁ ≠ α₂ ∧ α₁ ≠ α₃ + 5}
        let conj = Conjunct {
            atoms: vec![
                Atom::eq(x(0), nm(3)),
                Atom::neq(x(1), x(2)),
                Atom::neq(x(1), x(3).shift(5)),
            ],
        };
        let space = AffineSpace::from_conjunct(&conj, &[v(0), v(1), v(2), v(3)]).unwrap();
        assert_eq!(space.dimension, 3);
        assert_eq!(space.exclusions.len(), 2);
        // |U₂| = (n+1)³ − 2(n+1)² + |α₁≠α₂ ∧ α₁≠α₃+5 double-count|
        // just check the n³ − O(n²) shape numerically:
        let n1 = 12u64;
        let n2 = 24u64;
        let c1 = space.count(n1, &Env::new()) as f64;
        let c2 = space.count(n2, &Env::new()) as f64;
        let r1 = c1 / ((n1 as f64 + 1.0).powi(3));
        let r2 = c2 / ((n2 as f64 + 1.0).powi(3));
        assert!(r2 > r1, "density increases towards 1: {r1} vs {r2}");
        assert!(r2 > 0.85);
    }

    /// The paper's Example 5.4, U₃: a *variable* affine space.
    #[test]
    fn example_5_4_u3() {
        // U₃(y) = {(α + 2, y − 1) | α ≠ n ∧ α ≠ y − 3} — dimension 1,
        // empty when y = 1 (coordinate y − 1 … the paper says "empty when
        // y = 1"; with our ℕ-point semantics y − 1 < 0 at y = 0 as well —
        // the paper's wording refers to its guard form; we check y = 0).
        let conj = Conjunct {
            atoms: vec![
                Atom::eq(x(0), x(2).shift(2)),  // x₀ = α + 2 with α := x₂
                Atom::eq(x(1), x(3).shift(-1)), // x₁ = y − 1 with y := x₃ rigid
                Atom::neq(x(2), nm(0)),
                Atom::neq(x(2), x(3).shift(-3)),
            ],
        };
        let space = AffineSpace::from_conjunct(&conj, &[v(0), v(1), v(2)]).unwrap();
        assert!(space.is_variable());
        assert_eq!(space.dimension, 1);
        let n = 10;
        let rigid: Env = [(v(3), 5u64)].into_iter().collect();
        let pts = space.enumerate(n, &rigid);
        assert!(pts.iter().all(|p| p[1] == 4), "second coord = y − 1 = 4");
        assert!(!pts.is_empty());
        // α ranges over [0,n] minus {n, y−3=2}, and the coordinate α+2
        // must stay inside [n] (affine spaces live in [n]ᵏ): α ≤ n−2.
        // So α ∈ {0..8} \ {2} → 8 points, all with distinct first coords.
        assert_eq!(pts.len(), 8);
        // y = 0 ⟹ second coordinate −1 ∉ ℕ ⟹ empty
        let rigid0: Env = [(v(3), 0u64)].into_iter().collect();
        assert!(space.enumerate(n, &rigid0).is_empty());
    }

    #[test]
    fn zero_dimensional_spaces_have_one_point() {
        let conj = Conjunct {
            atoms: vec![Atom::eq(x(0), c(3)), Atom::eq(x(1), nm(2))],
        };
        let space = AffineSpace::from_conjunct(&conj, &[v(0), v(1)]).unwrap();
        assert_eq!(space.dimension, 0);
        for n in [5u64, 9, 17] {
            assert_eq!(space.count(n, &Env::new()), 1, "n={n}");
        }
    }

    #[test]
    fn growth_matches_dimension() {
        // {(α, β, α+1) | α ≠ β}: dimension 2. The coordinate α+1 keeps
        // points in [n]ᵏ only for α ≤ n−1, so the count is
        // n·(n+1) − n = n² — the predicted n^p − O(n^{p−1}).
        let conj = Conjunct {
            atoms: vec![Atom::eq(x(2), x(0).shift(1)), Atom::neq(x(0), x(1))],
        };
        let space = AffineSpace::from_conjunct(&conj, &[v(0), v(1), v(2)]).unwrap();
        assert_eq!(space.dimension, 2);
        for n in [6u64, 11] {
            assert_eq!(space.count(n, &Env::new()), (n * n) as usize, "n={n}");
        }
    }

    #[test]
    fn intersection_of_affine_spaces() {
        // A = {(α, α+1)} and B = {(β, 4)}: intersection = {(3, 4)}
        let a = AffineSpace {
            dimension: 1,
            coords: vec![Coord::Param(0, 0), Coord::Param(0, 1)],
            exclusions: vec![],
        };
        let b = AffineSpace {
            dimension: 1,
            coords: vec![Coord::Param(0, 0), Coord::Const(4)],
            exclusions: vec![],
        };
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.dimension, 0);
        let pts = i.enumerate(10, &Env::new());
        assert_eq!(pts.into_iter().collect::<Vec<_>>(), vec![vec![3, 4]]);
        // A ∩ A = A
        let aa = a.intersect(&a).unwrap();
        assert_eq!(aa.dimension, 1);
        assert_eq!(aa.count(9, &Env::new()), a.count(9, &Env::new()));
    }

    #[test]
    fn empty_intersection() {
        // {(α, 0)} ∩ {(β, 1)} = ∅
        let a = AffineSpace {
            dimension: 1,
            coords: vec![Coord::Param(0, 0), Coord::Const(0)],
            exclusions: vec![],
        };
        let b = AffineSpace {
            dimension: 1,
            coords: vec![Coord::Param(0, 0), Coord::Const(1)],
            exclusions: vec![],
        };
        assert!(a.intersect(&b).is_none());
        // {(α, α)} ∩ {(β, β+1)} = ∅
        let d0 = AffineSpace {
            dimension: 1,
            coords: vec![Coord::Param(0, 0), Coord::Param(0, 0)],
            exclusions: vec![],
        };
        let d1 = AffineSpace {
            dimension: 1,
            coords: vec![Coord::Param(0, 0), Coord::Param(0, 1)],
            exclusions: vec![],
        };
        assert!(d0.intersect(&d1).is_none());
    }

    #[test]
    fn intersection_agrees_with_enumeration() {
        let a = AffineSpace {
            dimension: 2,
            coords: vec![Coord::Param(0, 0), Coord::Param(1, 0)],
            exclusions: vec![(Coord::Param(0, 0), Coord::Param(1, 0))],
        };
        let b = AffineSpace {
            dimension: 1,
            coords: vec![Coord::Param(0, 0), Coord::Param(0, 2)],
            exclusions: vec![(Coord::Param(0, 0), Coord::Const(0))],
        };
        let i = a.intersect(&b).unwrap();
        let n = 9;
        let expect: BTreeSet<Vec<i128>> = a
            .enumerate(n, &Env::new())
            .intersection(&b.enumerate(n, &Env::new()))
            .cloned()
            .collect();
        assert_eq!(i.enumerate(n, &Env::new()), expect);
    }

    #[test]
    fn decomposition_prop_5_5() {
        // C(x, y) = (x₀ = y + 1 ∧ x₁ ≠ x₀ ∧ y ≠ 2)
        let conj = Conjunct {
            atoms: vec![
                Atom::eq(x(0), x(9).shift(1)),
                Atom::neq(x(1), x(0)),
                Atom::neq(x(9), c(2)),
            ],
        };
        let (u, vspace) = decompose(&conj, &[v(0), v(1)], &[v(9)]).unwrap();
        assert!(!u.is_variable());
        assert!(vspace.is_variable());
        // check the equivalence C(x⃗,y) ⟺ y ∈ U ∧ x⃗ ∈ V(y) pointwise
        let n = 7;
        for yv in 0..=n {
            let rigid: Env = [(v(9), yv)].into_iter().collect();
            let in_u = u.enumerate(n, &Env::new()).contains(&vec![yv as i128]);
            for x0 in 0..=n {
                for x1 in 0..=n {
                    let env: Env = [(v(0), x0), (v(1), x1), (v(9), yv)].into_iter().collect();
                    let holds = Conjunct::eval(&conj, n, &env).unwrap();
                    let in_v = vspace
                        .enumerate(n, &rigid)
                        .contains(&vec![x0 as i128, x1 as i128]);
                    assert_eq!(holds, in_u && in_v, "y={yv} x=({x0},{x1})");
                }
            }
        }
    }

    #[test]
    fn display() {
        let s = AffineSpace {
            dimension: 2,
            coords: vec![Coord::Const(3), Coord::Param(0, -5), Coord::Param(1, 0)],
            exclusions: vec![(Coord::Param(0, 0), Coord::Param(1, 0))],
        };
        assert_eq!(s.to_string(), "{(3, a0-5, a1) | ā ∈ [n]^2, a0 ≠ a1}");
    }
}
