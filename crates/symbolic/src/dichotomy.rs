//! The powerset dichotomy (Lemma 5.8).
//!
//! > "it suffices to prove that one of the following cases must occur:
//! > 1. There is some number m, independent of n …, such that for any n
//! >    and any y⃗ satisfying C(y⃗), the set {A | x⃗ = 0,n} has at most m
//! >    elements. More, in this case we can actually find abstract
//! >    expressions A₁, …, Aₘ naming these at most m elements. In this
//! >    case powerset({A | x⃗ = 0,n}) ⇓ A', where A' is just the set of
//! >    all 2^m subsets of {A₁, …, Aₘ}. Obviously, in this case f is
//! >    equivalent to the m-th approximation of powerset …
//! > 2. For every n, there is some environment ρ …, such that the set
//! >    [{A | x⃗ = 0,n}]ρ contains at least Ω(n) distinct elements. Then
//! >    [the complexity is Ω(2^{cn})]."
//!
//! [`analyze_cardinality`] decides between the two cases: a comprehension
//! block is *bounded* when every binder is pinned (dimension 0, or
//! dimension > 0 with the body not depending on the free binders), and
//! *linear* when a free binder feeds the element expression — the
//! certificate names that binder. The full Ramsey generality of the
//! paper's Lemma 5.6 (conditions under which *distinctness* must be
//! argued) lives in [`crate::ramsey`]; on abstract expressions produced by
//! the Lemma 5.1 evaluator from the query corpus, the syntactic dependence
//! test coincides with the semantic one, and every certificate is
//! cross-checked numerically by the experiment suite (E7).

use crate::aexpr::{AExpr, Block};
use crate::condition::{solve_conjunct, Condition, Resolved};
use crate::evalem::{to_blocks, SymbolicError};
use crate::vars::{VarGen, VarId};
use std::fmt;

/// Evidence that an abstract set has `Ω(n)` distinct elements (Lemma 5.8
/// case 2): in block `block_index`, conjunct `conjunct_index` of the
/// guard, binder `variable` remains a free parameter and occurs in the
/// element expression `body`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearCertificate {
    /// Index of the offending comprehension block.
    pub block_index: usize,
    /// Index of the satisfiable guard conjunct with a free binder.
    pub conjunct_index: usize,
    /// The free binder that generates Ω(n) distinct elements.
    pub variable: VarId,
    /// Rendering of the element expression that depends on it.
    pub body: String,
}

impl fmt::Display for LinearCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block {}, conjunct {}: binder {} is free and occurs in element {}",
            self.block_index, self.conjunct_index, self.variable, self.body
        )
    }
}

/// The verdict of the cardinality analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetCardinality {
    /// Case 1: at most `witnesses.len()` elements for every n and ρ; each
    /// witness is an element expression with the condition under which it
    /// is present.
    Bounded {
        /// The named elements `A₁, …, Aₘ` with their presence conditions.
        witnesses: Vec<(AExpr, Condition)>,
    },
    /// Case 2: `Ω(n)` distinct elements.
    LinearlyMany(LinearCertificate),
}

impl SetCardinality {
    /// The bound `m` in the bounded case.
    pub fn bound(&self) -> Option<usize> {
        match self {
            SetCardinality::Bounded { witnesses } => Some(witnesses.len()),
            SetCardinality::LinearlyMany(_) => None,
        }
    }
}

/// Decide the Lemma 5.8 dichotomy for a set-typed abstract expression.
pub fn analyze_cardinality(a: &AExpr) -> Result<SetCardinality, SymbolicError> {
    let blocks = to_blocks(a)?;
    let mut witnesses: Vec<(AExpr, Condition)> = Vec::new();
    for (bi, block) in blocks.iter().enumerate() {
        // Conditioning on definedness keeps vacuous dependencies (an
        // always-undefined body) from producing spurious certificates.
        let guard = block.guard.and(&block.body.definedness()).simplified();
        for (ci, conjunct) in guard.conjuncts.iter().enumerate() {
            let Some(sol) = solve_conjunct(conjunct, &block.vars) else {
                continue; // unsatisfiable conjunct contributes nothing
            };
            // substitute pinned binders into the body
            let mut body = (*block.body).clone();
            let mut free_binders = Vec::new();
            for &v in &block.vars {
                match sol.assignments[&v] {
                    Resolved::Fixed(_) => {
                        let se = sol.assignments[&v]
                            .pinned_simple()
                            .expect("fixed assignment has a simple form");
                        body = body.subst(v, &se);
                    }
                    Resolved::Free(_, _) => free_binders.push(v),
                }
            }
            let body_frees = body.free_vars();
            if let Some(&witness_var) = free_binders.iter().find(|v| body_frees.contains(v)) {
                return Ok(SetCardinality::LinearlyMany(LinearCertificate {
                    block_index: bi,
                    conjunct_index: ci,
                    variable: witness_var,
                    body: body.to_string(),
                }));
            }
            // bounded contribution: one element, present when the
            // residual (conditions on the free variables of `a`) holds
            let presence = Condition {
                conjuncts: vec![sol.residual.clone()],
            };
            let witness = (body, presence);
            if !witnesses.contains(&witness) {
                witnesses.push(witness);
            }
        }
    }
    Ok(SetCardinality::Bounded { witnesses })
}

/// Lemma 5.8 case 1, the construction: the abstract powerset of a set
/// named by `witnesses` — "A' is just the set of all 2^m subsets of
/// {A₁, …, Aₘ}". `approximation = Some(k)` restricts to subsets of
/// cardinality ≤ k (the `powersetₘ` primitive).
pub fn powerset_of_witnesses(
    witnesses: &[(AExpr, Condition)],
    approximation: Option<u64>,
    max_witnesses: usize,
) -> Result<AExpr, SymbolicError> {
    let m = witnesses.len();
    if m > max_witnesses {
        return Err(SymbolicError::TooManyWitnesses {
            found: m,
            cap: max_witnesses,
        });
    }
    let keep = |mask: usize| match approximation {
        Some(k) => (mask.count_ones() as u64) <= k,
        None => true,
    };
    let mut outer = Vec::new();
    for mask in 0usize..(1 << m) {
        if !keep(mask) {
            continue;
        }
        let subset_blocks: Vec<Block> = witnesses
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, (w, c))| Block::new(vec![], c.clone(), w.clone()))
            .collect();
        outer.push(Block::new(
            vec![],
            Condition::tru(),
            AExpr::Set(subset_blocks),
        ));
    }
    Ok(AExpr::Set(outer))
}

/// Lemma 5.8, the `powerset` case: either return the abstract expression
/// for `powerset(a)` (bounded case), or report the exponential
/// certificate. `approximation` restricts to subsets of cardinality ≤ m
/// (the `powersetₘ` primitive; on an Ω(n) set `powersetₘ` is polynomial
/// but its result is outside the abstract language, so it is evaluated
/// concretely instead — matching the paper's treatment).
pub fn apply_powerset(
    a: &AExpr,
    approximation: Option<u64>,
    max_witnesses: usize,
    _gen: &mut VarGen,
) -> Result<AExpr, SymbolicError> {
    match analyze_cardinality(a)? {
        SetCardinality::LinearlyMany(cert) => Err(SymbolicError::ExponentialPowerset(cert)),
        SetCardinality::Bounded { witnesses } => {
            powerset_of_witnesses(&witnesses, approximation, max_witnesses)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aexpr::chain_aexpr;
    use crate::condition::Condition;
    use crate::simple::SimpleExpr;
    use crate::vars::{Env, VarGen};
    use nra_core::value::Value;

    #[test]
    fn chain_is_linear() {
        // {(x, x+1) when x ≠ n | x} has Ω(n) elements — the key step in
        // the Theorem 4.1 proof: powerset(rₙ) must blow up.
        let mut gen = VarGen::new();
        let a = chain_aexpr(&mut gen);
        match analyze_cardinality(&a).unwrap() {
            SetCardinality::LinearlyMany(cert) => {
                assert!(cert.body.contains("x0"));
            }
            other => panic!("expected linear, got {other:?}"),
        }
        // and powerset of it reports the exponential verdict
        let err = apply_powerset(&a, None, 16, &mut gen).unwrap_err();
        assert!(matches!(err, SymbolicError::ExponentialPowerset(_)));
    }

    #[test]
    fn pinned_sets_are_bounded() {
        // {(x, n−1) when x = 3 | x} ∪ {5} — two witnesses
        let mut gen = VarGen::new();
        let x = gen.fresh();
        let a = AExpr::union(
            AExpr::guarded_comprehension(
                vec![x],
                Condition::eq(SimpleExpr::var(x), SimpleExpr::Const(3)),
                AExpr::pair(AExpr::var(x), AExpr::Num(SimpleExpr::NMinus(1))),
            ),
            AExpr::singleton(AExpr::pair(AExpr::num(5), AExpr::num(5))),
        );
        match analyze_cardinality(&a).unwrap() {
            SetCardinality::Bounded { witnesses } => {
                assert_eq!(witnesses.len(), 2);
            }
            other => panic!("expected bounded, got {other:?}"),
        }
    }

    #[test]
    fn constant_body_with_free_binder_is_bounded() {
        // {7 | x = 0,n}: one element despite the free binder
        let mut gen = VarGen::new();
        let x = gen.fresh();
        let a = AExpr::comprehension(vec![x], AExpr::num(7));
        let card = analyze_cardinality(&a).unwrap();
        assert_eq!(card.bound(), Some(1));
    }

    #[test]
    fn bounded_powerset_matches_concrete_powerset() {
        // a = {3} ∪ {n}: powerset(a) has 4 subsets
        let a = AExpr::union(
            AExpr::singleton(AExpr::num(3)),
            AExpr::singleton(AExpr::Num(SimpleExpr::n())),
        );
        let mut gen = VarGen::new();
        let p = apply_powerset(&a, None, 16, &mut gen).unwrap();
        for n in 4..9u64 {
            let base = a.eval(n, &Env::new()).unwrap();
            let concrete = nra_eval::eval(&nra_core::builder::powerset(), &base).unwrap();
            assert_eq!(p.eval(n, &Env::new()), Some(concrete), "n={n}");
        }
        // at n = 3 the two witnesses coincide (3 = n) — the abstract
        // powerset still matches because equal subsets collapse
        let base3 = a.eval(3, &Env::new()).unwrap();
        assert_eq!(base3.cardinality(), Some(1));
        let concrete3 = nra_eval::eval(&nra_core::builder::powerset(), &base3).unwrap();
        assert_eq!(p.eval(3, &Env::new()), Some(concrete3));
    }

    #[test]
    fn approximated_powerset_keeps_small_subsets() {
        let a = AExpr::union(
            AExpr::union(
                AExpr::singleton(AExpr::num(1)),
                AExpr::singleton(AExpr::num(2)),
            ),
            AExpr::singleton(AExpr::num(3)),
        );
        let mut gen = VarGen::new();
        let p1 = apply_powerset(&a, Some(1), 16, &mut gen).unwrap();
        let v = p1.eval(9, &Env::new()).unwrap();
        // ∅ plus three singletons
        assert_eq!(v.cardinality(), Some(4));
        let p2 = apply_powerset(&a, Some(2), 16, &mut gen).unwrap();
        assert_eq!(p2.eval(9, &Env::new()).unwrap().cardinality(), Some(7));
    }

    #[test]
    fn witness_cap_is_enforced() {
        let mut a = AExpr::singleton(AExpr::num(0));
        for i in 1..6 {
            a = AExpr::union(a, AExpr::singleton(AExpr::num(i)));
        }
        let mut gen = VarGen::new();
        let err = apply_powerset(&a, None, 4, &mut gen).unwrap_err();
        assert_eq!(err, SymbolicError::TooManyWitnesses { found: 6, cap: 4 });
    }

    #[test]
    fn conditional_witnesses_collapse_in_subsets() {
        // {(y, 0)} for a free variable y: bounded with witness condition
        // true; powerset has 2 subsets {∅, {(y,0)}} at every y
        let mut gen = VarGen::new();
        let y = gen.fresh();
        let a = AExpr::singleton(AExpr::pair(AExpr::var(y), AExpr::num(0)));
        let p = apply_powerset(&a, None, 4, &mut gen).unwrap();
        let n = 6;
        for yv in 0..=n {
            let env: Env = [(y, yv)].into_iter().collect();
            let v = p.eval(n, &env).unwrap();
            assert_eq!(v.cardinality(), Some(2), "y={yv}");
            assert!(v.as_set().unwrap().contains(&Value::empty_set()));
        }
    }

    #[test]
    fn unsat_conjuncts_are_skipped() {
        // {x when (x = 1 ∧ x = 2) | x} ∪ {9} — first block contributes 0
        let mut gen = VarGen::new();
        let x = gen.fresh();
        let dead = Condition::eq(SimpleExpr::var(x), SimpleExpr::Const(1))
            .and(&Condition::eq(SimpleExpr::var(x), SimpleExpr::Const(2)));
        let a = AExpr::union(
            AExpr::guarded_comprehension(vec![x], dead, AExpr::var(x)),
            AExpr::singleton(AExpr::num(9)),
        );
        assert_eq!(analyze_cardinality(&a).unwrap().bound(), Some(1));
    }
}
