//! Corollary 5.3: no abstract expression denotes `tc(rₙ)` for all n.
//!
//! > "Indeed, tc(rₙ) must have [Ω(n²)] elements. But one can prove that
//! > any closed abstract expression of type {N × N} denotes a union of
//! > affine spaces: none of them can have dimension 2 (else we get
//! > n² − O(n) elements), so their union has at most O(n) elements, and it
//! > cannot denote tc(rₙ)."
//!
//! [`affine_decomposition`] computes that union of affine spaces for a
//! closed `{N × N}`-typed abstract expression; [`chain_tc_impossibility`]
//! renders the corollary's dichotomy (`dimension ≥ 2 ⇒ too many points`,
//! `all ≤ 1 ⇒ too few`), which experiment E6 checks numerically.

use crate::aexpr::AExpr;
use crate::affine::{AffineSpace, Coord};
use crate::condition::{solve_conjunct, Resolved};
use crate::evalem::{to_blocks, SymbolicError};
use std::fmt;

/// Decompose a **closed** abstract expression of type `{N × N}` into a
/// union of affine spaces (the first step of Corollary 5.3).
pub fn affine_decomposition(a: &AExpr) -> Result<Vec<AffineSpace>, SymbolicError> {
    let blocks = to_blocks(a)?;
    let mut spaces = Vec::new();
    for block in blocks {
        // Explode guarded bodies into plain (Num, Num) shapes, folding the
        // arm conditions and definedness into the guard.
        let shapes = explode_pairs(&block.body)?;
        for (e1, e2, cond) in shapes {
            let guard = block.guard.and(&cond).simplified();
            for conjunct in &guard.conjuncts {
                let Some(sol) = solve_conjunct(conjunct, &block.vars) else {
                    continue;
                };
                if !sol.residual.atoms.is_empty() {
                    // residual atoms mean free variables — not closed
                    return Err(SymbolicError::Inconclusive);
                }
                let c1 = resolved_coord(sol.resolve_expr(&e1))?;
                let c2 = resolved_coord(sol.resolve_expr(&e2))?;
                let exclusions = sol
                    .exclusions
                    .iter()
                    .map(|&(l, r)| Ok((resolved_coord(l)?, resolved_coord(r)?)))
                    .collect::<Result<Vec<_>, SymbolicError>>()?;
                spaces.push(AffineSpace {
                    dimension: sol.dimension,
                    coords: vec![c1, c2],
                    exclusions,
                });
            }
        }
    }
    Ok(spaces)
}

fn resolved_coord(r: Resolved) -> Result<Coord, SymbolicError> {
    Ok(match r {
        Resolved::Fixed(t) => match t.as_simple() {
            crate::simple::SimpleExpr::Const(c) => Coord::Const(c),
            crate::simple::SimpleExpr::NMinus(c) => Coord::NMinus(c),
            crate::simple::SimpleExpr::Var(_, _) => return Err(SymbolicError::Inconclusive),
        },
        Resolved::Free(p, c) => Coord::Param(p, c),
    })
}

/// Explode a pair-typed abstract expression into `(e₁, e₂, condition)`
/// triples of numeric coordinates.
fn explode_pairs(
    a: &AExpr,
) -> Result<
    Vec<(
        crate::simple::SimpleExpr,
        crate::simple::SimpleExpr,
        crate::condition::Condition,
    )>,
    SymbolicError,
> {
    match a {
        AExpr::Pair(x, y) => match (&**x, &**y) {
            (AExpr::Num(e1), AExpr::Num(e2)) => {
                let def = a.definedness();
                Ok(vec![(*e1, *e2, def)])
            }
            _ => Err(SymbolicError::NotANum),
        },
        AExpr::Guarded(arms) => {
            let mut out = Vec::new();
            for (arm, cond) in arms {
                for (e1, e2, c) in explode_pairs(arm)? {
                    let joint = c.and(cond);
                    if !joint.is_false() {
                        out.push((e1, e2, joint));
                    }
                }
            }
            Ok(out)
        }
        _ => Err(SymbolicError::NotAPair),
    }
}

/// Why a union of affine spaces cannot equal `tc(rₙ) = {(x,y) | x < y}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every space has dimension ≤ 1, so the union has O(n) points —
    /// asymptotically fewer than `|tc(rₙ)| = n(n+1)/2`.
    TooFewPoints,
    /// Some space has dimension ≥ 2, hence `n² − O(n)` points — more than
    /// `n(n+1)/2`, so it cannot be a *subset* of `tc(rₙ)`.
    TooManyPoints,
}

/// The Corollary 5.3 analysis of a closed `{N × N}` abstract expression.
#[derive(Debug, Clone)]
pub struct ChainTcImpossibility {
    /// The affine decomposition.
    pub spaces: Vec<AffineSpace>,
    /// Largest dimension among the spaces.
    pub max_dimension: usize,
    /// Which side of the counting argument applies.
    pub verdict: Verdict,
}

impl ChainTcImpossibility {
    /// Upper bound on the union's cardinality at a given n implied by the
    /// dimensions (counting `(n+1)^p` per space).
    pub fn cardinality_upper_bound(&self, n: u64) -> u128 {
        self.spaces
            .iter()
            .map(|s| (n as u128 + 1).pow(s.dimension as u32))
            .sum()
    }
}

impl fmt::Display for ChainTcImpossibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "union of {} affine space(s), max dimension {}:",
            self.spaces.len(),
            self.max_dimension
        )?;
        for s in &self.spaces {
            writeln!(f, "  {}", s)?;
        }
        match self.verdict {
            Verdict::TooFewPoints => write!(
                f,
                "all dimensions ≤ 1 ⇒ O(n) points < n(n+1)/2 = |tc(rₙ)| — cannot denote tc(rₙ)"
            ),
            Verdict::TooManyPoints => write!(
                f,
                "a dimension-2 space has n²−O(n) points > n(n+1)/2 = |tc(rₙ)| — cannot denote tc(rₙ)"
            ),
        }
    }
}

/// Corollary 5.3 for a concrete closed expression: produce the
/// impossibility analysis (the expression can never denote `tc(rₙ)` for
/// all n, whichever side of the dichotomy it falls on).
pub fn chain_tc_impossibility(a: &AExpr) -> Result<ChainTcImpossibility, SymbolicError> {
    let spaces = affine_decomposition(a)?;
    let max_dimension = spaces.iter().map(|s| s.dimension).max().unwrap_or(0);
    let verdict = if max_dimension >= 2 {
        Verdict::TooManyPoints
    } else {
        Verdict::TooFewPoints
    };
    Ok(ChainTcImpossibility {
        spaces,
        max_dimension,
        verdict,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aexpr::chain_aexpr;
    use crate::vars::{Env, VarGen};
    use nra_core::value::Value;

    #[test]
    fn chain_decomposes_into_one_line() {
        let mut gen = VarGen::new();
        let a = chain_aexpr(&mut gen);
        let spaces = affine_decomposition(&a).unwrap();
        assert_eq!(spaces.len(), 1);
        assert_eq!(spaces[0].dimension, 1);
        // the affine points are exactly the denoted pairs
        for n in 2..7u64 {
            let pts = spaces[0].enumerate(n, &Env::new());
            let denoted = a.eval(n, &Env::new()).unwrap();
            let edges: std::collections::BTreeSet<Vec<i128>> = denoted
                .to_edges()
                .unwrap()
                .into_iter()
                .map(|(x, y)| vec![x as i128, y as i128])
                .collect();
            assert_eq!(pts, edges, "n={n}");
        }
    }

    #[test]
    fn chain_cannot_be_tc() {
        let mut gen = VarGen::new();
        let a = chain_aexpr(&mut gen);
        let analysis = chain_tc_impossibility(&a).unwrap();
        assert_eq!(analysis.verdict, Verdict::TooFewPoints);
        // O(n) bound loses to n(n+1)/2 already at small n
        for n in 5..12u64 {
            let tc_size = (n * (n + 1) / 2) as u128;
            assert!(
                analysis.cardinality_upper_bound(n) < tc_size || n < 5,
                "n={n}"
            );
        }
    }

    #[test]
    fn grid_is_two_dimensional_hence_too_many() {
        // {(x, y) | x = 0,n; y = 0,n} has dimension 2 → TooManyPoints side
        let mut gen = VarGen::new();
        let x = gen.fresh();
        let y = gen.fresh();
        let a = AExpr::comprehension(vec![x, y], AExpr::pair(AExpr::var(x), AExpr::var(y)));
        let analysis = chain_tc_impossibility(&a).unwrap();
        assert_eq!(analysis.max_dimension, 2);
        assert_eq!(analysis.verdict, Verdict::TooManyPoints);
        // and numerically: the denotation has (n+1)² > n(n+1)/2 points
        for n in 2..6u64 {
            let count = a.eval(n, &Env::new()).unwrap().cardinality().unwrap() as u64;
            assert!(count > n * (n + 1) / 2, "n={n}");
        }
    }

    #[test]
    fn no_small_expression_matches_tc_numerically() {
        // sanity: the chain expression's denotation differs from tc(rₙ)
        // for every n ≥ 2 (it IS rₙ)
        let mut gen = VarGen::new();
        let a = chain_aexpr(&mut gen);
        for n in 2..8u64 {
            assert_ne!(a.eval(n, &Env::new()).unwrap(), Value::chain_tc(n));
        }
    }

    #[test]
    fn guarded_bodies_decompose() {
        use crate::condition::Condition;
        use crate::simple::SimpleExpr;
        // {(x, 0) when x ≠ n; (x, n) when … | x}: a guarded body with two
        // arms — two affine spaces of dimension 1
        let mut gen = VarGen::new();
        let x = gen.fresh();
        let c = Condition::neq(SimpleExpr::var(x), SimpleExpr::n());
        let body = AExpr::Guarded(vec![
            (AExpr::pair(AExpr::var(x), AExpr::num(0)), c.clone()),
            (
                AExpr::pair(AExpr::var(x), AExpr::Num(SimpleExpr::n())),
                c.not(),
            ),
        ]);
        let a = AExpr::comprehension(vec![x], body);
        let spaces = affine_decomposition(&a).unwrap();
        assert_eq!(spaces.len(), 2);
        assert!(spaces.iter().all(|s| s.dimension <= 1));
        // union of points = denotation
        let n = 5;
        let mut pts = std::collections::BTreeSet::new();
        for s in &spaces {
            pts.extend(s.enumerate(n, &Env::new()));
        }
        let denoted: std::collections::BTreeSet<Vec<i128>> = a
            .eval(n, &Env::new())
            .unwrap()
            .to_edges()
            .unwrap()
            .into_iter()
            .map(|(p, q)| vec![p as i128, q as i128])
            .collect();
        assert_eq!(pts, denoted);
    }

    #[test]
    fn open_expressions_are_rejected() {
        let mut gen = VarGen::new();
        let y = gen.fresh();
        let x = gen.fresh();
        let a = AExpr::comprehension(vec![x], AExpr::pair(AExpr::var(x), AExpr::var(y)));
        // y is free: the "closed" decomposition must refuse
        assert!(affine_decomposition(&a).is_err());
    }
}
