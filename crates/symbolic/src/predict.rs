//! Space prediction for admission control: classify a query's space
//! complexity *before* evaluating it, so a serving layer can reject
//! queries the paper certifies as exponential-space at the door.
//!
//! The classification runs the §5 machinery on the chain abstraction
//! `rₙ` (the family Theorem 4.1's lower bound is proved on):
//!
//! * a `powerset`-free query is [`SpaceClass::Polynomial`] — every `NRA`
//!   (and `NRA(while)`, by the §1 remark) term evaluates in polynomial
//!   space; a structural degree analysis produces a crude exponent;
//! * a `powerset`-using query goes through [`approximation_order`]
//!   (Lemma 5.8): if every powerset application is **bounded**, the
//!   query is [`SpaceClass::BoundedPowerset`] with the Prop 4.2 order
//!   `m*` — it is `NRA`-expressible as `f.approximate(m*)` and thus
//!   polynomial-space; if some application generates Ω(n) witnesses,
//!   the query is [`SpaceClass::Exponential`] and the
//!   [`LinearCertificate`] *is* the paper's lower-bound argument:
//!   `2^Ω(n)` subsets must be enumerated (Theorem 4.1);
//! * anything the abstract machinery cannot see through (`powerset`
//!   under `while`, constants, non-relation domains) is
//!   [`SpaceClass::Unanalyzed`] — a server should reject it
//!   conservatively rather than guess.
//!
//! A classification is per-*query* and input-independent, so callers can
//! cache it by hash-consed [`EId`]. [`SpaceClass::verdict`] then turns a
//! classification plus the §3 size and cardinality of one concrete input
//! into a [`SpaceVerdict`] carrying concrete bounds; [`predict_space`]
//! is the one-call facade over both steps.
//!
//! ```
//! use nra_core::queries;
//! use nra_symbolic::predict::{classify_space, SpaceClass};
//!
//! assert!(matches!(
//!     classify_space(&queries::tc_paths()),
//!     SpaceClass::Exponential { .. }
//! ));
//! assert!(matches!(
//!     classify_space(&queries::tc_while()),
//!     SpaceClass::Polynomial { .. }
//! ));
//! // powerset over a *bounded* argument (sources(rₙ) = {0}) is fine
//! use nra_core::builder::{flatten, pipeline, powerset};
//! let bounded = pipeline([queries::sources(), powerset(), flatten()]);
//! assert!(matches!(
//!     classify_space(&bounded),
//!     SpaceClass::BoundedPowerset { .. }
//! ));
//! ```

use crate::aexpr::chain_aexpr;
use crate::dichotomy::LinearCertificate;
use crate::evalem::{approximation_order, SymbolicError};
use crate::vars::VarGen;
use nra_core::expr::intern::{EId, ExprArena};
use nra_core::Expr;
use std::fmt;

/// Witness-enumeration cap handed to the Lemma 5.8 dichotomy: a bounded
/// powerset application with more witnesses than this is treated as
/// unanalyzed rather than enumerated further.
pub const MAX_WITNESSES: usize = 16;

/// Exponent ceiling for the structural degree analysis; degrees are
/// clamped here so saturated predictions stay saturated instead of
/// wrapping.
pub const DEGREE_CAP: u32 = 24;

/// Input-independent space classification of one query — cacheable by
/// the query's hash-consed [`EId`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpaceClass {
    /// Some powerset application generates Ω(n) distinct witnesses on
    /// the chain abstraction: by Theorem 4.1 the eager evaluation needs
    /// `2^Ω(n)` space. The certificate names the offending binder.
    Exponential {
        /// The Lemma 5.8 case-2 certificate (the Ω(n) binder).
        certificate: LinearCertificate,
    },
    /// Every powerset application is bounded (Lemma 5.8 case 1): the
    /// query is equivalent to its `powersetₘ` approximation at this
    /// order (Prop 4.2), hence `NRA`-expressible and polynomial-space.
    BoundedPowerset {
        /// The approximation order `m*` — `f.approximate(order)` is
        /// exact on the inputs the chain abstraction denotes.
        order: u64,
    },
    /// `powerset`-free: polynomial space, with a structural (crude,
    /// sound-by-saturation) degree bound.
    Polynomial {
        /// Exponent bound on the §3 cost as a power of the input size,
        /// clamped to [`DEGREE_CAP`].
        degree: u32,
    },
    /// The abstract machinery cannot classify this query (`powerset`
    /// under `while`, constants, …). Reject conservatively.
    Unanalyzed {
        /// Why classification failed.
        reason: String,
    },
}

/// A classification instantiated at one concrete input: concrete bounds
/// a server can compare against budgets and cite in rejections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpaceVerdict {
    /// Certified exponential: the §3 cost on an input of this
    /// cardinality is at least `lower_bound = 2^cardinality` (the
    /// powerset of the certificate's Ω(n) witness set).
    Exponential {
        /// The Lemma 5.8 certificate behind the verdict.
        certificate: LinearCertificate,
        /// `log₂` of the certified space requirement.
        log2_lower_bound: u32,
        /// The requirement itself, saturating at `u64::MAX`.
        lower_bound: u64,
    },
    /// Bounded powerset use: polynomial once rewritten to
    /// `approximate(order)`.
    BoundedPowerset {
        /// The Prop 4.2 approximation order.
        order: u64,
        /// Crude structural envelope for the *rewritten* query's §3
        /// cost on this input (saturating).
        upper_bound: u64,
    },
    /// Polynomial space; the envelope is the structural degree bound
    /// instantiated at this input's size (saturating).
    Polynomial {
        /// The structural degree.
        degree: u32,
        /// `64·size^degree + 4096`, saturating.
        upper_bound: u64,
    },
    /// Unclassifiable — no bound either way.
    Unanalyzed {
        /// Why classification failed.
        reason: String,
    },
}

impl SpaceClass {
    /// Instantiate this classification at one input, described by its
    /// §3 size and (for set inputs) cardinality.
    pub fn verdict(&self, input_size: u64, input_cardinality: u64) -> SpaceVerdict {
        match self {
            SpaceClass::Exponential { certificate } => {
                let log2 = input_cardinality.min(63) as u32;
                SpaceVerdict::Exponential {
                    certificate: certificate.clone(),
                    log2_lower_bound: input_cardinality.min(u64::from(u32::MAX)) as u32,
                    lower_bound: if input_cardinality > 63 {
                        u64::MAX
                    } else {
                        1u64 << log2
                    },
                }
            }
            SpaceClass::BoundedPowerset { order } => SpaceVerdict::BoundedPowerset {
                order: *order,
                // the rewritten query materialises ≤ (c+1)^m subsets of
                // ≤ m elements each: degree m+1 over the input size
                upper_bound: envelope(input_size, ((*order).min(u64::from(DEGREE_CAP)) as u32) + 1),
            },
            SpaceClass::Polynomial { degree } => SpaceVerdict::Polynomial {
                degree: *degree,
                upper_bound: envelope(input_size, *degree),
            },
            SpaceClass::Unanalyzed { reason } => SpaceVerdict::Unanalyzed {
                reason: reason.clone(),
            },
        }
    }
}

impl fmt::Display for SpaceVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceVerdict::Exponential {
                certificate,
                log2_lower_bound,
                ..
            } => write!(
                f,
                "certified exponential space (Theorem 4.1): needs >= 2^{log2_lower_bound} \
                 units; Lemma 5.8 certificate: {certificate}"
            ),
            SpaceVerdict::BoundedPowerset { order, upper_bound } => write!(
                f,
                "bounded powerset use (Lemma 5.8 case 1): exact at approximation order \
                 {order} (Prop 4.2), envelope {upper_bound}"
            ),
            SpaceVerdict::Polynomial {
                degree,
                upper_bound,
            } => write!(
                f,
                "polynomial space: structural degree {degree}, envelope {upper_bound}"
            ),
            SpaceVerdict::Unanalyzed { reason } => write!(f, "unanalyzed: {reason}"),
        }
    }
}

/// `64·size^degree + 4096`, saturating.
fn envelope(size: u64, degree: u32) -> u64 {
    size.max(2)
        .saturating_pow(degree.min(DEGREE_CAP))
        .saturating_mul(64)
        .saturating_add(4096)
}

/// Classify one query — see the [module docs](self). Input-independent;
/// cache by [`EId`] when classifying repeatedly.
pub fn classify_space(f: &Expr) -> SpaceClass {
    let level = f.level();
    if !level.powerset {
        return SpaceClass::Polynomial {
            degree: degrees(f).peak,
        };
    }
    // powerset present: run the Lemma 5.8 dichotomy on the chain
    // abstraction (the family the paper's lower bound lives on)
    let mut gen = VarGen::default();
    let chain = chain_aexpr(&mut gen);
    match approximation_order(f, &chain, MAX_WITNESSES) {
        Ok(order) => SpaceClass::BoundedPowerset { order },
        Err(SymbolicError::ExponentialPowerset(certificate)) => {
            SpaceClass::Exponential { certificate }
        }
        Err(e) => SpaceClass::Unanalyzed {
            reason: e.to_string(),
        },
    }
}

/// The one-call facade: classify the hash-consed query `eid` and
/// instantiate the verdict at an input of the given §3 size and
/// cardinality.
pub fn predict_space(
    eid: EId,
    exprs: &ExprArena,
    input_size: u64,
    input_cardinality: u64,
) -> SpaceVerdict {
    classify_space(&exprs.resolve(eid)).verdict(input_size, input_cardinality)
}

/// Output/peak degree pair for the structural analysis: exponents `d`
/// such that the object (resp. any intermediate object) has §3 size
/// `O(sᵈ)` in the input size `s`. Crude — selections and products
/// compound multiplicatively — but sound by saturation: the serving
/// layer tightens it with measured probes.
#[derive(Debug, Clone, Copy)]
struct Degrees {
    out: u32,
    peak: u32,
}

fn deg(out: u32, peak: u32) -> Degrees {
    Degrees {
        out: out.min(DEGREE_CAP),
        peak: peak.max(out).clamp(1, DEGREE_CAP),
    }
}

/// Structural degree analysis. Selection shapes
/// (`μ ∘ map(if p then η else ∅)`) are recognised as degree-preserving,
/// which keeps the Prop 2.1 derived pipelines (`select`, `member`,
/// `subset`) from inflating every composition quadratically.
fn degrees(f: &Expr) -> Degrees {
    match f {
        Expr::Id | Expr::Fst | Expr::Snd | Expr::Sng | Expr::Flatten | Expr::Union => deg(1, 1),
        Expr::Bang
        | Expr::EqNat
        | Expr::IsEmpty
        | Expr::ConstTrue
        | Expr::ConstFalse
        | Expr::EmptySet(_)
        | Expr::Const(..) => deg(0, 1),
        Expr::PairWith => deg(2, 2),
        Expr::Tuple(a, b) => {
            let (da, db) = (degrees(a), degrees(b));
            deg(da.out.max(db.out), da.peak.max(db.peak))
        }
        Expr::Cond(c, t, e) => {
            let (dc, dt, de) = (degrees(c), degrees(t), degrees(e));
            deg(dt.out.max(de.out), dc.peak.max(dt.peak).max(de.peak))
        }
        Expr::Map(g) => {
            // elements are no bigger than the input; by convexity
            // Σᵢ |elem_i|^d ≤ s^d, so map preserves the body's degree
            // (floored at 1 for the spine)
            let dg = degrees(g);
            deg(dg.out.max(1), dg.peak)
        }
        Expr::Compose(g, h) => {
            if let Some(d) = selection_degrees(f) {
                return d;
            }
            let (dg, dh) = (degrees(g), degrees(h));
            deg(
                dg.out.saturating_mul(dh.out),
                dh.peak.max(dg.peak.saturating_mul(dh.out.max(1))),
            )
        }
        // count ≤ (c+1)^m subsets of ≤ m elements each: degree m+1
        Expr::PowersetM(m) => {
            let d = (*m).min(u64::from(DEGREE_CAP)) as u32;
            deg(d.saturating_add(1), d.saturating_add(1))
        }
        Expr::While(g) => {
            // inflationary fixpoint: iterates live in a closure whose
            // size the body's output degree bounds; the body then runs
            // on an object of that size
            let dg = degrees(g);
            let fixpoint = dg.out.max(1).saturating_mul(2);
            deg(fixpoint, dg.peak.max(1).saturating_mul(fixpoint))
        }
        // unreachable from classify_space (powerset-free branch), but
        // keep the analysis total: a full powerset is no polynomial
        Expr::Powerset => deg(DEGREE_CAP, DEGREE_CAP),
    }
}

/// Recognise the Prop 2.1 selection shape `μ ∘ map(if p then η else ∅)`
/// (possibly with the branches flipped): output ⊆ input, so the shape
/// is degree-preserving and only the predicate contributes to the peak.
fn selection_degrees(f: &Expr) -> Option<Degrees> {
    let Expr::Compose(outer, inner) = f else {
        return None;
    };
    if **outer != Expr::Flatten {
        return None;
    }
    let Expr::Map(body) = &**inner else {
        return None;
    };
    let Expr::Cond(p, t, e) = &**body else {
        return None;
    };
    let keeps = |x: &Expr| matches!(x, Expr::Sng);
    let drops = |x: &Expr| match x {
        Expr::Compose(g, h) => matches!(&**g, Expr::EmptySet(_)) && matches!(&**h, Expr::Bang),
        Expr::EmptySet(_) => true,
        _ => false,
    };
    if (keeps(t) && drops(e)) || (keeps(e) && drops(t)) {
        let dp = degrees(p);
        Some(deg(1, dp.peak))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_core::queries;

    #[test]
    fn classification_matches_the_paper_on_the_query_zoo() {
        // Theorem 4.1 regime: every query applying powerset to the
        // (linear-sized) input relation is certified exponential —
        // including siblings_powerset, whose *semantics* is order-2
        // approximable but whose eager powerset cost is still 2^|r|
        for q in [
            queries::tc_paths(),
            queries::tc_naive(),
            queries::siblings_powerset(),
        ] {
            assert!(
                matches!(classify_space(&q), SpaceClass::Exponential { .. }),
                "{q} must classify exponential"
            );
        }
        // §1 remark: the while route is polynomial
        for q in [
            queries::tc_while(),
            queries::tc_step(),
            queries::compose_rel(),
            queries::siblings_direct(),
        ] {
            assert!(
                matches!(classify_space(&q), SpaceClass::Polynomial { .. }),
                "{q} must classify polynomial"
            );
        }
        // Lemma 5.8 case 1: powerset over a bounded argument
        use nra_core::builder::*;
        let bounded = pipeline([queries::sources(), powerset(), flatten()]);
        match classify_space(&bounded) {
            SpaceClass::BoundedPowerset { order } => assert!(order >= 1),
            other => panic!("bounded-argument powerset must be bounded, got {other:?}"),
        }
    }

    #[test]
    fn exponential_verdicts_carry_the_2_to_the_c_lower_bound() {
        let class = classify_space(&queries::tc_paths());
        match class.verdict(25, 8) {
            SpaceVerdict::Exponential {
                log2_lower_bound,
                lower_bound,
                ..
            } => {
                assert_eq!(log2_lower_bound, 8);
                assert_eq!(lower_bound, 256);
            }
            other => panic!("expected exponential verdict, got {other:?}"),
        }
        // huge inputs saturate instead of overflowing
        match class.verdict(u64::MAX, 1 << 40) {
            SpaceVerdict::Exponential { lower_bound, .. } => assert_eq!(lower_bound, u64::MAX),
            other => panic!("expected exponential verdict, got {other:?}"),
        }
    }

    #[test]
    fn powerset_under_while_is_unanalyzed() {
        use nra_core::builder::*;
        let q = while_fix(pipeline([powerset(), flatten()]));
        assert!(
            matches!(classify_space(&q), SpaceClass::Unanalyzed { .. }),
            "powerset under while must be rejected conservatively"
        );
    }

    #[test]
    fn predict_space_facade_round_trips_through_the_arena() {
        let mut exprs = ExprArena::new();
        let eid = exprs.intern(&queries::tc_while());
        match predict_space(eid, &exprs, 25, 8) {
            SpaceVerdict::Polynomial {
                degree,
                upper_bound,
            } => {
                assert!(degree >= 2, "tc_while degree {degree} too small");
                assert!(upper_bound > 4096);
            }
            other => panic!("expected polynomial verdict, got {other:?}"),
        }
    }

    #[test]
    fn selection_shape_is_degree_preserving() {
        use nra_core::derived::select;
        use nra_core::{builder::*, Type};
        let sel = select(
            compose(eq_nat(), tuple(fst(), snd())),
            Type::prod(Type::Nat, Type::Nat),
        );
        let d = degrees(&sel);
        assert_eq!(d.out, 1, "selection output is a subset of its input");
    }
}
