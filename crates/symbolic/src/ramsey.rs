//! The Ramsey argument of the proof (Lemmas 5.6 and 5.7).
//!
//! > **Lemma 5.7** ([Bollobás 79], p. 104, theorem 1): "Let G be a
//! > complete, undirected graph with `C(2m−2, m−1)` vertices, whose edges
//! > have been colored with red or blue. Then there is a complete subgraph
//! > with m vertices having all edges colored with the same color."
//!
//! [`monochromatic_clique`] is the constructive (Erdős–Szekeres) proof of
//! that bound; [`ramsey_bound`] computes it. Around it, the Lemma 5.6
//! helpers: [`split_condition`] separates a conjunct `D(x⃗, x⃗', y⃗)` into
//! the parts `E` (mentioning both primed and unprimed solved variables),
//! `F` (unprimed only) and `F'` (primed only), and [`included_sequence`]
//! searches for sequences *included in D* — the paper's notion
//! "`D(x⃗ᵢ, x⃗ⱼ, y⃗)` for all `1 ≤ i < j ≤ m`" — by brute force on small
//! instances (used to validate the symbolic machinery numerically).

use crate::condition::Conjunct;
use crate::vars::{Env, VarId};
use std::collections::BTreeSet;

/// `C(2m−2, m−1)` — the number of vertices guaranteeing a monochromatic
/// `K_m` (Lemma 5.7).
pub fn ramsey_bound(m: u64) -> u128 {
    if m == 0 {
        return 0;
    }
    binomial(2 * m - 2, m - 1)
}

/// Saturating binomial coefficient.
fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128);
        acc /= (i + 1) as u128;
    }
    acc
}

/// Find a clique of `red_target` vertices all of whose edges are red
/// (`color` returns `true`), or `blue_target` all blue, in the complete
/// graph on `vertices`. Returns `(clique, is_red)`. Succeeds whenever
/// `vertices.len() ≥ C(red_target + blue_target − 2, red_target − 1)` —
/// the classical recursive proof, made algorithmic.
pub fn two_color_clique(
    vertices: &[usize],
    red_target: usize,
    blue_target: usize,
    color: &dyn Fn(usize, usize) -> bool,
) -> Option<(Vec<usize>, bool)> {
    if red_target == 1 || blue_target == 1 {
        // a single vertex is a monochromatic K₁ of either colour
        let v = *vertices.first()?;
        return Some((vec![v], red_target == 1));
    }
    let needed = binomial(
        (red_target + blue_target - 2) as u64,
        (red_target - 1) as u64,
    );
    if (vertices.len() as u128) < needed {
        // below the guarantee we still try, but may fail
    }
    let (&pivot, rest) = vertices.split_first()?;
    let red_nbrs: Vec<usize> = rest.iter().copied().filter(|&u| color(pivot, u)).collect();
    let blue_nbrs: Vec<usize> = rest.iter().copied().filter(|&u| !color(pivot, u)).collect();
    // recurse on the side that is large enough first
    let red_need = binomial(
        (red_target - 1 + blue_target - 2) as u64,
        (red_target - 2) as u64,
    );
    if (red_nbrs.len() as u128) >= red_need {
        if let Some((mut clique, is_red)) =
            two_color_clique(&red_nbrs, red_target - 1, blue_target, color)
        {
            if is_red {
                clique.insert(0, pivot);
                if clique.len() >= red_target {
                    return Some((clique, true));
                }
            } else if clique.len() >= blue_target {
                return Some((clique, false));
            }
        }
    }
    if let Some((mut clique, is_red)) =
        two_color_clique(&blue_nbrs, red_target, blue_target - 1, color)
    {
        if !is_red {
            clique.insert(0, pivot);
            if clique.len() >= blue_target {
                return Some((clique, false));
            }
        } else if clique.len() >= red_target {
            return Some((clique, true));
        }
    }
    // fall back: try without the pivot (can help below the guarantee)
    two_color_clique(rest, red_target, blue_target, color)
}

/// Lemma 5.7: a monochromatic `K_m` in any 2-colouring of a complete
/// graph on at least `C(2m−2, m−1)` vertices. `color(u, v)` gives the
/// colour of edge `{u, v}` (must be symmetric).
pub fn monochromatic_clique(
    num_vertices: usize,
    m: usize,
    color: &dyn Fn(usize, usize) -> bool,
) -> Option<(Vec<usize>, bool)> {
    let vertices: Vec<usize> = (0..num_vertices).collect();
    two_color_clique(&vertices, m, m, color)
}

/// Lemma 5.6's first step: split a conjunct `D(x⃗, x⃗', y⃗)` into
/// `E ∧ F ∧ F'` where `E` contains exactly the atoms mentioning both an
/// `x⃗`-variable and an `x⃗'`-variable, `F` the remaining atoms free of
/// `x⃗'`, and `F'` the remaining atoms free of `x⃗` (atoms mentioning only
/// `y⃗` go to `F`, matching the paper's "can be included arbitrarily").
pub fn split_condition(
    d: &Conjunct,
    xs: &BTreeSet<VarId>,
    xs_primed: &BTreeSet<VarId>,
) -> (Conjunct, Conjunct, Conjunct) {
    let mut e = Vec::new();
    let mut f = Vec::new();
    let mut f_primed = Vec::new();
    for atom in &d.atoms {
        let mut vars = BTreeSet::new();
        atom.collect_vars(&mut vars);
        let touches_x = vars.iter().any(|v| xs.contains(v));
        let touches_xp = vars.iter().any(|v| xs_primed.contains(v));
        match (touches_x, touches_xp) {
            (true, true) => e.push(*atom),
            (false, true) => f_primed.push(*atom),
            _ => f.push(*atom),
        }
    }
    (
        Conjunct { atoms: e },
        Conjunct { atoms: f },
        Conjunct { atoms: f_primed },
    )
}

/// The substitution `G(x⃗, y⃗) = F(x⃗, y⃗) ∧ F'(x⃗, y⃗)` used in the
/// Lemma 5.6 proof: substitute each primed variable by its unprimed twin.
pub fn unprime(c: &Conjunct, pairs: &[(VarId, VarId)]) -> Conjunct {
    let mut out = c.clone();
    for &(x, xp) in pairs {
        out = out.rename(xp, x);
    }
    out
}

/// A sequence `x⃗₁, …, x⃗ₘ` is **included in D for y⃗** iff
/// `D(x⃗ᵢ, x⃗ⱼ, y⃗)` for all `i < j` (§5.4). Checks a candidate sequence.
pub fn is_included_sequence(
    d: &Conjunct,
    xs: &[VarId],
    xs_primed: &[VarId],
    sequence: &[Vec<u64>],
    n: u64,
    y_env: &Env,
) -> bool {
    for i in 0..sequence.len() {
        for j in (i + 1)..sequence.len() {
            let mut env = y_env.clone();
            for (k, &v) in xs.iter().enumerate() {
                env.insert(v, sequence[i][k]);
            }
            for (k, &v) in xs_primed.iter().enumerate() {
                env.insert(v, sequence[j][k]);
            }
            if d.eval(n, &env) != Some(true) {
                return false;
            }
        }
    }
    true
}

/// Brute-force search for a length-`m` sequence included in `D` for the
/// given `y⃗` environment at a concrete `n` (validation of Lemma 5.6 on
/// small instances). Vectors range over `[n]^{|xs|}`.
pub fn included_sequence(
    d: &Conjunct,
    xs: &[VarId],
    xs_primed: &[VarId],
    m: usize,
    n: u64,
    y_env: &Env,
) -> Option<Vec<Vec<u64>>> {
    let arity = xs.len();
    let mut all_points = Vec::new();
    let mut point = vec![0u64; arity];
    gen_points(n, arity, 0, &mut point, &mut all_points);
    let mut seq: Vec<Vec<u64>> = Vec::new();
    if extend_sequence(d, xs, xs_primed, m, n, y_env, &all_points, &mut seq) {
        Some(seq)
    } else {
        None
    }
}

fn gen_points(n: u64, arity: usize, depth: usize, point: &mut Vec<u64>, out: &mut Vec<Vec<u64>>) {
    if depth == arity {
        out.push(point.clone());
        return;
    }
    for v in 0..=n {
        point[depth] = v;
        gen_points(n, arity, depth + 1, point, out);
    }
}

#[allow(clippy::too_many_arguments)]
fn extend_sequence(
    d: &Conjunct,
    xs: &[VarId],
    xs_primed: &[VarId],
    m: usize,
    n: u64,
    y_env: &Env,
    points: &[Vec<u64>],
    seq: &mut Vec<Vec<u64>>,
) -> bool {
    if seq.len() == m {
        return true;
    }
    'next: for p in points {
        if seq.contains(p) {
            continue;
        }
        // check D(previous, p) for all previous
        for prev in seq.iter() {
            let mut env = y_env.clone();
            for (k, &v) in xs.iter().enumerate() {
                env.insert(v, prev[k]);
            }
            for (k, &v) in xs_primed.iter().enumerate() {
                env.insert(v, p[k]);
            }
            if d.eval(n, &env) != Some(true) {
                continue 'next;
            }
        }
        seq.push(p.clone());
        if extend_sequence(d, xs, xs_primed, m, n, y_env, points, seq) {
            return true;
        }
        seq.pop();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Atom;
    use crate::simple::SimpleExpr;

    #[test]
    fn bound_values() {
        // C(0,0)=1, C(2,1)=2, C(4,2)=6, C(6,3)=20, C(8,4)=70
        assert_eq!(ramsey_bound(1), 1);
        assert_eq!(ramsey_bound(2), 2);
        assert_eq!(ramsey_bound(3), 6);
        assert_eq!(ramsey_bound(4), 20);
        assert_eq!(ramsey_bound(5), 70);
    }

    fn check_clique(clique: &[usize], is_red: bool, color: &dyn Fn(usize, usize) -> bool) {
        for (i, &u) in clique.iter().enumerate() {
            for &v in &clique[i + 1..] {
                assert_eq!(color(u, v), is_red, "edge ({u},{v})");
            }
        }
    }

    #[test]
    fn monochromatic_clique_on_uniform_colorings() {
        let all_red = |_: usize, _: usize| true;
        let (clique, is_red) = monochromatic_clique(6, 3, &all_red).unwrap();
        assert!(is_red);
        assert_eq!(clique.len(), 3);
        let all_blue = |_: usize, _: usize| false;
        let (clique, is_red) = monochromatic_clique(6, 3, &all_blue).unwrap();
        assert!(!is_red);
        assert_eq!(clique.len(), 3);
    }

    #[test]
    fn monochromatic_clique_on_random_colorings() {
        // pseudo-random symmetric colourings at exactly the Ramsey bound
        for m in 2..=4usize {
            let vertices = ramsey_bound(m as u64) as usize;
            for seed in 0..25u64 {
                let color = move |u: usize, v: usize| {
                    let (a, b) = if u < v { (u, v) } else { (v, u) };
                    let mut h = seed
                        .wrapping_mul(0x9E3779B97F4A7C15)
                        .wrapping_add((a * 1000 + b) as u64);
                    h ^= h >> 33;
                    h = h.wrapping_mul(0xFF51AFD7ED558CCD);
                    h ^= h >> 33;
                    h % 2 == 0
                };
                let (clique, is_red) = monochromatic_clique(vertices, m, &color)
                    .unwrap_or_else(|| panic!("m={m} seed={seed}: no clique found"));
                assert!(clique.len() >= m, "m={m} seed={seed}");
                check_clique(&clique[..m], is_red, &color);
            }
        }
    }

    #[test]
    fn split_separates_atom_classes() {
        let x0 = VarId(0);
        let xp0 = VarId(10);
        let y = VarId(20);
        let d = Conjunct {
            atoms: vec![
                Atom::eq(SimpleExpr::var(x0), SimpleExpr::var(xp0)), // E
                Atom::neq(SimpleExpr::var(x0), SimpleExpr::var(y)),  // F
                Atom::eq(SimpleExpr::var(xp0), SimpleExpr::Const(3)), // F'
                Atom::neq(SimpleExpr::var(y), SimpleExpr::Const(0)), // F (y-only)
            ],
        };
        let xs: BTreeSet<VarId> = [x0].into_iter().collect();
        let xps: BTreeSet<VarId> = [xp0].into_iter().collect();
        let (e, f, fp) = split_condition(&d, &xs, &xps);
        assert_eq!(e.atoms.len(), 1);
        assert_eq!(f.atoms.len(), 2);
        assert_eq!(fp.atoms.len(), 1);
    }

    #[test]
    fn unprime_substitutes() {
        let x0 = VarId(0);
        let xp0 = VarId(10);
        let c = Conjunct {
            atoms: vec![Atom::eq(SimpleExpr::var(xp0), SimpleExpr::Const(3))],
        };
        let g = unprime(&c, &[(x0, xp0)]);
        assert_eq!(
            g.atoms[0],
            Atom::eq(SimpleExpr::var(x0), SimpleExpr::Const(3))
        );
    }

    #[test]
    fn included_sequences_in_the_distinctness_condition() {
        // D(x, x') = (x ≠ x'): any sequence of distinct values is included;
        // maximal length is n+1
        let x = VarId(0);
        let xp = VarId(1);
        let d = Conjunct {
            atoms: vec![Atom::neq(SimpleExpr::var(x), SimpleExpr::var(xp))],
        };
        let n = 4;
        let seq = included_sequence(&d, &[x], &[xp], 5, n, &Env::new()).unwrap();
        assert_eq!(seq.len(), 5);
        assert!(is_included_sequence(&d, &[x], &[xp], &seq, n, &Env::new()));
        assert!(
            included_sequence(&d, &[x], &[xp], 6, n, &Env::new()).is_none(),
            "only n+1 distinct values exist"
        );
    }

    #[test]
    fn included_sequence_with_ordering_flavour() {
        // D(x, x') = (x' = x + 1) forces consecutive runs: pairs (i, j)
        // with j = i + 1 for ALL i < j in the sequence — only length ≤ 2.
        let x = VarId(0);
        let xp = VarId(1);
        let d = Conjunct {
            atoms: vec![Atom::eq(SimpleExpr::var(xp), SimpleExpr::Var(x, 1))],
        };
        let n = 6;
        assert!(included_sequence(&d, &[x], &[xp], 2, n, &Env::new()).is_some());
        assert!(included_sequence(&d, &[x], &[xp], 3, n, &Env::new()).is_none());
    }

    #[test]
    fn included_sequence_respects_y_environment() {
        // D(x, x', y) = (x ≠ x' ∧ x ≠ y ∧ x' ≠ y): distinct and avoiding y
        let x = VarId(0);
        let xp = VarId(1);
        let y = VarId(2);
        let d = Conjunct {
            atoms: vec![
                Atom::neq(SimpleExpr::var(x), SimpleExpr::var(xp)),
                Atom::neq(SimpleExpr::var(x), SimpleExpr::var(y)),
                Atom::neq(SimpleExpr::var(xp), SimpleExpr::var(y)),
            ],
        };
        let n = 4;
        let yenv: Env = [(y, 2u64)].into_iter().collect();
        let seq = included_sequence(&d, &[x], &[xp], 4, n, &yenv).unwrap();
        assert!(!seq.contains(&vec![2]));
        assert!(included_sequence(&d, &[x], &[xp], 5, n, &yenv).is_none());
    }
}
