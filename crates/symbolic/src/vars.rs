//! Variables of the abstract-expression language (§5.1): `x, y, α, β, …`
//! ranging over `[n] = {0, 1, …, n}`.

use std::collections::BTreeMap;
use std::fmt;

/// A variable, identified by a small integer. Display renders `x0, x1, …`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A fresh-variable supply. All binders created through one `VarGen` are
/// globally distinct, which makes capture-avoidance trivial.
#[derive(Debug, Default, Clone)]
pub struct VarGen {
    next: u32,
}

impl VarGen {
    /// A generator whose first variable is `x0`.
    pub fn new() -> Self {
        VarGen::default()
    }

    /// A generator starting above every variable in `used`.
    pub fn above<I: IntoIterator<Item = VarId>>(used: I) -> Self {
        let next = used.into_iter().map(|v| v.0 + 1).max().unwrap_or(0);
        VarGen { next }
    }

    /// Produce a fresh variable.
    pub fn fresh(&mut self) -> VarId {
        let v = VarId(self.next);
        self.next += 1;
        v
    }
}

/// An environment ρ assigning values in `[n]` to variables (§5.1).
pub type Env = BTreeMap<VarId, u64>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_is_monotone() {
        let mut g = VarGen::new();
        let a = g.fresh();
        let b = g.fresh();
        assert_ne!(a, b);
        assert!(a < b);
    }

    #[test]
    fn above_skips_used() {
        let mut g = VarGen::above([VarId(3), VarId(7)]);
        assert_eq!(g.fresh(), VarId(8));
    }

    #[test]
    fn display() {
        assert_eq!(VarId(4).to_string(), "x4");
    }
}
