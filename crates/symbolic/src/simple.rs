//! Simple expressions (§5.1):
//!
//! > "define **simple expressions** e to be (1) a positive number c or
//! > (2) n − c where c is a positive number or (3) x + c where x is a
//! > variable and c is a number. E.g. 7, n − 9, n, x, x + 3, y − 8 are
//! > simple expressions. But x + y, n − x, 2·x are not."
//!
//! Variables range over `[n] = {0, …, n}`. Internally we carry `i64`
//! constants so that substitution and shifting are total — the paper's
//! grammar is the fragment recognised by [`SimpleExpr::is_paper_simple`],
//! and a *negative value* makes the expression **undefined as an object**
//! ([`SimpleExpr::eval`] returns `None`) while conditions compare total
//! integer values ([`SimpleExpr::eval_int`]).

use crate::vars::{Env, VarId};
use std::fmt;

/// A simple expression: `c`, `n − c`, or `x + c`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimpleExpr {
    /// A constant `c`.
    Const(i64),
    /// `n − c` (so `n` itself is `NMinus(0)`, and `n + 2` is `NMinus(−2)`).
    NMinus(i64),
    /// `x + c` (covers `x`, `x + 3`, `y − 8`).
    Var(VarId, i64),
}

impl SimpleExpr {
    /// The variable `x` (offset 0).
    pub fn var(x: VarId) -> Self {
        SimpleExpr::Var(x, 0)
    }

    /// The symbol `n`.
    pub fn n() -> Self {
        SimpleExpr::NMinus(0)
    }

    /// True iff the expression is in the paper's literal grammar
    /// (non-negative constants in the `c` and `n − c` forms).
    pub fn is_paper_simple(&self) -> bool {
        match *self {
            SimpleExpr::Const(c) | SimpleExpr::NMinus(c) => c >= 0,
            SimpleExpr::Var(_, _) => true,
        }
    }

    /// Total integer value at a given `n` and environment (`None` only for
    /// an unbound variable). Used by condition semantics.
    pub fn eval_int(&self, n: u64, env: &Env) -> Option<i128> {
        match *self {
            SimpleExpr::Const(c) => Some(c as i128),
            SimpleExpr::NMinus(c) => Some(n as i128 - c as i128),
            SimpleExpr::Var(x, c) => Some(*env.get(&x)? as i128 + c as i128),
        }
    }

    /// Value as a natural number — the *object* denotation. `None` when
    /// the integer value is negative (the expression is undefined there,
    /// §5.1) or a variable is unbound.
    pub fn eval(&self, n: u64, env: &Env) -> Option<u64> {
        u64::try_from(self.eval_int(n, env)?).ok()
    }

    /// The variable mentioned, if any.
    pub fn var_of(&self) -> Option<VarId> {
        match *self {
            SimpleExpr::Var(x, _) => Some(x),
            _ => None,
        }
    }

    /// Shift by a constant: `e + d`.
    pub fn shift(&self, d: i64) -> SimpleExpr {
        match *self {
            SimpleExpr::Const(c) => SimpleExpr::Const(c + d),
            SimpleExpr::NMinus(c) => SimpleExpr::NMinus(c - d),
            SimpleExpr::Var(x, c) => SimpleExpr::Var(x, c + d),
        }
    }

    /// Substitute variable `x` by expression `e` (shifted by this
    /// expression's offset).
    pub fn subst(&self, x: VarId, e: &SimpleExpr) -> SimpleExpr {
        match *self {
            SimpleExpr::Var(y, c) if y == x => e.shift(c),
            other => other,
        }
    }

    /// Rename variable `x` to `y`.
    pub fn rename(&self, x: VarId, y: VarId) -> SimpleExpr {
        match *self {
            SimpleExpr::Var(z, c) if z == x => SimpleExpr::Var(y, c),
            other => other,
        }
    }
}

impl fmt::Display for SimpleExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SimpleExpr::Const(c) => write!(f, "{}", c),
            SimpleExpr::NMinus(0) => write!(f, "n"),
            SimpleExpr::NMinus(c) if c > 0 => write!(f, "n-{}", c),
            SimpleExpr::NMinus(c) => write!(f, "n+{}", -c),
            SimpleExpr::Var(x, 0) => write!(f, "{}", x),
            SimpleExpr::Var(x, c) if c > 0 => write!(f, "{}+{}", x, c),
            SimpleExpr::Var(x, c) => write!(f, "{}-{}", x, -c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(u32, u64)]) -> Env {
        pairs.iter().map(|&(v, x)| (VarId(v), x)).collect()
    }

    #[test]
    fn evaluation() {
        let e = SimpleExpr::Const(7);
        assert_eq!(e.eval(3, &env(&[])), Some(7));
        let e = SimpleExpr::NMinus(2);
        assert_eq!(e.eval(10, &env(&[])), Some(8));
        assert_eq!(e.eval(1, &env(&[])), None, "n−2 undefined at n=1 as object");
        assert_eq!(
            e.eval_int(1, &env(&[])),
            Some(-1),
            "…but has integer value −1"
        );
        let e = SimpleExpr::Var(VarId(0), -3);
        assert_eq!(e.eval(10, &env(&[(0, 5)])), Some(2));
        assert_eq!(e.eval(10, &env(&[(0, 1)])), None, "1−3 undefined");
        assert_eq!(e.eval(10, &env(&[])), None, "unbound variable");
    }

    #[test]
    fn the_symbol_n() {
        assert_eq!(SimpleExpr::n().eval(9, &env(&[])), Some(9));
    }

    #[test]
    fn shift_is_total() {
        assert_eq!(SimpleExpr::Const(3).shift(2), SimpleExpr::Const(5));
        assert_eq!(SimpleExpr::Const(3).shift(-5), SimpleExpr::Const(-2));
        assert!(!SimpleExpr::Const(3).shift(-5).is_paper_simple());
        assert_eq!(SimpleExpr::NMinus(3).shift(2), SimpleExpr::NMinus(1));
        assert_eq!(SimpleExpr::NMinus(1).shift(-2), SimpleExpr::NMinus(3));
        assert_eq!(
            SimpleExpr::Var(VarId(0), 1).shift(-4),
            SimpleExpr::Var(VarId(0), -3)
        );
    }

    #[test]
    fn substitution() {
        // (x+2)[x := n−5] = n−3
        let e = SimpleExpr::Var(VarId(0), 2);
        assert_eq!(
            e.subst(VarId(0), &SimpleExpr::NMinus(5)),
            SimpleExpr::NMinus(3)
        );
        // (x−2)[x := 1] = −1, definable as integer, undefined as object
        let e = SimpleExpr::Var(VarId(0), -2);
        let s = e.subst(VarId(0), &SimpleExpr::Const(1));
        assert_eq!(s, SimpleExpr::Const(-1));
        assert_eq!(s.eval(10, &env(&[])), None);
        // untouched variable
        assert_eq!(e.subst(VarId(1), &SimpleExpr::Const(1)), e);
    }

    #[test]
    fn rename() {
        let e = SimpleExpr::Var(VarId(0), 2);
        assert_eq!(e.rename(VarId(0), VarId(9)), SimpleExpr::Var(VarId(9), 2));
        assert_eq!(e.rename(VarId(1), VarId(9)), e);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(SimpleExpr::Const(7).to_string(), "7");
        assert_eq!(SimpleExpr::NMinus(9).to_string(), "n-9");
        assert_eq!(SimpleExpr::n().to_string(), "n");
        assert_eq!(SimpleExpr::NMinus(-2).to_string(), "n+2");
        assert_eq!(SimpleExpr::Var(VarId(1), 3).to_string(), "x1+3");
        assert_eq!(SimpleExpr::Var(VarId(1), -8).to_string(), "x1-8");
    }
}
