//! Abstract expressions (§5.1).
//!
//! > "An **abstract expression** is: `()`, `e` (where e is a simple
//! > expression), `true`, `false`, `(A₁, A₂)`, `{A | x₁ = 0,n; … xₖ = 0,n}`
//! > (when k = 0 this becomes the singleton set {A}), `A₁ ∪ A₂` and
//! > `(A₁ when C₁; …; Aₗ when Cₗ)` where the Cᵢ are pairwise disjoint
//! > conditions (**guarded expression**)."
//!
//! Think of an abstract expression `A` of type `s` as denoting a complex
//! object `[A]ρ` of type `s` *for every* `n > 0` — e.g.
//! `{(x, x+1) when x ≠ n | x = 0,n}` denotes the paper's chain `rₙ` at
//! every `n` ([`chain_aexpr`]).
//!
//! Set-typed expressions are kept in a normal form: a finite union of
//! guarded comprehension **blocks** `{A when C | x⃗ = 0,n}` — the paper's
//! `∪` concatenates block lists, its `{A | x⃗}` is a single block, and a
//! guard over a set distributes into the blocks. This normal form is what
//! makes the Lemma 5.1 evaluator ([`crate::evalem`]) compositional.

use crate::condition::Condition;
use crate::simple::SimpleExpr;
use crate::vars::{Env, VarGen, VarId};
use nra_core::types::Type;
use nra_core::value::intern::{self, VId};
use nra_core::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// One comprehension block `{body when guard | vars = 0,n}` of a set-typed
/// abstract expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The bound variables `x⃗`, each ranging over `[n]`.
    pub vars: Vec<VarId>,
    /// The guard condition (may mention `vars` and free variables).
    pub guard: Condition,
    /// The element expression.
    pub body: Box<AExpr>,
}

impl Block {
    /// A block with the given binder list, guard and body.
    pub fn new(vars: Vec<VarId>, guard: Condition, body: AExpr) -> Self {
        Block {
            vars,
            guard,
            body: Box::new(body),
        }
    }
}

/// An abstract expression (§5.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AExpr {
    /// `()`.
    Unit,
    /// `true` / `false`.
    Bool(bool),
    /// A simple expression denoting a natural number.
    Num(SimpleExpr),
    /// `(A₁, A₂)`.
    Pair(Box<AExpr>, Box<AExpr>),
    /// A set in block normal form: `∪` of guarded comprehensions.
    Set(Vec<Block>),
    /// A guarded expression `(A₁ when C₁; …; Aₗ when Cₗ)` with pairwise
    /// disjoint guards. Kept only at non-set types (set-typed guards are
    /// pushed into blocks).
    Guarded(Vec<(AExpr, Condition)>),
}

impl AExpr {
    /// The numeral `c`.
    pub fn num(c: i64) -> AExpr {
        AExpr::Num(SimpleExpr::Const(c))
    }

    /// The variable `x`.
    pub fn var(x: VarId) -> AExpr {
        AExpr::Num(SimpleExpr::var(x))
    }

    /// `(a, b)`.
    pub fn pair(a: AExpr, b: AExpr) -> AExpr {
        AExpr::Pair(Box::new(a), Box::new(b))
    }

    /// The singleton `{a}` — a comprehension with zero binders (§5.1).
    pub fn singleton(a: AExpr) -> AExpr {
        AExpr::Set(vec![Block::new(vec![], Condition::tru(), a)])
    }

    /// The empty set.
    pub fn empty_set() -> AExpr {
        AExpr::Set(vec![])
    }

    /// `{body | vars = 0,n}`.
    pub fn comprehension(vars: Vec<VarId>, body: AExpr) -> AExpr {
        AExpr::Set(vec![Block::new(vars, Condition::tru(), body)])
    }

    /// `{body when guard | vars = 0,n}`.
    pub fn guarded_comprehension(vars: Vec<VarId>, guard: Condition, body: AExpr) -> AExpr {
        AExpr::Set(vec![Block::new(vars, guard, body)])
    }

    /// `A₁ ∪ A₂` of two set-typed expressions (block concatenation).
    /// Panics if either side is not in set normal form.
    pub fn union(a: AExpr, b: AExpr) -> AExpr {
        match (a, b) {
            (AExpr::Set(mut x), AExpr::Set(y)) => {
                x.extend(y);
                AExpr::Set(x)
            }
            _ => panic!("union of non-set abstract expressions"),
        }
    }

    /// The denotation `[A]ρ` at a given `n` (§5.1). `None` means the
    /// expression is undefined there (no guard true, or a negative
    /// number). Undefined *elements* of a comprehension are skipped — the
    /// guards and definedness conditions of well-formed expressions make
    /// this unobservable, and it keeps set denotations total.
    pub fn eval(&self, n: u64, env: &Env) -> Option<Value> {
        match self {
            AExpr::Unit => Some(Value::Unit),
            AExpr::Bool(b) => Some(Value::Bool(*b)),
            AExpr::Num(e) => e.eval(n, env).map(Value::Nat),
            AExpr::Pair(a, b) => Some(Value::pair(a.eval(n, env)?, b.eval(n, env)?)),
            AExpr::Set(blocks) => {
                let mut out = BTreeSet::new();
                for block in blocks {
                    let mut env = env.clone();
                    eval_block(block, n, &mut env, &mut out);
                }
                Some(Value::Set(out))
            }
            AExpr::Guarded(arms) => {
                for (arm, cond) in arms {
                    if cond.eval(n, env)? {
                        return arm.eval(n, env);
                    }
                }
                None
            }
        }
    }

    /// The denotation `[A]ρ` as a hash-consed handle in the thread-local
    /// arena — the hot-path twin of [`AExpr::eval`], used by the Lemma 5.1
    /// verification loops ([`crate::evalem::lemma_holds_at`]) where the
    /// same denotations are built and compared for many `n` and `ρ`:
    /// repeated subterms intern to the same node, and the final equality
    /// check against the evaluator's output is `O(1)`.
    pub fn eval_interned(&self, n: u64, env: &Env) -> Option<VId> {
        match self {
            AExpr::Unit => Some(intern::unit()),
            AExpr::Bool(b) => Some(intern::bool_(*b)),
            AExpr::Num(e) => e.eval(n, env).map(intern::nat),
            AExpr::Pair(a, b) => Some(intern::pair(
                a.eval_interned(n, env)?,
                b.eval_interned(n, env)?,
            )),
            AExpr::Set(blocks) => {
                let mut out = Vec::new();
                for block in blocks {
                    let mut env = env.clone();
                    eval_block_interned(block, n, &mut env, &mut out);
                }
                Some(intern::set(out))
            }
            AExpr::Guarded(arms) => {
                for (arm, cond) in arms {
                    if cond.eval(n, env)? {
                        return arm.eval_interned(n, env);
                    }
                }
                None
            }
        }
    }

    /// Check the expression against a type.
    pub fn check_type(&self, ty: &Type) -> bool {
        match (self, ty) {
            (AExpr::Unit, Type::Unit) => true,
            (AExpr::Bool(_), Type::Bool) => true,
            (AExpr::Num(_), Type::Nat) => true,
            (AExpr::Pair(a, b), Type::Prod(s, t)) => a.check_type(s) && b.check_type(t),
            (AExpr::Set(blocks), Type::Set(elem)) => blocks.iter().all(|b| b.body.check_type(elem)),
            (AExpr::Guarded(arms), _) => arms.iter().all(|(a, _)| a.check_type(ty)),
            _ => false,
        }
    }

    /// Free variables (bound comprehension variables excluded).
    pub fn free_vars(&self) -> BTreeSet<VarId> {
        let mut out = BTreeSet::new();
        self.collect_free(&mut out, &mut BTreeSet::new());
        out
    }

    fn collect_free(&self, out: &mut BTreeSet<VarId>, bound: &mut BTreeSet<VarId>) {
        match self {
            AExpr::Unit | AExpr::Bool(_) => {}
            AExpr::Num(e) => {
                if let Some(v) = e.var_of() {
                    if !bound.contains(&v) {
                        out.insert(v);
                    }
                }
            }
            AExpr::Pair(a, b) => {
                a.collect_free(out, bound);
                b.collect_free(out, bound);
            }
            AExpr::Set(blocks) => {
                for block in blocks {
                    let fresh: Vec<VarId> = block
                        .vars
                        .iter()
                        .copied()
                        .filter(|v| bound.insert(*v))
                        .collect();
                    for v in block.guard.vars() {
                        if !bound.contains(&v) {
                            out.insert(v);
                        }
                    }
                    block.body.collect_free(out, bound);
                    for v in fresh {
                        bound.remove(&v);
                    }
                }
            }
            AExpr::Guarded(arms) => {
                for (arm, cond) in arms {
                    for v in cond.vars() {
                        if !bound.contains(&v) {
                            out.insert(v);
                        }
                    }
                    arm.collect_free(out, bound);
                }
            }
        }
    }

    /// Substitute a *free* variable by a simple expression (bound
    /// occurrences are left alone).
    pub fn subst(&self, x: VarId, e: &SimpleExpr) -> AExpr {
        match self {
            AExpr::Unit | AExpr::Bool(_) => self.clone(),
            AExpr::Num(s) => AExpr::Num(s.subst(x, e)),
            AExpr::Pair(a, b) => AExpr::pair(a.subst(x, e), b.subst(x, e)),
            AExpr::Set(blocks) => AExpr::Set(
                blocks
                    .iter()
                    .map(|blk| {
                        if blk.vars.contains(&x) {
                            blk.clone()
                        } else {
                            Block {
                                vars: blk.vars.clone(),
                                guard: blk.guard.subst(x, e),
                                body: Box::new(blk.body.subst(x, e)),
                            }
                        }
                    })
                    .collect(),
            ),
            AExpr::Guarded(arms) => AExpr::Guarded(
                arms.iter()
                    .map(|(a, c)| (a.subst(x, e), c.subst(x, e)))
                    .collect(),
            ),
        }
    }

    /// Rename every *bound* variable to a fresh one — scope hygiene for
    /// the Lemma 5.1 evaluator when blocks are merged or duplicated.
    pub fn freshen(&self, gen: &mut VarGen) -> AExpr {
        match self {
            AExpr::Unit | AExpr::Bool(_) | AExpr::Num(_) => self.clone(),
            AExpr::Pair(a, b) => AExpr::pair(a.freshen(gen), b.freshen(gen)),
            AExpr::Set(blocks) => AExpr::Set(
                blocks
                    .iter()
                    .map(|blk| {
                        let mut guard = blk.guard.clone();
                        let mut body = blk.body.freshen(gen);
                        let mut vars = Vec::with_capacity(blk.vars.len());
                        for &v in &blk.vars {
                            let fresh = gen.fresh();
                            guard = guard.rename(v, fresh);
                            body = body.rename_free(v, fresh);
                            vars.push(fresh);
                        }
                        Block {
                            vars,
                            guard,
                            body: Box::new(body),
                        }
                    })
                    .collect(),
            ),
            AExpr::Guarded(arms) => AExpr::Guarded(
                arms.iter()
                    .map(|(a, c)| (a.freshen(gen), c.clone()))
                    .collect(),
            ),
        }
    }

    /// Rename free occurrences of `x` to `y`.
    pub fn rename_free(&self, x: VarId, y: VarId) -> AExpr {
        self.subst(x, &SimpleExpr::var(y))
    }

    /// The definedness condition `C_A` (§5.2, case `empty`): a condition
    /// on the free variables expressing that `[A]ρ` is defined. Negative
    /// numbers are the only source of undefinedness at base type;
    /// guarded expressions are defined iff some guard is true (and its arm
    /// is); sets are always defined.
    pub fn definedness(&self) -> Condition {
        match self {
            AExpr::Unit | AExpr::Bool(_) => Condition::tru(),
            AExpr::Num(e) => match *e {
                SimpleExpr::Const(c) => {
                    if c >= 0 {
                        Condition::tru()
                    } else {
                        Condition::fls()
                    }
                }
                // n − c ≥ 0 for large n (c may be any constant)
                SimpleExpr::NMinus(_) => Condition::tru(),
                SimpleExpr::Var(x, c) => {
                    if c >= 0 {
                        Condition::tru()
                    } else {
                        // x + c ≥ 0 ⟺ x ∉ {0, …, −c−1}
                        let mut cond = Condition::tru();
                        for k in 0..(-c) {
                            cond =
                                cond.and(&Condition::neq(SimpleExpr::var(x), SimpleExpr::Const(k)));
                        }
                        cond
                    }
                }
            },
            AExpr::Pair(a, b) => a.definedness().and(&b.definedness()),
            AExpr::Set(_) => Condition::tru(),
            AExpr::Guarded(arms) => {
                let mut cond = Condition::fls();
                for (arm, c) in arms {
                    cond = cond.or(&c.and(&arm.definedness()));
                }
                cond
            }
        }
    }

    /// An upper bound on the degree of the polynomial `P(n)` with
    /// `size([A]ρ) ≤ P(n)` (§5.1: "for any abstract expression A,
    /// `size([A]ρ)` is bounded by some polynomial P(n)").
    pub fn polynomial_degree(&self) -> u32 {
        match self {
            AExpr::Unit | AExpr::Bool(_) | AExpr::Num(_) => 0,
            AExpr::Pair(a, b) => a.polynomial_degree().max(b.polynomial_degree()),
            AExpr::Set(blocks) => blocks
                .iter()
                .map(|b| b.vars.len() as u32 + b.body.polynomial_degree())
                .max()
                .unwrap_or(0),
            AExpr::Guarded(arms) => arms
                .iter()
                .map(|(a, _)| a.polynomial_degree())
                .max()
                .unwrap_or(0),
        }
    }
}

/// Enumerate the binder assignments of `block` at a given `n`: bind each
/// variable over `0..=n` (saving and restoring shadowed bindings) and call
/// `emit` once per assignment whose guard holds. The single source of the
/// comprehension semantics, shared by the tree and interned denotations —
/// only the body evaluation and the element sink differ between them.
fn for_each_block_assignment(
    block: &Block,
    n: u64,
    env: &mut Env,
    depth: usize,
    emit: &mut impl FnMut(&mut Env),
) {
    if depth == block.vars.len() {
        if block.guard.eval(n, env) == Some(true) {
            emit(env);
        }
        return;
    }
    let var = block.vars[depth];
    let saved = env.get(&var).copied();
    for value in 0..=n {
        env.insert(var, value);
        for_each_block_assignment(block, n, env, depth + 1, emit);
    }
    match saved {
        Some(v) => {
            env.insert(var, v);
        }
        None => {
            env.remove(&var);
        }
    }
}

fn eval_block(block: &Block, n: u64, env: &mut Env, out: &mut BTreeSet<Value>) {
    for_each_block_assignment(block, n, env, 0, &mut |env| {
        if let Some(v) = block.body.eval(n, env) {
            out.insert(v);
        }
    });
}

fn eval_block_interned(block: &Block, n: u64, env: &mut Env, out: &mut Vec<VId>) {
    for_each_block_assignment(block, n, env, 0, &mut |env| {
        if let Some(v) = block.body.eval_interned(n, env) {
            out.push(v);
        }
    });
}

/// The paper's running example: `{(x, x+1) when x ≠ n | x = 0,n}`,
/// denoting the chain `rₙ` for every `n` (§5, introduction).
pub fn chain_aexpr(gen: &mut VarGen) -> AExpr {
    let x = gen.fresh();
    AExpr::guarded_comprehension(
        vec![x],
        Condition::neq(SimpleExpr::var(x), SimpleExpr::n()),
        AExpr::pair(
            AExpr::Num(SimpleExpr::var(x)),
            AExpr::Num(SimpleExpr::Var(x, 1)),
        ),
    )
}

/// The §5.1 example `{(2, x, y) | x = 0,n; y = 0,n}` (with the constant
/// specialised to 2), used in tests and docs.
pub fn grid_aexpr(gen: &mut VarGen) -> AExpr {
    let x = gen.fresh();
    let y = gen.fresh();
    AExpr::comprehension(
        vec![x, y],
        AExpr::pair(AExpr::num(2), AExpr::pair(AExpr::var(x), AExpr::var(y))),
    )
}

impl fmt::Display for AExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AExpr::Unit => write!(f, "()"),
            AExpr::Bool(b) => write!(f, "{}", b),
            AExpr::Num(e) => write!(f, "{}", e),
            AExpr::Pair(a, b) => write!(f, "({}, {})", a, b),
            AExpr::Set(blocks) => {
                if blocks.is_empty() {
                    return write!(f, "{{}}");
                }
                for (i, b) in blocks.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∪ ")?;
                    }
                    write!(f, "{{{}", b.body)?;
                    if !b.guard.is_true() {
                        write!(f, " when {}", b.guard)?;
                    }
                    if !b.vars.is_empty() {
                        write!(f, " | ")?;
                        for (j, v) in b.vars.iter().enumerate() {
                            if j > 0 {
                                write!(f, "; ")?;
                            }
                            write!(f, "{} = 0,n", v)?;
                        }
                    }
                    write!(f, "}}")?;
                }
                Ok(())
            }
            AExpr::Guarded(arms) => {
                write!(f, "(")?;
                for (i, (a, c)) in arms.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{} when {}", a, c)?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;

    #[test]
    fn chain_denotes_r_n() {
        let mut gen = VarGen::new();
        let a = chain_aexpr(&mut gen);
        for n in 0..8u64 {
            assert_eq!(a.eval(n, &Env::new()), Some(Value::chain(n)), "n={n}");
        }
        assert!(a.check_type(&Type::nat_rel()));
        assert_eq!(a.polynomial_degree(), 1);
    }

    #[test]
    fn paper_guarded_example() {
        // [{(x, y) when x ≠ y | y = 0,n}]ρ with ρ(x)=1 =
        //   {(1,0), (1,2), …, (1,n)}   (§5.1)
        let mut gen = VarGen::new();
        let x = gen.fresh();
        let y = gen.fresh();
        let a = AExpr::guarded_comprehension(
            vec![y],
            Condition::neq(SimpleExpr::var(x), SimpleExpr::var(y)),
            AExpr::pair(AExpr::var(x), AExpr::var(y)),
        );
        let env: Env = [(x, 1u64)].into_iter().collect();
        let n = 4;
        let expect = Value::relation([(1, 0), (1, 2), (1, 3), (1, 4)]);
        assert_eq!(a.eval(n, &env), Some(expect));
        assert_eq!(a.free_vars().into_iter().collect::<Vec<_>>(), vec![x]);
    }

    #[test]
    fn zero_when_false_denotes_empty() {
        // [{0 when false}] = ∅   (§5.1)
        let a = AExpr::guarded_comprehension(vec![], Condition::fls(), AExpr::num(0));
        assert_eq!(a.eval(5, &Env::new()), Some(Value::empty_set()));
    }

    #[test]
    fn guarded_expression_selects_the_true_arm() {
        let mut gen = VarGen::new();
        let x = gen.fresh();
        let cond = Condition::eq(SimpleExpr::var(x), SimpleExpr::Const(3));
        let a = AExpr::Guarded(vec![
            (AExpr::Bool(true), cond.clone()),
            (AExpr::Bool(false), cond.not()),
        ]);
        let env3: Env = [(x, 3u64)].into_iter().collect();
        let env4: Env = [(x, 4u64)].into_iter().collect();
        assert_eq!(a.eval(9, &env3), Some(Value::TRUE));
        assert_eq!(a.eval(9, &env4), Some(Value::FALSE));
    }

    #[test]
    fn guarded_with_no_true_arm_is_undefined() {
        let a = AExpr::Guarded(vec![(AExpr::num(0), Condition::fls())]);
        assert_eq!(a.eval(3, &Env::new()), None);
    }

    #[test]
    fn negative_numbers_are_undefined() {
        let a = AExpr::Num(SimpleExpr::Const(-1));
        assert_eq!(a.eval(3, &Env::new()), None);
        // and are skipped inside comprehensions: {x − 2 | x = 0,n}
        let mut gen = VarGen::new();
        let x = gen.fresh();
        let s = AExpr::comprehension(vec![x], AExpr::Num(SimpleExpr::Var(x, -2)));
        let out = s.eval(4, &Env::new()).unwrap();
        assert_eq!(out, Value::set((0..=2).map(Value::nat)));
    }

    #[test]
    fn definedness_condition_matches_evaluation() {
        let mut gen = VarGen::new();
        let x = gen.fresh();
        let a = AExpr::pair(AExpr::Num(SimpleExpr::Var(x, -2)), AExpr::num(1));
        let c = a.definedness();
        let n = 6;
        for xv in 0..=n {
            let env: Env = [(x, xv)].into_iter().collect();
            assert_eq!(
                c.eval(n, &env).unwrap(),
                a.eval(n, &env).is_some(),
                "x={xv}"
            );
        }
    }

    #[test]
    fn union_concatenates_blocks() {
        let a = AExpr::singleton(AExpr::num(1));
        let b = AExpr::singleton(AExpr::num(2));
        let u = AExpr::union(a, b);
        assert_eq!(
            u.eval(0, &Env::new()),
            Some(Value::set([Value::nat(1), Value::nat(2)]))
        );
    }

    #[test]
    fn grid_has_degree_two() {
        let mut gen = VarGen::new();
        let g = grid_aexpr(&mut gen);
        assert_eq!(g.polynomial_degree(), 2);
        let v = g.eval(3, &Env::new()).unwrap();
        assert_eq!(v.cardinality(), Some(16));
    }

    #[test]
    fn freshen_preserves_denotation() {
        let mut gen = VarGen::new();
        let a = chain_aexpr(&mut gen);
        let fresh = a.freshen(&mut gen);
        assert_ne!(a, fresh, "binders were renamed");
        for n in 0..5 {
            assert_eq!(a.eval(n, &Env::new()), fresh.eval(n, &Env::new()));
        }
    }

    #[test]
    fn subst_respects_binders() {
        let mut gen = VarGen::new();
        let x = gen.fresh();
        // {x | x = 0,n} has no free x — substitution must not touch it
        let closed = AExpr::comprehension(vec![x], AExpr::var(x));
        let subbed = closed.subst(x, &SimpleExpr::Const(7));
        assert_eq!(closed, subbed);
        // but a genuinely free x is replaced
        let open = AExpr::pair(AExpr::var(x), AExpr::num(0));
        let subbed = open.subst(x, &SimpleExpr::Const(7));
        assert_eq!(subbed, AExpr::pair(AExpr::num(7), AExpr::num(0)));
    }

    #[test]
    fn interned_denotation_agrees_with_tree_denotation() {
        let mut gen = VarGen::new();
        let x = gen.fresh();
        let suite = vec![
            chain_aexpr(&mut gen),
            grid_aexpr(&mut gen),
            AExpr::empty_set(),
            AExpr::pair(AExpr::num(3), AExpr::Num(SimpleExpr::NMinus(1))),
            AExpr::comprehension(vec![x], AExpr::Num(SimpleExpr::Var(x, -2))),
            AExpr::Guarded(vec![(AExpr::num(0), Condition::fls())]),
        ];
        for a in &suite {
            for n in 0..5u64 {
                let tree = a.eval(n, &Env::new());
                let interned = a.eval_interned(n, &Env::new());
                assert_eq!(
                    tree,
                    interned.map(nra_core::value::intern::resolve),
                    "A={a}, n={n}"
                );
                // and the handles match a direct interning of the tree
                if let (Some(t), Some(i)) = (&tree, interned) {
                    assert_eq!(nra_core::value::intern::intern(t), i, "A={a}, n={n}");
                }
            }
        }
    }

    #[test]
    fn display_forms() {
        let mut gen = VarGen::new();
        let a = chain_aexpr(&mut gen);
        assert_eq!(a.to_string(), "{(x0, x0+1) when x0 ≠ n | x0 = 0,n}");
        assert_eq!(AExpr::empty_set().to_string(), "{}");
    }

    #[test]
    fn type_checking() {
        let mut gen = VarGen::new();
        let a = chain_aexpr(&mut gen);
        assert!(a.check_type(&Type::nat_rel()));
        assert!(!a.check_type(&Type::set(Type::Nat)));
        assert!(AExpr::empty_set().check_type(&Type::nat_rel()));
        assert!(AExpr::empty_set().check_type(&Type::set(Type::Bool)));
    }
}
