//! Conditions over simple expressions (§5.1) and their decision procedure
//! "for n large enough" (§5.3).
//!
//! > "We define a **simple condition** to be a condition of the form
//! > `e = e'` or `e ≠ e'`, where `e, e'` are simple expressions. A
//! > **condition** is obtained by combining simple conditions with ∨, ∧,
//! > true and false."
//!
//! > "we say that some condition `C(x⃗)` is **satisfiable** if it is
//! > satisfiable in the classical sense for n large enough, i.e. iff
//! > `∃n₀ > 0, ∀n ≥ n₀, ∃x⃗ ∈ [n]ᵏ` such that `C(x⃗)` is true."
//!
//! Conditions are kept in disjunctive normal form. The central algorithm
//! is [`solve_conjunct`]: an offset-union-find over the *solved* variables
//! that either refutes a conjunct (for large n) or returns its solution
//! set in affine form — pinned classes, free classes (the dimension of
//! §5.3), negative constraints Γ, and *residual* atoms over the variables
//! treated as rigid parameters. Quantifier elimination
//! ([`Condition::exists_elim`] — asserted by the paper in the proof of
//! Lemma 5.1, case `empty`) falls out of the residuals.

use crate::simple::SimpleExpr;
use crate::vars::{Env, VarId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Comparison operator of a simple condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cmp {
    /// `e = e'`.
    Eq,
    /// `e ≠ e'`.
    Neq,
}

/// A simple condition `e = e'` or `e ≠ e'`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom {
    /// Left-hand side.
    pub lhs: SimpleExpr,
    /// Right-hand side.
    pub rhs: SimpleExpr,
    /// `=` or `≠`.
    pub cmp: Cmp,
}

impl Atom {
    /// `e = e'`.
    pub fn eq(lhs: SimpleExpr, rhs: SimpleExpr) -> Self {
        Atom {
            lhs,
            rhs,
            cmp: Cmp::Eq,
        }
    }

    /// `e ≠ e'`.
    pub fn neq(lhs: SimpleExpr, rhs: SimpleExpr) -> Self {
        Atom {
            lhs,
            rhs,
            cmp: Cmp::Neq,
        }
    }

    /// Truth value at a concrete `n` and environment (total: sides are
    /// compared as integers). `None` only if a variable is unbound.
    pub fn eval(&self, n: u64, env: &Env) -> Option<bool> {
        let l = self.lhs.eval_int(n, env)?;
        let r = self.rhs.eval_int(n, env)?;
        Some(match self.cmp {
            Cmp::Eq => l == r,
            Cmp::Neq => l != r,
        })
    }

    /// The negated atom.
    pub fn negated(&self) -> Atom {
        Atom {
            lhs: self.lhs,
            rhs: self.rhs,
            cmp: match self.cmp {
                Cmp::Eq => Cmp::Neq,
                Cmp::Neq => Cmp::Eq,
            },
        }
    }

    /// Substitute a variable by a simple expression on both sides.
    pub fn subst(&self, x: VarId, e: &SimpleExpr) -> Atom {
        Atom {
            lhs: self.lhs.subst(x, e),
            rhs: self.rhs.subst(x, e),
            cmp: self.cmp,
        }
    }

    /// Rename a variable on both sides.
    pub fn rename(&self, x: VarId, y: VarId) -> Atom {
        Atom {
            lhs: self.lhs.rename(x, y),
            rhs: self.rhs.rename(x, y),
            cmp: self.cmp,
        }
    }

    /// Variables mentioned.
    pub fn collect_vars(&self, out: &mut BTreeSet<VarId>) {
        if let Some(v) = self.lhs.var_of() {
            out.insert(v);
        }
        if let Some(v) = self.rhs.var_of() {
            out.insert(v);
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.cmp {
            Cmp::Eq => "=",
            Cmp::Neq => "≠",
        };
        write!(f, "{} {} {}", self.lhs, op, self.rhs)
    }
}

/// A conjunction of simple conditions (one disjunct of a DNF condition).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Conjunct {
    /// The conjoined atoms (empty = true).
    pub atoms: Vec<Atom>,
}

impl Conjunct {
    /// The empty (true) conjunct.
    pub fn tru() -> Self {
        Conjunct::default()
    }

    /// A single-atom conjunct.
    pub fn of(atom: Atom) -> Self {
        Conjunct { atoms: vec![atom] }
    }

    /// Conjoin two conjuncts.
    pub fn and(&self, other: &Conjunct) -> Conjunct {
        let mut atoms = self.atoms.clone();
        atoms.extend(other.atoms.iter().copied());
        Conjunct { atoms }
    }

    /// Truth at concrete `n`, `env`.
    pub fn eval(&self, n: u64, env: &Env) -> Option<bool> {
        for a in &self.atoms {
            if !a.eval(n, env)? {
                return Some(false);
            }
        }
        Some(true)
    }

    /// Syntactic clean-up: drop trivially-true atoms, deduplicate, detect
    /// immediate contradictions (`e = e` vs `e ≠ e` pairs). Returns `None`
    /// if the conjunct is syntactically false.
    pub fn simplified(&self) -> Option<Conjunct> {
        let mut atoms: BTreeSet<Atom> = BTreeSet::new();
        for a in &self.atoms {
            // orient each atom deterministically for deduplication
            let (l, r) = if a.lhs <= a.rhs {
                (a.lhs, a.rhs)
            } else {
                (a.rhs, a.lhs)
            };
            let a = Atom {
                lhs: l,
                rhs: r,
                cmp: a.cmp,
            };
            if l == r {
                match a.cmp {
                    Cmp::Eq => continue,     // e = e is true
                    Cmp::Neq => return None, // e ≠ e is false
                }
            }
            atoms.insert(a);
        }
        // x = y together with x ≠ y
        for a in &atoms {
            if atoms.contains(&a.negated()) {
                return None;
            }
        }
        Some(Conjunct {
            atoms: atoms.into_iter().collect(),
        })
    }

    /// Variables mentioned.
    pub fn vars(&self) -> BTreeSet<VarId> {
        let mut out = BTreeSet::new();
        for a in &self.atoms {
            a.collect_vars(&mut out);
        }
        out
    }

    /// Substitute in every atom.
    pub fn subst(&self, x: VarId, e: &SimpleExpr) -> Conjunct {
        Conjunct {
            atoms: self.atoms.iter().map(|a| a.subst(x, e)).collect(),
        }
    }

    /// Rename in every atom.
    pub fn rename(&self, x: VarId, y: VarId) -> Conjunct {
        Conjunct {
            atoms: self.atoms.iter().map(|a| a.rename(x, y)).collect(),
        }
    }
}

impl fmt::Display for Conjunct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "true");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{}", a)?;
        }
        Ok(())
    }
}

/// A condition in disjunctive normal form (empty disjunction = false).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Condition {
    /// The disjuncts.
    pub conjuncts: Vec<Conjunct>,
}

impl Condition {
    /// `true`.
    pub fn tru() -> Self {
        Condition {
            conjuncts: vec![Conjunct::tru()],
        }
    }

    /// `false`.
    pub fn fls() -> Self {
        Condition::default()
    }

    /// A single atom.
    pub fn atom(a: Atom) -> Self {
        Condition {
            conjuncts: vec![Conjunct::of(a)],
        }
    }

    /// `e = e'`.
    pub fn eq(lhs: SimpleExpr, rhs: SimpleExpr) -> Self {
        Condition::atom(Atom::eq(lhs, rhs))
    }

    /// `e ≠ e'`.
    pub fn neq(lhs: SimpleExpr, rhs: SimpleExpr) -> Self {
        Condition::atom(Atom::neq(lhs, rhs))
    }

    /// True iff syntactically `false` (no disjuncts).
    pub fn is_false(&self) -> bool {
        self.conjuncts.is_empty()
    }

    /// True iff some disjunct is the empty conjunct.
    pub fn is_true(&self) -> bool {
        self.conjuncts.iter().any(|c| c.atoms.is_empty())
    }

    /// Disjunction.
    pub fn or(&self, other: &Condition) -> Condition {
        let mut conjuncts = self.conjuncts.clone();
        conjuncts.extend(other.conjuncts.iter().cloned());
        Condition { conjuncts }.simplified()
    }

    /// Conjunction (distributes over the DNF).
    pub fn and(&self, other: &Condition) -> Condition {
        let mut conjuncts = Vec::with_capacity(self.conjuncts.len() * other.conjuncts.len());
        for a in &self.conjuncts {
            for b in &other.conjuncts {
                conjuncts.push(a.and(b));
            }
        }
        Condition { conjuncts }.simplified()
    }

    /// Negation (De Morgan + distribution back to DNF).
    pub fn not(&self) -> Condition {
        let mut acc = Condition::tru();
        for conj in &self.conjuncts {
            let negated = Condition {
                conjuncts: conj
                    .atoms
                    .iter()
                    .map(|a| Conjunct::of(a.negated()))
                    .collect(),
            };
            acc = acc.and(&negated);
            if acc.is_false() {
                return acc;
            }
        }
        acc
    }

    /// Truth at concrete `n`, `env`.
    pub fn eval(&self, n: u64, env: &Env) -> Option<bool> {
        for c in &self.conjuncts {
            if c.eval(n, env)? {
                return Some(true);
            }
        }
        Some(false)
    }

    /// Syntactic clean-up of every disjunct; drops false disjuncts and
    /// duplicates; collapses to `true` when a true disjunct appears.
    pub fn simplified(&self) -> Condition {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for c in &self.conjuncts {
            if let Some(s) = c.simplified() {
                if s.atoms.is_empty() {
                    return Condition::tru();
                }
                if seen.insert(s.clone()) {
                    out.push(s);
                }
            }
        }
        Condition { conjuncts: out }
    }

    /// Variables mentioned.
    pub fn vars(&self) -> BTreeSet<VarId> {
        let mut out = BTreeSet::new();
        for c in &self.conjuncts {
            for a in &c.atoms {
                a.collect_vars(&mut out);
            }
        }
        out
    }

    /// Substitute in every disjunct.
    pub fn subst(&self, x: VarId, e: &SimpleExpr) -> Condition {
        Condition {
            conjuncts: self.conjuncts.iter().map(|c| c.subst(x, e)).collect(),
        }
    }

    /// Rename in every disjunct.
    pub fn rename(&self, x: VarId, y: VarId) -> Condition {
        Condition {
            conjuncts: self.conjuncts.iter().map(|c| c.rename(x, y)).collect(),
        }
    }

    /// §5.3 satisfiability: true iff, for all large enough `n`, some
    /// assignment of *all* mentioned variables into `[n]` satisfies the
    /// condition.
    pub fn satisfiable_large_n(&self) -> bool {
        let all: Vec<VarId> = self.vars().into_iter().collect();
        self.conjuncts
            .iter()
            .any(|c| solve_conjunct(c, &all).is_some())
    }

    /// Quantifier elimination: `∃ vars. self`, as a condition over the
    /// remaining variables, under the for-large-n semantics (the property
    /// the paper invokes in Lemma 5.1, case `empty`).
    pub fn exists_elim(&self, vars: &[VarId]) -> Condition {
        let mut out = Vec::new();
        for c in &self.conjuncts {
            if let Some(sol) = solve_conjunct(c, vars) {
                out.push(sol.residual);
            }
        }
        Condition { conjuncts: out }.simplified()
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conjuncts.is_empty() {
            return write!(f, "false");
        }
        for (i, c) in self.conjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            if self.conjuncts.len() > 1 && c.atoms.len() > 1 {
                write!(f, "({})", c)?;
            } else {
                write!(f, "{}", c)?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The conjunct solver (§5.3)
// ---------------------------------------------------------------------------

/// A value a solved variable is pinned to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FixedTerm {
    /// A constant.
    Const(i64),
    /// `n − c`.
    NMinus(i64),
    /// A rigid (parameter) variable plus offset.
    Rigid(VarId, i64),
}

impl FixedTerm {
    /// The simple expression this term denotes.
    pub fn as_simple(self) -> SimpleExpr {
        self.to_simple()
    }

    fn shift(self, d: i64) -> FixedTerm {
        match self {
            FixedTerm::Const(c) => FixedTerm::Const(c + d),
            FixedTerm::NMinus(c) => FixedTerm::NMinus(c - d),
            FixedTerm::Rigid(v, c) => FixedTerm::Rigid(v, c + d),
        }
    }

    fn to_simple(self) -> SimpleExpr {
        match self {
            FixedTerm::Const(c) => SimpleExpr::Const(c),
            FixedTerm::NMinus(c) => SimpleExpr::NMinus(c),
            FixedTerm::Rigid(v, c) => SimpleExpr::Var(v, c),
        }
    }
}

/// A solved variable's value: fixed, or free along a parameter class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Resolved {
    /// Pinned to a fixed term.
    Fixed(FixedTerm),
    /// `param(class) + offset`: the class index is the §5.3 parameter `αᵢ`.
    Free(usize, i64),
}

impl Resolved {
    /// The simple expression for a pinned value; `None` if free.
    pub fn pinned_simple(&self) -> Option<SimpleExpr> {
        match *self {
            Resolved::Fixed(t) => Some(t.as_simple()),
            Resolved::Free(_, _) => None,
        }
    }

    /// Shift by a constant offset.
    pub fn shift(self, d: i64) -> Resolved {
        match self {
            Resolved::Fixed(t) => Resolved::Fixed(t.shift(d)),
            Resolved::Free(p, c) => Resolved::Free(p, c + d),
        }
    }
}

/// The solution set of a satisfiable conjunct, in the affine form of §5.3:
/// every solved variable is either pinned ([`Resolved::Fixed`]) or an
/// offset of one of `dimension`-many free parameters, subject to the
/// negative constraints Γ ([`Solution::exclusions`]); atoms over rigid
/// variables remain as [`Solution::residual`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// Value of each solved variable.
    pub assignments: BTreeMap<VarId, Resolved>,
    /// Number of free parameter classes — the dimension `p` of §5.3.
    pub dimension: usize,
    /// Γ: pairs that must differ (at least one side is `Free`).
    pub exclusions: Vec<(Resolved, Resolved)>,
    /// Atoms mentioning only rigid variables (plus induced domain
    /// conditions), i.e. `∃x⃗.C` after eliminating the solved variables.
    pub residual: Conjunct,
}

#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
    offset: Vec<i64>, // val(i) = val(parent[i]) + offset[i]
}

impl UnionFind {
    fn new(k: usize) -> Self {
        UnionFind {
            parent: (0..k).collect(),
            offset: vec![0; k],
        }
    }

    /// Returns `(root, off)` with `val(i) = val(root) + off`.
    fn find(&mut self, i: usize) -> (usize, i64) {
        if self.parent[i] == i {
            return (i, 0);
        }
        let (root, poff) = self.find(self.parent[i]);
        self.parent[i] = root;
        self.offset[i] += poff;
        (root, self.offset[i])
    }
}

enum Side {
    Solve(usize, i64),
    Fixed(FixedTerm),
}

/// Solve a conjunct for `solve_vars` (variables not listed are *rigid*
/// parameters, as in the variable affine spaces of Prop 5.5). Returns
/// `None` if the conjunct is unsatisfiable for all large `n`.
pub fn solve_conjunct(conjunct: &Conjunct, solve_vars: &[VarId]) -> Option<Solution> {
    let mut index: BTreeMap<VarId, usize> = BTreeMap::new();
    for &v in solve_vars {
        let next = index.len();
        index.entry(v).or_insert(next);
    }
    let vars: Vec<VarId> = {
        let mut v: Vec<(usize, VarId)> = index.iter().map(|(&v, &i)| (i, v)).collect();
        v.sort_unstable();
        v.into_iter().map(|(_, v)| v).collect()
    };
    let k = vars.len();
    let mut uf = UnionFind::new(k);
    let mut pins: Vec<Option<FixedTerm>> = vec![None; k];
    let mut residual: Vec<Atom> = Vec::new();

    let classify = |e: &SimpleExpr| -> Side {
        match *e {
            SimpleExpr::Const(c) => Side::Fixed(FixedTerm::Const(c)),
            SimpleExpr::NMinus(c) => Side::Fixed(FixedTerm::NMinus(c)),
            SimpleExpr::Var(x, c) => match index.get(&x) {
                Some(&i) => Side::Solve(i, c),
                None => Side::Fixed(FixedTerm::Rigid(x, c)),
            },
        }
    };

    // Merge a pin onto a root; may emit residual atoms; None = unsat.
    fn merge_pin(
        current: &mut Option<FixedTerm>,
        new: FixedTerm,
        residual: &mut Vec<Atom>,
    ) -> bool {
        match *current {
            None => {
                *current = Some(new);
                true
            }
            Some(old) => match (old, new) {
                (FixedTerm::Const(a), FixedTerm::Const(b)) => a == b,
                (FixedTerm::NMinus(a), FixedTerm::NMinus(b)) => a == b,
                (FixedTerm::Const(_), FixedTerm::NMinus(_))
                | (FixedTerm::NMinus(_), FixedTerm::Const(_)) => false, // equal at one n only
                (FixedTerm::Rigid(y, a), FixedTerm::Rigid(z, b)) => {
                    if y == z {
                        a == b
                    } else {
                        residual.push(Atom::eq(SimpleExpr::Var(y, a), SimpleExpr::Var(z, b)));
                        true
                    }
                }
                (FixedTerm::Rigid(y, a), ground) => {
                    residual.push(Atom::eq(SimpleExpr::Var(y, a), ground.to_simple()));
                    // prefer the ground pin as canonical
                    *current = Some(ground);
                    true
                }
                (ground, FixedTerm::Rigid(y, a)) => {
                    residual.push(Atom::eq(SimpleExpr::Var(y, a), ground.to_simple()));
                    true
                }
            },
        }
    }

    // Ground decision for atoms without solve variables. Returns
    // Some(true) = atom holds for large n, Some(false) = fails for large
    // n, None = depends on rigid variables (goes to the residual).
    fn ground_decide(l: FixedTerm, r: FixedTerm, cmp: Cmp) -> Option<bool> {
        let eq = match (l, r) {
            (FixedTerm::Const(a), FixedTerm::Const(b)) => Some(a == b),
            (FixedTerm::NMinus(a), FixedTerm::NMinus(b)) => Some(a == b),
            (FixedTerm::Const(_), FixedTerm::NMinus(_))
            | (FixedTerm::NMinus(_), FixedTerm::Const(_)) => Some(false),
            (FixedTerm::Rigid(y, a), FixedTerm::Rigid(z, b)) if y == z => Some(a == b),
            _ => None,
        }?;
        Some(match cmp {
            Cmp::Eq => eq,
            Cmp::Neq => !eq,
        })
    }

    // Phase 1: equalities.
    for atom in conjunct.atoms.iter().filter(|a| a.cmp == Cmp::Eq) {
        match (classify(&atom.lhs), classify(&atom.rhs)) {
            (Side::Solve(i, a), Side::Solve(j, b)) => {
                // val(i) + a = val(j) + b
                let (ri, oi) = uf.find(i);
                let (rj, oj) = uf.find(j);
                if ri == rj {
                    if oi + a != oj + b {
                        return None;
                    }
                } else {
                    // link ri under rj: val(ri) = val(rj) + delta
                    let delta = oj + b - a - oi;
                    uf.parent[ri] = rj;
                    uf.offset[ri] = delta;
                    // carry ri's pin over: val(rj) = val(ri) − delta
                    if let Some(p) = pins[ri].take() {
                        if !merge_pin(&mut pins[rj], p.shift(-delta), &mut residual) {
                            return None;
                        }
                    }
                }
            }
            (Side::Solve(i, a), Side::Fixed(t)) | (Side::Fixed(t), Side::Solve(i, a)) => {
                let (root, off) = uf.find(i);
                if !merge_pin(&mut pins[root], t.shift(-(off + a)), &mut residual) {
                    return None;
                }
            }
            (Side::Fixed(l), Side::Fixed(r)) => match ground_decide(l, r, Cmp::Eq) {
                Some(true) => {}
                Some(false) => return None,
                None => residual.push(Atom::eq(l.to_simple(), r.to_simple())),
            },
        }
    }

    // Resolve a side to its canonical form after all unions.
    let resolve = |side: Side, uf: &mut UnionFind, pins: &[Option<FixedTerm>]| -> Resolved {
        match side {
            Side::Fixed(t) => Resolved::Fixed(t),
            Side::Solve(i, a) => {
                let (root, off) = uf.find(i);
                match pins[root] {
                    Some(p) => Resolved::Fixed(p.shift(off + a)),
                    None => Resolved::Free(root, off + a),
                }
            }
        }
    };

    // Phase 2: inequalities.
    let mut exclusions_raw: Vec<(Resolved, Resolved)> = Vec::new();
    for atom in conjunct.atoms.iter().filter(|a| a.cmp == Cmp::Neq) {
        let l = resolve(classify(&atom.lhs), &mut uf, &pins);
        let r = resolve(classify(&atom.rhs), &mut uf, &pins);
        match (l, r) {
            (Resolved::Fixed(a), Resolved::Fixed(b)) => match ground_decide(a, b, Cmp::Neq) {
                Some(true) => {}
                Some(false) => return None,
                None => residual.push(Atom::neq(a.to_simple(), b.to_simple())),
            },
            (Resolved::Free(i, a), Resolved::Free(j, b)) if i == j => {
                if a == b {
                    return None; // v ≠ v
                }
                // different offsets of the same parameter always differ
            }
            pair => exclusions_raw.push(pair),
        }
    }

    // Domain checks and induced residuals for pinned variables: every
    // solve variable's value must lie in [0, n] for large n.
    for (i, &v) in vars.iter().enumerate() {
        let (root, off) = uf.find(i);
        if let Some(pin) = pins[root] {
            match pin.shift(off) {
                FixedTerm::Const(c) => {
                    if c < 0 {
                        return None;
                    }
                }
                FixedTerm::NMinus(c) => {
                    if c < 0 {
                        return None; // value n + |c| > n
                    }
                }
                FixedTerm::Rigid(y, a) => {
                    // need y + a ∈ [0, n]: finitely many exclusions on y
                    if a < 0 {
                        for kk in 0..(-a) {
                            residual.push(Atom::neq(SimpleExpr::var(y), SimpleExpr::Const(kk)));
                        }
                    } else {
                        for kk in 0..a {
                            residual.push(Atom::neq(SimpleExpr::var(y), SimpleExpr::NMinus(kk)));
                        }
                    }
                }
            }
        }
        let _ = v;
    }

    // Canonical parameter numbering: free roots in index order.
    let mut param_of_root: BTreeMap<usize, usize> = BTreeMap::new();
    for i in 0..k {
        let (root, _) = uf.find(i);
        if pins[root].is_none() {
            let next = param_of_root.len();
            param_of_root.entry(root).or_insert(next);
        }
    }
    let renumber = |r: Resolved| -> Resolved {
        match r {
            Resolved::Free(root, off) => Resolved::Free(param_of_root[&root], off),
            fixed => fixed,
        }
    };

    let mut assignments = BTreeMap::new();
    for (i, &v) in vars.iter().enumerate() {
        let res = resolve(Side::Solve(i, 0), &mut uf, &pins);
        assignments.insert(v, renumber(res));
    }
    let exclusions: Vec<(Resolved, Resolved)> = exclusions_raw
        .into_iter()
        .map(|(a, b)| (renumber(a), renumber(b)))
        .collect();

    let residual = Conjunct { atoms: residual }.simplified()?;
    Some(Solution {
        assignments,
        dimension: param_of_root.len(),
        exclusions,
        residual,
    })
}

impl Solution {
    /// Resolve an arbitrary simple expression through the solution:
    /// constants stay, solved variables follow their assignment (shifted),
    /// rigid variables become [`FixedTerm::Rigid`].
    pub fn resolve_expr(&self, e: &SimpleExpr) -> Resolved {
        match *e {
            SimpleExpr::Const(c) => Resolved::Fixed(FixedTerm::Const(c)),
            SimpleExpr::NMinus(c) => Resolved::Fixed(FixedTerm::NMinus(c)),
            SimpleExpr::Var(x, c) => match self.assignments.get(&x) {
                Some(&r) => r.shift(c),
                None => Resolved::Fixed(FixedTerm::Rigid(x, c)),
            },
        }
    }

    /// Construct a concrete witness environment for the solved variables
    /// at a given `n`, extending `rigid_env` (values for rigid variables).
    /// Free parameters are chosen greedily to avoid all exclusions.
    /// Returns `None` if `n` is too small.
    pub fn witness(&self, n: u64, rigid_env: &Env) -> Option<Env> {
        // choose values for parameters 0..dimension
        let mut params: Vec<i128> = Vec::with_capacity(self.dimension);
        let eval_fixed = |t: FixedTerm| -> Option<i128> {
            match t {
                FixedTerm::Const(c) => Some(c as i128),
                FixedTerm::NMinus(c) => Some(n as i128 - c as i128),
                FixedTerm::Rigid(y, c) => Some(*rigid_env.get(&y)? as i128 + c as i128),
            }
        };
        for p in 0..self.dimension {
            let mut chosen = None;
            'candidate: for cand in 0..=(n as i128) {
                for (l, r) in &self.exclusions {
                    // only check exclusions fully determined so far
                    let lv = match *l {
                        Resolved::Fixed(t) => eval_fixed(t)?,
                        Resolved::Free(i, off) if i < p => params[i] + off as i128,
                        Resolved::Free(i, off) if i == p => cand + off as i128,
                        _ => continue,
                    };
                    let rv = match *r {
                        Resolved::Fixed(t) => eval_fixed(t)?,
                        Resolved::Free(i, off) if i < p => params[i] + off as i128,
                        Resolved::Free(i, off) if i == p => cand + off as i128,
                        _ => continue,
                    };
                    if lv == rv {
                        continue 'candidate;
                    }
                }
                chosen = Some(cand);
                break;
            }
            params.push(chosen?);
        }
        let mut env = rigid_env.clone();
        for (&v, &res) in &self.assignments {
            let value = match res {
                Resolved::Fixed(t) => eval_fixed(t)?,
                Resolved::Free(i, off) => params[i] + off as i128,
            };
            let value = u64::try_from(value).ok()?;
            if value > n {
                return None;
            }
            env.insert(v, value);
        }
        Some(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }
    fn x(i: u32) -> SimpleExpr {
        SimpleExpr::var(v(i))
    }
    fn c(k: i64) -> SimpleExpr {
        SimpleExpr::Const(k)
    }
    fn nm(k: i64) -> SimpleExpr {
        SimpleExpr::NMinus(k)
    }

    /// Brute-force satisfiability at a specific n.
    fn brute_sat(cond: &Condition, n: u64) -> bool {
        let vars: Vec<VarId> = cond.vars().into_iter().collect();
        let k = vars.len();
        let mut env = Env::new();
        fn rec(cond: &Condition, vars: &[VarId], i: usize, n: u64, env: &mut Env) -> bool {
            if i == vars.len() {
                return cond.eval(n, env).unwrap();
            }
            for val in 0..=n {
                env.insert(vars[i], val);
                if rec(cond, vars, i + 1, n, env) {
                    return true;
                }
            }
            false
        }
        let _ = k;
        rec(cond, &vars, 0, n, &mut env)
    }

    #[test]
    fn paper_example_condition() {
        // x = y + 5 ∧ y ≠ z − 1  ∨  x ≠ y + 1 ∧ y = z + 5 (from §5.1)
        let cond = Condition::eq(x(0), x(1).shift(5))
            .and(&Condition::neq(x(1), x(2).shift(-1)))
            .or(&Condition::neq(x(0), x(1).shift(1)).and(&Condition::eq(x(1), x(2).shift(5))));
        assert!(cond.satisfiable_large_n());
        assert!(brute_sat(&cond, 12));
    }

    #[test]
    fn connectives_match_truth_tables() {
        let t = Condition::tru();
        let f = Condition::fls();
        assert!(t.is_true() && !t.is_false());
        assert!(f.is_false() && !f.is_true());
        assert!(t.and(&f).is_false());
        assert!(t.or(&f).is_true());
        assert!(f.not().is_true());
        assert!(t.not().is_false());
    }

    #[test]
    fn negation_agrees_with_concrete_semantics() {
        let cond = Condition::eq(x(0), c(3)).and(&Condition::neq(x(1), nm(1)));
        let neg = cond.not();
        let n = 9;
        for a in 0..=n {
            for b in 0..=n {
                let env: Env = [(v(0), a), (v(1), b)].into_iter().collect();
                assert_eq!(
                    cond.eval(n, &env).unwrap(),
                    !neg.eval(n, &env).unwrap(),
                    "a={a} b={b}"
                );
            }
        }
    }

    #[test]
    fn unsat_chains_detected() {
        // x = y + 1 ∧ y = x + 1 is unsat
        let cond = Condition::eq(x(0), x(1).shift(1)).and(&Condition::eq(x(1), x(0).shift(1)));
        assert!(!cond.satisfiable_large_n());
        assert!(!brute_sat(&cond, 10));
        // x = y + 1 ∧ y = z + 1 ∧ x = z + 2 is sat
        let cond = Condition::eq(x(0), x(1).shift(1))
            .and(&Condition::eq(x(1), x(2).shift(1)))
            .and(&Condition::eq(x(0), x(2).shift(2)));
        assert!(cond.satisfiable_large_n());
        // … but x = z + 3 makes it unsat
        let cond = cond.and(&Condition::eq(x(0), x(2).shift(3)));
        assert!(!cond.satisfiable_large_n());
    }

    #[test]
    fn const_vs_nminus_pins_conflict_for_large_n() {
        // x = 3 ∧ x = n − 5 only holds at n = 8
        let cond = Condition::eq(x(0), c(3)).and(&Condition::eq(x(0), nm(5)));
        assert!(!cond.satisfiable_large_n());
        assert!(brute_sat(&cond, 8), "it does hold at exactly n = 8");
        assert!(!brute_sat(&cond, 20));
    }

    #[test]
    fn negative_pins_are_unsat() {
        // x = y − 5 ∧ y = 2  ⟹  x = −3 ∉ [n]
        let cond = Condition::eq(x(0), x(1).shift(-5)).and(&Condition::eq(x(1), c(2)));
        assert!(!cond.satisfiable_large_n());
        assert!(!brute_sat(&cond, 30));
        // x = n + 2 (NMinus(−2)) is out of domain too
        let cond = Condition::eq(x(0), nm(-2));
        assert!(!cond.satisfiable_large_n());
    }

    #[test]
    fn inequalities_leave_room_for_large_n() {
        // x ≠ 0 ∧ x ≠ n ∧ x ≠ y ∧ y ≠ 3 is satisfiable for large n
        let cond = Condition::neq(x(0), c(0))
            .and(&Condition::neq(x(0), nm(0)))
            .and(&Condition::neq(x(0), x(1)))
            .and(&Condition::neq(x(1), c(3)));
        assert!(cond.satisfiable_large_n());
        assert!(brute_sat(&cond, 6));
    }

    #[test]
    fn same_class_inequality_with_zero_offset_is_unsat() {
        // x = y ∧ x ≠ y
        let cond = Condition::eq(x(0), x(1)).and(&Condition::neq(x(0), x(1)));
        assert!(!cond.satisfiable_large_n());
        // x = y + 1 ∧ x ≠ y + 1
        let cond = Condition::eq(x(0), x(1).shift(1)).and(&Condition::neq(x(0), x(1).shift(1)));
        assert!(!cond.satisfiable_large_n());
        // x = y + 1 ∧ x ≠ y  — fine (offsets differ)
        let cond = Condition::eq(x(0), x(1).shift(1)).and(&Condition::neq(x(0), x(1)));
        assert!(cond.satisfiable_large_n());
    }

    #[test]
    fn dimension_counts_free_classes() {
        // x free, y = x + 2, z pinned to 3, w free: dimension 2
        let conj = Conjunct {
            atoms: vec![Atom::eq(x(1), x(0).shift(2)), Atom::eq(x(2), c(3))],
        };
        let sol = solve_conjunct(&conj, &[v(0), v(1), v(2), v(3)]).unwrap();
        assert_eq!(sol.dimension, 2);
        assert_eq!(sol.assignments[&v(2)], Resolved::Fixed(FixedTerm::Const(3)));
        match (sol.assignments[&v(0)], sol.assignments[&v(1)]) {
            (Resolved::Free(p0, 0), Resolved::Free(p1, 2)) => assert_eq!(p0, p1),
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn witness_satisfies_the_conjunct() {
        let conj = Conjunct {
            atoms: vec![
                Atom::eq(x(1), x(0).shift(2)),
                Atom::neq(x(0), c(0)),
                Atom::neq(x(0), x(3)),
                Atom::eq(x(2), nm(1)),
            ],
        };
        let vars = [v(0), v(1), v(2), v(3)];
        let sol = solve_conjunct(&conj, &vars).unwrap();
        let n = 10;
        let env = sol.witness(n, &Env::new()).unwrap();
        assert_eq!(Conjunct::eval(&conj, n, &env), Some(true), "{env:?}");
    }

    #[test]
    fn quantifier_elimination_projects_correctly() {
        // ∃x. (x = y ∧ x = z)  ⟺  y = z
        let cond = Condition::eq(x(0), x(1)).and(&Condition::eq(x(0), x(2)));
        let elim = cond.exists_elim(&[v(0)]);
        let expect = Condition::eq(x(1), x(2));
        let n = 8;
        for a in 0..=n {
            for b in 0..=n {
                let env: Env = [(v(1), a), (v(2), b)].into_iter().collect();
                assert_eq!(
                    elim.eval(n, &env).unwrap(),
                    expect.eval(n, &env).unwrap(),
                    "y={a} z={b}"
                );
            }
        }
    }

    #[test]
    fn quantifier_elimination_domain_conditions() {
        // ∃x. x = y − 5  ⟺  y ≥ 5  ⟺  y ∉ {0..4}
        let cond = Condition::eq(x(0), x(1).shift(-5));
        let elim = cond.exists_elim(&[v(0)]);
        let n = 12;
        for b in 0..=n {
            let env: Env = [(v(1), b)].into_iter().collect();
            assert_eq!(elim.eval(n, &env).unwrap(), b >= 5, "y={b}: {elim}");
        }
        // ∃x. x = y + 3  ⟺  y ≤ n − 3
        let cond = Condition::eq(x(0), x(1).shift(3));
        let elim = cond.exists_elim(&[v(0)]);
        for b in 0..=n {
            let env: Env = [(v(1), b)].into_iter().collect();
            assert_eq!(elim.eval(n, &env).unwrap(), b <= n - 3, "y={b}: {elim}");
        }
    }

    #[test]
    fn quantifier_elimination_drops_free_inequalities() {
        // ∃x. (x ≠ y ∧ x ≠ 0 ∧ x ≠ n)  ⟺  true (for large n)
        let cond = Condition::neq(x(0), x(1))
            .and(&Condition::neq(x(0), c(0)))
            .and(&Condition::neq(x(0), nm(0)));
        let elim = cond.exists_elim(&[v(0)]);
        assert!(elim.is_true(), "{elim}");
    }

    #[test]
    fn quantifier_elimination_matches_brute_force_on_mixed_conditions() {
        // ∃x. (x = y + 1 ∧ x ≠ z) — residual should be satisfied unless it
        // forces y + 1 = z … actually always satisfiable when y ≤ n−1;
        // check against brute force.
        let cond = Condition::eq(x(0), x(1).shift(1)).and(&Condition::neq(x(0), x(2)));
        let elim = cond.exists_elim(&[v(0)]);
        let n = 9;
        for yv in 0..=n {
            for zv in 0..=n {
                let mut env: Env = [(v(1), yv), (v(2), zv)].into_iter().collect();
                // brute: exists x in [0,n]
                let mut brute = false;
                for xv in 0..=n {
                    env.insert(v(0), xv);
                    if cond.eval(n, &env).unwrap() {
                        brute = true;
                        break;
                    }
                }
                env.remove(&v(0));
                assert_eq!(elim.eval(n, &env).unwrap(), brute, "y={yv} z={zv}: {elim}");
            }
        }
    }

    #[test]
    fn solver_agrees_with_brute_force_on_random_conjuncts() {
        // pseudo-random atom soup over 3 variables with small offsets;
        // compare for-large-n verdict with brute force at a big n.
        let mut state = 0xDEADBEEFu64;
        let mut rnd = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        let n_big = 24;
        for _case in 0..300 {
            let len = 1 + rnd(4);
            let mut atoms = Vec::new();
            for _ in 0..len {
                let side = |rnd: &mut dyn FnMut(u64) -> u64| -> SimpleExpr {
                    match rnd(3) {
                        0 => SimpleExpr::Const(rnd(4) as i64),
                        1 => SimpleExpr::NMinus(rnd(3) as i64),
                        _ => SimpleExpr::Var(v(rnd(3) as u32), rnd(5) as i64 - 2),
                    }
                };
                let lhs = side(&mut rnd);
                let rhs = side(&mut rnd);
                let cmp = if rnd(2) == 0 { Cmp::Eq } else { Cmp::Neq };
                atoms.push(Atom { lhs, rhs, cmp });
            }
            let cond = Condition {
                conjuncts: vec![Conjunct { atoms }],
            };
            let verdict = cond.satisfiable_large_n();
            // brute force at two sizes to dodge boundary accidents
            let brute = brute_sat(&cond, n_big) && brute_sat(&cond, n_big + 1);
            assert_eq!(verdict, brute, "condition {cond}");
        }
    }

    #[test]
    fn display_forms() {
        // `simplified` orients atoms canonically (Const < NMinus < Var)
        let cond = Condition::eq(x(0), c(3)).or(&Condition::neq(x(1), nm(1)));
        assert_eq!(cond.to_string(), "3 = x0 ∨ n-1 ≠ x1");
        assert_eq!(Condition::fls().to_string(), "false");
        assert_eq!(Condition::tru().to_string(), "true");
    }
}
