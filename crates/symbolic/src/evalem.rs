//! The Evaluation Lemma (Lemma 5.1), executable.
//!
//! > "Let A be some (not necessarily closed) abstract expression of type
//! > s, and f ∈ NRA. Then there is some abstract expression A' such that
//! > f(A) ⇓ A', meaning that ∀n, ∀ρ, `f([A]ρ) ⇓ [A']ρ`."
//!
//! [`apply`] computes that `A'` by structural recursion on `f`, exactly
//! following the paper's proof: `map` pushes into comprehension blocks,
//! `=` introduces guarded expressions, `empty` uses quantifier elimination
//! on the definedness condition, `μ` merges binder scopes (with
//! freshening), and so on.
//!
//! `powerset` — the Lemma 5.8 extension — is handled when the context
//! enables it ([`PowersetMode::Dichotomy`]): the set is analysed by
//! [`crate::dichotomy`]; either it has boundedly many elements and the
//! powerset stays an abstract expression (case 1 of the lemma), or an
//! `Ω(n)`-elements certificate is produced and the evaluation is reported
//! as exponential ([`SymbolicError::ExponentialPowerset`]).

use crate::aexpr::{AExpr, Block};
use crate::condition::Condition;
use crate::dichotomy::{self, LinearCertificate};
use crate::vars::VarGen;
use nra_core::expr::Expr;
use std::fmt;

/// How the symbolic evaluator treats `powerset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowersetMode {
    /// Reject it — pure Lemma 5.1 (`f ∈ NRA`).
    Reject,
    /// Apply the Lemma 5.8 dichotomy, enumerating at most this many
    /// witness elements in the bounded case.
    Dichotomy {
        /// Upper bound on the witness count (the result has `2^m` blocks).
        max_witnesses: usize,
    },
}

/// Evaluation context: fresh-variable supply and powerset mode.
#[derive(Debug)]
pub struct SymCtx {
    /// Fresh-variable supply (must dominate all variables of the input).
    pub gen: VarGen,
    /// Powerset handling.
    pub mode: PowersetMode,
    /// Witness counts of every *bounded* powerset application encountered
    /// (Lemma 5.8 case 1). Their maximum is the approximation order of
    /// Prop 4.2 — see [`approximation_order`].
    pub observed_bounds: Vec<usize>,
}

impl SymCtx {
    /// A context whose variable supply starts above the free and bound
    /// variables of `a`, with `powerset` rejected (pure Lemma 5.1).
    pub fn for_expr(a: &AExpr) -> Self {
        // free_vars misses bound ones; over-approximate by scanning both:
        // freshen against a large bound by walking the display string is
        // fragile — instead collect bound ids structurally.
        let mut max = 0u32;
        collect_max_var(a, &mut max);
        SymCtx {
            gen: VarGen::above([crate::vars::VarId(max)]),
            mode: PowersetMode::Reject,
            observed_bounds: Vec::new(),
        }
    }

    /// Same, but with the Lemma 5.8 dichotomy enabled.
    pub fn with_dichotomy(a: &AExpr, max_witnesses: usize) -> Self {
        let mut ctx = SymCtx::for_expr(a);
        ctx.mode = PowersetMode::Dichotomy { max_witnesses };
        ctx
    }
}

fn collect_max_var(a: &AExpr, max: &mut u32) {
    match a {
        AExpr::Unit | AExpr::Bool(_) => {}
        AExpr::Num(e) => {
            if let Some(v) = e.var_of() {
                *max = (*max).max(v.0);
            }
        }
        AExpr::Pair(x, y) => {
            collect_max_var(x, max);
            collect_max_var(y, max);
        }
        AExpr::Set(blocks) => {
            for b in blocks {
                for v in &b.vars {
                    *max = (*max).max(v.0);
                }
                for v in b.guard.vars() {
                    *max = (*max).max(v.0);
                }
                collect_max_var(&b.body, max);
            }
        }
        AExpr::Guarded(arms) => {
            for (arm, c) in arms {
                for v in c.vars() {
                    *max = (*max).max(v.0);
                }
                collect_max_var(arm, max);
            }
        }
    }
}

/// Why symbolic evaluation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymbolicError {
    /// A projection hit a non-pair expression.
    NotAPair,
    /// A set operation hit a non-set expression.
    NotASet,
    /// A conditional hit a non-boolean expression.
    NotABool,
    /// `=` hit a non-numeric component.
    NotANum,
    /// The construct is outside `NRA` (`while`, `const`).
    Unsupported(&'static str),
    /// `powerset` was encountered in [`PowersetMode::Reject`].
    PowersetRejected,
    /// Lemma 5.8 case 2: the abstract set has `Ω(n)` elements, so the
    /// evaluation needs space `Ω(2^{cn})`. Carries the certificate.
    ExponentialPowerset(LinearCertificate),
    /// The bounded case found more witnesses than the configured cap.
    TooManyWitnesses {
        /// Number of witnesses found.
        found: usize,
        /// The configured cap.
        cap: usize,
    },
    /// The dichotomy analysis could not classify the set (conservative
    /// fallback — see DESIGN.md on the Lemma 5.6 generality).
    Inconclusive,
}

impl fmt::Display for SymbolicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymbolicError::NotAPair => write!(f, "expected a pair abstract expression"),
            SymbolicError::NotASet => write!(f, "expected a set abstract expression"),
            SymbolicError::NotABool => write!(f, "expected a boolean abstract expression"),
            SymbolicError::NotANum => write!(f, "expected numeric components"),
            SymbolicError::Unsupported(what) => write!(f, "`{}` is outside NRA", what),
            SymbolicError::PowersetRejected => {
                write!(f, "powerset not allowed in pure Lemma 5.1 mode")
            }
            SymbolicError::ExponentialPowerset(cert) => write!(
                f,
                "powerset of a set with Ω(n) elements (certificate: {}) — complexity Ω(2^cn)",
                cert
            ),
            SymbolicError::TooManyWitnesses { found, cap } => {
                write!(f, "bounded set has {} witnesses, cap is {}", found, cap)
            }
            SymbolicError::Inconclusive => write!(f, "dichotomy analysis inconclusive"),
        }
    }
}

impl std::error::Error for SymbolicError {}

/// Normalise a set-typed abstract expression into its blocks, pushing any
/// top-level guards into the block guards.
pub fn to_blocks(a: &AExpr) -> Result<Vec<Block>, SymbolicError> {
    match a {
        AExpr::Set(blocks) => Ok(blocks.clone()),
        AExpr::Guarded(arms) => {
            let mut out = Vec::new();
            for (arm, cond) in arms {
                for block in to_blocks(arm)? {
                    let guard = block.guard.and(cond);
                    out.push(Block {
                        vars: block.vars,
                        guard,
                        body: block.body,
                    });
                }
            }
            Ok(out)
        }
        _ => Err(SymbolicError::NotASet),
    }
}

/// Explode an expression into guard-free shapes with path conditions,
/// pushing guards out of pair components. Sets are treated as atoms.
fn explode(a: &AExpr) -> Vec<(AExpr, Condition)> {
    match a {
        AExpr::Guarded(arms) => arms
            .iter()
            .flat_map(|(arm, c)| {
                explode(arm)
                    .into_iter()
                    .map(move |(shape, inner)| (shape, inner.and(c)))
            })
            .filter(|(_, c)| !c.is_false())
            .collect(),
        AExpr::Pair(x, y) => {
            let xs = explode(x);
            let ys = explode(y);
            let mut out = Vec::with_capacity(xs.len() * ys.len());
            for (sx, cx) in &xs {
                for (sy, cy) in &ys {
                    let c = cx.and(cy);
                    if !c.is_false() {
                        out.push((AExpr::pair(sx.clone(), sy.clone()), c));
                    }
                }
            }
            out
        }
        other => vec![(other.clone(), Condition::tru())],
    }
}

/// Reassemble exploded arms into a single expression, pushing conditions
/// into set blocks where possible.
fn merge_arms(arms: Vec<(AExpr, Condition)>) -> AExpr {
    let arms: Vec<(AExpr, Condition)> = arms.into_iter().filter(|(_, c)| !c.is_false()).collect();
    if arms.len() == 1 && arms[0].1.is_true() {
        return arms.into_iter().next().unwrap().0;
    }
    // all-set arms: a guarded set is the union of the guard-pushed blocks
    if !arms.is_empty() && arms.iter().all(|(a, _)| matches!(a, AExpr::Set(_))) {
        let mut blocks = Vec::new();
        for (a, c) in &arms {
            if let AExpr::Set(bs) = a {
                for b in bs {
                    blocks.push(Block {
                        vars: b.vars.clone(),
                        guard: b.guard.and(c),
                        body: b.body.clone(),
                    });
                }
            }
        }
        return AExpr::Set(blocks);
    }
    AExpr::Guarded(arms)
}

/// Attach a new block body, distributing guarded bodies into separate
/// blocks (an undefined element — all guards false — contributes nothing,
/// matching the skip semantics of `AExpr::eval`).
fn blocks_with_body(vars: Vec<crate::vars::VarId>, guard: Condition, body: AExpr) -> Vec<Block> {
    match body {
        AExpr::Guarded(arms) => arms
            .into_iter()
            .map(|(arm, c)| Block {
                vars: vars.clone(),
                guard: guard.and(&c),
                body: Box::new(arm),
            })
            .filter(|b| !b.guard.is_false())
            .collect(),
        other => vec![Block {
            vars,
            guard,
            body: Box::new(other),
        }],
    }
}

/// Lemma 5.1 (and, in dichotomy mode, Lemma 5.8): compute `A'` with
/// `f(A) ⇓ A'`, i.e. `∀n ∀ρ. f([A]ρ) ⇓ [A']ρ`.
///
/// ```
/// use nra_core::builder;
/// use nra_symbolic::{apply, chain_aexpr, Env, SymCtx, VarGen};
///
/// let mut gen = VarGen::new();
/// let chain = chain_aexpr(&mut gen);           // denotes rₙ for every n
/// let mut ctx = SymCtx::for_expr(&chain);
/// let image = apply(&builder::map(builder::snd()), &chain, &mut ctx).unwrap();
/// // [map(π₂)(A)] at n = 4 is {1, 2, 3, 4}
/// let v = image.eval(4, &Env::new()).unwrap();
/// assert_eq!(v.cardinality(), Some(4));
/// ```
pub fn apply(f: &Expr, a: &AExpr, ctx: &mut SymCtx) -> Result<AExpr, SymbolicError> {
    match f {
        Expr::Id => Ok(a.clone()),
        Expr::Bang => Ok(AExpr::Unit),
        Expr::Tuple(g, h) => Ok(AExpr::pair(apply(g, a, ctx)?, apply(h, a, ctx)?)),
        Expr::Fst => project(a, true),
        Expr::Snd => project(a, false),
        Expr::Sng => Ok(AExpr::singleton(a.clone())),
        Expr::Map(g) => {
            let blocks = to_blocks(a)?;
            let mut out = Vec::new();
            for b in blocks {
                let image = apply(g, &b.body, ctx)?;
                out.extend(blocks_with_body(b.vars, b.guard, image));
            }
            Ok(AExpr::Set(out))
        }
        Expr::Flatten => {
            let outer = to_blocks(a)?;
            let mut out = Vec::new();
            for ob in outer {
                // freshen the inner scope before merging binders
                let inner_expr = AExpr::Set(to_blocks(&ob.body)?).freshen(&mut ctx.gen);
                let inner = to_blocks(&inner_expr)?;
                for ib in inner {
                    let mut vars = ob.vars.clone();
                    vars.extend(ib.vars);
                    out.push(Block {
                        vars,
                        guard: ob.guard.and(&ib.guard),
                        body: ib.body,
                    });
                }
            }
            Ok(AExpr::Set(out))
        }
        Expr::PairWith => {
            let mut arms = Vec::new();
            for (shape, cond) in explode(a) {
                let AExpr::Pair(x, s) = shape else {
                    return Err(SymbolicError::NotAPair);
                };
                let blocks = to_blocks(&AExpr::Set(to_blocks(&s)?).freshen(&mut ctx.gen))?;
                let mut paired = Vec::new();
                for b in blocks {
                    paired.extend(blocks_with_body(
                        b.vars,
                        b.guard,
                        AExpr::pair((*x).clone(), (*b.body).clone()),
                    ));
                }
                arms.push((AExpr::Set(paired), cond));
            }
            Ok(merge_arms(arms))
        }
        Expr::EmptySet(_) => Ok(AExpr::empty_set()),
        Expr::Union => {
            let mut arms = Vec::new();
            for (shape, cond) in explode(a) {
                let AExpr::Pair(s1, s2) = shape else {
                    return Err(SymbolicError::NotAPair);
                };
                let mut blocks = to_blocks(&s1)?;
                blocks.extend(to_blocks(&s2)?);
                arms.push((AExpr::Set(blocks), cond));
            }
            Ok(merge_arms(arms))
        }
        Expr::EqNat => {
            // the case that "forces us to introduce guarded expressions"
            let mut arms = Vec::new();
            for (shape, cond) in explode(a) {
                let AExpr::Pair(x, y) = shape else {
                    return Err(SymbolicError::NotAPair);
                };
                let (AExpr::Num(e1), AExpr::Num(e2)) = (&*x, &*y) else {
                    return Err(SymbolicError::NotANum);
                };
                let eq = cond.and(&Condition::eq(*e1, *e2));
                let ne = cond.and(&Condition::neq(*e1, *e2));
                if !eq.is_false() {
                    arms.push((AExpr::Bool(true), eq));
                }
                if !ne.is_false() {
                    arms.push((AExpr::Bool(false), ne));
                }
            }
            Ok(merge_arms(arms))
        }
        Expr::IsEmpty => {
            let blocks = to_blocks(a)?;
            let mut nonempty = Condition::fls();
            for b in &blocks {
                // ∃x⃗. guard ∧ def(body) — quantifier elimination (§5.2)
                let defined = b.guard.and(&b.body.definedness());
                nonempty = nonempty.or(&defined.exists_elim(&b.vars));
            }
            let empty = nonempty.not();
            Ok(merge_arms(vec![
                (AExpr::Bool(false), nonempty),
                (AExpr::Bool(true), empty),
            ]))
        }
        Expr::ConstTrue => Ok(AExpr::Bool(true)),
        Expr::ConstFalse => Ok(AExpr::Bool(false)),
        Expr::Cond(c, then, els) => {
            let b = apply(c, a, ctx)?;
            let mut c_true = Condition::fls();
            let mut c_false = Condition::fls();
            for (shape, cond) in explode(&b) {
                match shape {
                    AExpr::Bool(true) => c_true = c_true.or(&cond),
                    AExpr::Bool(false) => c_false = c_false.or(&cond),
                    _ => return Err(SymbolicError::NotABool),
                }
            }
            if c_true.is_true() {
                return apply(then, a, ctx);
            }
            if c_false.is_true() {
                return apply(els, a, ctx);
            }
            let mut arms = Vec::new();
            if !c_true.is_false() {
                arms.push((apply(then, a, ctx)?, c_true));
            }
            if !c_false.is_false() {
                arms.push((apply(els, a, ctx)?, c_false));
            }
            Ok(merge_arms(arms))
        }
        Expr::Compose(g, h) => {
            let mid = apply(h, a, ctx)?;
            apply(g, &mid, ctx)
        }
        Expr::Powerset => apply_powerset_in(a, None, ctx),
        Expr::PowersetM(m) => apply_powerset_in(a, Some(*m), ctx),
        Expr::While(_) => Err(SymbolicError::Unsupported("while")),
        Expr::Const(_, _) => Err(SymbolicError::Unsupported("const")),
    }
}

fn apply_powerset_in(
    a: &AExpr,
    approximation: Option<u64>,
    ctx: &mut SymCtx,
) -> Result<AExpr, SymbolicError> {
    let PowersetMode::Dichotomy { max_witnesses } = ctx.mode else {
        return Err(SymbolicError::PowersetRejected);
    };
    match dichotomy::analyze_cardinality(a)? {
        dichotomy::SetCardinality::LinearlyMany(cert) => {
            Err(SymbolicError::ExponentialPowerset(cert))
        }
        dichotomy::SetCardinality::Bounded { witnesses } => {
            ctx.observed_bounds.push(witnesses.len());
            dichotomy::powerset_of_witnesses(&witnesses, approximation, max_witnesses)
        }
    }
}

/// One pointwise instance of the Lemma 5.1 conclusion, checked on the
/// interned hot path: does `f([A]ρ) ⇓ [A']ρ` hold at this `n` and `ρ`?
///
/// Both denotations are built as hash-consed handles
/// ([`AExpr::eval_interned`]), the concrete evaluation runs end-to-end on
/// handles ([`nra_eval::evaluate_vid`]), and the final comparison is an
/// `O(1)` handle equality — across a verification sweep over many `n` the
/// shared subterms of the denotations are interned once. Returns `None`
/// when either denotation is undefined at `(n, ρ)` or the concrete
/// evaluation fails.
///
/// ```
/// use nra_core::builder;
/// use nra_symbolic::{apply, chain_aexpr, lemma_holds_at, Env, SymCtx, VarGen};
///
/// let mut gen = VarGen::new();
/// let chain = chain_aexpr(&mut gen);
/// let f = builder::map(builder::snd());
/// let mut ctx = SymCtx::for_expr(&chain);
/// let image = apply(&f, &chain, &mut ctx).unwrap();
/// for n in 1..8 {
///     assert_eq!(lemma_holds_at(&f, &chain, &image, n, &Env::new()), Some(true));
/// }
/// ```
pub fn lemma_holds_at(
    f: &Expr,
    a: &AExpr,
    a2: &AExpr,
    n: u64,
    env: &crate::vars::Env,
) -> Option<bool> {
    let input = a.eval_interned(n, env)?;
    let concrete = nra_eval::evaluate_vid(f, input, &nra_eval::EvalConfig::default())
        .result
        .ok()?;
    let symbolic = a2.eval_interned(n, env)?;
    Some(concrete == symbolic)
}

/// Proposition 4.2, constructively: symbolically evaluate `f` on the input
/// family `a`; if every `powerset` application along the way is *bounded*
/// (Lemma 5.8 case 1), return the order `m*` — the largest witness count —
/// for which `f` is equivalent to its approximation `f_{m*}` on every
/// input `[a]ρ`. An `Ω(n)` application yields the exponential certificate
/// instead.
pub fn approximation_order(
    f: &Expr,
    a: &AExpr,
    max_witnesses: usize,
) -> Result<u64, SymbolicError> {
    let mut ctx = SymCtx::with_dichotomy(a, max_witnesses);
    apply(f, a, &mut ctx)?;
    Ok(ctx.observed_bounds.iter().copied().max().unwrap_or(0) as u64)
}

/// The paper's closing conjecture, on the fragment this library can decide:
/// when [`approximation_order`] succeeds, `f` is equivalent (on the inputs
/// denoted by `a`) to the plain-`NRA` term `f.approximate(m*)` — powerset
/// eliminated.
pub fn eliminate_powerset(
    f: &Expr,
    a: &AExpr,
    max_witnesses: usize,
) -> Result<Expr, SymbolicError> {
    let order = approximation_order(f, a, max_witnesses)?;
    Ok(f.approximate(order))
}

fn project(a: &AExpr, first: bool) -> Result<AExpr, SymbolicError> {
    let arms = explode(a)
        .into_iter()
        .map(|(shape, cond)| match shape {
            AExpr::Pair(x, y) => Ok(((if first { *x } else { *y }), cond)),
            _ => Err(SymbolicError::NotAPair),
        })
        .collect::<Result<Vec<_>, _>>()?;
    if arms.is_empty() {
        return Err(SymbolicError::NotAPair);
    }
    Ok(merge_arms(arms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aexpr::{chain_aexpr, grid_aexpr};
    use crate::vars::{Env, VarGen};
    use nra_core::builder as b;
    use nra_core::value::Value;
    use nra_eval::eval as eval_concrete;

    /// The Lemma 5.1 statement, checked pointwise: for every n (in range)
    /// and every ρ (here: closed expressions), `f([A]ρ) ⇓ [A']ρ` — on the
    /// interned hot path ([`lemma_holds_at`]), cross-checked against the
    /// tree denotations at the first n.
    fn check_lemma(f: &nra_core::Expr, a: &AExpr, ns: std::ops::Range<u64>) {
        let mut ctx = SymCtx::for_expr(a);
        let a2 =
            apply(f, a, &mut ctx).unwrap_or_else(|e| panic!("symbolic evaluation failed: {e}"));
        let first = ns.start;
        for n in ns {
            assert_eq!(
                lemma_holds_at(f, a, &a2, n, &Env::new()),
                Some(true),
                "n={n}, f={f}, A'={a2}"
            );
        }
        // tree-path referee: the interned verdict is about the same objects
        let input = a.eval(first, &Env::new()).expect("input defined");
        let concrete = eval_concrete(f, &input).expect("concrete evaluation");
        let symbolic = a2.eval(first, &Env::new()).expect("symbolic denotation");
        assert_eq!(concrete, symbolic, "n={first}, f={f}, A'={a2}");
    }

    #[test]
    fn identity_and_projections() {
        let mut gen = VarGen::new();
        let a = chain_aexpr(&mut gen);
        check_lemma(&b::id(), &a, 1..6);
        check_lemma(&b::map(b::fst()), &a, 1..6);
        check_lemma(&b::map(b::snd()), &a, 1..6);
        check_lemma(&b::map(b::swap()), &a, 1..6);
    }

    #[test]
    fn sng_flatten_roundtrip() {
        let mut gen = VarGen::new();
        let a = chain_aexpr(&mut gen);
        // μ ∘ map(η) = id
        check_lemma(&b::compose(b::flatten(), b::map(b::sng())), &a, 1..6);
    }

    #[test]
    fn eq_produces_guards() {
        let mut gen = VarGen::new();
        let a = chain_aexpr(&mut gen);
        // map(eq) : {N×N} → {B}; on the chain all pairs are (i, i+1) → false
        check_lemma(&b::map(b::eq_nat()), &a, 1..6);
    }

    #[test]
    fn isempty_via_quantifier_elimination() {
        let mut gen = VarGen::new();
        let a = chain_aexpr(&mut gen);
        check_lemma(&b::is_empty(), &a, 1..6);
        // and on the empty set
        let empty = AExpr::empty_set();
        let mut ctx = SymCtx::for_expr(&empty);
        let out = apply(&b::is_empty(), &empty, &mut ctx).unwrap();
        assert_eq!(out.eval(3, &Env::new()), Some(Value::TRUE));
    }

    #[test]
    fn derived_select_cartprod_and_friends() {
        let mut gen = VarGen::new();
        let a = chain_aexpr(&mut gen);
        let e = nra_core::Type::prod(nra_core::Type::Nat, nra_core::Type::Nat);
        // select(π₁ = π₂)(chain) = ∅; select(π₁ ≠ π₂) = chain
        check_lemma(&nra_core::derived::select(b::eq_nat(), e.clone()), &a, 1..5);
        // cartesian product chain × chain via ⟨id,id⟩
        check_lemma(&nra_core::derived::self_product(), &a, 1..4);
        // node set
        check_lemma(&nra_core::derived::rel_nodes(), &a, 1..5);
    }

    #[test]
    fn one_tc_round_symbolically() {
        // the inflationary step r ∪ r∘r on the chain, fully symbolic:
        // exercises cartprod, select over a product, map over pairs, union
        let mut gen = VarGen::new();
        let a = chain_aexpr(&mut gen);
        check_lemma(&nra_core::queries::tc_step(), &a, 1..4);
    }

    #[test]
    fn grid_expressions_evaluate() {
        let mut gen = VarGen::new();
        let g = grid_aexpr(&mut gen);
        check_lemma(&b::map(b::snd()), &g, 1..4);
        check_lemma(&b::is_empty(), &g, 1..4);
    }

    #[test]
    fn member_and_subset_symbolically() {
        // pair the chain with itself and test r ⊆ r — true for all n
        let mut gen = VarGen::new();
        let a = chain_aexpr(&mut gen);
        let paired = AExpr::pair(a.clone(), a.clone());
        let e = nra_core::Type::prod(nra_core::Type::Nat, nra_core::Type::Nat);
        let mut ctx = SymCtx::for_expr(&paired);
        let out = apply(&nra_core::derived::subset(&e), &paired, &mut ctx).unwrap();
        for n in 1..5 {
            assert_eq!(out.eval(n, &Env::new()), Some(Value::TRUE), "n={n}");
        }
    }

    #[test]
    fn powerset_rejected_in_pure_mode() {
        let mut gen = VarGen::new();
        let a = chain_aexpr(&mut gen);
        let mut ctx = SymCtx::for_expr(&a);
        assert_eq!(
            apply(&b::powerset(), &a, &mut ctx),
            Err(SymbolicError::PowersetRejected)
        );
    }

    #[test]
    fn while_is_outside_nra() {
        let mut gen = VarGen::new();
        let a = chain_aexpr(&mut gen);
        let mut ctx = SymCtx::for_expr(&a);
        assert!(matches!(
            apply(&nra_core::queries::tc_while(), &a, &mut ctx),
            Err(SymbolicError::Unsupported("while"))
        ));
    }

    #[test]
    fn approximation_order_on_bounded_powerset_queries() {
        // f = μ ∘ powerset ∘ sources: the powerset argument is
        // sources(rₙ) = {0} — bounded, so Prop 4.2's constructive side
        // applies and f ≡ f₁ with powerset eliminated.
        let f = b::pipeline([nra_core::queries::sources(), b::powerset(), b::flatten()]);
        let mut gen = VarGen::new();
        let a = chain_aexpr(&mut gen);
        let order = approximation_order(&f, &a, 8).unwrap();
        assert!(order >= 1, "at least the witness {{0}}");
        let g = eliminate_powerset(&f, &a, 8).unwrap();
        assert!(g.level().is_nra(), "powerset eliminated: {}", g.level());
        for n in 1..7u64 {
            let input = Value::chain(n);
            assert_eq!(
                eval_concrete(&f, &input).unwrap(),
                eval_concrete(&g, &input).unwrap(),
                "n={n}"
            );
        }
    }

    #[test]
    fn approximation_order_rejects_tc() {
        let mut gen = VarGen::new();
        let a = chain_aexpr(&mut gen);
        let err = approximation_order(&nra_core::queries::tc_paths(), &a, 8).unwrap_err();
        assert!(
            matches!(err, SymbolicError::ExponentialPowerset(_)),
            "{err}"
        );
    }

    #[test]
    fn open_expressions_respect_environments() {
        // A(y) = {(y, x) when x ≠ y | x = 0,n}; f = map(swap) — check at
        // several environments
        let mut gen = VarGen::new();
        let y = gen.fresh();
        let x = gen.fresh();
        let a = AExpr::guarded_comprehension(
            vec![x],
            Condition::neq(
                crate::simple::SimpleExpr::var(x),
                crate::simple::SimpleExpr::var(y),
            ),
            AExpr::pair(AExpr::var(y), AExpr::var(x)),
        );
        let mut ctx = SymCtx::for_expr(&a);
        let out = apply(&b::map(b::swap()), &a, &mut ctx).unwrap();
        for n in 2..6u64 {
            for yv in 0..=n {
                let env: Env = [(y, yv)].into_iter().collect();
                let input = a.eval(n, &env).unwrap();
                let expect = eval_concrete(&b::map(b::swap()), &input).unwrap();
                assert_eq!(out.eval(n, &env), Some(expect), "n={n} y={yv}");
            }
        }
    }
}
