//! # nra-symbolic
//!
//! The §5 proof machinery of Suciu & Paredaens (1994), executable:
//!
//! * [`vars`], [`simple`] — variables over `[n]` and simple expressions
//!   `c | n−c | x+c` (§5.1);
//! * [`condition`] — `=`/`≠` conditions in DNF, the "satisfiable for large
//!   n" decision procedure (an offset union-find), and quantifier
//!   elimination (§5.3 and Lemma 5.1's `empty` case);
//! * [`affine`] — affine and variable affine spaces: dimension, counting
//!   (`nᵖ − O(nᵖ⁻¹)`), intersection, the Prop 5.5 decomposition;
//! * [`aexpr`] — abstract expressions and their denotations `[A]ρ` (§5.1);
//! * [`evalem`] — the Evaluation Lemma (Lemma 5.1): `f(A) ⇓ A'` for all of
//!   `NRA`, by structural recursion;
//! * [`dichotomy`] — Lemma 5.8: bounded sets (abstract powerset, with the
//!   `powersetₘ` equivalence) vs `Ω(n)` sets (exponential certificates);
//! * [`ramsey`] — Lemma 5.7's monochromatic-clique bound `C(2m−2, m−1)`
//!   (constructive) and Lemma 5.6's condition-splitting helpers;
//! * [`lower_bound`] — Corollary 5.3: closed `{N×N}` abstract expressions
//!   denote unions of affine spaces and can never be `tc(rₙ)`;
//! * [`predict`] — the above as a *prediction facade* for serving-time
//!   admission control: classify a query's space complexity before
//!   evaluating it ([`predict::SpaceClass`] / [`predict::SpaceVerdict`]).

#![deny(missing_docs)]

pub mod aexpr;
pub mod affine;
pub mod condition;
pub mod dichotomy;
pub mod evalem;
pub mod lower_bound;
pub mod predict;
pub mod ramsey;
pub mod simple;
pub mod vars;

pub use aexpr::{chain_aexpr, AExpr, Block};
pub use condition::{Atom, Cmp, Condition, Conjunct};
pub use dichotomy::{analyze_cardinality, LinearCertificate, SetCardinality};
pub use evalem::{
    apply, approximation_order, eliminate_powerset, lemma_holds_at, PowersetMode, SymCtx,
    SymbolicError,
};
pub use lower_bound::{chain_tc_impossibility, ChainTcImpossibility};
pub use predict::{classify_space, predict_space, SpaceClass, SpaceVerdict};
pub use simple::SimpleExpr;
pub use vars::{Env, VarGen, VarId};
