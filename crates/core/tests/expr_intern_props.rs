//! Property tests for the expression-interning arena
//! (`nra_core::expr::intern`), mirroring the value-arena suite in
//! `intern_props.rs`: on randomized well-typed expressions, interning
//! must round-trip, equal expressions must receive equal `EId`s (and
//! only equal expressions), and the cached metadata must match the
//! recursive measures.

use nra_core::expr::intern::{self, ExprArena};
use nra_core::generate::{random_expr, GenConfig, Rng as GenRng};
use nra_core::{Expr, Type};
use nra_testkit::{check, Rng};

/// A random well-typed expression over `{N × N}` inputs, covering every
/// construct (including `while` and `powerset`).
fn random_expression(rng: &mut Rng) -> Expr {
    let cfg = GenConfig {
        allow_while: true,
        ..GenConfig::default()
    };
    random_expr(&Type::nat_rel(), &cfg, &mut GenRng::new(rng.next_u64()))
}

/// The tree height the arena caches, recomputed recursively.
fn recursive_height(e: &Expr) -> u32 {
    match e {
        Expr::Map(f) | Expr::While(f) => 1 + recursive_height(f),
        Expr::Tuple(f, g) | Expr::Compose(g, f) => 1 + recursive_height(f).max(recursive_height(g)),
        Expr::Cond(c, t, els) => {
            1 + recursive_height(c)
                .max(recursive_height(t))
                .max(recursive_height(els))
        }
        _ => 1,
    }
}

#[test]
fn intern_round_trips() {
    check("expr_intern_round_trips", 200, |_, rng| {
        let e = random_expression(rng);
        let id = intern::intern(&e);
        assert_eq!(intern::resolve(id), e, "resolve ∘ intern = id on {e}");
    });
}

#[test]
fn equal_expressions_get_equal_handles() {
    check("equal_expressions_get_equal_handles", 200, |_, rng| {
        let e = random_expression(rng);
        assert_eq!(intern::intern(&e), intern::intern(&e.clone()), "{e}");
    });
}

#[test]
fn distinct_expressions_get_distinct_handles() {
    check(
        "distinct_expressions_get_distinct_handles",
        150,
        |_, rng| {
            let a = random_expression(rng);
            let b = random_expression(rng);
            assert_eq!(
                a == b,
                intern::intern(&a) == intern::intern(&b),
                "{a} vs {b}"
            );
        },
    );
}

#[test]
fn cached_metadata_matches_the_recursive_measures() {
    check("expr_cached_metadata_matches", 200, |_, rng| {
        let e = random_expression(rng);
        let id = intern::intern(&e);
        assert_eq!(intern::ops(id), e.size() as u64, "ops of {e}");
        assert_eq!(intern::height(id), recursive_height(&e), "height of {e}");
    });
}

#[test]
fn interning_never_stores_a_subterm_twice() {
    check(
        "interning_never_stores_a_subterm_twice",
        100,
        |seed, rng| {
            // a fresh arena so occupancy is exactly the distinct-subterm count
            let mut arena = ExprArena::new();
            let e = random_expression(rng);
            arena.intern(&e);
            let after_first = arena.node_count();
            assert!(
                after_first <= e.size(),
                "seed {seed}: {after_first} nodes for a size-{} expression",
                e.size()
            );
            // re-interning (alone or under new parents) adds only the parents
            arena.intern(&e);
            assert_eq!(
                arena.node_count(),
                after_first,
                "re-interning grew the arena"
            );
            arena.intern(&Expr::Tuple(e.clone().rc(), e.clone().rc()));
            assert_eq!(
                arena.node_count(),
                after_first + 1,
                "⟨e, e⟩ must add exactly the tuple node"
            );
        },
    );
}

#[test]
fn snapshot_agrees_with_node_accessors() {
    let mut arena = ExprArena::new();
    let e = nra_core::queries::tc_while();
    let id = arena.intern(&e);
    let snapshot = arena.snapshot();
    assert_eq!(snapshot.len(), arena.node_count());
    assert_eq!(snapshot[id.index()], arena.node(id));
    assert_eq!(snapshot[id.index()].head_name(), "while");
}
