//! Stress smoke for the **shared concurrent store**: seeded threads
//! hammering one lock-striped value/expression store at once (the
//! workload `nra_eval::eval_batch` workers put on it), offline and
//! dependency-free — a loom-style schedule-shaking smoke rather than a
//! model check.
//!
//! The invariants under fire:
//!
//! * **canonical interning across threads** — whichever thread interns
//!   a structure first, every thread (and the parent) gets the *same*
//!   handle for it, so handles are meaningful across sessions;
//! * **resolve round-trips** — every handle issued mid-contention
//!   resolves to exactly the tree it was interned from;
//! * **metadata coherence** — sizes, cardinalities, and the merge
//!   algebra read through concurrently-issued handles agree with the
//!   sequential reference.

use nra_core::expr::intern::ExprArena;
use nra_core::value::intern::{VId, ValueArena};
use nra_core::value::Value;
use nra_core::{queries, Expr};
use nra_testkit::{check, Rng};

/// Threads per case — enough to contend on 16 value shards without
/// swamping small CI runners.
const THREADS: u64 = 4;
/// Interning rounds per thread per case.
const ROUNDS: u64 = 12;

/// One thread's deterministic workload: build a random tree value from
/// the seed, intern it, exercise the merge algebra on shared sets, and
/// report `(tree, handle)` pairs for the post-join canonicality audit.
fn hammer_values(arena: &mut ValueArena, seed: u64) -> Vec<(Value, VId)> {
    let mut rng = Rng::new(seed);
    let mut out = Vec::new();
    for round in 0..ROUNDS {
        // a tree no other thread is likely to build…
        let private = Value::relation(rng.relation(24, 12));
        let private_id = arena.intern(&private);
        out.push((private, private_id));
        // …and trees every thread builds, racing the dedup shards
        let common_n = 2 + round % 5;
        let chain = arena.chain(common_n);
        let tc = arena.chain_tc(common_n);
        out.push((Value::chain(common_n), chain));
        out.push((Value::chain_tc(common_n), tc));
        // merge algebra on handles issued by *any* thread
        let union = arena.set_union(chain, tc).expect("sets union");
        assert_eq!(
            union, tc,
            "chain ⊆ chain_tc, so their union must intern back to chain_tc"
        );
        assert_eq!(arena.is_subset(chain, tc), Some(true));
        let diff = arena.set_difference(tc, chain).expect("sets difference");
        let (merged, frontier) = arena.set_merge_delta(chain, tc).expect("merge delta");
        assert_eq!(merged, tc);
        assert_eq!(frontier, diff, "delta frontier must be the difference");
        out.push((arena.resolve(diff), diff));
    }
    out
}

#[test]
fn concurrent_value_interning_is_canonical() {
    check("concurrent_value_interning_is_canonical", 8, |seed, rng| {
        let mut parent = ValueArena::new();
        parent.make_shared();
        let thread_seeds: Vec<u64> = (0..THREADS).map(|_| rng.next_u64()).collect();
        let gathered: Vec<Vec<(Value, VId)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = thread_seeds
                .iter()
                .map(|&ts| {
                    let mut worker = parent.shared_clone().expect("parent is shared");
                    scope.spawn(move || hammer_values(&mut worker, ts))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("stress worker panicked"))
                .collect()
        });
        // every handle issued under contention is canonical: the parent
        // re-interns the tree and gets the same handle back, and the
        // handle resolves to the tree it came from
        for pairs in gathered {
            for (tree, id) in pairs {
                assert_eq!(
                    parent.intern(&tree),
                    id,
                    "seed {seed}: canonical re-intern diverged"
                );
                assert_eq!(
                    parent.resolve(id),
                    tree,
                    "seed {seed}: resolve round-trip diverged"
                );
            }
        }
        // the dedup audit above interned nothing new, and the arena's
        // occupancy books stayed coherent under the races
        let stats = parent.stats();
        assert!(stats.nodes > 0);
        assert_eq!(stats.nodes, parent.len());
    });
}

#[test]
fn concurrent_expr_interning_is_canonical() {
    check("concurrent_expr_interning_is_canonical", 8, |seed, rng| {
        let mut parent = ExprArena::new();
        parent.make_shared();
        let queries: Vec<Expr> = vec![
            queries::tc_while(),
            queries::tc_step(),
            queries::tc_paths(),
            nra_core::derived::cartprod(),
            nra_core::derived::unnest(),
        ];
        let thread_seeds: Vec<u64> = (0..THREADS).map(|_| rng.next_u64()).collect();
        let gathered: Vec<Vec<(usize, nra_core::expr::intern::EId)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = thread_seeds
                    .iter()
                    .map(|&ts| {
                        let mut worker = parent.shared_clone().expect("parent is shared");
                        let queries = &queries;
                        scope.spawn(move || {
                            let mut rng = Rng::new(ts);
                            (0..ROUNDS * 2)
                                .map(|_| {
                                    let pick = rng.usize_below(queries.len());
                                    (pick, worker.intern(&queries[pick]))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("stress worker panicked"))
                    .collect()
            });
        for pairs in gathered {
            for (pick, eid) in pairs {
                assert_eq!(
                    parent.intern(&queries[pick]),
                    eid,
                    "seed {seed}: expression interning must be canonical across threads"
                );
                assert_eq!(parent.resolve(eid), queries[pick], "seed {seed}");
            }
        }
        // the snapshot machinery the evaluators rely on sees every
        // published node
        assert_eq!(parent.snapshot().len(), parent.node_count());
    });
}
