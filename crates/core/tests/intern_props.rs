//! Property tests for the hash-consing arena (`nra_core::value::intern`):
//! on randomized complex objects of every shape, interning must
//! round-trip, equal trees must receive equal handles (and only equal
//! trees), and the cached metadata must match the recursive paper
//! measures.

use nra_core::value::intern::{self, ValueArena};
use nra_core::Value;
use nra_testkit::{check, Rng};

/// A random complex object with bounded depth and fan-out, covering all
/// five constructors.
fn random_value(rng: &mut Rng, depth: u32) -> Value {
    let kind = if depth == 0 {
        rng.below(3)
    } else {
        rng.below(5)
    };
    match kind {
        0 => Value::nat(rng.below(6)),
        1 => Value::Bool(rng.bool()),
        2 => Value::Unit,
        3 => Value::pair(random_value(rng, depth - 1), random_value(rng, depth - 1)),
        _ => {
            let len = rng.usize_below(4);
            Value::set((0..len).map(|_| random_value(rng, depth - 1)))
        }
    }
}

#[test]
fn intern_round_trips() {
    check("intern_round_trips", 200, |_, rng| {
        let v = random_value(rng, 4);
        let id = intern::intern(&v);
        assert_eq!(intern::resolve(id), v, "resolve ∘ intern = id on {v}");
    });
}

#[test]
fn equal_trees_get_equal_handles() {
    check("equal_trees_get_equal_handles", 200, |_, rng| {
        let v = random_value(rng, 4);
        // a structurally equal clone interns to the same handle
        assert_eq!(intern::intern(&v), intern::intern(&v.clone()), "{v}");
        // and inserting set elements in a different order changes nothing:
        // rebuild every set from a reversed element iteration
        fn rebuild_reversed(v: &Value) -> Value {
            match v {
                Value::Pair(a, b) => Value::pair(rebuild_reversed(a), rebuild_reversed(b)),
                Value::Set(items) => Value::set(items.iter().rev().map(rebuild_reversed)),
                other => other.clone(),
            }
        }
        assert_eq!(intern::intern(&v), intern::intern(&rebuild_reversed(&v)));
    });
}

#[test]
fn distinct_trees_get_distinct_handles() {
    check("distinct_trees_get_distinct_handles", 100, |_, rng| {
        let a = random_value(rng, 3);
        let b = random_value(rng, 3);
        assert_eq!(
            a == b,
            intern::intern(&a) == intern::intern(&b),
            "{a} vs {b}"
        );
    });
}

#[test]
fn cached_size_matches_the_recursive_paper_measure() {
    check("cached_size_matches_recursive_measure", 200, |_, rng| {
        let v = random_value(rng, 4);
        let id = intern::intern(&v);
        // the §3 measure, recomputed recursively on the tree
        fn paper_size(v: &Value) -> u64 {
            match v {
                Value::Unit | Value::Bool(_) | Value::Nat(_) => 1,
                Value::Pair(a, b) => 1 + paper_size(a) + paper_size(b),
                Value::Set(items) => 1 + items.iter().map(paper_size).sum::<u64>(),
            }
        }
        assert_eq!(intern::size(id), paper_size(&v), "size of {v}");
        assert_eq!(intern::depth(id) as usize, v.depth(), "depth of {v}");
        assert_eq!(
            intern::cardinality(id),
            v.cardinality(),
            "cardinality of {v}"
        );
    });
}

#[test]
fn structural_hash_is_stable_across_arenas() {
    check(
        "structural_hash_is_stable_across_arenas",
        100,
        |seed, rng| {
            let v = random_value(rng, 3);
            // a fresh arena whose handle space is skewed by unrelated noise
            let mut other = ValueArena::new();
            other.chain(seed % 7);
            let id = intern::intern(&v);
            let oid = other.intern(&v);
            assert_eq!(
                intern::structural_hash(id),
                other.structural_hash(oid),
                "{v}"
            );
        },
    );
}

#[test]
fn set_construction_from_handles_matches_tree_sets() {
    check("set_construction_from_handles", 200, |_, rng| {
        let len = rng.usize_below(6);
        let elems: Vec<Value> = (0..len).map(|_| random_value(rng, 2)).collect();
        // build the set both ways: as a tree, and handle-by-handle with
        // duplicates appended
        let tree = Value::set(elems.iter().cloned());
        let mut handles: Vec<_> = elems.iter().map(intern::intern).collect();
        let dupes = handles.to_vec();
        handles.extend(dupes);
        let built = intern::set(handles);
        assert_eq!(built, intern::intern(&tree));
        assert_eq!(intern::resolve(built), tree);
    });
}
