//! Property tests for `core::parser`: the concrete syntax round-trips
//! through `Display` for *arbitrary* well-typed expressions (not just the
//! hand-picked queries), and the typechecker cannot tell a parsed
//! expression from the built one. Types and complex-object literals
//! round-trip too.

use nra_core::generate::{random_expr, GenConfig, Rng as GenRng};
use nra_core::parser::{parse_expr, parse_type, parse_value};
use nra_core::typecheck::output_type;
use nra_core::types::Type;
use nra_core::value::Value;
use nra_testkit::{check, Rng};

fn domains() -> Vec<Type> {
    vec![
        Type::nat_rel(),
        Type::Nat,
        Type::Bool,
        Type::prod(Type::Nat, Type::set(Type::Nat)),
        Type::set(Type::set(Type::Nat)),
        Type::set(Type::prod(Type::Bool, Type::Nat)),
    ]
}

#[test]
fn parse_display_roundtrip_on_generated_expressions() {
    let cfg = GenConfig {
        allow_while: true,
        ..GenConfig::default()
    };
    let domains = domains();
    check(
        "parse_display_roundtrip_on_generated_expressions",
        300,
        |seed, rng| {
            let dom = rng.choose(&domains);
            let e = random_expr(dom, &cfg, &mut GenRng::new(seed));
            let text = e.to_string();
            let parsed =
                parse_expr(&text).unwrap_or_else(|err| panic!("`{text}` failed to parse: {err}"));
            assert_eq!(parsed, e, "round-trip through `{text}`");
        },
    );
}

#[test]
fn typechecker_agrees_on_parsed_and_built_expressions() {
    let cfg = GenConfig::default();
    let domains = domains();
    check(
        "typechecker_agrees_on_parsed_and_built_expressions",
        300,
        |seed, rng| {
            let dom = rng.choose(&domains);
            let e = random_expr(dom, &cfg, &mut GenRng::new(seed));
            let parsed = parse_expr(&e.to_string()).unwrap();
            let built_ty = output_type(&e, dom).expect("generated expressions type-check");
            let parsed_ty =
                output_type(&parsed, dom).expect("parsed expressions type-check equally");
            assert_eq!(parsed_ty, built_ty, "{e} at {dom}");
        },
    );
}

fn random_type(rng: &mut Rng, depth: u32) -> Type {
    if depth == 0 {
        return rng.choose(&[Type::Unit, Type::Bool, Type::Nat]).clone();
    }
    match rng.below(5) {
        0 => Type::Unit,
        1 => Type::Bool,
        2 => Type::Nat,
        3 => Type::prod(random_type(rng, depth - 1), random_type(rng, depth - 1)),
        _ => Type::set(random_type(rng, depth - 1)),
    }
}

fn random_value(rng: &mut Rng, depth: u32) -> Value {
    if depth == 0 {
        return Value::nat(rng.below(10));
    }
    match rng.below(5) {
        0 => Value::Unit,
        1 => Value::Bool(rng.bool()),
        2 => Value::nat(rng.below(100)),
        3 => Value::pair(random_value(rng, depth - 1), random_value(rng, depth - 1)),
        _ => {
            let len = rng.usize_below(4);
            Value::set((0..len).map(|_| random_value(rng, depth - 1)))
        }
    }
}

#[test]
fn type_syntax_roundtrips() {
    check("type_syntax_roundtrips", 200, |_, rng| {
        let t = random_type(rng, 3);
        let text = t.to_string();
        let back = parse_type(&text).unwrap_or_else(|err| panic!("`{text}`: {err}"));
        assert_eq!(back, t, "`{text}`");
    });
}

#[test]
fn value_syntax_roundtrips() {
    check("value_syntax_roundtrips", 200, |_, rng| {
        let v = random_value(rng, 3);
        let text = v.to_string();
        let back = parse_value(&text).unwrap_or_else(|err| panic!("`{text}`: {err}"));
        assert_eq!(back, v, "`{text}`");
    });
}
