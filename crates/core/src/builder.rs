//! Ergonomic combinators for assembling `NRA` expressions.
//!
//! The raw [`Expr`] constructors require explicit `Arc` wrapping; this
//! module provides free functions mirroring the paper's notation so that
//! queries read close to their mathematical definitions:
//!
//! ```
//! use nra_core::builder::*;
//! // μ ∘ map(η) = id on sets
//! let f = compose(flatten(), map(sng()));
//! ```

use crate::expr::{Expr, ExprRef};
use crate::types::Type;
use crate::value::Value;

/// `id`.
pub fn id() -> Expr {
    Expr::Id
}

/// `!` (constant `()`).
pub fn bang() -> Expr {
    Expr::Bang
}

/// `⟨f, g⟩`.
pub fn tuple(f: Expr, g: Expr) -> Expr {
    Expr::Tuple(f.rc(), g.rc())
}

/// `π₁`.
pub fn fst() -> Expr {
    Expr::Fst
}

/// `π₂`.
pub fn snd() -> Expr {
    Expr::Snd
}

/// `map(f)`.
pub fn map(f: Expr) -> Expr {
    Expr::Map(f.rc())
}

/// `η` (singleton).
pub fn sng() -> Expr {
    Expr::Sng
}

/// `μ` (flatten / set-collapse).
pub fn flatten() -> Expr {
    Expr::Flatten
}

/// `ρ₂` (pair-with).
pub fn pairwith() -> Expr {
    Expr::PairWith
}

/// `∅ˢ : unit → {s}`.
pub fn empty_set(elem: Type) -> Expr {
    Expr::EmptySet(elem)
}

/// `∪`.
pub fn union() -> Expr {
    Expr::Union
}

/// `= : N × N → B`.
pub fn eq_nat() -> Expr {
    Expr::EqNat
}

/// `empty : {s} → B`.
pub fn is_empty() -> Expr {
    Expr::IsEmpty
}

/// `true : unit → B`.
pub fn tru() -> Expr {
    Expr::ConstTrue
}

/// `false : unit → B`.
pub fn fls() -> Expr {
    Expr::ConstFalse
}

/// `if c then t else e`.
pub fn cond(c: Expr, t: Expr, e: Expr) -> Expr {
    Expr::Cond(c.rc(), t.rc(), e.rc())
}

/// `g ∘ f` (apply `f` first).
pub fn compose(g: Expr, f: Expr) -> Expr {
    Expr::Compose(g.rc(), f.rc())
}

/// `hₖ ∘ … ∘ h₁` from the *application-order* list `[h₁, …, hₖ]`.
///
/// `pipeline([f, g, h])` applies `f`, then `g`, then `h` — the reverse of
/// composition order, which reads naturally for long chains.
pub fn pipeline<I: IntoIterator<Item = Expr>>(stages: I) -> Expr {
    let mut stages = stages.into_iter();
    let first = stages.next().unwrap_or(Expr::Id);
    stages.fold(first, |acc, next| compose(next, acc))
}

/// `powerset`.
pub fn powerset() -> Expr {
    Expr::Powerset
}

/// Primitive `powersetₘ`.
pub fn powerset_m_prim(m: u64) -> Expr {
    Expr::PowersetM(m)
}

/// `while(f)` — iterate `f` to a fixpoint.
pub fn while_fix(f: Expr) -> Expr {
    Expr::While(f.rc())
}

/// `const(v) : s → t`.
pub fn konst(v: Value, t: Type) -> Expr {
    Expr::Const(v, t)
}

/// Shared-handle variants for building with explicit sharing.
pub fn share(e: Expr) -> ExprRef {
    e.rc()
}

/// `⟨id, id⟩` — duplicate the input.
pub fn dup() -> Expr {
    tuple(id(), id())
}

/// `⟨π₂, π₁⟩` — swap a pair.
pub fn swap() -> Expr {
    tuple(snd(), fst())
}

/// `true ∘ !` — the constant `true` at any domain.
pub fn always_true() -> Expr {
    compose(tru(), bang())
}

/// `false ∘ !` — the constant `false` at any domain.
pub fn always_false() -> Expr {
    compose(fls(), bang())
}

/// `∅ˢ ∘ !` — the empty set at any domain.
pub fn empty_at(elem: Type) -> Expr {
    compose(empty_set(elem), bang())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typecheck::output_type;

    #[test]
    fn pipeline_order_is_application_order() {
        // apply map(fst) first, then flatten? types force the order:
        // {{N×N}} --flatten--> {N×N} --map(fst)--> {N}
        let f = pipeline([flatten(), map(fst())]);
        let dom = Type::set(Type::nat_rel());
        assert_eq!(output_type(&f, &dom).unwrap(), Type::set(Type::Nat));
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let f = pipeline([]);
        assert_eq!(f, Expr::Id);
    }

    #[test]
    fn helpers_typecheck() {
        let st = Type::prod(Type::Nat, Type::Bool);
        assert_eq!(
            output_type(&swap(), &st).unwrap(),
            Type::prod(Type::Bool, Type::Nat)
        );
        assert_eq!(
            output_type(&dup(), &Type::Nat).unwrap(),
            Type::prod(Type::Nat, Type::Nat)
        );
        assert_eq!(output_type(&always_true(), &st).unwrap(), Type::Bool);
        assert_eq!(
            output_type(&empty_at(Type::Nat), &st).unwrap(),
            Type::set(Type::Nat)
        );
    }
}
