//! The transitive-closure queries of the paper, as honest
//! `NRA(powerset)` / `NRA(while)` terms.
//!
//! * [`tc_paths`] — TC via `powerset(r)`: a pair `(x, y)` is in `tc(r)` iff
//!   some subset `S ⊆ r` is a "witness": all in/out-degrees in `S` are ≤ 1
//!   and `S` has unique source `x` and unique sink `y` (a simple path plus
//!   possibly disjoint cycles), or — for the reflexive pairs — `S` is a
//!   nonempty union of cycles through the node. Complexity on the chain
//!   `rₙ` is `2^{Θ(n)}`: exactly the regime of Theorem 4.1.
//! * [`tc_naive`] — the textbook Abiteboul–Beeri construction:
//!   `tc(r) = ⋂ {S ∈ powerset(V × V) | r ⊆ S, S transitive}`. Complexity
//!   `2^{Θ(n²)}` on the chain; included to show why the naive algorithm is
//!   hopeless even for tiny inputs.
//! * [`tc_while`] — the paper's §1 remark: with `while` instead of
//!   `powerset`, TC costs polynomial time and space.
//! * [`siblings_powerset`] / [`siblings_direct`] — a query whose powerset
//!   use is *bounded* (Prop 4.2 dichotomy: its m-th approximation is exact
//!   for every input once `m ≥ 2`), together with its powerset-free
//!   equivalent (the paper's closing conjecture, verified on this query).
//!
//! All queries have type `{N × N} → {N × N}` and are built exclusively from
//! the §2 primitives and the Prop 2.1 derived operations — no `Const`, no
//! primitive shortcuts.

use crate::builder::*;
use crate::derived::*;
use crate::expr::Expr;
use crate::types::Type;

/// The edge type `N × N`.
fn edge_ty() -> Type {
    Type::prod(Type::Nat, Type::Nat)
}

/// The type `(N × N) × (N × N)` of edge pairs.
fn edge_pair_ty() -> Type {
    Type::prod(edge_ty(), edge_ty())
}

// Coordinate accessors over an edge pair ((a,b),(c,d)).
fn coord_a() -> Expr {
    compose(fst(), fst())
}
fn coord_b() -> Expr {
    compose(snd(), fst())
}
fn coord_c() -> Expr {
    compose(fst(), snd())
}
fn coord_d() -> Expr {
    compose(snd(), snd())
}

fn eq_coords(x: Expr, y: Expr) -> Expr {
    compose(eq_nat(), tuple(x, y))
}

fn neq_coords(x: Expr, y: Expr) -> Expr {
    pnot(eq_coords(x, y))
}

/// Relational composition `r ↦ {(a, d) | (a, b) ∈ r, (c, d) ∈ r, b = c}`
/// — a single TC round, in plain `NRA`.
pub fn compose_rel() -> Expr {
    pipeline([
        self_product(),
        select(eq_coords(coord_b(), coord_c()), edge_pair_ty()),
        map(tuple(coord_a(), coord_d())),
    ])
}

/// One inflationary TC step `r ↦ r ∪ (r ∘ r)`, in plain `NRA`.
pub fn tc_step() -> Expr {
    compose(union(), tuple(id(), compose_rel()))
}

/// Transitive closure via the `while` extension:
/// `while(λr. r ∪ r∘r)` — polynomial time and space (§1 remark).
pub fn tc_while() -> Expr {
    while_fix(tc_step())
}

// ---------------------------------------------------------------------------
// tc_paths: TC through powerset(r), the 2^Θ(n) witness construction
// ---------------------------------------------------------------------------

/// `{((x,y), S)} selector`: does node `x` (first coordinate of the edge
/// under scrutiny) have an incoming edge in `S`?  Predicate over
/// `(N×N) × {N×N}` elements paired as `((x,y), (u,v))` after `ρ₂`.
fn has_no_in_edge() -> Expr {
    // ρ₂((x,y), S) = {((x,y),(u,v)) | (u,v) ∈ S}; keep those with v = x.
    pipeline([
        pairwith(),
        select(eq_coords(coord_d(), coord_a()), edge_pair_ty()),
        is_empty(),
    ])
}

fn has_no_out_edge() -> Expr {
    // keep (u,v) with u = y
    pipeline([
        pairwith(),
        select(eq_coords(coord_c(), coord_b()), edge_pair_ty()),
        is_empty(),
    ])
}

/// `sources : {N×N} → {N}` — nodes with outgoing but no incoming edge.
pub fn sources() -> Expr {
    pipeline([
        dup(),
        rho1(),
        select(
            has_no_in_edge(),
            Type::prod(edge_ty(), Type::set(edge_ty())),
        ),
        map(compose(fst(), fst())),
    ])
}

/// `sinks : {N×N} → {N}` — nodes with incoming but no outgoing edge.
pub fn sinks() -> Expr {
    pipeline([
        dup(),
        rho1(),
        select(
            has_no_out_edge(),
            Type::prod(edge_ty(), Type::set(edge_ty())),
        ),
        map(compose(snd(), fst())),
    ])
}

/// "All in-degrees in S are ≤ 1": no two distinct edges share a target.
fn indeg_ok() -> Expr {
    pipeline([
        self_product(),
        select(
            pand(
                eq_coords(coord_b(), coord_d()),
                neq_coords(coord_a(), coord_c()),
            ),
            edge_pair_ty(),
        ),
        is_empty(),
    ])
}

/// "All out-degrees in S are ≤ 1".
fn outdeg_ok() -> Expr {
    pipeline([
        self_product(),
        select(
            pand(
                eq_coords(coord_a(), coord_c()),
                neq_coords(coord_b(), coord_d()),
            ),
            edge_pair_ty(),
        ),
        is_empty(),
    ])
}

/// The per-subset contribution of the witness construction:
/// `{N×N} → {N×N}` mapping each `S ⊆ r` to the TC pairs it witnesses.
pub fn path_contribution() -> Expr {
    let deg_ok = pand(indeg_ok(), outdeg_ok());
    let path_ok = pand(
        deg_ok.clone(),
        pand(
            compose(is_singleton(&Type::Nat), sources()),
            compose(is_singleton(&Type::Nat), sinks()),
        ),
    );
    let path_pairs = compose(cartprod(), tuple(sources(), sinks()));
    let cycle_ok = pand(
        deg_ok,
        pand(
            nonempty(),
            pand(compose(is_empty(), sources()), compose(is_empty(), sinks())),
        ),
    );
    let cycle_pairs = pipeline([rel_nodes(), map(dup())]);
    cond(
        path_ok,
        path_pairs,
        cond(cycle_ok, cycle_pairs, empty_at(edge_ty())),
    )
}

/// Transitive closure through `powerset(r)` — the `2^{Θ(|r|)}` witness
/// construction. On the chain `rₙ` its eager complexity is `2^{Θ(n)}`,
/// matching the scale of Theorem 4.1's lower bound `Ω(2^{cn})`.
///
/// ```
/// use nra_core::{queries, output_type, Type};
/// let tc = queries::tc_paths();
/// assert_eq!(output_type(&tc, &Type::nat_rel()).unwrap(), Type::nat_rel());
/// assert!(tc.level().powerset);
/// ```
pub fn tc_paths() -> Expr {
    pipeline([powerset(), map(path_contribution()), flatten()])
}

/// The m-th approximation of [`tc_paths`] (Prop 4.2): every `powerset`
/// replaced by the primitive `powersetₘ`.
pub fn tc_paths_approx(m: u64) -> Expr {
    tc_paths().approximate(m)
}

// ---------------------------------------------------------------------------
// tc_naive: the textbook Abiteboul–Beeri construction, 2^Θ(n²)
// ---------------------------------------------------------------------------

/// "S is transitive": `∀(a,b),(c,d) ∈ S×S. b = c ⇒ (a,d) ∈ S`.
fn is_transitive() -> Expr {
    let e = edge_ty();
    // spread: S ↦ {(((a,b),(c,d)), S)}
    let spread = pipeline([tuple(self_product(), id()), rho1()]);
    // violation: b = c ∧ (a,d) ∉ S, over (((a,b),(c,d)), S)
    let b = compose(coord_b(), fst());
    let c = compose(coord_c(), fst());
    let a = compose(coord_a(), fst());
    let d = compose(coord_d(), fst());
    let joins = eq_coords(b, c);
    let missing = pnot(compose(member(&e), tuple(tuple(a, d), snd())));
    pipeline([
        spread,
        select(
            pand(joins, missing),
            Type::prod(edge_pair_ty(), Type::set(e)),
        ),
        is_empty(),
    ])
}

/// Transitive closure via the naive Abiteboul–Beeri query:
/// `tc(r) = ⋂ { S ⊆ V×V | r ⊆ S, S transitive }`, where `V = nodes(r)`.
///
/// The candidate space is `powerset(V × V)` — `2^{(n+1)²}` relations on the
/// chain `rₙ`, so this is only runnable for the tiniest inputs; that is the
/// point (§1: "the obvious way of doing that is by a query whose naturally
/// associated algorithm requires exponential space").
pub fn tc_naive() -> Expr {
    let e = edge_ty();
    let candidates = pipeline([rel_nodes(), self_product(), powerset()]);
    // (candidates, r) spread to {(S, r)}
    let spread = pipeline([tuple(candidates, id()), rho1()]);
    let contains_r = compose(subset(&e), swap());
    let keep = pand(contains_r, compose(is_transitive(), fst()));
    pipeline([
        spread,
        select(keep, Type::prod(Type::set(e.clone()), Type::set(e.clone()))),
        map(fst()),
        big_intersect(&e),
    ])
}

/// The m-th approximation of [`tc_naive`].
pub fn tc_naive_approx(m: u64) -> Expr {
    tc_naive().approximate(m)
}

// ---------------------------------------------------------------------------
// A query with *bounded* powerset use (the other side of the dichotomy)
// ---------------------------------------------------------------------------

/// Per-subset sibling extraction: pairs of distinct sources sharing a
/// target inside `S`.
fn sibling_pairs_in() -> Expr {
    pipeline([
        self_product(),
        select(
            pand(
                eq_coords(coord_b(), coord_d()),
                neq_coords(coord_a(), coord_c()),
            ),
            edge_pair_ty(),
        ),
        map(tuple(coord_a(), coord_c())),
    ])
}

/// `siblings(r) = {(a, c) | (a,b) ∈ r, (c,b) ∈ r, a ≠ c}`, computed through
/// `powerset`: every 2-element subset `{(a,b),(c,b)}` already witnesses its
/// sibling pair, so the m-th approximation is exact for all inputs as soon
/// as `m ≥ 2` — the *bounded* case of the Lemma 5.8 dichotomy.
pub fn siblings_powerset() -> Expr {
    pipeline([powerset(), map(sibling_pairs_in()), flatten()])
}

/// The m-th approximation of [`siblings_powerset`].
pub fn siblings_approx(m: u64) -> Expr {
    siblings_powerset().approximate(m)
}

/// The same `siblings` query without `powerset` — plain `NRA` — witnessing
/// the paper's closing conjecture ("any query expressible efficiently with
/// powerset is expressible also without powerset") on this instance.
pub fn siblings_direct() -> Expr {
    sibling_pairs_in()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typecheck::output_type;

    fn rel() -> Type {
        Type::nat_rel()
    }

    #[test]
    fn all_queries_have_relation_to_relation_type() {
        for (name, q) in [
            ("tc_paths", tc_paths()),
            ("tc_naive", tc_naive()),
            ("tc_while", tc_while()),
            ("compose_rel", compose_rel()),
            ("tc_step", tc_step()),
            ("siblings_powerset", siblings_powerset()),
            ("siblings_direct", siblings_direct()),
            ("tc_paths_approx(3)", tc_paths_approx(3)),
            ("tc_naive_approx(2)", tc_naive_approx(2)),
            ("siblings_approx(2)", siblings_approx(2)),
        ] {
            assert_eq!(
                output_type(&q, &rel()).unwrap_or_else(|e| panic!("{name}: {e}")),
                rel(),
                "{name}"
            );
        }
    }

    #[test]
    fn sources_sinks_have_node_set_type() {
        assert_eq!(
            output_type(&sources(), &rel()).unwrap(),
            Type::set(Type::Nat)
        );
        assert_eq!(output_type(&sinks(), &rel()).unwrap(), Type::set(Type::Nat));
    }

    #[test]
    fn language_levels_are_as_documented() {
        assert!(tc_paths().level().powerset);
        assert!(!tc_paths().level().while_loop);
        assert!(tc_naive().level().powerset);
        assert!(tc_while().level().while_loop);
        assert!(!tc_while().level().powerset);
        assert!(siblings_direct().level().is_nra());
        assert!(
            tc_paths_approx(2).level().is_nra(),
            "approximations are NRA"
        );
        assert!(!tc_paths_approx(2).level().powerset);
    }

    #[test]
    fn contribution_typechecks() {
        assert_eq!(output_type(&path_contribution(), &rel()).unwrap(), rel());
    }

    #[test]
    fn approximation_does_not_change_type() {
        for m in [0, 1, 2, 5] {
            assert_eq!(output_type(&tc_paths_approx(m), &rel()).unwrap(), rel());
        }
    }
}
