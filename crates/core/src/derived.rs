//! Derived operations of `NRA` (Proposition 2.1 of the paper).
//!
//! > "The following operations are definable in `NRA`: the database
//! > projections, cartesian product, equality at all types, set difference,
//! > set intersection, set membership, set inclusion, selection over any
//! > predicate definable in `NRA`, nest, unnest."
//!
//! Every function in this module returns a *plain `NRA` term* — no
//! `powerset`, no `while`, no constants — so the derived library witnesses
//! Prop 2.1 constructively. The only parameters are the type annotations
//! forced by the `∅ˢ` primitive and by the type-directed recursion of
//! equality.
//!
//! Also here: the paper's m-th powerset approximation `powersetₘ`
//! (Prop 4.2) as a derived `NRA` term of size `Θ(m)`.

use crate::builder::*;
use crate::expr::Expr;
use crate::types::Type;

// ---------------------------------------------------------------------------
// Boolean connectives
// ---------------------------------------------------------------------------

/// `¬ : B → B`.
pub fn not() -> Expr {
    cond(id(), always_false(), always_true())
}

/// `∧ : B × B → B` (non-strict in the second argument, like the paper's
/// `if`-based encoding).
pub fn and2() -> Expr {
    cond(fst(), snd(), always_false())
}

/// `∨ : B × B → B`.
pub fn or2() -> Expr {
    cond(fst(), always_true(), snd())
}

/// Predicate conjunction: `p ∧ q : s → B` from `p, q : s → B`.
pub fn pand(p: Expr, q: Expr) -> Expr {
    compose(and2(), tuple(p, q))
}

/// Predicate disjunction.
pub fn por(p: Expr, q: Expr) -> Expr {
    compose(or2(), tuple(p, q))
}

/// Predicate negation.
pub fn pnot(p: Expr) -> Expr {
    compose(not(), p)
}

/// `≠ : N × N → B`.
pub fn neq_nat() -> Expr {
    pnot(eq_nat())
}

/// `nonempty : {s} → B`.
pub fn nonempty() -> Expr {
    pnot(is_empty())
}

// ---------------------------------------------------------------------------
// Selection and spreading
// ---------------------------------------------------------------------------

/// `σ_p : {s} → {s}` — selection by a definable predicate `p : s → B`.
/// `elem` is the element type `s` (needed for the `∅ˢ` branch):
/// `σ_p = μ ∘ map(if p then η else ∅ˢ ∘ !)`.
pub fn select(p: Expr, elem: Type) -> Expr {
    compose(flatten(), map(cond(p, sng(), empty_at(elem))))
}

/// `ρ₁ : {s} × t → {s × t}` — pair every element of the *left* set with the
/// right component (the mirror image of the primitive `ρ₂`):
/// `ρ₁ = map(swap) ∘ ρ₂ ∘ swap`.
pub fn rho1() -> Expr {
    pipeline([swap(), pairwith(), map(swap())])
}

/// Cartesian product `× : {s} × {t} → {s × t}`:
/// `μ ∘ map(ρ₂) ∘ ρ₁`.
pub fn cartprod() -> Expr {
    pipeline([rho1(), map(pairwith()), flatten()])
}

/// Self product `{s} → {s × s}`: `cartprod ∘ ⟨id, id⟩`.
pub fn self_product() -> Expr {
    compose(cartprod(), dup())
}

// ---------------------------------------------------------------------------
// Equality at all types (type-directed, mutually recursive with ⊆ and ∈)
// ---------------------------------------------------------------------------

/// Equality `=ₜ : t × t → B` at an arbitrary type `t` (Prop 2.1).
///
/// The recursion follows the type structure:
/// * `=_N` is the primitive;
/// * `=_unit` is constantly true;
/// * `=_B` is biconditional;
/// * `=_{s×t}` is componentwise;
/// * `=_{ {t} }` is antisymmetric inclusion `⊆ ∧ ⊇`.
///
/// ```
/// use nra_core::{derived, output_type, Type};
/// let eq = derived::eq_at(&Type::nat_rel());
/// let dom = Type::prod(Type::nat_rel(), Type::nat_rel());
/// assert_eq!(output_type(&eq, &dom).unwrap(), Type::Bool);
/// assert!(eq.level().is_nra(), "equality is plain NRA at every type");
/// ```
pub fn eq_at(t: &Type) -> Expr {
    match t {
        Type::Nat => eq_nat(),
        Type::Unit => always_true(),
        Type::Bool => cond(fst(), snd(), pnot(snd())),
        Type::Prod(a, b) => {
            let eq_a = compose(
                eq_at(a),
                tuple(compose(fst(), fst()), compose(fst(), snd())),
            );
            let eq_b = compose(
                eq_at(b),
                tuple(compose(snd(), fst()), compose(snd(), snd())),
            );
            pand(eq_a, eq_b)
        }
        Type::Set(elem) => pand(subset(elem), compose(subset(elem), swap())),
    }
}

/// Inequality at an arbitrary type.
pub fn neq_at(t: &Type) -> Expr {
    pnot(eq_at(t))
}

/// Membership `∈ : t × {t} → B`:
/// `x ∈ S ⟺ ¬ empty(σ_{=ₜ}(ρ₂(x, S)))`.
pub fn member(t: &Type) -> Expr {
    pipeline([
        pairwith(),
        select(eq_at(t), Type::prod(t.clone(), t.clone())),
        nonempty(),
    ])
}

/// Inclusion `⊆ : {t} × {t} → B`:
/// `A ⊆ B ⟺ empty({x ∈ A | x ∉ B})`.
pub fn subset(t: &Type) -> Expr {
    pipeline([
        rho1(),
        select(pnot(member(t)), Type::prod(t.clone(), Type::set(t.clone()))),
        is_empty(),
    ])
}

// ---------------------------------------------------------------------------
// Set algebra
// ---------------------------------------------------------------------------

/// Difference `∖ : {t} × {t} → {t}`:
/// `A ∖ B = π₁-image of {(x, B) | x ∈ A, x ∉ B}`.
pub fn difference(t: &Type) -> Expr {
    pipeline([
        rho1(),
        select(pnot(member(t)), Type::prod(t.clone(), Type::set(t.clone()))),
        map(fst()),
    ])
}

/// Intersection `∩ : {t} × {t} → {t}`.
pub fn intersect(t: &Type) -> Expr {
    pipeline([
        rho1(),
        select(member(t), Type::prod(t.clone(), Type::set(t.clone()))),
        map(fst()),
    ])
}

/// Generalised intersection `⋂ : {{t}} → {t}`, with the convention
/// `⋂ ∅ = ∅` (every experiment that uses it guarantees a nonempty
/// argument, as the paper's naive TC construction does via `V × V`).
pub fn big_intersect(t: &Type) -> Expr {
    let setset = Type::set(t.clone());
    // (elements, G) where elements = μ(G)
    let spread = compose(rho1(), tuple(flatten(), id()));
    // p ∈ every S ∈ G ⟺ empty({S ∈ G | p ∉ S})
    let in_all = pipeline([
        pairwith(),
        select(pnot(member(t)), Type::prod(t.clone(), setset.clone())),
        is_empty(),
    ]);
    pipeline([
        spread,
        select(in_all, Type::prod(t.clone(), Type::set(setset))),
        map(fst()),
    ])
}

/// Generalised union `⋃ : {{t}} → {t}` — just `μ`, exported for symmetry.
pub fn big_union() -> Expr {
    flatten()
}

/// `card=1 : {t} → B` — the singleton test
/// `¬empty(A) ∧ empty({(a, a') ∈ A × A | a ≠ a'})`.
pub fn is_singleton(t: &Type) -> Expr {
    let tt = Type::prod(t.clone(), t.clone());
    let distinct_pair = pipeline([self_product(), select(neq_at(t), tt), is_empty()]);
    pand(nonempty(), distinct_pair)
}

// ---------------------------------------------------------------------------
// Nesting and database projections
// ---------------------------------------------------------------------------

/// `unnest : {s × {t}} → {s × t}`: `μ ∘ map(ρ₂)`.
pub fn unnest() -> Expr {
    compose(flatten(), map(pairwith()))
}

/// `nest : {s × t} → {s × {t}}`: group the second components by the first,
/// `nest(R) = {(x, {y | (x, y) ∈ R}) | x ∈ π₁(R)}`.
pub fn nest(s: &Type, t: &Type) -> Expr {
    let st = Type::prod(s.clone(), t.clone());
    // image : s × {s × t} → {t}, the ys grouped under x
    let same_key = compose(eq_at(s), tuple(fst(), compose(fst(), snd())));
    let image = pipeline([
        pairwith(),
        select(same_key, Type::prod(s.clone(), st)),
        map(compose(snd(), snd())),
    ]);
    pipeline([tuple(map(fst()), id()), rho1(), map(tuple(fst(), image))])
}

/// Database projection on the first column: `π₁-image : {s × t} → {s}`.
pub fn proj1() -> Expr {
    map(fst())
}

/// Database projection on the second column.
pub fn proj2() -> Expr {
    map(snd())
}

/// The node set of a binary relation: `map(π₁)(R) ∪ map(π₂)(R)`.
pub fn rel_nodes() -> Expr {
    compose(union(), tuple(proj1(), proj2()))
}

// ---------------------------------------------------------------------------
// powersetₘ — the paper's approximation (Prop 4.2), as a derived NRA term
// ---------------------------------------------------------------------------

/// The m-th approximation of `powerset`, as a *derived* `NRA` term of size
/// `Θ(m)` (Prop 4.2):
///
/// ```text
/// powerset₀(x)     = {∅}
/// powersetₘ₊₁(x)   = powersetₘ(x) ∪ { {u} ∪ s | u ∈ x, s ∈ powersetₘ(x) }
/// ```
///
/// returning all subsets of `x` of cardinality ≤ m. (The paper's displayed
/// recurrence omits the `powersetₘ(x) ∪ …` term, but its prose — "which
/// returns all subsets of cardinality ≤ m" — requires it: without it,
/// `powersetₘ₊₁(∅)` would lose `{∅}`. We implement the prose.)
///
/// To keep both the term size and the evaluation cost linear in `m`, the
/// iteration threads the pair `(x, acc)` through a step function instead of
/// duplicating `powersetₘ` sub-terms.
pub fn powerset_m(m: u64, t: &Type) -> Expr {
    // insert : t × {t} → {t},  (u, s) ↦ {u} ∪ s
    let insert = compose(union(), tuple(compose(sng(), fst()), snd()));
    // step : {t} × {{t}} → {t} × {{t}}
    //        (x, acc) ↦ (x, acc ∪ { {u} ∪ s | u ∈ x, s ∈ acc })
    let grow = pipeline([cartprod(), map(insert)]);
    let step = tuple(fst(), compose(union(), tuple(snd(), grow)));
    // m-fold iteration, then project the accumulator
    let init = tuple(id(), compose(sng(), empty_at(t.clone())));
    let mut body = init;
    for _ in 0..m {
        body = compose(step.clone(), body);
    }
    compose(snd(), body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typecheck::output_type;
    use crate::types::Type;

    fn nats() -> Type {
        Type::set(Type::Nat)
    }

    #[test]
    fn connectives_typecheck() {
        let bb = Type::prod(Type::Bool, Type::Bool);
        assert_eq!(output_type(&not(), &Type::Bool).unwrap(), Type::Bool);
        assert_eq!(output_type(&and2(), &bb).unwrap(), Type::Bool);
        assert_eq!(output_type(&or2(), &bb).unwrap(), Type::Bool);
    }

    #[test]
    fn select_typechecks() {
        let f = select(always_true(), Type::Nat);
        assert_eq!(output_type(&f, &nats()).unwrap(), nats());
    }

    #[test]
    fn cartprod_typechecks() {
        let dom = Type::prod(nats(), Type::set(Type::Bool));
        assert_eq!(
            output_type(&cartprod(), &dom).unwrap(),
            Type::set(Type::prod(Type::Nat, Type::Bool))
        );
    }

    #[test]
    fn eq_member_subset_typecheck_at_nested_types() {
        for t in [
            Type::Nat,
            Type::Bool,
            Type::Unit,
            Type::prod(Type::Nat, Type::Bool),
            Type::nat_rel(),
            Type::set(Type::nat_rel()),
        ] {
            let tt = Type::prod(t.clone(), t.clone());
            assert_eq!(
                output_type(&eq_at(&t), &tt).unwrap(),
                Type::Bool,
                "eq at {t}"
            );
            let ms = Type::prod(t.clone(), Type::set(t.clone()));
            assert_eq!(output_type(&member(&t), &ms).unwrap(), Type::Bool);
            let ss = Type::prod(Type::set(t.clone()), Type::set(t.clone()));
            assert_eq!(output_type(&subset(&t), &ss).unwrap(), Type::Bool);
            assert_eq!(
                output_type(&difference(&t), &ss).unwrap(),
                Type::set(t.clone())
            );
            assert_eq!(
                output_type(&intersect(&t), &ss).unwrap(),
                Type::set(t.clone())
            );
        }
    }

    #[test]
    fn nest_unnest_typecheck() {
        let st = Type::prod(Type::Nat, Type::Bool);
        let nested = Type::set(Type::prod(Type::Nat, Type::set(Type::Bool)));
        assert_eq!(
            output_type(&unnest(), &nested).unwrap(),
            Type::set(st.clone())
        );
        assert_eq!(
            output_type(&nest(&Type::Nat, &Type::Bool), &Type::set(st)).unwrap(),
            nested
        );
    }

    #[test]
    fn big_intersect_typechecks() {
        let dom = Type::set(Type::set(Type::Nat));
        assert_eq!(
            output_type(&big_intersect(&Type::Nat), &dom).unwrap(),
            Type::set(Type::Nat)
        );
    }

    #[test]
    fn powerset_m_is_plain_nra_of_linear_size() {
        let p3 = powerset_m(3, &Type::Nat);
        assert!(p3.level().is_nra());
        assert!(!p3.level().powerset_m, "derived term avoids the primitive");
        assert_eq!(output_type(&p3, &nats()).unwrap(), Type::set(nats()));
        // size grows linearly, not exponentially, in m
        let s5 = powerset_m(5, &Type::Nat).size();
        let s10 = powerset_m(10, &Type::Nat).size();
        let per_step = (s10 - s5) / 5;
        assert!(per_step > 0);
        assert_eq!(s10 + 5 * per_step, powerset_m(15, &Type::Nat).size());
    }

    #[test]
    fn is_singleton_typechecks() {
        assert_eq!(
            output_type(&is_singleton(&Type::Nat), &nats()).unwrap(),
            Type::Bool
        );
    }

    #[test]
    fn rel_nodes_typechecks() {
        assert_eq!(
            output_type(&rel_nodes(), &Type::nat_rel()).unwrap(),
            Type::set(Type::Nat)
        );
    }
}
