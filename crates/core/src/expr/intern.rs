//! Hash-consed interning of expressions.
//!
//! [`crate::value::intern`] gave complex objects canonical `u32` handles;
//! this module does the same for [`Expr`]essions. Every structurally
//! distinct expression node is stored once in an [`ExprArena`] and
//! addressed by an [`EId`], so
//!
//! * equal expressions always receive equal handles — `==` on interned
//!   expressions is a `u32` comparison;
//! * each node carries cached metadata — the AST node count
//!   ([`ExprArena::ops`], the measure of [`Expr::size`]) and the tree
//!   height ([`ExprArena::height`]) — as `O(1)` lookups;
//! * the pair `(EId, VId)` is a perfect, copyable key for *apply
//!   caches* in the style of the BDD literature: `f(C) ⇓ C'` is a pure
//!   judgment, so a memo table keyed on (interned expression, interned
//!   input) can return the cached result handle instead of re-running
//!   the derivation. `nra-eval`'s memoised eager evaluator is exactly
//!   that table.
//!
//! Like the value arena, this module keeps a thread-local arena behind
//! its free functions ([`intern`], [`resolve`], [`node`], …) as the
//! *compatibility facade*; the engine layer (`nra-eval`'s
//! `EvalSession`) owns an [`ExprArena`] outright and threads it
//! explicitly. [`EId`] is a plain `Send` index, meaningful only in the
//! arena that issued it. Arenas grow monotonically and can be reset at
//! quiescent points with [`reset_thread_arena`] / [`ExprArena::clear`].
//!
//! # Examples
//!
//! ```
//! use nra_core::expr::intern;
//! use nra_core::queries;
//!
//! let a = intern::intern(&queries::tc_while());
//! let b = intern::intern(&queries::tc_while());
//! assert_eq!(a, b); // equal expressions ⇒ equal handles
//! assert_eq!(intern::ops(a), queries::tc_while().size() as u64); // cached
//! assert_eq!(intern::resolve(a), queries::tc_while()); // round-trips
//! ```

use super::{Expr, ExprRef};
use crate::value::intern::FxBuildHasher;
use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::BuildHasher;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// A handle to an interned expression in an [`ExprArena`].
///
/// Within one arena, two handles are equal **iff** the expressions they
/// denote are structurally equal. Handles are only meaningful in the
/// arena that issued them — for this module's free functions, the
/// calling thread's arena; for an owned arena (an `EvalSession`), that
/// arena. Like the value arena's `VId`, `EId` is a plain `Send` index:
/// handle and arena must travel together, by the holder's discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EId(u32);

impl EId {
    fn new(raw: u32) -> Self {
        EId(raw)
    }

    /// The raw arena index of this handle (stable for the arena's
    /// lifetime; mainly useful for debugging and dense side tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a handle from a raw index previously obtained via
    /// [`EId::index`] **from the same arena** — the inverse direction
    /// for dense side tables, with the same contract as
    /// [`crate::value::intern::VId::from_index`].
    pub fn from_index(raw: usize) -> EId {
        EId::new(u32::try_from(raw).expect("EId::from_index: index exceeds u32"))
    }
}

/// One interned expression node: the recursive constructs hold child
/// handles, everything else is a [`Leaf`](ENode::Leaf) holding the
/// (non-recursive) expression itself. Matching on the node is how the
/// memoised evaluator walks an interned expression without ever
/// materialising its tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ENode {
    /// A non-recursive head (`id`, `π₁`, `∪`, `powerset`, `const`, …),
    /// shared behind an [`ExprRef`] so cloning the node is `O(1)`.
    Leaf(ExprRef),
    /// `⟨f, g⟩` — pair formation.
    Tuple(EId, EId),
    /// `map(f)`.
    Map(EId),
    /// `if c then t else e`.
    Cond(EId, EId, EId),
    /// `g ∘ f` (`f` applied first, as in [`Expr::Compose`]).
    Compose(EId, EId),
    /// `while(f)`.
    While(EId),
}

impl ENode {
    /// The rule label of this node — identical to [`Expr::head_name`]
    /// of the expression it denotes.
    pub fn head_name(&self) -> &'static str {
        Expr::HEAD_NAMES[self.head_index()]
    }

    /// Dense rule index — identical to [`Expr::head_index`] of the
    /// expression this node denotes (a unit test holds the two in
    /// lockstep).
    pub fn head_index(&self) -> usize {
        match self {
            ENode::Leaf(e) => e.head_index(),
            ENode::Tuple(..) => 2,
            ENode::Map(_) => 5,
            ENode::Cond(..) => 15,
            ENode::Compose(..) => 16,
            ENode::While(_) => 19,
        }
    }
}

/// Cached per-node metadata, computed once at interning time.
#[derive(Debug, Clone, Copy)]
struct Meta {
    /// AST node count — the measure of [`Expr::size`] (saturating).
    ops: u64,
    /// Tree height: leaves are 1 (saturating).
    height: u32,
}

/// Number of lock-striped dedup shards of a shared expression arena —
/// same recipe as the value arena's shared store (expressions are few
/// and interned rarely relative to values, so fewer stripes suffice).
const DEDUP_SHARDS: usize = 8;

/// Slot count of chunk 0 of a shared arena, as a power of two.
const FIRST_CHUNK_BITS: u32 = 8;

/// Chunks covering the full `u32` handle space at the graduated sizing.
const SHARED_CHUNKS: usize = 25;

/// Locate `index` in the graduated chunk directory — chunk 0 holds
/// `2^FIRST_CHUNK_BITS` indices, chunk `c ≥ 1` the next `2^(8+c)`.
#[inline]
fn chunk_pos(index: usize) -> (usize, usize) {
    let adjusted = index + (1usize << FIRST_CHUNK_BITS);
    let k = usize::BITS - 1 - adjusted.leading_zeros();
    ((k - FIRST_CHUNK_BITS) as usize, adjusted - (1usize << k))
}

/// Capacity of chunk `chunk` of the graduated directory.
#[inline]
fn chunk_capacity(chunk: usize) -> usize {
    1usize << (FIRST_CHUNK_BITS as usize + chunk)
}

/// Dedup shard of `node` — deterministic, so every thread agrees.
#[inline]
fn shard_index(node: &ENode) -> usize {
    (FxBuildHasher::default().hash_one(node) as usize) & (DEDUP_SHARDS - 1)
}

/// The single-owner backing: plain vectors plus one dedup map.
#[derive(Default)]
struct LocalTables {
    nodes: Vec<ENode>,
    metas: Vec<Meta>,
    dedup: HashMap<ENode, EId, FxBuildHasher>,
}

/// The concurrent backing behind [`ExprArena::make_shared`] — the same
/// layout and lock discipline as the value arena's shared store (see
/// `nra_core::value::intern`): graduated append-only `OnceLock` chunks
/// for lock-free reads, lock-striped dedup shards, one alloc mutex
/// (lock order shard → alloc), `len` published with `Release`.
struct SharedTables {
    chunks: [OnceLock<SharedChunk>; SHARED_CHUNKS],
    len: AtomicUsize,
    dedup: [Mutex<HashMap<ENode, EId, FxBuildHasher>>; DEDUP_SHARDS],
    alloc: Mutex<()>,
}

/// One lazily-allocated storage chunk of the shared store: a fixed run
/// of write-once slots.
type SharedChunk = Box<[OnceLock<(ENode, Meta)>]>;

impl SharedTables {
    fn new() -> Self {
        SharedTables {
            chunks: std::array::from_fn(|_| OnceLock::new()),
            len: AtomicUsize::new(0),
            dedup: std::array::from_fn(|_| Mutex::new(HashMap::default())),
            alloc: Mutex::new(()),
        }
    }

    /// The chunk `chunk`, allocated on first touch.
    fn chunk(&self, chunk: usize) -> &[OnceLock<(ENode, Meta)>] {
        self.chunks[chunk].get_or_init(|| {
            (0..chunk_capacity(chunk))
                .map(|_| OnceLock::new())
                .collect()
        })
    }

    /// The published node behind `index`; panics on a handle this store
    /// never issued — the stale-handle failure mode.
    fn slot(&self, index: usize) -> &(ENode, Meta) {
        assert!(
            index < self.len.load(Ordering::Acquire),
            "stale handle: index {index} was never issued by this shared expression arena \
             (evicted generation, or a foreign arena's handle)"
        );
        let (chunk, offset) = chunk_pos(index);
        self.chunks[chunk]
            .get()
            .expect("chunk of a published index is initialised")[offset]
            .get()
            .expect("slot of a published index is initialised")
    }
}

/// The two storage modes of an arena — see [`ExprArena::make_shared`].
enum Backing {
    Local(LocalTables),
    Shared(Arc<SharedTables>),
}

/// A hash-consing arena for expressions, mirroring
/// [`crate::value::intern::ValueArena`]'s dedup/canonicalisation design
/// — including its two storage modes: local (plain vectors) until
/// [`ExprArena::make_shared`], lock-striped shared store with
/// handle-preserving migration and [`ExprArena::shared_clone`]s after.
///
/// ```
/// use nra_core::expr::intern::ExprArena;
/// use nra_core::builder;
///
/// let mut arena = ExprArena::new();
/// let f = builder::compose(builder::flatten(), builder::map(builder::sng()));
/// let id = arena.intern(&f);
/// assert_eq!(arena.intern(&f), id); // dedup
/// assert_eq!(arena.ops(id), f.size() as u64);
/// assert_eq!(arena.height(id), 3); // compose → map → sng
/// assert_eq!(arena.resolve(id), f);
/// ```
pub struct ExprArena {
    backing: Backing,
    /// Bumped by [`ExprArena::clear`], so holders of incremental
    /// snapshots can detect that their prefix went stale.
    generation: u64,
}

impl Default for ExprArena {
    fn default() -> Self {
        ExprArena {
            backing: Backing::Local(LocalTables::default()),
            generation: 0,
        }
    }
}

impl std::fmt::Debug for ExprArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExprArena")
            .field("nodes", &self.len())
            .field("shared", &self.is_shared())
            .field("generation", &self.generation)
            .finish()
    }
}

impl ExprArena {
    /// An empty arena.
    pub fn new() -> Self {
        ExprArena::default()
    }

    /// Number of distinct expression nodes interned so far.
    pub fn len(&self) -> usize {
        match &self.backing {
            Backing::Local(t) => t.nodes.len(),
            Backing::Shared(t) => t.len.load(Ordering::Acquire),
        }
    }

    /// Whether the arena holds no nodes yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// [`ExprArena::len`], named for symmetry with the value arena's
    /// occupancy introspection.
    pub fn node_count(&self) -> usize {
        self.len()
    }

    /// Whether this arena runs on a shared concurrent store — see
    /// [`ExprArena::make_shared`].
    pub fn is_shared(&self) -> bool {
        matches!(self.backing, Backing::Shared(_))
    }

    /// Migrate this arena onto a shared concurrent store (idempotent) —
    /// the expression-side counterpart of
    /// [`crate::value::intern::ValueArena::make_shared`]. Every node
    /// keeps its index, so previously issued [`EId`]s — and snapshot
    /// prefixes — remain valid; the generation does not change.
    pub fn make_shared(&mut self) {
        if self.is_shared() {
            return;
        }
        let Backing::Local(t) =
            std::mem::replace(&mut self.backing, Backing::Local(LocalTables::default()))
        else {
            unreachable!("is_shared() was false");
        };
        let mut shared = SharedTables::new();
        let node_count = t.nodes.len();
        for (index, (node, meta)) in t.nodes.into_iter().zip(t.metas).enumerate() {
            let (chunk, offset) = chunk_pos(index);
            if shared.chunk(chunk)[offset].set((node, meta)).is_err() {
                unreachable!("fresh shared chunk slot already occupied");
            }
        }
        for (node, id) in t.dedup {
            let shard = shard_index(&node);
            shared.dedup[shard]
                .get_mut()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(node, id);
        }
        shared.len.store(node_count, Ordering::Release);
        self.backing = Backing::Shared(Arc::new(shared));
    }

    /// Another arena over the **same** shared store (`None` while
    /// local); handles are interchangeable between all clones. Same
    /// contract as [`crate::value::intern::ValueArena::shared_clone`].
    pub fn shared_clone(&self) -> Option<ExprArena> {
        match &self.backing {
            Backing::Shared(t) => Some(ExprArena {
                backing: Backing::Shared(Arc::clone(t)),
                generation: self.generation,
            }),
            Backing::Local(_) => None,
        }
    }

    /// Discard every interned node. **All previously issued [`EId`]s
    /// become invalid** — same contract as
    /// [`crate::value::intern::ValueArena::clear`] (a shared arena
    /// detaches onto a fresh store; pre-existing clones keep the old
    /// one).
    pub fn clear(&mut self) {
        match &mut self.backing {
            Backing::Local(t) => {
                t.nodes.clear();
                t.metas.clear();
                t.dedup.clear();
            }
            shared => *shared = Backing::Shared(Arc::new(SharedTables::new())),
        }
        self.generation += 1;
    }

    /// A counter that changes exactly when previously issued handles are
    /// invalidated ([`ExprArena::clear`]) — consumers holding an
    /// incremental [`ExprArena::extend_snapshot`] prefix compare it to
    /// decide whether their copy is still a prefix of this arena.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn meta_for(&self, node: &ENode) -> Meta {
        let children: [Option<EId>; 3] = match *node {
            ENode::Leaf(_) => [None, None, None],
            ENode::Map(f) | ENode::While(f) => [Some(f), None, None],
            ENode::Tuple(f, g) | ENode::Compose(f, g) => [Some(f), Some(g), None],
            ENode::Cond(c, t, e) => [Some(c), Some(t), Some(e)],
        };
        let mut ops: u64 = 1;
        let mut child_height: u32 = 0;
        for child in children.into_iter().flatten() {
            let m = self.meta(child);
            ops = ops.saturating_add(m.ops);
            child_height = child_height.max(m.height);
        }
        Meta {
            ops,
            height: child_height.saturating_add(1),
        }
    }

    fn meta(&self, e: EId) -> Meta {
        match &self.backing {
            Backing::Local(t) => t.metas[e.index()],
            Backing::Shared(t) => t.slot(e.index()).1,
        }
    }

    /// The node behind a handle — both backings' read path. Panics on a
    /// handle the arena never issued (stale after a clear, or foreign).
    fn node_ref(&self, e: EId) -> &ENode {
        match &self.backing {
            Backing::Local(t) => &t.nodes[e.index()],
            Backing::Shared(t) => &t.slot(e.index()).0,
        }
    }

    fn add(&mut self, node: ENode) -> EId {
        if let Backing::Shared(tables) = &self.backing {
            let tables = Arc::clone(tables);
            return self.add_shared(&tables, node);
        }
        if let Backing::Local(t) = &self.backing {
            if let Some(&id) = t.dedup.get(&node) {
                return id;
            }
        }
        let meta = self.meta_for(&node);
        let Backing::Local(t) = &mut self.backing else {
            unreachable!("checked local above");
        };
        let id = EId::new(u32::try_from(t.nodes.len()).expect("ExprArena: more than 2³² nodes"));
        t.dedup.insert(node.clone(), id);
        t.nodes.push(node);
        t.metas.push(meta);
        id
    }

    /// The shared-store intern protocol — lock order shard → alloc,
    /// identical to the value arena's.
    fn add_shared(&self, tables: &SharedTables, node: ENode) -> EId {
        let mut shard = tables.dedup[shard_index(&node)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(&id) = shard.get(&node) {
            return id;
        }
        let meta = self.meta_for(&node);
        let id;
        {
            let _alloc = tables.alloc.lock().unwrap_or_else(PoisonError::into_inner);
            let index = tables.len.load(Ordering::Relaxed);
            id = EId::new(u32::try_from(index).expect("ExprArena: more than 2³² nodes"));
            let (chunk, offset) = chunk_pos(index);
            if tables.chunk(chunk)[offset]
                .set((node.clone(), meta))
                .is_err()
            {
                unreachable!("allocation is serialised; a fresh slot cannot be occupied");
            }
            tables.len.store(index + 1, Ordering::Release);
        }
        shard.insert(node, id);
        id
    }

    /// Intern an expression, sharing every repeated subterm.
    pub fn intern(&mut self, e: &Expr) -> EId {
        match e {
            Expr::Tuple(f, g) => {
                let f = self.intern(f);
                let g = self.intern(g);
                self.add(ENode::Tuple(f, g))
            }
            Expr::Map(f) => {
                let f = self.intern(f);
                self.add(ENode::Map(f))
            }
            Expr::Cond(c, t, els) => {
                let c = self.intern(c);
                let t = self.intern(t);
                let els = self.intern(els);
                self.add(ENode::Cond(c, t, els))
            }
            Expr::Compose(g, f) => {
                let g = self.intern(g);
                let f = self.intern(f);
                self.add(ENode::Compose(g, f))
            }
            Expr::While(f) => {
                let f = self.intern(f);
                self.add(ENode::While(f))
            }
            leaf => self.add(ENode::Leaf(leaf.clone().rc())),
        }
    }

    /// The interned node behind a handle — an `O(1)` clone ([`ENode`]
    /// children are handles; leaves are behind an [`ExprRef`]).
    pub fn node(&self, e: EId) -> ENode {
        self.node_ref(e).clone()
    }

    /// Materialise the tree form of an interned expression. `O(ops)`.
    pub fn resolve(&self, e: EId) -> Expr {
        match self.node_ref(e) {
            ENode::Leaf(leaf) => (**leaf).clone(),
            ENode::Tuple(f, g) => Expr::Tuple(self.resolve(*f).rc(), self.resolve(*g).rc()),
            ENode::Map(f) => Expr::Map(self.resolve(*f).rc()),
            ENode::Cond(c, t, els) => Expr::Cond(
                self.resolve(*c).rc(),
                self.resolve(*t).rc(),
                self.resolve(*els).rc(),
            ),
            ENode::Compose(g, f) => Expr::Compose(self.resolve(*g).rc(), self.resolve(*f).rc()),
            ENode::While(f) => Expr::While(self.resolve(*f).rc()),
        }
    }

    /// Clone the node table as a dense vector indexed by
    /// [`EId::index`]. Evaluators snapshot this once per evaluation so
    /// their inner loop reads expression structure by plain indexing
    /// instead of re-borrowing the (thread-local) arena at every
    /// derivation step. Cheap: nodes hold child handles and `Rc`'d
    /// leaves, and expressions are tiny next to the objects they
    /// compute on.
    pub fn snapshot(&self) -> Vec<ENode> {
        let mut out = Vec::new();
        self.extend_snapshot(&mut out);
        out
    }

    /// Bring an earlier snapshot up to date by appending only the nodes
    /// interned since it was taken — the arena is append-only between
    /// [`ExprArena::clear`]s, so a snapshot is always a prefix of the
    /// node table (callers detect clears via [`ExprArena::generation`]
    /// and start from an empty vector again). This keeps repeated
    /// evaluations `O(new nodes)` instead of `O(arena)`.
    ///
    /// On a shared arena the snapshot extends to the store's currently
    /// *published* length: nodes another clone interns concurrently past
    /// that point are invisible, which is sound — a handle only reaches
    /// this thread after the interning publishes it, and callers resync
    /// before walking new handles.
    pub fn extend_snapshot(&self, out: &mut Vec<ENode>) {
        match &self.backing {
            Backing::Local(t) => {
                debug_assert!(
                    out.len() <= t.nodes.len(),
                    "extend_snapshot: stale snapshot longer than the arena — missed a clear()?"
                );
                out.extend_from_slice(&t.nodes[out.len().min(t.nodes.len())..]);
            }
            Backing::Shared(t) => {
                let len = t.len.load(Ordering::Acquire);
                debug_assert!(
                    out.len() <= len,
                    "extend_snapshot: stale snapshot longer than the arena — missed a clear()?"
                );
                out.reserve(len.saturating_sub(out.len()));
                for index in out.len()..len {
                    out.push(t.slot(index).0.clone());
                }
            }
        }
    }

    /// Cached AST node count — the measure of [`Expr::size`], `O(1)`,
    /// saturating at `u64::MAX`.
    pub fn ops(&self, e: EId) -> u64 {
        self.meta(e).ops
    }

    /// Cached tree height (leaves are 1) — `O(1)`, saturating.
    pub fn height(&self, e: EId) -> u32 {
        self.meta(e).height
    }
}

thread_local! {
    static ARENA: RefCell<ExprArena> = RefCell::new(ExprArena::new());
}

/// Run `f` with exclusive access to the calling thread's expression
/// arena. Do not call this module's free functions from inside `f` (the
/// `RefCell` borrow would panic).
pub fn with_arena<R>(f: impl FnOnce(&mut ExprArena) -> R) -> R {
    ARENA.with(|a| f(&mut a.borrow_mut()))
}

/// Intern an expression into the thread-local arena.
pub fn intern(e: &Expr) -> EId {
    with_arena(|a| a.intern(e))
}

/// Materialise the tree form of a thread-locally interned expression.
pub fn resolve(e: EId) -> Expr {
    with_arena(|a| a.resolve(e))
}

/// The interned node behind a handle (`O(1)` clone).
pub fn node(e: EId) -> ENode {
    with_arena(|a| a.node(e))
}

/// Cached AST node count — `O(1)`, saturating.
pub fn ops(e: EId) -> u64 {
    with_arena(|a| a.ops(e))
}

/// Cached tree height — `O(1)`, saturating.
pub fn height(e: EId) -> u32 {
    with_arena(|a| a.height(e))
}

/// Number of distinct nodes in the thread-local expression arena.
pub fn node_count() -> usize {
    with_arena(|a| a.node_count())
}

/// Snapshot the thread-local arena's node table — see
/// [`ExprArena::snapshot`].
pub fn snapshot() -> Vec<ENode> {
    with_arena(|a| a.snapshot())
}

/// Update `out` (a snapshot taken at `generation`) to match the
/// thread-local arena, restarting from scratch if the arena was cleared
/// in between; returns the current generation. See
/// [`ExprArena::extend_snapshot`].
pub fn sync_snapshot(out: &mut Vec<ENode>, generation: u64) -> u64 {
    with_arena(|a| {
        if a.generation() != generation {
            out.clear();
        }
        a.extend_snapshot(out);
        a.generation()
    })
}

/// Discard every node of the calling thread's expression arena — all
/// previously issued `EId`s on this thread become invalid (same
/// contract as [`crate::value::intern::reset_thread_arena`]).
pub fn reset_thread_arena() {
    with_arena(|a| a.clear())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::queries;

    #[test]
    fn interning_is_canonical_and_round_trips() {
        let mut a = ExprArena::new();
        for e in [
            id(),
            compose(flatten(), map(sng())),
            queries::tc_while(),
            queries::tc_paths(),
            powerset_m_prim(3),
        ] {
            let i1 = a.intern(&e);
            let i2 = a.intern(&e.clone());
            assert_eq!(i1, i2, "{e}");
            assert_eq!(a.resolve(i1), e, "{e}");
        }
    }

    #[test]
    fn cached_metadata_matches_recursive_measures() {
        fn rec_height(e: &Expr) -> u32 {
            match e {
                Expr::Map(f) | Expr::While(f) => 1 + rec_height(f),
                Expr::Tuple(f, g) | Expr::Compose(f, g) => 1 + rec_height(f).max(rec_height(g)),
                Expr::Cond(c, t, els) => 1 + rec_height(c).max(rec_height(t)).max(rec_height(els)),
                _ => 1,
            }
        }
        let mut a = ExprArena::new();
        for e in [id(), queries::tc_while(), queries::tc_paths()] {
            let i = a.intern(&e);
            assert_eq!(a.ops(i), e.size() as u64, "ops of {e}");
            assert_eq!(a.height(i), rec_height(&e), "height of {e}");
        }
    }

    #[test]
    fn shared_subterms_are_stored_once() {
        let mut a = ExprArena::new();
        // ⟨f, f⟩ shares its two children
        let f = compose(flatten(), map(sng()));
        let before = a.node_count();
        a.intern(&tuple(f.clone(), f.clone()));
        let delta = a.node_count() - before;
        // f has 4 distinct nodes (compose, flatten, map, sng) + the tuple
        assert_eq!(delta, 5, "shared subterm interned twice");
    }

    #[test]
    fn node_exposes_the_structure() {
        let mut a = ExprArena::new();
        let i = a.intern(&compose(flatten(), map(sng())));
        match a.node(i) {
            ENode::Compose(g, f) => {
                assert!(matches!(a.node(g), ENode::Leaf(ref e) if **e == Expr::Flatten));
                match a.node(f) {
                    ENode::Map(b) => {
                        assert!(matches!(a.node(b), ENode::Leaf(ref e) if **e == Expr::Sng))
                    }
                    other => panic!("expected map, got {other:?}"),
                }
            }
            other => panic!("expected compose, got {other:?}"),
        }
        assert_eq!(a.node(i).head_name(), "compose");
    }

    #[test]
    fn clear_resets() {
        let mut a = ExprArena::new();
        a.intern(&queries::tc_while());
        assert!(!a.is_empty());
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.node_count(), 0);
        let i = a.intern(&id());
        assert_eq!(a.resolve(i), id());
    }

    #[test]
    fn head_indices_match_expr_level() {
        let mut a = ExprArena::new();
        for e in [
            id(),
            tuple(id(), sng()),
            map(fst()),
            cond(always_true(), id(), id()),
            compose(flatten(), map(sng())),
            queries::tc_while(),
            powerset(),
        ] {
            let eid = a.intern(&e);
            let node = a.node(eid);
            assert_eq!(node.head_index(), e.head_index(), "{e}");
            assert_eq!(node.head_name(), e.head_name(), "{e}");
            assert_eq!(Expr::HEAD_NAMES[e.head_index()], e.head_name(), "{e}");
        }
    }

    // shared arenas must be movable and shareable across threads
    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExprArena>();
    };

    #[test]
    fn make_shared_preserves_handles_and_snapshots() {
        let mut a = ExprArena::new();
        let q = a.intern(&queries::tc_while());
        let (ops, height) = (a.ops(q), a.height(q));
        let mut snap = Vec::new();
        a.extend_snapshot(&mut snap);
        a.make_shared();
        assert!(a.is_shared());
        assert_eq!(a.resolve(q), queries::tc_while());
        assert_eq!(a.ops(q), ops);
        assert_eq!(a.height(q), height);
        assert_eq!(a.intern(&queries::tc_while()), q, "dedup survived");
        // the pre-migration snapshot is still a valid prefix
        let before = snap.len();
        let p = a.intern(&queries::tc_paths());
        a.extend_snapshot(&mut snap);
        assert_eq!(snap.len(), a.node_count());
        assert!(snap.len() > before);
        assert_eq!(snap[p.index()], a.node(p));
        a.make_shared(); // idempotent
    }

    #[test]
    fn shared_clones_intern_canonically_across_threads() {
        let mut a = ExprArena::new();
        a.make_shared();
        let expect = a.intern(&queries::tc_while());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let mut worker = a.shared_clone().unwrap();
                scope.spawn(move || {
                    let q = worker.intern(&queries::tc_while());
                    assert_eq!(q, expect, "canonical across threads");
                    let p = worker.intern(&queries::tc_paths());
                    assert_eq!(worker.resolve(p), queries::tc_paths());
                    let mut snap = Vec::new();
                    worker.extend_snapshot(&mut snap);
                    assert!(snap.len() > p.index());
                });
            }
        });
        assert!(a.shared_clone().is_some());
        assert_eq!(a.intern(&queries::tc_while()), expect);
    }

    #[test]
    fn shared_clear_detaches_and_bumps_generation() {
        let mut a = ExprArena::new();
        a.make_shared();
        let q = a.intern(&queries::tc_step());
        let b = a.shared_clone().unwrap();
        let generation = a.generation();
        a.clear();
        assert!(a.is_shared());
        assert!(a.is_empty());
        assert_eq!(a.generation(), generation + 1);
        assert_eq!(b.resolve(q), queries::tc_step(), "old store unaffected");
        let fresh = a.intern(&id());
        assert_eq!(a.resolve(fresh), id());
    }

    #[test]
    fn thread_local_facade_round_trips() {
        let e = queries::tc_step();
        let i = intern(&e);
        assert_eq!(resolve(i), e);
        assert_eq!(intern(&e), i);
        assert_eq!(ops(i), e.size() as u64);
        assert!(height(i) >= 2);
        assert!(node_count() >= 4);
        assert_eq!(node(i).head_name(), "compose");
    }
}
