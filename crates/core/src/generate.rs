//! Type-directed random generation of **well-typed** expressions, for
//! differential testing of the evaluators (eager vs traced vs streaming)
//! and for type-soundness fuzzing.
//!
//! Generation is seeded and deterministic (SplitMix64), so failures are
//! reproducible from the seed alone. Every generated expression
//! type-checks at the requested domain by construction; the conditional
//! (`if`) case sidesteps the inhabitation problem by deriving both
//! branches from a common body.

use crate::builder::*;
use crate::expr::Expr;
use crate::typecheck::output_type;
use crate::types::Type;

/// What the generator may produce.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Maximum recursion depth of the generated term.
    pub max_depth: u32,
    /// Allow the `powerset` primitive (exponential on set inputs).
    pub allow_powerset: bool,
    /// Allow the `powersetₘ` primitive (with small m).
    pub allow_powerset_m: bool,
    /// Allow the `while` extension (only in the shape `while(id ∪ step)`
    /// guaranteed to terminate is *not* ensured — the evaluator's
    /// iteration cap is the safety net).
    pub allow_while: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_depth: 5,
            allow_powerset: true,
            allow_powerset_m: true,
            allow_while: false,
        }
    }
}

/// A tiny deterministic RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeded construction.
    pub fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9E3779B97F4A7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// Generate a random well-typed expression with domain `dom`. The output
/// type is whatever the construction produces (query it with
/// [`output_type`]); the result is guaranteed to type-check.
pub fn random_expr(dom: &Type, cfg: &GenConfig, rng: &mut Rng) -> Expr {
    gen(dom, cfg.max_depth, cfg, rng)
}

fn gen(dom: &Type, depth: u32, cfg: &GenConfig, rng: &mut Rng) -> Expr {
    if depth == 0 {
        return gen_leaf(dom, rng);
    }
    // candidate constructors applicable at this domain
    let mut candidates: Vec<u8> = vec![0, 1, 2, 3, 4, 5];
    // 0 = leaf, 1 = tuple, 2 = sng, 3 = compose, 4 = cond, 5 = bang
    match dom {
        Type::Prod(_, _) => candidates.extend([6, 7]), // fst, snd (+ special pairs)
        Type::Set(_) => candidates.extend([8, 8, 9]),  // map (twice: common), set ops
        _ => {}
    }
    match candidates[rng.below(candidates.len() as u64) as usize] {
        0 => gen_leaf(dom, rng),
        1 => tuple(gen(dom, depth - 1, cfg, rng), gen(dom, depth - 1, cfg, rng)),
        2 => compose(sng(), gen(dom, depth - 1, cfg, rng)),
        3 => {
            let f = gen(dom, depth - 1, cfg, rng);
            let mid = output_type(&f, dom).expect("generated terms type-check");
            let g = gen(&mid, depth - 1, cfg, rng);
            compose(g, f)
        }
        4 => {
            // if p then f else (id ∘ f): both branches share f's type
            let p = gen_bool(dom, depth - 1, cfg, rng);
            let f = gen(dom, depth - 1, cfg, rng);
            cond(p, f.clone(), compose(id(), f))
        }
        5 => bang(),
        6 => fst(),
        7 => snd(),
        8 => {
            let Type::Set(elem) = dom else { unreachable!() };
            map(gen(elem, depth - 1, cfg, rng))
        }
        _ => gen_set_op(dom, depth, cfg, rng),
    }
}

fn gen_set_op(dom: &Type, depth: u32, cfg: &GenConfig, rng: &mut Rng) -> Expr {
    let Type::Set(elem) = dom else { unreachable!() };
    let mut options: Vec<u8> = vec![0, 1, 2];
    if matches!(**elem, Type::Set(_)) {
        options.push(3); // flatten
    }
    if cfg.allow_powerset {
        options.push(4);
    }
    if cfg.allow_powerset_m {
        options.push(5);
    }
    if cfg.allow_while {
        options.push(6);
    }
    match options[rng.below(options.len() as u64) as usize] {
        0 => {
            // select with a generated predicate
            let p = gen_bool(elem, depth - 1, cfg, rng);
            crate::derived::select(p, (**elem).clone())
        }
        1 => {
            // x ∪ f(x) needs f : dom → dom; fall back to id otherwise
            let f = gen(dom, depth - 1, cfg, rng);
            let endo = output_type(&f, dom).expect("generated terms type-check") == *dom;
            compose(union(), tuple(id(), if endo { f } else { id() }))
        }
        2 => crate::derived::self_product(),
        3 => flatten(),
        4 => powerset(),
        5 => powerset_m_prim(rng.below(3)),
        6 => {
            // an inflationary loop: while(x ∪ f(x)) terminates whenever f
            // draws from a finite universe; the evaluator's iteration cap
            // guards the rest
            let f = gen(dom, depth - 1, cfg, rng);
            let out = output_type(&f, dom).expect("generated terms type-check");
            if out == *dom {
                while_fix(compose(union(), tuple(id(), f)))
            } else {
                while_fix(id())
            }
        }
        _ => unreachable!(),
    }
}

fn gen_bool(dom: &Type, depth: u32, cfg: &GenConfig, rng: &mut Rng) -> Expr {
    match dom {
        Type::Bool => id(),
        Type::Set(_) if depth > 0 => {
            let f = gen(dom, depth - 1, cfg, rng);
            let mid = output_type(&f, dom).expect("generated terms type-check");
            if mid.is_set() {
                compose(is_empty(), f)
            } else {
                is_empty()
            }
        }
        Type::Set(_) => is_empty(),
        Type::Prod(a, b) if **a == Type::Nat && **b == Type::Nat => {
            if rng.below(2) == 0 {
                eq_nat()
            } else {
                crate::derived::neq_nat()
            }
        }
        Type::Prod(a, _) if depth > 0 => {
            let inner = gen_bool(a, depth - 1, cfg, rng);
            compose(inner, fst())
        }
        _ => {
            if rng.below(2) == 0 {
                always_true()
            } else {
                always_false()
            }
        }
    }
}

fn gen_leaf(dom: &Type, rng: &mut Rng) -> Expr {
    let mut options: Vec<Expr> = vec![id(), bang()];
    match dom {
        Type::Prod(_, _) => {
            options.push(fst());
            options.push(snd());
        }
        Type::Set(_) => {
            options.push(map(id()));
            options.push(is_empty());
        }
        _ => {}
    }
    options.swap_remove(rng.below(options.len() as u64) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_expressions_typecheck() {
        let cfg = GenConfig::default();
        for seed in 0..500u64 {
            let mut rng = Rng::new(seed);
            let dom = Type::nat_rel();
            let e = random_expr(&dom, &cfg, &mut rng);
            output_type(&e, &dom).unwrap_or_else(|err| panic!("seed {seed}: {e} — {err}"));
        }
    }

    #[test]
    fn generated_expressions_typecheck_at_other_domains() {
        let cfg = GenConfig {
            max_depth: 4,
            ..GenConfig::default()
        };
        let domains = [
            Type::Nat,
            Type::Bool,
            Type::prod(Type::Nat, Type::set(Type::Nat)),
            Type::set(Type::set(Type::Nat)),
            Type::set(Type::prod(Type::Bool, Type::Nat)),
        ];
        for (di, dom) in domains.iter().enumerate() {
            for seed in 0..200u64 {
                let mut rng = Rng::new(seed * 31 + di as u64);
                let e = random_expr(dom, &cfg, &mut rng);
                output_type(&e, dom)
                    .unwrap_or_else(|err| panic!("dom {dom}, seed {seed}: {e} — {err}"));
            }
        }
    }

    #[test]
    fn determinism() {
        let cfg = GenConfig::default();
        let a = random_expr(&Type::nat_rel(), &cfg, &mut Rng::new(7));
        let b = random_expr(&Type::nat_rel(), &cfg, &mut Rng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn while_only_when_enabled() {
        let cfg = GenConfig {
            allow_while: false,
            ..GenConfig::default()
        };
        for seed in 0..200u64 {
            let e = random_expr(&Type::nat_rel(), &cfg, &mut Rng::new(seed));
            assert!(!e.level().while_loop, "seed {seed}: {e}");
        }
    }
}
