//! Type checking for `NRA(powerset, while)` expressions.
//!
//! Every expression denotes a function `f : s → t`; given the domain `s`,
//! the codomain `t` is uniquely determined (the language is variable-free
//! and fully annotated — only `∅ˢ` carries an annotation). [`output_type`]
//! computes `t` or reports a precise [`TypeError`].

use crate::expr::Expr;
use crate::types::{FnType, Type};
use std::fmt;

/// A type error with the offending sub-expression's head, the expected
/// shape, and the actual domain type encountered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// Head constructor of the failing sub-expression.
    pub at: &'static str,
    /// Human-readable description of what was expected.
    pub expected: String,
    /// The domain type that was actually supplied.
    pub found: Type,
}

impl TypeError {
    fn new(at: &'static str, expected: impl Into<String>, found: &Type) -> Self {
        TypeError {
            at,
            expected: expected.into(),
            found: found.clone(),
        }
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "type error at `{}`: expected {}, found `{}`",
            self.at, self.expected, self.found
        )
    }
}

impl std::error::Error for TypeError {}

/// Compute the codomain of `expr` applied to domain type `dom`.
pub fn output_type(expr: &Expr, dom: &Type) -> Result<Type, TypeError> {
    match expr {
        Expr::Id => Ok(dom.clone()),
        Expr::Bang => Ok(Type::Unit),
        Expr::Tuple(f, g) => {
            let s = output_type(f, dom)?;
            let t = output_type(g, dom)?;
            Ok(Type::prod(s, t))
        }
        Expr::Fst => match dom {
            Type::Prod(s, _) => Ok((**s).clone()),
            _ => Err(TypeError::new("fst", "a product type s * t", dom)),
        },
        Expr::Snd => match dom {
            Type::Prod(_, t) => Ok((**t).clone()),
            _ => Err(TypeError::new("snd", "a product type s * t", dom)),
        },
        Expr::Map(f) => match dom {
            Type::Set(s) => Ok(Type::set(output_type(f, s)?)),
            _ => Err(TypeError::new("map", "a set type {s}", dom)),
        },
        Expr::Sng => Ok(Type::set(dom.clone())),
        Expr::Flatten => match dom {
            Type::Set(inner) => match &**inner {
                Type::Set(s) => Ok(Type::set((**s).clone())),
                _ => Err(TypeError::new("flatten", "a doubly-nested set {{s}}", dom)),
            },
            _ => Err(TypeError::new("flatten", "a doubly-nested set {{s}}", dom)),
        },
        Expr::PairWith => match dom {
            Type::Prod(s, t_set) => match &**t_set {
                Type::Set(t) => Ok(Type::set(Type::prod((**s).clone(), (**t).clone()))),
                _ => Err(TypeError::new("pairwith", "a type s * {t}", dom)),
            },
            _ => Err(TypeError::new("pairwith", "a type s * {t}", dom)),
        },
        Expr::EmptySet(elem) => {
            if *dom == Type::Unit {
                Ok(Type::set(elem.clone()))
            } else {
                Err(TypeError::new("emptyset", "the unit domain", dom))
            }
        }
        Expr::Union => match dom {
            Type::Prod(a, b) => match (&**a, &**b) {
                (Type::Set(x), Type::Set(y)) if x == y => Ok(Type::set((**x).clone())),
                _ => Err(TypeError::new("union", "a type {s} * {s}", dom)),
            },
            _ => Err(TypeError::new("union", "a type {s} * {s}", dom)),
        },
        Expr::EqNat => match dom {
            Type::Prod(a, b) if **a == Type::Nat && **b == Type::Nat => Ok(Type::Bool),
            _ => Err(TypeError::new("eq", "the type nat * nat", dom)),
        },
        Expr::IsEmpty => match dom {
            Type::Set(_) => Ok(Type::Bool),
            _ => Err(TypeError::new("isempty", "a set type {s}", dom)),
        },
        Expr::ConstTrue | Expr::ConstFalse => {
            if *dom == Type::Unit {
                Ok(Type::Bool)
            } else {
                Err(TypeError::new(expr.head_name(), "the unit domain", dom))
            }
        }
        Expr::Cond(c, then, els) => {
            let ct = output_type(c, dom)?;
            if ct != Type::Bool {
                return Err(TypeError::new("if", "a boolean condition", &ct));
            }
            let tt = output_type(then, dom)?;
            let et = output_type(els, dom)?;
            if tt != et {
                return Err(TypeError::new(
                    "if",
                    format!("matching branch types (then: `{}`)", tt),
                    &et,
                ));
            }
            Ok(tt)
        }
        Expr::Compose(g, f) => {
            let mid = output_type(f, dom)?;
            output_type(g, &mid)
        }
        Expr::Powerset => match dom {
            Type::Set(s) => Ok(Type::set(Type::set((**s).clone()))),
            _ => Err(TypeError::new("powerset", "a set type {s}", dom)),
        },
        Expr::PowersetM(_) => match dom {
            Type::Set(s) => Ok(Type::set(Type::set((**s).clone()))),
            _ => Err(TypeError::new("powerset_m", "a set type {s}", dom)),
        },
        Expr::While(f) => match dom {
            Type::Set(_) => {
                let out = output_type(f, dom)?;
                if out == *dom {
                    Ok(out)
                } else {
                    Err(TypeError::new(
                        "while",
                        format!("body of type `{}` -> `{}`", dom, dom),
                        &out,
                    ))
                }
            }
            _ => Err(TypeError::new("while", "a set type {s}", dom)),
        },
        Expr::Const(v, t) => {
            if v.has_type(t) {
                Ok(t.clone())
            } else {
                Err(TypeError::new(
                    "const",
                    format!("a value of type `{}`", t),
                    dom,
                ))
            }
        }
    }
}

/// Compute the full function type `dom → cod` of `expr`.
pub fn fn_type(expr: &Expr, dom: &Type) -> Result<FnType, TypeError> {
    Ok(FnType::new(dom.clone(), output_type(expr, dom)?))
}

/// Check that `expr : dom → cod` exactly.
pub fn check(expr: &Expr, dom: &Type, cod: &Type) -> Result<(), TypeError> {
    let actual = output_type(expr, dom)?;
    if actual == *cod {
        Ok(())
    } else {
        Err(TypeError {
            at: expr.head_name(),
            expected: format!("codomain `{}`", cod),
            found: actual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr::*;
    use crate::value::Value;

    fn rel() -> Type {
        Type::nat_rel()
    }

    #[test]
    fn primitives_type_as_in_the_paper_table() {
        // id : s → s
        assert_eq!(output_type(&Id, &rel()).unwrap(), rel());
        // ! : s → unit
        assert_eq!(output_type(&Bang, &rel()).unwrap(), Type::Unit);
        // π₁ : s × t → s
        let st = Type::prod(Type::Nat, Type::Bool);
        assert_eq!(output_type(&Fst, &st).unwrap(), Type::Nat);
        assert_eq!(output_type(&Snd, &st).unwrap(), Type::Bool);
        // η : s → {s}
        assert_eq!(output_type(&Sng, &Type::Nat).unwrap(), Type::set(Type::Nat));
        // μ : {{s}} → {s}
        let dd = Type::set(Type::set(Type::Nat));
        assert_eq!(output_type(&Flatten, &dd).unwrap(), Type::set(Type::Nat));
        // ρ₂ : s × {t} → {s × t}
        let pw = Type::prod(Type::Nat, Type::set(Type::Bool));
        assert_eq!(
            output_type(&PairWith, &pw).unwrap(),
            Type::set(Type::prod(Type::Nat, Type::Bool))
        );
        // powerset : {s} → {{s}}
        assert_eq!(output_type(&Powerset, &rel()).unwrap(), Type::set(rel()));
        // = : N × N → B
        assert_eq!(
            output_type(&EqNat, &Type::prod(Type::Nat, Type::Nat)).unwrap(),
            Type::Bool
        );
    }

    #[test]
    fn map_and_compose() {
        // map(π₂) : {N × N} → {N}
        let f = Map(Expr::rc(Snd));
        assert_eq!(output_type(&f, &rel()).unwrap(), Type::set(Type::Nat));
        // μ ∘ map(η) : {N} → {N}
        let g = Compose(Expr::rc(Flatten), Expr::rc(Map(Expr::rc(Sng))));
        assert_eq!(
            output_type(&g, &Type::set(Type::Nat)).unwrap(),
            Type::set(Type::Nat)
        );
    }

    #[test]
    fn errors_are_reported_at_the_offending_head() {
        let err = output_type(&Fst, &Type::Nat).unwrap_err();
        assert_eq!(err.at, "fst");
        let err = output_type(&Flatten, &rel()).unwrap_err();
        assert_eq!(err.at, "flatten");
        assert!(err.to_string().contains("doubly-nested"));
        // mismatched branches
        let c = Cond(Expr::rc(IsEmpty), Expr::rc(IsEmpty), Expr::rc(Id));
        let err = output_type(&c, &rel()).unwrap_err();
        assert_eq!(err.at, "if");
    }

    #[test]
    fn union_requires_matching_element_types() {
        let good = Type::prod(Type::set(Type::Nat), Type::set(Type::Nat));
        assert_eq!(output_type(&Union, &good).unwrap(), Type::set(Type::Nat));
        let bad = Type::prod(Type::set(Type::Nat), Type::set(Type::Bool));
        assert!(output_type(&Union, &bad).is_err());
    }

    #[test]
    fn while_requires_endofunction() {
        let ok = While(Expr::rc(Id));
        assert_eq!(output_type(&ok, &rel()).unwrap(), rel());
        let bad = While(Expr::rc(Map(Expr::rc(Fst))));
        assert!(output_type(&bad, &rel()).is_err());
    }

    #[test]
    fn const_checks_value_against_annotation() {
        let ok = Const(Value::nat(3), Type::Nat);
        assert_eq!(output_type(&ok, &Type::Unit).unwrap(), Type::Nat);
        let bad = Const(Value::nat(3), Type::Bool);
        assert!(output_type(&bad, &Type::Unit).is_err());
    }

    #[test]
    fn fn_type_and_check() {
        let ft = fn_type(&Map(Expr::rc(Fst)), &rel()).unwrap();
        assert_eq!(ft.to_string(), "{nat * nat} -> {nat}");
        assert!(check(&Map(Expr::rc(Fst)), &rel(), &Type::set(Type::Nat)).is_ok());
        assert!(check(&Map(Expr::rc(Fst)), &rel(), &Type::set(Type::Bool)).is_err());
    }
}
