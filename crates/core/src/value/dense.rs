//! Word-parallel primitives for dense bitmap sets.
//!
//! One vocabulary of packed-`u64` operations shared by every layer that
//! manipulates dense relations: the arena's [`SetRepr::Dense`] sidecars
//! (`nra_core::value::intern`), the graph crate's `BitSet` rows, and the
//! arena-native transitive-closure backend. All functions operate on
//! plain word slices — no representation assumptions beyond "bit `i` of
//! word `i / 64` is element `i`" — so callers can layer whatever domain
//! encoding they need on top (the arena packs atom values directly and
//! pairs row-major by a power-of-two stride).
//!
//! Length mismatches are handled by the *growing* convention: a shorter
//! operand is treated as zero-padded, and in-place destinations grow to
//! cover the longer operand where bits could be set. This is the
//! contract `BitSet::union_with` adopts (growing instead of panicking)
//! so the two layers agree on edge cases.
//!
//! [`SetRepr::Dense`]: super::intern::SetRepr
//!
//! ```
//! use nra_core::value::dense;
//!
//! let mut acc = vec![0b1010u64];
//! let grew = dense::union_into(&mut acc, &[0b0101, 0b1]);
//! assert!(grew);
//! assert_eq!(acc, vec![0b1111, 0b1]);
//! assert_eq!(dense::popcount(&acc), 5);
//! ```

/// Bits per packed word.
pub const WORD_BITS: usize = 64;

/// Number of words needed to cover `bits` bit positions.
#[inline]
pub fn words_for_bits(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}

/// Whether bit `bit` is set (bits beyond the slice read as zero).
#[inline]
pub fn get_bit(words: &[u64], bit: usize) -> bool {
    words
        .get(bit / WORD_BITS)
        .is_some_and(|w| w >> (bit % WORD_BITS) & 1 == 1)
}

/// Set bit `bit`, growing `words` if it lies beyond the current length.
/// Returns `true` iff the bit was newly set.
#[inline]
pub fn set_bit(words: &mut Vec<u64>, bit: usize) -> bool {
    let word = bit / WORD_BITS;
    if word >= words.len() {
        words.resize(word + 1, 0);
    }
    let mask = 1u64 << (bit % WORD_BITS);
    let fresh = words[word] & mask == 0;
    words[word] |= mask;
    fresh
}

/// `dst |= src`, growing `dst` to `src`'s length if shorter. Returns
/// `true` iff any bit of `dst` changed.
pub fn union_into(dst: &mut Vec<u64>, src: &[u64]) -> bool {
    if src.len() > dst.len() {
        dst.resize(src.len(), 0);
    }
    let mut changed = false;
    for (d, &s) in dst.iter_mut().zip(src) {
        let next = *d | s;
        changed |= next != *d;
        *d = next;
    }
    changed
}

/// `dst &= src` — bits of `dst` beyond `src`'s length are cleared (a
/// missing word is zero).
pub fn intersect_into(dst: &mut [u64], src: &[u64]) {
    for (i, d) in dst.iter_mut().enumerate() {
        *d &= src.get(i).copied().unwrap_or(0);
    }
}

/// `dst &= !src` — words of `src` beyond `dst`'s length are irrelevant.
pub fn difference_into(dst: &mut [u64], src: &[u64]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d &= !s;
    }
}

/// Whether every set bit of `a` is also set in `b` (zero-padded
/// comparison, so lengths need not match).
pub fn is_subset_words(a: &[u64], b: &[u64]) -> bool {
    a.iter()
        .enumerate()
        .all(|(i, &w)| w & !b.get(i).copied().unwrap_or(0) == 0)
}

/// Zero-padded word equality: the same bit set, regardless of trailing
/// zero words.
pub fn words_equal(a: &[u64], b: &[u64]) -> bool {
    let n = a.len().min(b.len());
    a[..n] == b[..n] && a[n..].iter().all(|&w| w == 0) && b[n..].iter().all(|&w| w == 0)
}

/// Total number of set bits.
pub fn popcount(words: &[u64]) -> u64 {
    words.iter().map(|w| w.count_ones() as u64).sum()
}

/// Number of bits set in `new` but not in `old` — the frontier count
/// `|new ∖ old|`, zero-padded.
pub fn delta_count(old: &[u64], new: &[u64]) -> u64 {
    new.iter()
        .enumerate()
        .map(|(i, &w)| (w & !old.get(i).copied().unwrap_or(0)).count_ones() as u64)
        .sum()
}

/// Iterate the indices of set bits in ascending order.
pub fn iter_ones(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(i, &w)| {
        let mut rest = w;
        std::iter::from_fn(move || {
            if rest == 0 {
                return None;
            }
            let bit = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            Some(i * WORD_BITS + bit)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_grows_and_reports_change() {
        let mut a = vec![1u64];
        assert!(union_into(&mut a, &[0, 0b10]));
        assert_eq!(a, vec![1, 0b10]);
        // idempotent second pass: no change
        assert!(!union_into(&mut a, &[1, 0b10]));
    }

    #[test]
    fn intersect_and_difference_respect_zero_padding() {
        let mut a = vec![0b111u64, u64::MAX];
        intersect_into(&mut a, &[0b101]);
        assert_eq!(a, vec![0b101, 0]);
        let mut b = vec![0b111u64];
        difference_into(&mut b, &[0b010, u64::MAX]);
        assert_eq!(b, vec![0b101]);
    }

    #[test]
    fn subset_equality_and_counts() {
        assert!(is_subset_words(&[0b101], &[0b111, 0]));
        assert!(!is_subset_words(&[0b101, 1], &[0b111]));
        assert!(words_equal(&[0b11, 0], &[0b11]));
        assert!(!words_equal(&[0b11, 1], &[0b11]));
        assert_eq!(popcount(&[u64::MAX, 1]), 65);
        assert_eq!(delta_count(&[0b01], &[0b11, 0b1]), 2);
    }

    #[test]
    fn bit_access_and_iteration() {
        let mut w = Vec::new();
        assert!(set_bit(&mut w, 70));
        assert!(!set_bit(&mut w, 70));
        assert!(set_bit(&mut w, 3));
        assert!(get_bit(&w, 3) && get_bit(&w, 70) && !get_bit(&w, 71));
        assert!(!get_bit(&w, 1000)); // beyond the slice reads as zero
        assert_eq!(iter_ones(&w).collect::<Vec<_>>(), vec![3, 70]);
    }
}
