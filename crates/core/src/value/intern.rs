//! Hash-consed interning of complex objects.
//!
//! The paper's whole argument is about *object size* — every §3 evaluation
//! rule observes `size(C)` — but the tree representation ([`Value`]) pays
//! `O(size)` for exactly the operations the theory treats as observations:
//! `size`, `==`, `clone`, `hash`. This module fixes the cost model with a
//! classic hash-consing arena:
//!
//! * every structurally distinct node is stored **once** in a
//!   [`ValueArena`] and addressed by a small copyable handle ([`VId`]);
//! * equal trees always receive equal handles, so `==` on interned values
//!   is a `u32` comparison;
//! * each node carries cached metadata — the paper's `size` (saturating at
//!   [`u64::MAX`]), the nesting `depth`, and a structural `hash` — so all
//!   three are `O(1)` lookups;
//! * "cloning" an interned value is copying a handle.
//!
//! Set nodes are canonicalised by sorting their element handles: because
//! equal elements share a handle, two set denotations that differ only in
//! element order (or duplication) intern to the same node — the §3
//! structural identities hold by construction, exactly as they do for the
//! [`BTreeSet`]-backed [`Value`].
//!
//! The free functions of this module ([`intern`], [`resolve`], [`pair`],
//! [`set`], [`size`], …) operate on a thread-local arena — the
//! *compatibility facade* for code that does not thread an arena
//! explicitly. The engine layer (`nra-eval`'s `EvalSession`) instead
//! **owns** a `ValueArena` and threads it by `&mut` through every rule,
//! which is what makes sessions movable across threads and lets several
//! evaluation streams run in parallel, each against its own arena.
//! [`VId`] is a plain copyable index and is `Send`: a handle is only
//! meaningful in the arena that issued it, and keeping handle and arena
//! together is the holder's contract (exactly as with `usize` indices
//! into a `Vec`).
//!
//! Hash-consing trades reclamation for sharing: the arena grows
//! monotonically and never frees individual nodes, so a long-running
//! process interning unboundedly many *distinct* values retains them all
//! (up to the 2³² handle-space limit). At quiescent points — when no
//! handles are retained — [`reset_thread_arena`] (or
//! [`ValueArena::clear`]) discards everything and starts fresh.
//!
//! # Examples
//!
//! Interning is canonical and metadata reads are `O(1)`:
//!
//! ```
//! use nra_core::value::intern;
//! use nra_core::Value;
//!
//! let a = intern::intern(&Value::chain(3));
//! let b = intern::chain(3); // built handle-by-handle, never as a tree
//! assert_eq!(a, b); // equal trees ⇒ equal handles
//! assert_eq!(intern::size(a), Value::chain(3).size()); // cached, O(1)
//! assert_eq!(intern::resolve(a), Value::chain(3)); // round-trips
//! ```
//!
//! Structural sharing makes objects representable whose tree form could
//! never fit in memory — their cached size saturates instead of
//! overflowing:
//!
//! ```
//! use nra_core::value::intern;
//!
//! // vₖ₊₁ = (vₖ, vₖ): size doubles per level, the arena stores one node per level
//! let mut v = intern::nat(0);
//! for _ in 0..70 {
//!     v = intern::pair(v, v);
//! }
//! assert_eq!(intern::size(v), u64::MAX); // 2⁷¹ − 1 in the §3 measure, saturated
//! assert_eq!(intern::depth(v), 70);
//! ```

use super::{dense, Value};
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::hash::{BuildHasher, BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// A fast non-cryptographic hasher (the FxHash recipe: rotate, xor,
/// multiply) for handle-keyed maps. Interning happens on the evaluator
/// hot path, every constructed node pays one hash — DoS-resistant
/// SipHash buys nothing here because keys are internal handles, not
/// user input. Public so that consumers building side tables keyed on
/// [`VId`]s (or the expression arena's `EId`s) — such as the
/// evaluators' memo tables — can use the same cheap recipe.
#[derive(Default)]
pub struct FxHasher(u64);

/// [`BuildHasher`] for [`FxHasher`]-backed maps:
/// `HashMap<K, V, FxBuildHasher>`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// A handle to an interned complex object in a [`ValueArena`].
///
/// Within one arena, two handles are equal **iff** the objects they denote
/// are structurally equal, so `==`, `hash` and `clone` are all `O(1)`.
/// The derived `Ord` is the arena's insertion order — a valid canonical
/// order for deduplication, but *not* the [`Value`] ordering.
///
/// Handles are only meaningful in the arena that issued them — for the
/// free functions of this module, the calling thread's arena; for an
/// owned arena (an `EvalSession`), that arena. `VId` is a plain `Send`
/// index so that a session owning its arena can move between threads
/// (handles travel *with* their arena); mixing handles across arenas is
/// a logic error the type system does not catch, same as indexing one
/// `Vec` with another's indices.
///
/// ```
/// use nra_core::value::intern;
///
/// let e = intern::edge(1, 2);
/// assert_eq!(e, intern::edge(1, 2)); // O(1) equality
/// assert_eq!(intern::size(e), 3); // O(1) size: 1 + size(1) + size(2)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VId(u32);

impl VId {
    fn new(raw: u32) -> Self {
        VId(raw)
    }

    /// The raw arena index of this handle (stable for the arena's
    /// lifetime; mainly useful for debugging and dense side tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a handle from a raw index previously obtained via
    /// [`VId::index`] **from the same arena** (dense side tables store
    /// raw indices; this is the way back). Fabricating indices that no
    /// arena issued yields a handle that panics or denotes an arbitrary
    /// object when used.
    pub fn from_index(raw: usize) -> VId {
        VId::new(u32::try_from(raw).expect("VId::from_index: index exceeds u32"))
    }
}

/// One interned node. Children are handles, so structural equality of
/// nodes (the dedup-map key) is `O(arity)`, never `O(size)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Node {
    Unit,
    Bool(bool),
    Nat(u64),
    Pair(VId, VId),
    /// Element handles, sorted ascending and deduplicated — the canonical
    /// representation of a set denotation. `Arc` (not `Rc`) so a whole
    /// arena — and the `EvalSession` owning it — is `Send`.
    Set(Arc<[VId]>),
}

/// Cached per-node metadata, computed once at interning time.
#[derive(Debug, Clone, Copy)]
struct Meta {
    /// The paper's §3 size measure, saturating at `u64::MAX`.
    size: u64,
    /// Structural nesting depth (atoms are 0), saturating.
    depth: u32,
    /// A structural hash: equal across arenas for equal objects.
    hash: u64,
}

/// SplitMix64 finaliser — the mixing step behind the structural hashes.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Number of lock-striped dedup shards of a shared arena (a power of
/// two; a node's shard is its hash masked down). 16 stripes keep
/// contention negligible for the worker counts `eval_batch` runs
/// (typically ≤ the machine's core count).
const DEDUP_SHARDS: usize = 16;

/// Slot count of chunk 0 of a shared arena, as a power of two.
const FIRST_CHUNK_BITS: u32 = 10;

/// Number of chunks a shared arena can grow: chunk `c` holds
/// `2^(FIRST_CHUNK_BITS + c)` slots, so 23 chunks cover the full `u32`
/// handle space (the arena panics before exceeding it, exactly like
/// the local backing).
const SHARED_CHUNKS: usize = 23;

/// Locate `index` in the graduated chunk directory: chunk 0 holds
/// indices `0..2¹⁰`, chunk `c ≥ 1` the next `2^(10+c)`.
#[inline]
fn chunk_pos(index: usize) -> (usize, usize) {
    let adjusted = index + (1usize << FIRST_CHUNK_BITS);
    let k = usize::BITS - 1 - adjusted.leading_zeros();
    ((k - FIRST_CHUNK_BITS) as usize, adjusted - (1usize << k))
}

/// Capacity of chunk `chunk` of the graduated directory.
#[inline]
fn chunk_capacity(chunk: usize) -> usize {
    1usize << (FIRST_CHUNK_BITS as usize + chunk)
}

/// Dedup shard of `node` — deterministic (FxHash of the node), so every
/// thread agrees on where a node's canonical entry lives.
#[inline]
fn shard_index(node: &Node) -> usize {
    (FxBuildHasher::default().hash_one(node) as usize) & (DEDUP_SHARDS - 1)
}

/// Largest atom coordinate a dense sidecar will pack. Beyond this the
/// bit domain (quadratic in the coordinate range for pair relations)
/// stops paying for itself and sets stay on the sorted spine.
pub const DENSE_MAX_COORD: u64 = 8192;

/// Minimum cardinality before a set is *considered* for promotion to a
/// dense sidecar on its own. Below this, one sorted merge is already a
/// handful of comparisons and the decode pass would dominate. Small
/// sets can still be densified *against* a dense partner at a merge
/// boundary (the partner's shape is the hint), which is how frontiers
/// join the word-parallel path.
const DENSE_MIN_CARD: usize = 64;

/// The bit domain of a dense sidecar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenseShape {
    /// Every element is a natural: bit `n` is the atom `n`.
    Atoms,
    /// Every element is a pair of naturals: bit `a·stride + b` is the
    /// edge `(a, b)`. `stride` is a power of two covering the largest
    /// coordinate, so the domain is a `stride × stride` adjacency
    /// matrix packed row-major.
    Pairs {
        /// Row length of the packed matrix.
        stride: u32,
    },
}

impl DenseShape {
    /// The bit index of a decoded element under this shape.
    #[inline]
    fn bit(&self, a: u64, b: u64) -> usize {
        match self {
            DenseShape::Atoms => a as usize,
            DenseShape::Pairs { stride } => a as usize * *stride as usize + b as usize,
        }
    }

    /// Decode a bit index back into element coordinates.
    #[inline]
    fn coords(&self, bit: usize) -> (u64, u64) {
        match self {
            DenseShape::Atoms => (bit as u64, 0),
            DenseShape::Pairs { stride } => (
                (bit / *stride as usize) as u64,
                (bit % *stride as usize) as u64,
            ),
        }
    }
}

/// The dense backing of an interned set of atoms or pairs over a
/// bounded domain: packed `u64` words (bit `i` set ⇔ the element the
/// [`DenseShape`] decodes from `i` is in the set).
///
/// A `DenseSet` is a **sidecar**, not the node: canonical identity —
/// the [`VId`], the dedup key, `size`/`depth`/`structural_hash` — is
/// always the sorted element spine, so dense and sparse encodings of
/// the same set intern to the same handle by construction. The sidecar
/// is what the word-parallel set algebra
/// ([`ValueArena::set_union`] … [`ValueArena::set_merge_frontier`])
/// computes with when both operands have one.
#[derive(Debug)]
pub struct DenseSet {
    shape: DenseShape,
    words: Vec<u64>,
}

impl DenseSet {
    /// The bit-domain layout.
    pub fn shape(&self) -> DenseShape {
        self.shape
    }

    /// The packed words (suitable for the [`dense`] primitives).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of elements — one popcount pass.
    pub fn cardinality(&self) -> u64 {
        dense::popcount(&self.words)
    }
}

/// How an interned set node is currently represented — see
/// [`ValueArena::set_repr`].
#[derive(Debug)]
pub enum SetRepr {
    /// The canonical sorted-`VId` element spine (every set has one).
    Sorted(Arc<[VId]>),
    /// A dense bitmap sidecar is attached: word-parallel set algebra
    /// applies. The canonical spine still exists and still defines the
    /// node's identity.
    Dense(Arc<DenseSet>),
}

/// Key of the per-arena atom/pair-domain map: the content coordinates
/// of a densifiable element, tagged so atom `n` and edge `(0, n)`
/// cannot collide. Content-addressed (not stride-dependent), so
/// re-striding a sidecar never invalidates the map.
#[inline]
fn atom_key(n: u64) -> u64 {
    (1u64 << 63) | n
}

#[inline]
fn pair_key(a: u64, b: u64) -> u64 {
    (a << 32) | b
}

/// Per-arena dense bookkeeping: built sidecars (and negative verdicts)
/// keyed by node index, plus the atom/pair-domain map that turns bits
/// back into element handles without re-interning.
#[derive(Default)]
struct DenseCache {
    /// `Some(sidecar)` — built; `None` — proven never-densifiable
    /// (mixed element kinds, coordinates beyond [`DENSE_MAX_COORD`],
    /// or density too low). Below-threshold small sets are *not*
    /// recorded, so a later hinted build can still promote them.
    sidecars: HashMap<u32, Option<Arc<DenseSet>>, FxBuildHasher>,
    /// Domain map: [`atom_key`]/[`pair_key`] → the element's handle.
    domain: HashMap<u64, VId, FxBuildHasher>,
    /// Total `u64` words held by cached sidecars (for byte accounting).
    words: usize,
}

impl DenseCache {
    fn store(&mut self, index: u32, sidecar: Option<Arc<DenseSet>>) {
        let new_words = sidecar.as_ref().map_or(0, |s| s.words.len());
        let old_words = self
            .sidecars
            .insert(index, sidecar)
            .flatten()
            .map_or(0, |s| s.words.len());
        self.words = self.words - old_words + new_words;
    }
}

/// The single-owner backing: plain vectors plus one dedup map, the
/// layout every arena starts with.
#[derive(Default)]
struct LocalTables {
    nodes: Vec<Node>,
    metas: Vec<Meta>,
    dedup: HashMap<Node, VId, FxBuildHasher>,
    /// Total set-element fan-out, maintained incrementally so occupancy
    /// accounting is `O(1)` (and identical between backings).
    set_children: usize,
    /// Dense sidecars + domain map. Behind a (single-owner, therefore
    /// uncontended) `Mutex` because the read-only set ops
    /// (`is_subset`, `set_contains`, `set_delta_cardinality`) take
    /// `&self` but still consult the cache, and `ValueArena` must stay
    /// `Sync`; locks are per-call and never held across arena re-entry.
    dense: Mutex<DenseCache>,
}

/// The concurrent backing behind [`ValueArena::make_shared`]: one
/// canonical store many arena clones intern into simultaneously.
///
/// Layout and lock discipline:
///
/// * **Node storage** is a graduated directory of append-only chunks
///   (chunk `c` holds `2^(10+c)` slots), so indices are globally dense
///   — the same `VId` space as the local backing — and published slots
///   never move. Each slot is a [`OnceLock`], whose `set`/`get` pair
///   provides the release/acquire edge that makes a node (and its
///   metadata) visible to every thread that obtained its `VId`.
/// * **Deduplication** is lock-striped: [`DEDUP_SHARDS`] mutexes, a
///   node hashing to its shard. Interning an already-known node takes
///   exactly one shard lock.
/// * **Allocation** of fresh indices is serialised by the single
///   `alloc` mutex (taken *after* the shard lock — the lock order is
///   shard → alloc, and alloc never takes a shard lock, so the pair
///   cannot deadlock). `len` is stored with `Release` only after the
///   slot is written, so any reader that observes an index below `len`
///   finds its slot initialised.
///
/// Reads (`slot`) are entirely lock-free: one `Acquire` load of `len`,
/// pure index arithmetic, two `OnceLock::get`s.
struct SharedTables {
    chunks: [OnceLock<SharedChunk>; SHARED_CHUNKS],
    len: AtomicUsize,
    set_children: AtomicUsize,
    dedup: [Mutex<HashMap<Node, VId, FxBuildHasher>>; DEDUP_SHARDS],
    alloc: Mutex<()>,
    /// Dense sidecars, lock-striped by **node index** (`index & mask`)
    /// so a hot node's sidecar and its neighbours spread over stripes.
    /// Leaf locks: taken only to get/insert one entry, never while
    /// holding a dedup shard or `alloc`, and nothing is acquired while
    /// one is held — so they extend the shard → alloc order trivially.
    dense_sidecars: [Mutex<SidecarMap>; DEDUP_SHARDS],
    /// The atom/pair-domain map, lock-striped by key. Same leaf-lock
    /// discipline as `dense_sidecars`.
    dense_domain: [Mutex<HashMap<u64, VId, FxBuildHasher>>; DEDUP_SHARDS],
    /// Total sidecar words across stripes (byte accounting).
    dense_words: AtomicUsize,
}

/// One stripe of the sidecar table: cached verdict per node index —
/// absent = never checked, `None` = checked and not densifiable.
type SidecarMap = HashMap<u32, Option<Arc<DenseSet>>, FxBuildHasher>;

/// One lazily-allocated storage chunk of the shared store: a fixed run
/// of write-once slots.
type SharedChunk = Box<[OnceLock<(Node, Meta)>]>;

impl SharedTables {
    fn new() -> Self {
        SharedTables {
            chunks: std::array::from_fn(|_| OnceLock::new()),
            len: AtomicUsize::new(0),
            set_children: AtomicUsize::new(0),
            dedup: std::array::from_fn(|_| Mutex::new(HashMap::default())),
            alloc: Mutex::new(()),
            dense_sidecars: std::array::from_fn(|_| Mutex::new(HashMap::default())),
            dense_domain: std::array::from_fn(|_| Mutex::new(HashMap::default())),
            dense_words: AtomicUsize::new(0),
        }
    }

    /// The chunk `chunk`, allocated on first touch.
    fn chunk(&self, chunk: usize) -> &[OnceLock<(Node, Meta)>] {
        self.chunks[chunk].get_or_init(|| {
            (0..chunk_capacity(chunk))
                .map(|_| OnceLock::new())
                .collect()
        })
    }

    /// The published node behind `index`. Panics on an index this store
    /// never issued — the stale-handle failure mode.
    fn slot(&self, index: usize) -> &(Node, Meta) {
        assert!(
            index < self.len.load(Ordering::Acquire),
            "stale handle: index {index} was never issued by this shared arena \
             (evicted generation, or a foreign arena's handle)"
        );
        let (chunk, offset) = chunk_pos(index);
        self.chunks[chunk]
            .get()
            .expect("chunk of a published index is initialised")[offset]
            .get()
            .expect("slot of a published index is initialised")
    }
}

/// The two storage modes of an arena — see [`ValueArena::make_shared`].
enum Backing {
    Local(LocalTables),
    Shared(Arc<SharedTables>),
}

/// A hash-consing arena for complex objects.
///
/// Most callers use the thread-local arena through this module's free
/// functions; owning a `ValueArena` directly gives an isolated handle
/// space (handles from different arenas must never be mixed).
///
/// An arena starts in **local** mode (plain vectors, zero
/// synchronisation). [`ValueArena::make_shared`] migrates it onto a
/// lock-striped concurrent store, after which
/// [`ValueArena::shared_clone`] hands out further arenas over the *same*
/// store: handles are interchangeable between all clones, interning is
/// canonical across threads, and previously issued handles stay valid
/// (indices are preserved by the migration). The whole public API is
/// identical in both modes.
///
/// ```
/// use nra_core::value::intern::ValueArena;
/// use nra_core::Value;
///
/// let mut arena = ValueArena::new();
/// let one = arena.intern(&Value::nat(1));
/// let two = arena.intern(&Value::nat(2));
/// let s = arena.set([one, two, one]); // duplicates collapse
/// assert_eq!(arena.cardinality(s), Some(2));
/// assert_eq!(arena.size(s), 3); // 1 + size(1) + size(2), cached
/// assert_eq!(arena.resolve(s), Value::set([Value::nat(1), Value::nat(2)]));
/// ```
pub struct ValueArena {
    backing: Backing,
    /// Bumped by [`ValueArena::clear`], mirroring the expression
    /// arena's counter, so holders of handles can detect that they went
    /// stale.
    generation: u64,
    /// Whether the set algebra may take the dense word-parallel fast
    /// path — see [`ValueArena::set_dense_enabled`].
    dense_enabled: bool,
    /// Set-algebra calls answered on the dense path by *this* arena
    /// handle (clones of a shared store count separately — the counter
    /// is the per-session observation the evaluator snapshots).
    dense_ops: AtomicU64,
    /// Sorted→dense promotions (sidecar builds) plus re-stridings
    /// performed by this arena handle.
    dense_promotions: AtomicU64,
}

impl Default for ValueArena {
    fn default() -> Self {
        ValueArena {
            backing: Backing::Local(LocalTables::default()),
            generation: 0,
            dense_enabled: true,
            dense_ops: AtomicU64::new(0),
            dense_promotions: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for ValueArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ValueArena")
            .field("nodes", &self.len())
            .field("shared", &self.is_shared())
            .field("generation", &self.generation)
            .finish()
    }
}

/// Aggregate statistics of an arena — see [`ValueArena::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Number of distinct interned nodes.
    pub nodes: usize,
    /// Sum over set nodes of their element counts (total fan-out held by
    /// the arena — a proxy for its memory footprint).
    pub set_children: usize,
    /// Total packed `u64` words held by dense sidecars — the dense
    /// representation's footprint is *words*, not elements.
    pub dense_words: usize,
    /// Approximate resident bytes — see
    /// [`ValueArena::approx_resident_bytes`].
    pub approx_bytes: usize,
}

impl ValueArena {
    /// An empty arena.
    pub fn new() -> Self {
        ValueArena::default()
    }

    /// Number of distinct nodes interned so far.
    pub fn len(&self) -> usize {
        match &self.backing {
            Backing::Local(t) => t.nodes.len(),
            Backing::Shared(t) => t.len.load(Ordering::Acquire),
        }
    }

    /// Whether the arena holds no nodes yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this arena runs on a shared concurrent store — see
    /// [`ValueArena::make_shared`].
    pub fn is_shared(&self) -> bool {
        matches!(self.backing, Backing::Shared(_))
    }

    /// Migrate this arena onto a **shared concurrent store** (idempotent).
    ///
    /// Every node keeps its index, so previously issued [`VId`]s remain
    /// valid; the generation does not change. Afterwards
    /// [`ValueArena::shared_clone`] hands out further arenas over the
    /// same store: all clones intern canonically into one table (equal
    /// objects receive equal handles *across threads*), which is what
    /// lets batch workers share a parent session's store instead of
    /// re-interning results.
    pub fn make_shared(&mut self) {
        if self.is_shared() {
            return;
        }
        let Backing::Local(t) =
            std::mem::replace(&mut self.backing, Backing::Local(LocalTables::default()))
        else {
            unreachable!("is_shared() was false");
        };
        let mut shared = SharedTables::new();
        let node_count = t.nodes.len();
        for (index, (node, meta)) in t.nodes.into_iter().zip(t.metas).enumerate() {
            let (chunk, offset) = chunk_pos(index);
            if shared.chunk(chunk)[offset].set((node, meta)).is_err() {
                unreachable!("fresh shared chunk slot already occupied");
            }
        }
        for (node, id) in t.dedup {
            let shard = shard_index(&node);
            shared.dedup[shard]
                .get_mut()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(node, id);
        }
        shared.len.store(node_count, Ordering::Release);
        shared.set_children.store(t.set_children, Ordering::Relaxed);
        // migrate the dense sidecars and domain map: indices are
        // preserved by the migration, so both stay valid as-is
        let dense_cache = t.dense.into_inner().unwrap_or_else(PoisonError::into_inner);
        shared
            .dense_words
            .store(dense_cache.words, Ordering::Relaxed);
        for (index, sidecar) in dense_cache.sidecars {
            shared.dense_sidecars[index as usize & (DEDUP_SHARDS - 1)]
                .get_mut()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(index, sidecar);
        }
        for (key, id) in dense_cache.domain {
            shared.dense_domain
                [(FxBuildHasher::default().hash_one(key) as usize) & (DEDUP_SHARDS - 1)]
                .get_mut()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(key, id);
        }
        self.backing = Backing::Shared(Arc::new(shared));
    }

    /// Another arena over the **same** shared store (`None` while local).
    /// Handles are interchangeable between all clones; the clone carries
    /// the same generation. Interning through any clone is canonical for
    /// all of them.
    pub fn shared_clone(&self) -> Option<ValueArena> {
        match &self.backing {
            Backing::Shared(t) => Some(ValueArena {
                backing: Backing::Shared(Arc::clone(t)),
                generation: self.generation,
                dense_enabled: self.dense_enabled,
                dense_ops: AtomicU64::new(0),
                dense_promotions: AtomicU64::new(0),
            }),
            Backing::Local(_) => None,
        }
    }

    /// Discard every interned node, returning the arena to its empty
    /// state (capacity is kept in local mode; a shared arena replaces
    /// its store with a fresh one — clones made before the clear keep
    /// the *old* store and are unaffected).
    ///
    /// **All previously issued [`VId`]s become invalid**: using one
    /// afterwards panics (index out of range) or, once new values are
    /// interned, silently denotes a different object. Call only from
    /// quiescent points where no handles are retained — e.g. between
    /// batches in a long-running process, to stop the arena's otherwise
    /// monotone growth.
    pub fn clear(&mut self) {
        match &mut self.backing {
            Backing::Local(t) => {
                t.nodes.clear();
                t.metas.clear();
                t.dedup.clear();
                t.set_children = 0;
                *t.dense.get_mut().unwrap_or_else(PoisonError::into_inner) = DenseCache::default();
            }
            shared => *shared = Backing::Shared(Arc::new(SharedTables::new())),
        }
        self.generation += 1;
    }

    /// A counter that changes exactly when previously issued handles are
    /// invalidated ([`ValueArena::clear`]) — the staleness signal for
    /// holders of [`VId`]s, mirroring
    /// [`ExprArena::generation`](crate::expr::intern::ExprArena::generation).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of distinct nodes interned so far — the occupancy figure
    /// the cache-effectiveness reports print (an alias of
    /// [`ValueArena::len`], named for symmetry with the expression
    /// arena's `node_count`).
    pub fn node_count(&self) -> usize {
        self.len()
    }

    /// Total set-element fan-out held by the arena (maintained as a
    /// counter in both backings, so this is `O(1)`).
    fn set_children(&self) -> usize {
        match &self.backing {
            Backing::Local(t) => t.set_children,
            Backing::Shared(t) => t.set_children.load(Ordering::Relaxed),
        }
    }

    /// Total packed words held by dense sidecars (both backings keep a
    /// running counter, so this is `O(1)`).
    fn dense_words_held(&self) -> usize {
        match &self.backing {
            Backing::Local(t) => t.dense.lock().unwrap_or_else(PoisonError::into_inner).words,
            Backing::Shared(t) => t.dense_words.load(Ordering::Relaxed),
        }
    }

    /// Approximate resident bytes held by the arena: the node and
    /// metadata storage, the set-element fan-out, the dedup map's
    /// entries (each key clones its node), and the dense sidecars —
    /// charged by *words*, not elements: a dense relation's marginal
    /// cost is its packed bit domain, however many elements it holds.
    /// An estimate — allocator slack and `HashMap` load factor are not
    /// modelled — intended for occupancy reporting, not exact
    /// accounting.
    pub fn approx_resident_bytes(&self) -> usize {
        let per_node = std::mem::size_of::<Node>() + std::mem::size_of::<Meta>();
        // dedup holds a clone of every node (the Arc'd element slice is
        // shared, not duplicated) plus a VId and a cached hash
        let per_dedup_entry =
            std::mem::size_of::<Node>() + std::mem::size_of::<VId>() + std::mem::size_of::<u64>();
        let fan_out = self.set_children() * std::mem::size_of::<VId>();
        let dense = self.dense_words_held() * std::mem::size_of::<u64>();
        self.len() * (per_node + per_dedup_entry) + fan_out + dense
    }

    /// Aggregate statistics (node count, total set fan-out, dense
    /// sidecar words, approximate resident bytes).
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            nodes: self.len(),
            set_children: self.set_children(),
            dense_words: self.dense_words_held(),
            approx_bytes: self.approx_resident_bytes(),
        }
    }

    fn meta_for(&self, node: &Node) -> Meta {
        match node {
            Node::Unit => Meta {
                size: 1,
                depth: 0,
                hash: mix(0x75),
            },
            Node::Bool(b) => Meta {
                size: 1,
                depth: 0,
                hash: mix(0xB0 ^ (*b as u64)),
            },
            Node::Nat(n) => Meta {
                size: 1,
                depth: 0,
                hash: mix(0x4E ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            },
            Node::Pair(a, b) => {
                let (ma, mb) = (self.meta(*a), self.meta(*b));
                Meta {
                    size: 1u64.saturating_add(ma.size).saturating_add(mb.size),
                    depth: 1u32.saturating_add(ma.depth.max(mb.depth)),
                    hash: mix(0x50u64 ^ ma.hash ^ mix(mb.hash)),
                }
            }
            Node::Set(items) => {
                let mut size: u64 = 1;
                let mut depth: u32 = 0;
                // the canonical element order is handle order, which is
                // arena-*dependent* — combine element hashes commutatively
                // so the structural hash stays arena-independent
                let mut hash: u64 = 0;
                for &item in items.iter() {
                    let m = self.meta(item);
                    size = size.saturating_add(m.size);
                    depth = depth.max(m.depth);
                    hash = hash.wrapping_add(mix(m.hash));
                }
                Meta {
                    size,
                    depth: 1u32.saturating_add(depth),
                    hash: mix(0x5Eu64 ^ hash ^ ((items.len() as u64) << 32)),
                }
            }
        }
    }

    fn meta(&self, v: VId) -> Meta {
        match &self.backing {
            Backing::Local(t) => t.metas[v.index()],
            Backing::Shared(t) => t.slot(v.index()).1,
        }
    }

    /// The node behind a handle — both backings' read path. Panics on a
    /// handle the arena never issued (stale after a clear, or foreign).
    fn node_ref(&self, v: VId) -> &Node {
        match &self.backing {
            Backing::Local(t) => &t.nodes[v.index()],
            Backing::Shared(t) => &t.slot(v.index()).0,
        }
    }

    fn add(&mut self, node: Node) -> VId {
        if let Backing::Shared(tables) = &self.backing {
            let tables = Arc::clone(tables);
            return self.add_shared(&tables, node);
        }
        if let Backing::Local(t) = &self.backing {
            if let Some(&id) = t.dedup.get(&node) {
                return id;
            }
        }
        let meta = self.meta_for(&node);
        let Backing::Local(t) = &mut self.backing else {
            unreachable!("checked local above");
        };
        let id = VId::new(u32::try_from(t.nodes.len()).expect("ValueArena: more than 2³² nodes"));
        if let Node::Set(items) = &node {
            t.set_children += items.len();
        }
        t.dedup.insert(node.clone(), id);
        t.nodes.push(node);
        t.metas.push(meta);
        id
    }

    /// The shared-store intern protocol. Lock order is shard → alloc;
    /// a node already known costs exactly one shard lock.
    fn add_shared(&self, tables: &SharedTables, node: Node) -> VId {
        let mut shard = tables.dedup[shard_index(&node)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(&id) = shard.get(&node) {
            return id;
        }
        // child metadata reads are lock-free: every child handle was
        // published (slot set, then `len` released) before we got it
        let meta = self.meta_for(&node);
        let id;
        {
            let _alloc = tables.alloc.lock().unwrap_or_else(PoisonError::into_inner);
            let index = tables.len.load(Ordering::Relaxed);
            id = VId::new(u32::try_from(index).expect("ValueArena: more than 2³² nodes"));
            let (chunk, offset) = chunk_pos(index);
            if let Node::Set(items) = &node {
                tables
                    .set_children
                    .fetch_add(items.len(), Ordering::Relaxed);
            }
            if tables.chunk(chunk)[offset]
                .set((node.clone(), meta))
                .is_err()
            {
                unreachable!("allocation is serialised; a fresh slot cannot be occupied");
            }
            // publish: the slot write above happens-before any reader
            // that observes the new length
            tables.len.store(index + 1, Ordering::Release);
        }
        shard.insert(node, id);
        id
    }

    /// Intern `()`.
    pub fn unit(&mut self) -> VId {
        self.add(Node::Unit)
    }

    /// Intern a boolean.
    pub fn bool_(&mut self, b: bool) -> VId {
        self.add(Node::Bool(b))
    }

    /// Intern a natural number.
    pub fn nat(&mut self, n: u64) -> VId {
        self.add(Node::Nat(n))
    }

    /// Intern the pair `(a, b)` of two interned values.
    pub fn pair(&mut self, a: VId, b: VId) -> VId {
        self.add(Node::Pair(a, b))
    }

    /// Intern the edge `(a, b)` of two naturals.
    pub fn edge(&mut self, a: u64, b: u64) -> VId {
        let a = self.nat(a);
        let b = self.nat(b);
        self.pair(a, b)
    }

    /// Intern a set from element handles, deduplicating and
    /// canonicalising order.
    pub fn set<I: IntoIterator<Item = VId>>(&mut self, items: I) -> VId {
        let items: Vec<VId> = items.into_iter().collect();
        self.set_from_vec(items)
    }

    /// Intern a set from an owned element vector (sorted and deduplicated
    /// in place — the cheapest entry point for hot loops).
    pub fn set_from_vec(&mut self, mut items: Vec<VId>) -> VId {
        items.sort_unstable();
        items.dedup();
        self.add(Node::Set(items.into()))
    }

    /// Intern the empty set.
    pub fn empty_set(&mut self) -> VId {
        self.add(Node::Set(Arc::from([])))
    }

    /// Intern a set from an element vector that is **already sorted and
    /// deduplicated** in the canonical handle order — the entry point
    /// the merge operations use so merged results are never re-sorted.
    fn add_canonical_set(&mut self, items: Vec<VId>) -> VId {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "add_canonical_set: elements must be strictly ascending"
        );
        self.add(Node::Set(items.into()))
    }

    /// Union of two interned sets as one linear merge over their
    /// canonical (sorted, deduplicated) element slices. `None` if
    /// either handle is not a set. `a ∪ a` short-circuits to `a`.
    ///
    /// ```
    /// use nra_core::value::intern::ValueArena;
    ///
    /// let mut a = ValueArena::new();
    /// let x = a.relation([(0, 1), (1, 2)]);
    /// let y = a.relation([(1, 2), (5, 6)]);
    /// let u = a.set_union(x, y).unwrap();
    /// assert_eq!(u, a.relation([(0, 1), (1, 2), (5, 6)]));
    /// assert_eq!(a.set_union(x, x), Some(x));
    /// ```
    pub fn set_union(&mut self, a: VId, b: VId) -> Option<VId> {
        let xs = self.as_set(a)?;
        let ys = self.as_set(b)?;
        if a == b {
            return Some(a);
        }
        if let Some((da, db)) = self.dense_operands(a, &xs, b, &ys) {
            self.count_dense_op();
            let mut words = da.words.clone();
            if !dense::union_into(&mut words, &db.words) {
                return Some(a); // b ⊆ a: the union is a itself
            }
            if dense::words_equal(&words, &db.words) {
                return Some(b); // a ⊆ b: the union is b itself
            }
            return Some(self.dense_materialise(da.shape, words));
        }
        Some(self.add_canonical_set(merge_sorted(&xs, &ys)))
    }

    /// Intersection of two interned sets, as one linear merge. `None` if
    /// either handle is not a set.
    pub fn set_intersection(&mut self, a: VId, b: VId) -> Option<VId> {
        let xs = self.as_set(a)?;
        let ys = self.as_set(b)?;
        if a == b {
            return Some(a);
        }
        if let Some((da, db)) = self.dense_operands(a, &xs, b, &ys) {
            self.count_dense_op();
            let mut words = da.words.clone();
            dense::intersect_into(&mut words, &db.words);
            if dense::words_equal(&words, &da.words) {
                return Some(a); // a ⊆ b: the intersection is a itself
            }
            if dense::words_equal(&words, &db.words) {
                return Some(b);
            }
            return Some(self.dense_materialise(da.shape, words));
        }
        let mut out = Vec::with_capacity(xs.len().min(ys.len()));
        let (mut i, mut j) = (0, 0);
        while i < xs.len() && j < ys.len() {
            match xs[i].cmp(&ys[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(xs[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        Some(self.add_canonical_set(out))
    }

    /// Difference `a ∖ b` of two interned sets, as one linear merge.
    /// `None` if either handle is not a set.
    pub fn set_difference(&mut self, a: VId, b: VId) -> Option<VId> {
        let xs = self.as_set(a)?;
        let ys = self.as_set(b)?;
        if a == b {
            return Some(self.empty_set());
        }
        if let Some((da, db)) = self.dense_operands(a, &xs, b, &ys) {
            self.count_dense_op();
            let mut words = da.words.clone();
            dense::difference_into(&mut words, &db.words);
            if dense::words_equal(&words, &da.words) {
                return Some(a); // a ∩ b = ∅: the difference is a itself
            }
            return Some(self.dense_materialise(da.shape, words));
        }
        let mut out = Vec::with_capacity(xs.len());
        let mut j = 0;
        for &x in xs.iter() {
            while j < ys.len() && ys[j] < x {
                j += 1;
            }
            if j >= ys.len() || ys[j] != x {
                out.push(x);
            }
        }
        Some(self.add_canonical_set(out))
    }

    /// Subset test `a ⊆ b` as one linear merge scan — no intermediate
    /// object is interned. `None` if either handle is not a set.
    pub fn is_subset(&self, a: VId, b: VId) -> Option<bool> {
        let xs = self.as_set(a)?;
        let ys = self.as_set(b)?;
        if a == b || xs.is_empty() {
            return Some(true);
        }
        if xs.len() > ys.len() {
            return Some(false);
        }
        // read-only entry point: use dense sidecars when both are
        // already cached with the same shape (no building from `&self`)
        if self.dense_enabled {
            if let (Some(Some(da)), Some(Some(db))) = (self.dense_lookup(a), self.dense_lookup(b)) {
                if da.shape == db.shape {
                    self.count_dense_op();
                    return Some(dense::is_subset_words(&da.words, &db.words));
                }
            }
        }
        let mut j = 0;
        for &x in xs.iter() {
            while j < ys.len() && ys[j] < x {
                j += 1;
            }
            if j >= ys.len() || ys[j] != x {
                return Some(false);
            }
            j += 1;
        }
        Some(true)
    }

    /// Membership test `elem ∈ set` — a binary search over the canonical
    /// element slice (handles are the identity, so this is exact
    /// structural membership). `None` if `set` is not a set.
    pub fn set_contains(&self, set: VId, elem: VId) -> Option<bool> {
        let items = self.as_set(set)?;
        // with a cached sidecar, membership is one bit probe: decode the
        // candidate; an element of the wrong kind or beyond the domain
        // cannot be in the set
        if self.dense_enabled {
            if let Some(Some(ds)) = self.dense_lookup(set) {
                self.count_dense_op();
                let decoded = match ds.shape {
                    DenseShape::Atoms => self.as_nat(elem).map(|n| (n, 0)),
                    DenseShape::Pairs { stride } => self.as_pair(elem).and_then(|(x, y)| {
                        match (self.as_nat(x), self.as_nat(y)) {
                            (Some(a), Some(b)) if a < stride as u64 && b < stride as u64 => {
                                Some((a, b))
                            }
                            _ => None,
                        }
                    }),
                };
                return Some(
                    decoded.is_some_and(|(a, b)| dense::get_bit(&ds.words, ds.shape.bit(a, b))),
                );
            }
        }
        Some(items.binary_search(&elem).is_ok())
    }

    /// N-ary union: merge the canonical element slices of the given
    /// *set* handles into one set, without ever re-sorting — the `μ`
    /// (flatten) and `∪`-chain entry point. `None` if any handle is not
    /// a set. Merging proceeds in balanced pairwise rounds, so the cost
    /// is `O(total · log k)` for `k` sets.
    ///
    /// ```
    /// use nra_core::value::intern::ValueArena;
    ///
    /// let mut a = ValueArena::new();
    /// let parts: Vec<_> = (0..4).map(|i| a.relation([(i, i + 1)])).collect();
    /// let merged = a.set_from_sorted_merge(&parts).unwrap();
    /// assert_eq!(merged, a.chain(4));
    /// ```
    pub fn set_from_sorted_merge(&mut self, sets: &[VId]) -> Option<VId> {
        let mut slices: Vec<Arc<[VId]>> = Vec::with_capacity(sets.len());
        for &s in sets {
            slices.push(self.as_set(s)?);
        }
        // drop empties up front; handle the trivial widths without a merge
        slices.retain(|s| !s.is_empty());
        match slices.len() {
            0 => return Some(self.empty_set()),
            1 => {
                let only = Vec::from(&*slices[0]);
                return Some(self.add_canonical_set(only));
            }
            _ => {}
        }
        // balanced pairwise merge rounds; the first round merges straight
        // from the borrowed arena slices (only an odd leftover is copied),
        // so no up-front O(total) copy is paid
        let mut round: Vec<Vec<VId>> = slices
            .chunks(2)
            .map(|pair| match pair {
                [a, b] => merge_sorted(a, b),
                [a] => Vec::from(&**a),
                _ => unreachable!("chunks(2) yields 1- or 2-element windows"),
            })
            .collect();
        while round.len() > 1 {
            let mut next = Vec::with_capacity(round.len().div_ceil(2));
            let mut it = round.into_iter();
            while let Some(left) = it.next() {
                match it.next() {
                    Some(right) => next.push(merge_sorted(&left, &right)),
                    None => next.push(left),
                }
            }
            round = next;
        }
        let merged = round.pop().unwrap_or_default();
        Some(self.add_canonical_set(merged))
    }

    /// Union and frontier in **one** linear pass: returns
    /// `(old ∪ new, new ∖ old)` — the merged set together with "what's
    /// new" relative to `old`. `None` if either handle is not a set.
    ///
    /// This is the primitive behind semi-naive (delta-driven) `while`
    /// iteration: when `old ⊆ new` the union interns back to `new`
    /// itself (so the superset test is `union == new`, for free), and
    /// the second component is exactly the frontier the next iterate
    /// needs to look at.
    ///
    /// ```
    /// use nra_core::value::intern::ValueArena;
    ///
    /// let mut a = ValueArena::new();
    /// let total = a.relation([(0, 1), (1, 2)]);
    /// let next = a.relation([(0, 1), (0, 2), (1, 2)]);
    /// let (union, fresh) = a.set_merge_delta(total, next).unwrap();
    /// assert_eq!(union, next); // total ⊆ next ⇒ union is next itself
    /// assert_eq!(fresh, a.relation([(0, 2)]));
    /// ```
    pub fn set_merge_delta(&mut self, old: VId, new: VId) -> Option<(VId, VId)> {
        let xs = self.as_set(old)?;
        let ys = self.as_set(new)?;
        if old == new {
            let empty = self.empty_set();
            return Some((old, empty));
        }
        if let Some((dold, dnew)) = self.dense_operands(old, &xs, new, &ys) {
            self.count_dense_op();
            let mut union = dold.words.clone();
            if !dense::union_into(&mut union, &dnew.words) {
                // new ⊆ old: fixpoint reached, the frontier is empty
                let empty = self.empty_set();
                return Some((old, empty));
            }
            let mut fresh = dnew.words.clone();
            dense::difference_into(&mut fresh, &dold.words);
            let union_vid = if dense::words_equal(&union, &dnew.words) {
                new // old ⊆ new: the union is new itself
            } else {
                self.dense_materialise(dold.shape, union)
            };
            let fresh_vid = self.dense_materialise(dnew.shape, fresh);
            return Some((union_vid, fresh_vid));
        }
        let mut union = Vec::with_capacity(xs.len() + ys.len());
        let mut fresh = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < xs.len() && j < ys.len() {
            match xs[i].cmp(&ys[j]) {
                std::cmp::Ordering::Less => {
                    union.push(xs[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    union.push(ys[j]);
                    fresh.push(ys[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    union.push(xs[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        union.extend_from_slice(&xs[i..]);
        union.extend_from_slice(&ys[j..]);
        fresh.extend_from_slice(&ys[j..]);
        let union = self.add_canonical_set(union);
        let fresh = self.add_canonical_set(fresh);
        Some((union, fresh))
    }

    /// Frontier cardinality `|new ∖ old|` by a count-only merge scan —
    /// the observation half of [`ValueArena::set_merge_delta`], for
    /// callers (the semi-naive `while` rule's per-iterate frontier
    /// trace) that need the size of the delta without interning it.
    /// `None` if either handle is not a set.
    ///
    /// ```
    /// use nra_core::value::intern::ValueArena;
    ///
    /// let mut a = ValueArena::new();
    /// let old = a.relation([(0, 1), (1, 2)]);
    /// let new = a.relation([(0, 1), (0, 2), (1, 2)]);
    /// assert_eq!(a.set_delta_cardinality(old, new), Some(1));
    /// assert_eq!(a.set_delta_cardinality(new, old), Some(0));
    /// ```
    pub fn set_delta_cardinality(&self, old: VId, new: VId) -> Option<u64> {
        let xs = self.as_set(old)?;
        let ys = self.as_set(new)?;
        if old == new {
            return Some(0);
        }
        // read-only entry point: cached same-shape sidecars only
        if self.dense_enabled {
            if let (Some(Some(dold)), Some(Some(dnew))) =
                (self.dense_lookup(old), self.dense_lookup(new))
            {
                if dold.shape == dnew.shape {
                    self.count_dense_op();
                    return Some(dense::delta_count(&dold.words, &dnew.words));
                }
            }
        }
        let mut fresh: u64 = 0;
        let mut i = 0;
        for &y in ys.iter() {
            while i < xs.len() && xs[i] < y {
                i += 1;
            }
            if i >= xs.len() || xs[i] != y {
                fresh += 1;
            }
        }
        Some(fresh)
    }

    /// N-ary **frontier merge**: fold the element slices of the
    /// `frontiers` (each a *set* handle) into `base` without ever
    /// re-sorting — the semi-naive counterpart of
    /// [`ValueArena::set_from_sorted_merge`], used to fold the images
    /// of a delta-evaluated `map`/`μ` back into the previous total.
    /// Equivalent to iterated binary [`ValueArena::set_union`], in one
    /// balanced merge. `None` if `base` or any frontier is not a set.
    ///
    /// ```
    /// use nra_core::value::intern::ValueArena;
    ///
    /// let mut a = ValueArena::new();
    /// let base = a.relation([(0, 1)]);
    /// let parts: Vec<_> = (1..3).map(|i| a.relation([(i, i + 1)])).collect();
    /// let merged = a.set_merge_frontier(base, &parts).unwrap();
    /// assert_eq!(merged, a.chain(3));
    /// assert_eq!(a.set_merge_frontier(base, &[]), Some(base));
    /// ```
    pub fn set_merge_frontier(&mut self, base: VId, frontiers: &[VId]) -> Option<VId> {
        // validate everything up front so a non-set frontier refuses the
        // whole merge instead of silently dropping
        let base_items = self.as_set(base)?;
        let mut frontier_items = Vec::with_capacity(frontiers.len());
        for &f in frontiers {
            frontier_items.push(self.as_set(f)?);
        }
        if frontiers.is_empty() {
            return Some(base);
        }
        // dense path: OR every frontier into the base words — one pass,
        // no per-element interning. Frontiers densify against the
        // base's shape (the hint), so small deltas still join in.
        if self.dense_enabled {
            if let Some(merged) =
                self.dense_frontier_merge(base, &base_items, frontiers, &frontier_items)
            {
                return Some(merged);
            }
        }
        let mut sets = Vec::with_capacity(frontiers.len() + 1);
        sets.push(base);
        sets.extend_from_slice(frontiers);
        self.set_from_sorted_merge(&sets)
    }

    /// The word-parallel body of [`ValueArena::set_merge_frontier`]:
    /// `None` means "stay on the sorted path" (an operand would not
    /// densify), never an error.
    fn dense_frontier_merge(
        &mut self,
        base: VId,
        base_items: &[VId],
        frontiers: &[VId],
        frontier_items: &[Arc<[VId]>],
    ) -> Option<VId> {
        let db = self.sidecar(base, base_items, None)?;
        let shape = db.shape;
        let mut words = db.words.clone();
        let mut changed = false;
        for (&f, items) in frontiers.iter().zip(frontier_items) {
            let df = self.sidecar(f, items, Some(shape))?;
            if df.shape != shape {
                // a frontier cached under another stride/kind — rare;
                // the sorted merge handles it
                return None;
            }
            changed |= dense::union_into(&mut words, &df.words);
        }
        self.count_dense_op();
        if !changed {
            return Some(base);
        }
        Some(self.dense_materialise(shape, words))
    }

    /// Intern a binary relation `{(a, b), …}`.
    pub fn relation<I: IntoIterator<Item = (u64, u64)>>(&mut self, edges: I) -> VId {
        let items: Vec<VId> = edges.into_iter().map(|(a, b)| self.edge(a, b)).collect();
        self.set_from_vec(items)
    }

    /// Intern the paper's chain `rₙ` (§4) — see [`Value::chain`].
    pub fn chain(&mut self, n: u64) -> VId {
        self.relation((0..n).map(|i| (i, i + 1)))
    }

    /// Intern `tc(rₙ)` — see [`Value::chain_tc`].
    pub fn chain_tc(&mut self, n: u64) -> VId {
        self.relation((0..=n).flat_map(|x| (x + 1..=n).map(move |y| (x, y))))
    }

    /// Intern a tree-represented [`Value`], sharing every subterm.
    pub fn intern(&mut self, v: &Value) -> VId {
        match v {
            Value::Unit => self.unit(),
            Value::Bool(b) => self.bool_(*b),
            Value::Nat(n) => self.nat(*n),
            Value::Pair(a, b) => {
                let a = self.intern(a);
                let b = self.intern(b);
                self.pair(a, b)
            }
            Value::Set(items) => {
                let items: Vec<VId> = items.iter().map(|item| self.intern(item)).collect();
                self.set_from_vec(items)
            }
        }
    }

    /// Materialise the tree form of an interned value. `O(size)` — the
    /// conversion layer back to the [`Value`] API.
    pub fn resolve(&self, v: VId) -> Value {
        match self.node_ref(v) {
            Node::Unit => Value::Unit,
            Node::Bool(b) => Value::Bool(*b),
            Node::Nat(n) => Value::Nat(*n),
            Node::Pair(a, b) => Value::pair(self.resolve(*a), self.resolve(*b)),
            Node::Set(items) => {
                let set: BTreeSet<Value> = items.iter().map(|&item| self.resolve(item)).collect();
                Value::Set(set)
            }
        }
    }

    /// The paper's §3 size measure, cached — `O(1)`, saturating at
    /// `u64::MAX`.
    pub fn size(&self, v: VId) -> u64 {
        self.meta(v).size
    }

    /// Structural nesting depth (atoms are 0), cached — `O(1)`.
    pub fn depth(&self, v: VId) -> u32 {
        self.meta(v).depth
    }

    /// A precomputed structural hash — `O(1)`, equal across arenas for
    /// structurally equal objects. (Within one arena the handle itself is
    /// already a perfect identity.)
    pub fn structural_hash(&self, v: VId) -> u64 {
        self.meta(v).hash
    }

    /// Number of elements if `v` is a set — `O(1)`.
    pub fn cardinality(&self, v: VId) -> Option<usize> {
        match self.node_ref(v) {
            Node::Set(items) => Some(items.len()),
            _ => None,
        }
    }

    /// The component handles if `v` is a pair.
    pub fn as_pair(&self, v: VId) -> Option<(VId, VId)> {
        match self.node_ref(v) {
            Node::Pair(a, b) => Some((*a, *b)),
            _ => None,
        }
    }

    /// The canonically ordered element handles if `v` is a set. The `Arc`
    /// clone is `O(1)`, so callers can iterate without borrowing the
    /// arena.
    pub fn as_set(&self, v: VId) -> Option<Arc<[VId]>> {
        match self.node_ref(v) {
            Node::Set(items) => Some(Arc::clone(items)),
            _ => None,
        }
    }

    /// The natural number if `v` is one.
    pub fn as_nat(&self, v: VId) -> Option<u64> {
        match self.node_ref(v) {
            Node::Nat(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean if `v` is one.
    pub fn as_bool(&self, v: VId) -> Option<bool> {
        match self.node_ref(v) {
            Node::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether `v` is the unit value `()`.
    pub fn is_unit(&self, v: VId) -> bool {
        matches!(self.node_ref(v), Node::Unit)
    }

    /// Decode a value of type `{N × N}` into a sorted edge list.
    pub fn to_edges(&self, v: VId) -> Option<Vec<(u64, u64)>> {
        let items = self.as_set(v)?;
        let mut out = Vec::with_capacity(items.len());
        for &item in items.iter() {
            let (a, b) = self.as_pair(item)?;
            out.push((self.as_nat(a)?, self.as_nat(b)?));
        }
        out.sort_unstable();
        Some(out)
    }

    // ------------------------------------------------------------------
    // Dense bitmap sidecars — the word-parallel representation layer.
    //
    // Canonical identity never changes: every set node keeps its sorted
    // element spine, which is the dedup key and the source of
    // size/depth/structural-hash. A *sidecar* (DenseSet) is derived,
    // cached per node index, and consulted by the set algebra above:
    // when both operands have (or can build) same-shape sidecars, the
    // op becomes bitwise words + popcount and the result interns to
    // exactly the VId the sorted merge would produce.
    // ------------------------------------------------------------------

    /// Whether the set algebra may take the dense word-parallel path.
    pub fn dense_enabled(&self) -> bool {
        self.dense_enabled
    }

    /// Enable/disable the dense representation (on by default). With it
    /// off every operation stays on the sorted-merge path — results are
    /// identical either way (same handles); this switch exists for the
    /// dense-vs-sorted differentials and benchmarks.
    pub fn set_dense_enabled(&mut self, on: bool) {
        self.dense_enabled = on;
    }

    /// `(dense_ops, dense_promotions)` performed through this arena
    /// handle: operations answered on the word-parallel path, and
    /// sorted→dense promotions (sidecar builds + re-stridings). The
    /// counters are cumulative; callers snapshot deltas.
    pub fn dense_counters(&self) -> (u64, u64) {
        (
            self.dense_ops.load(Ordering::Relaxed),
            self.dense_promotions.load(Ordering::Relaxed),
        )
    }

    #[inline]
    fn count_dense_op(&self) {
        self.dense_ops.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn count_dense_promotion(&self) {
        self.dense_promotions.fetch_add(1, Ordering::Relaxed);
    }

    /// The current representation of a set node: `Dense` when a sidecar
    /// is attached (and the dense path is enabled), `Sorted` otherwise.
    /// `None` if `v` is not a set.
    ///
    /// ```
    /// use nra_core::value::intern::{SetRepr, ValueArena};
    ///
    /// let mut a = ValueArena::new();
    /// let r = a.relation((0..100).map(|i| (i, i + 1)));
    /// assert!(matches!(a.set_repr(r), Some(SetRepr::Sorted(_))));
    /// assert!(a.prepare_dense(r));
    /// assert!(matches!(a.set_repr(r), Some(SetRepr::Dense(_))));
    /// ```
    pub fn set_repr(&self, v: VId) -> Option<SetRepr> {
        let items = self.as_set(v)?;
        if self.dense_enabled {
            if let Some(Some(sc)) = self.dense_lookup(v) {
                return Some(SetRepr::Dense(sc));
            }
        }
        Some(SetRepr::Sorted(items))
    }

    /// Try to attach a dense sidecar to the set `v` (no-op if one is
    /// already attached). Returns whether `v` is dense afterwards —
    /// `false` for non-sets, for sets of anything but small-coordinate
    /// atoms/pairs, and for sets too small or too sparse to pay for a
    /// packed domain.
    pub fn prepare_dense(&self, v: VId) -> bool {
        if !self.dense_enabled {
            return false;
        }
        let Some(items) = self.as_set(v) else {
            return false;
        };
        self.sidecar(v, &items, None).is_some()
    }

    /// The packed-domain bound of `v`: `Some(max_coord + 1)` when `v`
    /// is a set of small-coordinate nat atoms or nat-pair edges (every
    /// coordinate below [`DENSE_MAX_COORD`]), `None` otherwise. The
    /// empty set reports a domain of `1`.
    ///
    /// This inspects the *domain*, not the representation: it answers
    /// whether `v` lives in the territory the dense layer can pack,
    /// independent of whether a sidecar is attached or the dense path
    /// is even enabled. Admission control uses it to price polynomial
    /// queries over large relations by domain words instead of by
    /// per-element §3 size (which saturates on thousands of edges).
    pub fn dense_domain_cap(&self, v: VId) -> Option<u64> {
        let items = self.as_set(v)?;
        let mut max_coord = 0u64;
        let mut is_atoms = None;
        for &item in items.iter() {
            let (a, b, atom) = if let Some(n) = self.as_nat(item) {
                (n, 0, true)
            } else if let Some((x, y)) = self.as_pair(item) {
                match (self.as_nat(x), self.as_nat(y)) {
                    (Some(a), Some(b)) => (a, b, false),
                    _ => return None,
                }
            } else {
                return None;
            };
            match is_atoms {
                None => is_atoms = Some(atom),
                Some(k) if k != atom => return None,
                _ => {}
            }
            if a.max(b) >= DENSE_MAX_COORD {
                return None;
            }
            max_coord = max_coord.max(a).max(b);
        }
        Some(if items.is_empty() { 1 } else { max_coord + 1 })
    }

    /// Cached sidecar verdict for a node: `None` — never checked;
    /// `Some(None)` — checked, not densifiable; `Some(Some(_))` — built.
    fn dense_lookup(&self, v: VId) -> Option<Option<Arc<DenseSet>>> {
        let index = v.0;
        match &self.backing {
            Backing::Local(t) => t
                .dense
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .sidecars
                .get(&index)
                .cloned(),
            Backing::Shared(t) => t.dense_sidecars[index as usize & (DEDUP_SHARDS - 1)]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .get(&index)
                .cloned(),
        }
    }

    /// Record a sidecar (or a negative verdict) for a node, keeping the
    /// word count in sync. Leaf lock on the shared backing — nothing
    /// else is held while this runs.
    fn dense_store(&self, v: VId, sidecar: Option<Arc<DenseSet>>) {
        let index = v.0;
        match &self.backing {
            Backing::Local(t) => t
                .dense
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .store(index, sidecar),
            Backing::Shared(t) => {
                let new_words = sidecar.as_ref().map_or(0, |s| s.words.len());
                let old_words = t.dense_sidecars[index as usize & (DEDUP_SHARDS - 1)]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert(index, sidecar)
                    .flatten()
                    .map_or(0, |s| s.words.len());
                if new_words >= old_words {
                    t.dense_words
                        .fetch_add(new_words - old_words, Ordering::Relaxed);
                } else {
                    t.dense_words
                        .fetch_sub(old_words - new_words, Ordering::Relaxed);
                }
            }
        }
    }

    /// Domain-map lookup: the handle of the element whose coordinates
    /// hash to `key` (see [`atom_key`]/[`pair_key`]).
    fn domain_get(&self, key: u64) -> Option<VId> {
        match &self.backing {
            Backing::Local(t) => t
                .dense
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .domain
                .get(&key)
                .copied(),
            Backing::Shared(t) => t.dense_domain
                [(FxBuildHasher::default().hash_one(key) as usize) & (DEDUP_SHARDS - 1)]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .get(&key)
                .copied(),
        }
    }

    fn domain_insert(&self, key: u64, id: VId) {
        match &self.backing {
            Backing::Local(t) => {
                t.dense
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .domain
                    .insert(key, id);
            }
            Backing::Shared(t) => {
                t.dense_domain
                    [(FxBuildHasher::default().hash_one(key) as usize) & (DEDUP_SHARDS - 1)]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert(key, id);
            }
        }
    }

    /// The sidecar of set `v`, building one if the representation
    /// heuristic admits it. `hint` is the partner's shape at a merge
    /// boundary: it waives the cardinality threshold (a small frontier
    /// is worth densifying against a dense base) and fixes the stride
    /// so the pair can word-op directly. Returns `None` to stay sorted.
    fn sidecar(&self, v: VId, items: &[VId], hint: Option<DenseShape>) -> Option<Arc<DenseSet>> {
        match self.dense_lookup(v) {
            Some(Some(sc)) => return Some(sc),
            // a recorded negative verdict is final for unhinted calls;
            // a hinted build re-checks (the verdict may have been "too
            // sparse for its own domain", which a partner's paid-for
            // domain makes moot)
            Some(None) if hint.is_none() => return None,
            _ => {}
        }
        if hint.is_none() && items.len() < DENSE_MIN_CARD {
            // not recorded: a later hinted build may still promote it
            return None;
        }
        if items.is_empty() {
            // only reachable hinted; borrow the partner's shape and do
            // not cache — the empty set is shapeless
            return Some(Arc::new(DenseSet {
                shape: hint.expect("empty sets are below DENSE_MIN_CARD"),
                words: Vec::new(),
            }));
        }
        // decode: all atoms, or all pairs of atoms, under the coordinate cap
        let mut decoded: Vec<(u64, u64)> = Vec::with_capacity(items.len());
        let mut is_atoms = false;
        let mut max_coord = 0u64;
        for (i, &item) in items.iter().enumerate() {
            let (a, b, atom) = if let Some(n) = self.as_nat(item) {
                (n, 0, true)
            } else if let Some((x, y)) = self.as_pair(item) {
                match (self.as_nat(x), self.as_nat(y)) {
                    (Some(a), Some(b)) => (a, b, false),
                    _ => {
                        self.dense_store(v, None);
                        return None;
                    }
                }
            } else {
                self.dense_store(v, None);
                return None;
            };
            if i == 0 {
                is_atoms = atom;
            } else if is_atoms != atom {
                self.dense_store(v, None);
                return None;
            }
            if a.max(b) >= DENSE_MAX_COORD {
                self.dense_store(v, None);
                return None;
            }
            max_coord = max_coord.max(a).max(b);
            decoded.push((a, b));
        }
        let shape = if is_atoms {
            if matches!(hint, Some(DenseShape::Pairs { .. })) {
                return None; // kind mismatch with the partner, not a verdict on v
            }
            DenseShape::Atoms
        } else {
            let needed = u32::try_from((max_coord + 1).next_power_of_two())
                .expect("coordinates are below DENSE_MAX_COORD");
            match hint {
                Some(DenseShape::Atoms) => return None,
                Some(DenseShape::Pairs { stride }) => {
                    if needed > stride {
                        return None; // v outgrows the partner's domain
                    }
                    DenseShape::Pairs { stride }
                }
                None => DenseShape::Pairs { stride: needed },
            }
        };
        let mut words: Vec<u64> = Vec::new();
        for &(a, b) in &decoded {
            dense::set_bit(&mut words, shape.bit(a, b));
        }
        // the density heuristic: the packed domain must be within a
        // constant factor of the element count, or the words don't pay
        // for themselves (hinted builds skip it — the partner already
        // paid for the domain)
        if hint.is_none() && words.len() > 8 * items.len() + 64 {
            self.dense_store(v, None);
            return None;
        }
        for (&item, &(a, b)) in items.iter().zip(&decoded) {
            let key = if is_atoms {
                atom_key(a)
            } else {
                pair_key(a, b)
            };
            self.domain_insert(key, item);
        }
        let sc = Arc::new(DenseSet { shape, words });
        self.dense_store(v, Some(Arc::clone(&sc)));
        self.count_dense_promotion();
        Some(sc)
    }

    /// Re-pack a pair sidecar onto a wider stride (the promotion that
    /// reconciles two dense operands whose domains grew apart).
    fn restride(&self, v: VId, sc: &DenseSet, stride: u32) -> Arc<DenseSet> {
        let shape = DenseShape::Pairs { stride };
        let mut words: Vec<u64> = Vec::new();
        for bit in dense::iter_ones(&sc.words) {
            let (a, b) = sc.shape.coords(bit);
            dense::set_bit(&mut words, shape.bit(a, b));
        }
        let arc = Arc::new(DenseSet { shape, words });
        self.dense_store(v, Some(Arc::clone(&arc)));
        self.count_dense_promotion();
        arc
    }

    /// Both operands of a binary set op as *same-shape* sidecars, or
    /// `None` to stay on the sorted path. The larger operand leads (it
    /// must justify a domain on its own); the smaller densifies against
    /// its shape; mismatched pair strides reconcile by re-striding the
    /// narrower one.
    fn dense_operands(
        &self,
        a: VId,
        xs: &[VId],
        b: VId,
        ys: &[VId],
    ) -> Option<(Arc<DenseSet>, Arc<DenseSet>)> {
        if !self.dense_enabled {
            return None;
        }
        let (mut da, mut db);
        if xs.len() >= ys.len() {
            da = self.sidecar(a, xs, None)?;
            db = self.sidecar(b, ys, Some(da.shape))?;
        } else {
            db = self.sidecar(b, ys, None)?;
            da = self.sidecar(a, xs, Some(db.shape))?;
        }
        match (da.shape, db.shape) {
            (DenseShape::Atoms, DenseShape::Atoms) => {}
            (DenseShape::Pairs { stride: sa }, DenseShape::Pairs { stride: sb }) => {
                if sa < sb {
                    da = self.restride(a, &da, sb);
                } else if sb < sa {
                    db = self.restride(b, &db, sa);
                }
            }
            _ => return None, // cached sidecars of different kinds
        }
        Some((da, db))
    }

    /// Intern the set a dense word computation produced. Every set bit
    /// maps back to its element handle through the domain map (falling
    /// back to interning the decoded element, which dedup-hits), the
    /// handles are sorted into the canonical spine order, and the spine
    /// interns as usual — so the result `VId` is exactly what the
    /// sorted merge would have produced. The words are attached to the
    /// result as its sidecar.
    fn dense_materialise(&mut self, shape: DenseShape, mut words: Vec<u64>) -> VId {
        if dense::popcount(&words) == 0 {
            return self.empty_set();
        }
        let mut items: Vec<VId> = Vec::new();
        for bit in dense::iter_ones(&words) {
            let (a, b) = shape.coords(bit);
            let key = match shape {
                DenseShape::Atoms => atom_key(a),
                DenseShape::Pairs { .. } => pair_key(a, b),
            };
            let id = match self.domain_get(key) {
                Some(id) => id,
                None => {
                    // result bits come from registered operand bits, but
                    // re-interning is always a safe (dedup-hit) fallback
                    let id = match shape {
                        DenseShape::Atoms => self.nat(a),
                        DenseShape::Pairs { .. } => self.edge(a, b),
                    };
                    self.domain_insert(key, id);
                    id
                }
            };
            items.push(id);
        }
        items.sort_unstable();
        let out = self.add_canonical_set(items);
        if !matches!(self.dense_lookup(out), Some(Some(_))) {
            while words.last() == Some(&0) {
                words.pop();
            }
            self.dense_store(out, Some(Arc::new(DenseSet { shape, words })));
        }
        out
    }
}

/// Merge two strictly ascending handle vectors into one, deduplicating.
fn merge_sorted(xs: &[VId], ys: &[VId]) -> Vec<VId> {
    let mut out = Vec::with_capacity(xs.len() + ys.len());
    let (mut i, mut j) = (0, 0);
    while i < xs.len() && j < ys.len() {
        match xs[i].cmp(&ys[j]) {
            std::cmp::Ordering::Less => {
                out.push(xs[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(ys[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(xs[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&xs[i..]);
    out.extend_from_slice(&ys[j..]);
    out
}

thread_local! {
    static ARENA: RefCell<ValueArena> = RefCell::new(ValueArena::new());
}

/// Run `f` with exclusive access to the calling thread's arena.
///
/// The free functions of this module each take this borrow for the
/// duration of one operation; do not call them (or [`Value`] conversions
/// that do) from inside `f`, or the `RefCell` borrow will panic.
pub fn with_arena<R>(f: impl FnOnce(&mut ValueArena) -> R) -> R {
    ARENA.with(|a| f(&mut a.borrow_mut()))
}

/// Intern a tree-represented [`Value`] into the thread-local arena.
pub fn intern(v: &Value) -> VId {
    with_arena(|a| a.intern(v))
}

/// Materialise the tree form of a thread-locally interned value.
pub fn resolve(v: VId) -> Value {
    with_arena(|a| a.resolve(v))
}

/// Intern `()`.
pub fn unit() -> VId {
    with_arena(|a| a.unit())
}

/// Intern a boolean.
pub fn bool_(b: bool) -> VId {
    with_arena(|a| a.bool_(b))
}

/// Intern a natural number.
pub fn nat(n: u64) -> VId {
    with_arena(|a| a.nat(n))
}

/// Intern the pair `(a, b)`.
pub fn pair(a: VId, b: VId) -> VId {
    with_arena(|ar| ar.pair(a, b))
}

/// Intern the edge `(a, b)` of two naturals.
pub fn edge(a: u64, b: u64) -> VId {
    with_arena(|ar| ar.edge(a, b))
}

/// Intern a set from element handles (the iterator is drained *before*
/// the arena is borrowed, so it may itself intern values).
pub fn set<I: IntoIterator<Item = VId>>(items: I) -> VId {
    let items: Vec<VId> = items.into_iter().collect();
    with_arena(|a| a.set_from_vec(items))
}

/// Intern the empty set.
pub fn empty_set() -> VId {
    with_arena(|a| a.empty_set())
}

/// Intern a binary relation `{(a, b), …}`.
pub fn relation<I: IntoIterator<Item = (u64, u64)>>(edges: I) -> VId {
    let edges: Vec<(u64, u64)> = edges.into_iter().collect();
    with_arena(|a| a.relation(edges))
}

/// Intern the paper's chain `rₙ` (§4).
pub fn chain(n: u64) -> VId {
    with_arena(|a| a.chain(n))
}

/// Intern `tc(rₙ)` (§4).
pub fn chain_tc(n: u64) -> VId {
    with_arena(|a| a.chain_tc(n))
}

/// The §3 size measure, cached — `O(1)`, saturating.
pub fn size(v: VId) -> u64 {
    with_arena(|a| a.size(v))
}

/// Structural nesting depth, cached — `O(1)`.
pub fn depth(v: VId) -> u32 {
    with_arena(|a| a.depth(v))
}

/// Precomputed structural hash — `O(1)`.
pub fn structural_hash(v: VId) -> u64 {
    with_arena(|a| a.structural_hash(v))
}

/// Number of elements if `v` is a set — `O(1)`.
pub fn cardinality(v: VId) -> Option<usize> {
    with_arena(|a| a.cardinality(v))
}

/// The component handles if `v` is a pair.
pub fn as_pair(v: VId) -> Option<(VId, VId)> {
    with_arena(|a| a.as_pair(v))
}

/// The canonically ordered element handles if `v` is a set.
pub fn as_set(v: VId) -> Option<Arc<[VId]>> {
    with_arena(|a| a.as_set(v))
}

/// The natural number if `v` is one.
pub fn as_nat(v: VId) -> Option<u64> {
    with_arena(|a| a.as_nat(v))
}

/// The boolean if `v` is one.
pub fn as_bool(v: VId) -> Option<bool> {
    with_arena(|a| a.as_bool(v))
}

/// Decode a value of type `{N × N}` into a sorted edge list.
pub fn to_edges(v: VId) -> Option<Vec<(u64, u64)>> {
    with_arena(|a| a.to_edges(v))
}

/// Merge-based union of two interned sets — see [`ValueArena::set_union`].
pub fn set_union(a: VId, b: VId) -> Option<VId> {
    with_arena(|ar| ar.set_union(a, b))
}

/// Merge-based intersection — see [`ValueArena::set_intersection`].
pub fn set_intersection(a: VId, b: VId) -> Option<VId> {
    with_arena(|ar| ar.set_intersection(a, b))
}

/// Merge-based difference `a ∖ b` — see [`ValueArena::set_difference`].
pub fn set_difference(a: VId, b: VId) -> Option<VId> {
    with_arena(|ar| ar.set_difference(a, b))
}

/// Merge-scan subset test `a ⊆ b` — see [`ValueArena::is_subset`].
pub fn is_subset(a: VId, b: VId) -> Option<bool> {
    with_arena(|ar| ar.is_subset(a, b))
}

/// Binary-search membership test — see [`ValueArena::set_contains`].
pub fn set_contains(set: VId, elem: VId) -> Option<bool> {
    with_arena(|a| a.set_contains(set, elem))
}

/// N-ary sorted merge of set handles — see
/// [`ValueArena::set_from_sorted_merge`].
pub fn set_from_sorted_merge(sets: &[VId]) -> Option<VId> {
    with_arena(|a| a.set_from_sorted_merge(sets))
}

/// Union + frontier in one pass — see [`ValueArena::set_merge_delta`].
pub fn set_merge_delta(old: VId, new: VId) -> Option<(VId, VId)> {
    with_arena(|a| a.set_merge_delta(old, new))
}

/// Count-only frontier scan — see
/// [`ValueArena::set_delta_cardinality`].
pub fn set_delta_cardinality(old: VId, new: VId) -> Option<u64> {
    with_arena(|a| a.set_delta_cardinality(old, new))
}

/// N-ary frontier merge — see [`ValueArena::set_merge_frontier`].
pub fn set_merge_frontier(base: VId, frontiers: &[VId]) -> Option<VId> {
    with_arena(|a| a.set_merge_frontier(base, frontiers))
}

/// Statistics of the thread-local arena.
pub fn arena_stats() -> ArenaStats {
    with_arena(|a| a.stats())
}

/// Discard every node of the calling thread's arena — see
/// [`ValueArena::clear`] for the (sharp) invalidation contract. Intended
/// for quiescent points in long-running processes; all `VId`s previously
/// issued on this thread become invalid.
pub fn reset_thread_arena() {
    with_arena(|a| a.clear())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_canonical() {
        let mut a = ValueArena::new();
        let v1 = a.intern(&Value::chain(3));
        let v2 = a.chain(3);
        assert_eq!(v1, v2);
        // sets dedup and canonicalise order
        let x = a.nat(1);
        let y = a.nat(2);
        let s1 = a.set([x, y, x]);
        let s2 = a.set([y, x]);
        assert_eq!(s1, s2);
        assert_eq!(a.cardinality(s1), Some(2));
    }

    #[test]
    fn metadata_matches_the_tree_measures() {
        let mut a = ValueArena::new();
        for v in [
            Value::Unit,
            Value::TRUE,
            Value::nat(7),
            Value::edge(1, 2),
            Value::chain(4),
            Value::set([Value::chain(2), Value::empty_set()]),
            Value::pair(Value::chain(1), Value::set([Value::Unit])),
        ] {
            let id = a.intern(&v);
            assert_eq!(a.size(id), v.size(), "size of {v}");
            assert_eq!(a.depth(id) as usize, v.depth(), "depth of {v}");
            assert_eq!(a.resolve(id), v, "round-trip of {v}");
        }
    }

    #[test]
    fn size_saturates_instead_of_overflowing() {
        let mut a = ValueArena::new();
        let mut v = a.nat(0);
        for _ in 0..70 {
            v = a.pair(v, v);
        }
        // the true size is 2⁷¹ − 1 > u64::MAX
        assert_eq!(a.size(v), u64::MAX);
        assert_eq!(a.depth(v), 70);
        // the arena holds only 71 nodes for it
        assert!(a.len() <= 72);
    }

    #[test]
    fn structural_hash_is_arena_independent() {
        let mut a = ValueArena::new();
        let mut b = ValueArena::new();
        // skew b's handle space so indices differ
        b.chain(5);
        let v = Value::set([Value::chain(2), Value::edge(9, 9)]);
        let ia = a.intern(&v);
        let ib = b.intern(&v);
        let ha = a.structural_hash(ia);
        let hb = b.structural_hash(ib);
        assert_eq!(ha, hb);
        let ic = a.intern(&Value::chain(2));
        let hc = a.structural_hash(ic);
        assert_ne!(ha, hc, "different objects should (very likely) differ");
    }

    #[test]
    fn accessors() {
        let mut a = ValueArena::new();
        let e = a.edge(3, 4);
        let (x, y) = a.as_pair(e).unwrap();
        assert_eq!(a.as_nat(x), Some(3));
        assert_eq!(a.as_nat(y), Some(4));
        assert_eq!(a.as_set(e), None);
        let t = a.bool_(true);
        assert_eq!(a.as_bool(t), Some(true));
        let r = a.relation([(2, 3), (0, 1)]);
        assert_eq!(a.to_edges(r), Some(vec![(0, 1), (2, 3)]));
        assert_eq!(a.as_set(r).unwrap().len(), 2);
    }

    #[test]
    fn clear_resets_the_arena() {
        let mut a = ValueArena::new();
        a.chain(3);
        assert!(!a.is_empty());
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.stats().nodes, 0);
        // the arena is fully usable afterwards
        let w = a.chain(3);
        assert_eq!(a.resolve(w), Value::chain(3));
    }

    #[test]
    fn thread_local_facade_round_trips() {
        let v = Value::set([Value::edge(0, 1), Value::Unit]);
        let id = intern(&v);
        assert_eq!(resolve(id), v);
        assert_eq!(size(id), v.size());
        assert_eq!(intern(&v), id, "re-interning hits the same node");
        let stats = arena_stats();
        assert!(stats.nodes >= 5);
    }

    #[test]
    fn merge_ops_match_btreeset_semantics() {
        let mut a = ValueArena::new();
        let x = a.relation([(0, 1), (1, 2), (3, 4)]);
        let y = a.relation([(1, 2), (3, 4), (7, 8)]);
        let union = a.set_union(x, y).unwrap();
        assert_eq!(
            a.resolve(union),
            Value::relation([(0, 1), (1, 2), (3, 4), (7, 8)])
        );
        let inter = a.set_intersection(x, y).unwrap();
        assert_eq!(a.resolve(inter), Value::relation([(1, 2), (3, 4)]));
        let diff = a.set_difference(x, y).unwrap();
        assert_eq!(a.resolve(diff), Value::relation([(0, 1)]));
        assert_eq!(a.is_subset(inter, x), Some(true));
        assert_eq!(a.is_subset(x, y), Some(false));
        let e12 = a.edge(1, 2);
        let e99 = a.edge(9, 9);
        assert_eq!(a.set_contains(x, e12), Some(true));
        assert_eq!(a.set_contains(x, e99), Some(false));
        // non-sets are refused, not misinterpreted
        assert_eq!(a.set_union(e12, x), None);
        assert_eq!(a.set_intersection(x, e12), None);
        assert_eq!(a.set_difference(e12, e12), None);
        assert_eq!(a.is_subset(e12, x), None);
        assert_eq!(a.set_contains(e12, e12), None);
    }

    #[test]
    fn merge_ops_degenerate_cases() {
        let mut a = ValueArena::new();
        let x = a.relation([(0, 1)]);
        let empty = a.empty_set();
        assert_eq!(a.set_union(x, x), Some(x));
        assert_eq!(a.set_union(x, empty), Some(x));
        assert_eq!(a.set_intersection(x, empty), Some(empty));
        assert_eq!(a.set_difference(x, x), Some(empty));
        assert_eq!(a.set_difference(empty, x), Some(empty));
        assert_eq!(a.is_subset(empty, x), Some(true));
        assert_eq!(a.is_subset(x, empty), Some(false));
        assert_eq!(a.is_subset(empty, empty), Some(true));
    }

    #[test]
    fn sorted_merge_flattens_without_resorting() {
        let mut a = ValueArena::new();
        let parts: Vec<VId> = vec![
            a.relation([(2, 3), (4, 5)]),
            a.empty_set(),
            a.relation([(0, 1)]),
            a.relation([(0, 1), (2, 3)]),
            a.relation([(6, 7)]),
        ];
        let merged = a.set_from_sorted_merge(&parts).unwrap();
        assert_eq!(
            a.resolve(merged),
            Value::relation([(0, 1), (2, 3), (4, 5), (6, 7)])
        );
        // degenerate widths
        assert_eq!(a.set_from_sorted_merge(&[]), Some(a.empty_set()));
        assert_eq!(a.set_from_sorted_merge(&[parts[0]]), Some(parts[0]));
        // any non-set refuses the whole merge
        let n = a.nat(3);
        assert_eq!(a.set_from_sorted_merge(&[parts[0], n]), None);
    }

    #[test]
    fn merge_delta_is_union_plus_difference() {
        let mut a = ValueArena::new();
        let old = a.relation([(0, 1), (2, 3)]);
        let new = a.relation([(0, 1), (1, 2), (4, 5)]);
        let (union, fresh) = a.set_merge_delta(old, new).unwrap();
        assert_eq!(union, a.set_union(old, new).unwrap());
        assert_eq!(fresh, a.set_difference(new, old).unwrap());
        // superset fast-path property: old ⊆ new ⇔ union == new
        let grown = a.set_union(old, new).unwrap();
        let (u2, f2) = a.set_merge_delta(old, grown).unwrap();
        assert_eq!(u2, grown);
        assert_eq!(f2, a.set_difference(grown, old).unwrap());
        // degenerate cases
        let empty = a.empty_set();
        assert_eq!(a.set_merge_delta(old, old), Some((old, empty)));
        assert_eq!(a.set_merge_delta(empty, new), Some((new, new)));
        assert_eq!(a.set_merge_delta(new, empty), Some((new, empty)));
        // non-sets refuse
        let n = a.nat(7);
        assert_eq!(a.set_merge_delta(n, new), None);
        assert_eq!(a.set_merge_delta(old, n), None);
        // the count-only scan agrees with the interned frontier
        for (x, y) in [(old, new), (new, old), (old, grown), (empty, new)] {
            let (_, f) = a.set_merge_delta(x, y).unwrap();
            assert_eq!(
                a.set_delta_cardinality(x, y),
                Some(a.cardinality(f).unwrap() as u64)
            );
        }
        assert_eq!(a.set_delta_cardinality(n, new), None);
        assert_eq!(a.set_delta_cardinality(old, n), None);
    }

    #[test]
    fn frontier_merge_is_iterated_union() {
        let mut a = ValueArena::new();
        let base = a.relation([(0, 1), (5, 6)]);
        let parts: Vec<VId> = vec![
            a.relation([(1, 2)]),
            a.empty_set(),
            a.relation([(0, 1), (2, 3)]),
        ];
        let merged = a.set_merge_frontier(base, &parts).unwrap();
        let mut expect = base;
        for &p in &parts {
            expect = a.set_union(expect, p).unwrap();
        }
        assert_eq!(merged, expect);
        // no frontiers: the base comes back untouched
        assert_eq!(a.set_merge_frontier(base, &[]), Some(base));
        // a non-set anywhere refuses the whole merge
        let n = a.nat(3);
        assert_eq!(a.set_merge_frontier(n, &parts), None);
        assert_eq!(a.set_merge_frontier(base, &[parts[0], n]), None);
    }

    #[test]
    fn occupancy_introspection() {
        let mut a = ValueArena::new();
        assert_eq!(a.node_count(), 0);
        assert_eq!(a.approx_resident_bytes(), 0);
        a.chain(4);
        assert_eq!(a.node_count(), a.len());
        let stats = a.stats();
        assert_eq!(stats.nodes, a.node_count());
        assert_eq!(stats.approx_bytes, a.approx_resident_bytes());
        assert!(stats.approx_bytes > stats.nodes * std::mem::size_of::<u64>());
    }

    // the shared store's thread-mobility contract, checked at compile time
    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ValueArena>();
    };

    #[test]
    fn make_shared_preserves_handles_and_metadata() {
        let mut a = ValueArena::new();
        let tc = a.chain_tc(4);
        let e = a.edge(1, 2);
        let (size, depth, hash) = (a.size(tc), a.depth(tc), a.structural_hash(tc));
        let bytes = a.approx_resident_bytes();
        let stats = a.stats();
        a.make_shared();
        assert!(a.is_shared());
        // indices survived the migration: the same handles resolve
        assert_eq!(a.resolve(tc), Value::chain_tc(4));
        assert_eq!(a.as_pair(e).map(|(x, _)| a.as_nat(x)), Some(Some(1)));
        assert_eq!(a.size(tc), size);
        assert_eq!(a.depth(tc), depth);
        assert_eq!(a.structural_hash(tc), hash);
        // occupancy accounting is identical between backings
        assert_eq!(a.approx_resident_bytes(), bytes);
        assert_eq!(a.stats(), stats);
        // dedup survived too: re-interning hits the same node
        assert_eq!(a.chain_tc(4), tc);
        // idempotent
        a.make_shared();
        assert!(a.is_shared());
    }

    #[test]
    fn shared_clones_intern_canonically() {
        let mut a = ValueArena::new();
        let before = a.chain(3);
        assert_eq!(a.shared_clone().map(|c| c.is_shared()), None);
        a.make_shared();
        let mut b = a.shared_clone().unwrap();
        let mut c = a.shared_clone().unwrap();
        assert_eq!(b.generation(), a.generation());
        // handles are interchangeable between clones
        assert_eq!(b.resolve(before), Value::chain(3));
        // equal objects intern to equal handles through any clone
        let x = b.chain_tc(3);
        let y = c.chain_tc(3);
        let z = a.chain_tc(3);
        assert_eq!(x, y);
        assert_eq!(x, z);
        // and everyone observes everyone's nodes
        let fresh = b.relation([(41, 42)]);
        assert_eq!(c.resolve(fresh), Value::relation([(41, 42)]));
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn shared_clear_detaches_from_the_old_store() {
        let mut a = ValueArena::new();
        a.make_shared();
        let v = a.chain(3);
        let b = a.shared_clone().unwrap();
        let gen = a.generation();
        a.clear();
        assert!(a.is_shared(), "clear keeps the arena shared");
        assert!(a.is_empty());
        assert_eq!(a.generation(), gen + 1);
        // the clone still points at the old store, untouched
        assert_eq!(b.resolve(v), Value::chain(3));
        // the cleared arena is fully usable on its fresh store
        let w = a.chain(3);
        assert_eq!(a.resolve(w), Value::chain(3));
    }

    #[test]
    #[should_panic(expected = "stale handle")]
    fn shared_stale_handle_panics() {
        let mut a = ValueArena::new();
        a.make_shared();
        a.chain(2);
        a.clear();
        let fabricated = VId::from_index(1 << 20);
        a.size(fabricated);
    }

    #[test]
    fn shared_store_under_concurrent_interning() {
        let mut a = ValueArena::new();
        a.make_shared();
        let expect_tc = a.chain_tc(6);
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let mut worker = a.shared_clone().unwrap();
                scope.spawn(move || {
                    for round in 0..8u64 {
                        let tc = worker.chain_tc(6);
                        assert_eq!(tc, expect_tc, "canonical across threads");
                        let r = worker.relation([(w, round), (round, w)]);
                        let (u, fresh) = worker.set_merge_delta(tc, r).unwrap();
                        assert_eq!(worker.set_union(tc, r), Some(u));
                        assert_eq!(worker.set_difference(r, tc), Some(fresh));
                    }
                });
            }
        });
        // every worker's nodes are visible here, and the store is canonical
        assert_eq!(a.chain_tc(6), expect_tc);
        assert!(!a.is_empty());
        assert_eq!(a.stats().nodes, a.len());
    }

    #[test]
    fn empty_set_and_relations() {
        let mut a = ValueArena::new();
        let e = a.empty_set();
        assert_eq!(a.size(e), 1);
        assert_eq!(a.cardinality(e), Some(0));
        assert_eq!(a.resolve(e), Value::empty_set());
        let tc = a.chain_tc(3);
        assert_eq!(a.resolve(tc), Value::chain_tc(3));
        assert_eq!(a.to_edges(tc).unwrap().len(), 6);
    }

    /// A pseudo-random relation big enough to clear [`DENSE_MIN_CARD`].
    fn sample_relation(arena: &mut ValueArena, seed: u64, n: u64) -> VId {
        let mut state = seed;
        let edges: Vec<(u64, u64)> = (0..4 * n)
            .map(|_| {
                state = mix(state.wrapping_add(0x9E37_79B9_7F4A_7C15));
                (state % n, (state >> 32) % n)
            })
            .collect();
        arena.relation(edges)
    }

    #[test]
    fn dense_ops_intern_to_the_sorted_handles() {
        // two arenas — dense on vs off — must issue identical handle
        // sequences for the same op trace, because the dense path
        // interns exactly the set the sorted merge would
        for seed in [1u64, 7, 99] {
            let mut on = ValueArena::new();
            let mut off = ValueArena::new();
            off.set_dense_enabled(false);
            for arena in [&mut on, &mut off] {
                let x = sample_relation(arena, seed, 64);
                let y = sample_relation(arena, seed ^ 0xABCD, 64);
                arena.prepare_dense(x);
                arena.prepare_dense(y);
                let u = arena.set_union(x, y).unwrap();
                let i = arena.set_intersection(x, y).unwrap();
                let d = arena.set_difference(x, y).unwrap();
                let (m, fresh) = arena.set_merge_delta(x, y).unwrap();
                let f = arena.set_merge_frontier(x, &[y, d]).unwrap();
                assert_eq!(arena.is_subset(i, x), Some(true));
                assert_eq!(arena.is_subset(u, x), Some(u == x));
                assert_eq!(
                    arena.set_delta_cardinality(x, y),
                    Some(arena.cardinality(fresh).unwrap() as u64)
                );
                assert_eq!(u, m);
                assert_eq!(f, u);
                // results resolve to the same trees either way
                let _ = (u, i, d, m, fresh, f);
            }
            // identical traces ⇒ identical arena contents
            assert_eq!(on.len(), off.len());
            for raw in 0..on.len() {
                let v = VId::from_index(raw);
                assert_eq!(
                    on.structural_hash(v),
                    off.structural_hash(v),
                    "node {raw} diverged between dense and sorted (seed {seed})"
                );
            }
            let (ops, promotions) = on.dense_counters();
            assert!(ops > 0, "dense path never taken (seed {seed})");
            assert!(promotions > 0, "no promotion recorded (seed {seed})");
            assert_eq!(off.dense_counters(), (0, 0));
        }
    }

    #[test]
    fn dense_respects_the_representation_heuristic() {
        let mut a = ValueArena::new();
        // tiny sets stay sorted on their own…
        let small = a.relation([(1, 0), (2, 1)]);
        assert!(!a.prepare_dense(small));
        assert!(matches!(a.set_repr(small), Some(SetRepr::Sorted(_))));
        // …but densify against a dense partner (the hint waives the
        // cardinality threshold), so the merge still goes word-parallel
        let big = a.relation((0..100).map(|i| (i, i + 1)));
        assert!(a.prepare_dense(big));
        let ops_before = a.dense_counters().0;
        let u = a.set_union(big, small).unwrap();
        assert!(
            a.dense_counters().0 > ops_before,
            "hinted merge stayed sorted"
        );
        assert_eq!(a.cardinality(u), Some(102));
        // coordinates beyond the cap are never densified
        let wide = a.relation((0..100).map(|i| (i * 1_000_000, i)));
        assert!(!a.prepare_dense(wide));
        // atom sets densify with the Atoms shape
        let nats: Vec<VId> = (0..200).map(|i| a.nat(i)).collect();
        let atom_set = a.set(nats);
        assert!(a.prepare_dense(atom_set));
        assert!(matches!(
            a.set_repr(atom_set),
            Some(SetRepr::Dense(ds)) if ds.shape() == DenseShape::Atoms
        ));
        // non-sets have no representation
        let n = a.nat(3);
        assert!(a.set_repr(n).is_none());
        assert!(!a.prepare_dense(n));
    }

    #[test]
    fn dense_restride_reconciles_grown_domains() {
        let mut a = ValueArena::new();
        // stride 128 domain vs stride 512 domain
        let narrow = a.relation((0..70).map(|i| (i, i + 1)));
        let wide = a.relation((0..300).map(|i| (i, i + 1)));
        assert!(a.prepare_dense(narrow));
        assert!(a.prepare_dense(wide));
        let promotions_before = a.dense_counters().1;
        let u = a.set_union(narrow, wide).unwrap();
        assert_eq!(u, wide, "narrow ⊆ wide: union is wide itself");
        assert!(
            a.dense_counters().1 > promotions_before,
            "stride reconciliation should re-stride the narrow sidecar"
        );
    }

    #[test]
    fn dense_words_are_charged_not_elements() {
        let mut a = ValueArena::new();
        let r = a.relation((0..200).map(|i| (i, i + 1)));
        let before = a.approx_resident_bytes();
        assert_eq!(a.stats().dense_words, 0);
        assert!(a.prepare_dense(r));
        let words = a.stats().dense_words;
        assert!(words > 0);
        assert_eq!(
            a.approx_resident_bytes(),
            before + words * std::mem::size_of::<u64>(),
            "sidecars are charged by packed words"
        );
        a.clear();
        assert_eq!(a.stats().dense_words, 0);
    }

    #[test]
    fn dense_survives_migration_to_the_shared_store() {
        let mut a = ValueArena::new();
        let x = sample_relation(&mut a, 42, 96);
        assert!(a.prepare_dense(x));
        let words = a.stats().dense_words;
        a.make_shared();
        assert_eq!(
            a.stats().dense_words,
            words,
            "sidecars migrate with their indices"
        );
        assert!(matches!(a.set_repr(x), Some(SetRepr::Dense(_))));
        // dense algebra keeps working across clones of the shared store
        let mut clone = a.shared_clone().unwrap();
        let y = sample_relation(&mut clone, 43, 96);
        clone.prepare_dense(y);
        let u_clone = clone.set_union(x, y).unwrap();
        let u_orig = a.set_union(x, y).unwrap();
        assert_eq!(u_clone, u_orig, "canonical handles across clones");
        assert!(clone.dense_counters().0 > 0);
    }

    #[test]
    fn dense_contains_probes_bits() {
        let mut a = ValueArena::new();
        let r = a.relation((0..100).map(|i| (i, i + 1)));
        let inside = a.edge(5, 6);
        let outside = a.edge(6, 5);
        let not_a_pair = a.nat(7);
        // sorted answers first…
        assert_eq!(a.set_contains(r, inside), Some(true));
        assert_eq!(a.set_contains(r, outside), Some(false));
        // …and identical dense answers once the sidecar is attached
        assert!(a.prepare_dense(r));
        let ops = a.dense_counters().0;
        assert_eq!(a.set_contains(r, inside), Some(true));
        assert_eq!(a.set_contains(r, outside), Some(false));
        assert_eq!(a.set_contains(r, not_a_pair), Some(false));
        assert_eq!(a.dense_counters().0, ops + 3);
    }
}
