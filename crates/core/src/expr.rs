//! Expressions of `NRA`, `NRA(powerset)` and the `while` extension (§2).
//!
//! `NRA` is a variable-free combinator language whose expressions denote
//! functions `f : s → t`. The primitives are exactly those of the paper's
//! §2 table; three *extensions* are provided and tracked by
//! [`LangLevel`]:
//!
//! * [`Expr::Powerset`] — the paper's `powerset : {s} → {{s}}`;
//! * [`Expr::PowersetM`] — the m-th approximation `powersetₘ` as a
//!   primitive (the paper defines it as a *derived* `NRA` term, which we
//!   also build in [`crate::derived::powerset_m`]; the primitive form exists
//!   so that benches can use large `m` without a term of size `Θ(m)`);
//! * [`Expr::While`] — inflationary fixpoint iteration, the paper's §1
//!   remark that "adding while to the algebra, instead of powerset, gives us
//!   the same computational power but it evidently only uses polynomial time
//!   (and space) for computing transitive closure";
//! * [`Expr::Const`] — constant functions (convenience; not used by any of
//!   the theorem-reproducing queries).

pub mod intern;

use crate::types::Type;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Shared subexpression handle. Derived combinators (Prop 2.1) reuse large
/// subterms; `Arc` keeps those trees cheap to clone.
pub type ExprRef = Arc<Expr>;

/// An `NRA(powerset, while)` expression denoting a function `f : s → t`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// `id : s → s`, the identity.
    Id,
    /// `! : s → unit`, the constant function `!(x) = ()`.
    Bang,
    /// `⟨f, g⟩ : r → s × t`, pair formation `⟨f,g⟩(x) = (f(x), g(x))`.
    Tuple(ExprRef, ExprRef),
    /// `π₁ : s × t → s`, first projection.
    Fst,
    /// `π₂ : s × t → t`, second projection.
    Snd,
    /// `map(f) : {s} → {t}` for `f : s → t`; called *replace* in
    /// Abiteboul–Beeri.
    Map(ExprRef),
    /// `η : s → {s}`, singleton formation.
    Sng,
    /// `μ : {{s}} → {s}`, flattening; called *set-collapse* in
    /// Abiteboul–Beeri.
    Flatten,
    /// `ρ₂ : s × {t} → {s × t}`, `ρ₂(x, {y₁,…,yₖ}) = {(x,y₁),…,(x,yₖ)}`.
    PairWith,
    /// `∅ˢ : unit → {s}`, the empty set constant (element type annotated).
    EmptySet(Type),
    /// `∪ : {s} × {s} → {s}`, set union.
    Union,
    /// `= : N × N → B`, equality on the naturals (the only primitive
    /// equality; equality at all types is derived, Prop 2.1).
    EqNat,
    /// `empty : {s} → B`, the emptiness test.
    IsEmpty,
    /// `true : unit → B`.
    ConstTrue,
    /// `false : unit → B`.
    ConstFalse,
    /// `if f then f₁ else f₂ : s → t` for `f : s → B`, `f₁, f₂ : s → t`.
    Cond(ExprRef, ExprRef, ExprRef),
    /// `g ∘ f : r → t` for `f : r → s`, `g : s → t`. Note the order:
    /// `Compose(g, f)` applies `f` first.
    Compose(ExprRef, ExprRef),
    /// `powerset : {s} → {{s}}` — the intractable operator under study.
    Powerset,
    /// `powersetₘ : {s} → {{s}}` returning all subsets of cardinality ≤ m
    /// (Prop 4.2), as a primitive.
    PowersetM(u64),
    /// `while(f) : {s} → {s}` for `f : {s} → {s}`: iterate `x ← f(x)` until
    /// a fixpoint `f(x) = x` is reached (the evaluator enforces a step
    /// budget, since arbitrary `f` need not converge).
    While(ExprRef),
    /// `const(v) : s → t` for a closed value `v : t`, ignoring its input.
    Const(Value, Type),
}

impl Expr {
    /// Wrap into a shared handle.
    pub fn rc(self) -> ExprRef {
        Arc::new(self)
    }

    /// Number of AST nodes. The paper observes that the *height* of a
    /// derivation tree depends only on the expression, not the input; the
    /// node count is the natural size measure for expressions.
    pub fn size(&self) -> usize {
        match self {
            Expr::Id
            | Expr::Bang
            | Expr::Fst
            | Expr::Snd
            | Expr::Sng
            | Expr::Flatten
            | Expr::PairWith
            | Expr::EmptySet(_)
            | Expr::Union
            | Expr::EqNat
            | Expr::IsEmpty
            | Expr::ConstTrue
            | Expr::ConstFalse
            | Expr::Powerset
            | Expr::PowersetM(_)
            | Expr::Const(_, _) => 1,
            Expr::Map(f) | Expr::While(f) => 1 + f.size(),
            Expr::Tuple(f, g) | Expr::Compose(f, g) => 1 + f.size() + g.size(),
            Expr::Cond(c, t, e) => 1 + c.size() + t.size() + e.size(),
        }
    }

    /// Language-level flags used by this expression.
    pub fn level(&self) -> LangLevel {
        let mut level = LangLevel::default();
        self.collect_level(&mut level);
        level
    }

    fn collect_level(&self, level: &mut LangLevel) {
        match self {
            Expr::Powerset => level.powerset = true,
            Expr::PowersetM(_) => level.powerset_m = true,
            Expr::While(f) => {
                level.while_loop = true;
                f.collect_level(level);
            }
            Expr::Const(_, _) => level.consts = true,
            Expr::Map(f) => f.collect_level(level),
            Expr::Tuple(f, g) | Expr::Compose(f, g) => {
                f.collect_level(level);
                g.collect_level(level);
            }
            Expr::Cond(c, t, e) => {
                c.collect_level(level);
                t.collect_level(level);
                e.collect_level(level);
            }
            _ => {}
        }
    }

    /// Count occurrences of the `powerset` primitive (used when replacing
    /// them with approximations, Prop 4.2).
    pub fn powerset_occurrences(&self) -> usize {
        match self {
            Expr::Powerset => 1,
            Expr::Map(f) | Expr::While(f) => f.powerset_occurrences(),
            Expr::Tuple(f, g) | Expr::Compose(f, g) => {
                f.powerset_occurrences() + g.powerset_occurrences()
            }
            Expr::Cond(c, t, e) => {
                c.powerset_occurrences() + t.powerset_occurrences() + e.powerset_occurrences()
            }
            _ => 0,
        }
    }

    /// The m-th approximation `fₘ` of `f`: replace every occurrence of
    /// `powerset` with `powersetₘ` (Prop 4.2). Uses the primitive
    /// `powersetₘ`; see [`crate::derived::powerset_m`] for the paper's
    /// derived `NRA` term.
    pub fn approximate(&self, m: u64) -> Expr {
        match self {
            Expr::Powerset => Expr::PowersetM(m),
            Expr::Map(f) => Expr::Map(f.approximate(m).rc()),
            Expr::While(f) => Expr::While(f.approximate(m).rc()),
            Expr::Tuple(f, g) => Expr::Tuple(f.approximate(m).rc(), g.approximate(m).rc()),
            Expr::Compose(g, f) => Expr::Compose(g.approximate(m).rc(), f.approximate(m).rc()),
            Expr::Cond(c, t, e) => Expr::Cond(
                c.approximate(m).rc(),
                t.approximate(m).rc(),
                e.approximate(m).rc(),
            ),
            other => other.clone(),
        }
    }

    /// Short primitive name used by the pretty-printer and rule statistics.
    pub fn head_name(&self) -> &'static str {
        Self::HEAD_NAMES[self.head_index()]
    }

    /// Rule labels indexed by [`Expr::head_index`].
    pub const HEAD_NAMES: [&'static str; 21] = [
        "id",
        "bang",
        "tuple",
        "fst",
        "snd",
        "map",
        "sng",
        "flatten",
        "pairwith",
        "emptyset",
        "union",
        "eq",
        "isempty",
        "true",
        "false",
        "if",
        "compose",
        "powerset",
        "powerset_m",
        "while",
        "const",
    ];

    /// Dense index of this expression's head rule — the position of
    /// [`Expr::head_name`] in [`Expr::HEAD_NAMES`]. The evaluators'
    /// per-rule counters are hot-path (one increment per derivation
    /// node), so they index a flat array by this instead of updating a
    /// map keyed by name.
    pub fn head_index(&self) -> usize {
        match self {
            Expr::Id => 0,
            Expr::Bang => 1,
            Expr::Tuple(_, _) => 2,
            Expr::Fst => 3,
            Expr::Snd => 4,
            Expr::Map(_) => 5,
            Expr::Sng => 6,
            Expr::Flatten => 7,
            Expr::PairWith => 8,
            Expr::EmptySet(_) => 9,
            Expr::Union => 10,
            Expr::EqNat => 11,
            Expr::IsEmpty => 12,
            Expr::ConstTrue => 13,
            Expr::ConstFalse => 14,
            Expr::Cond(_, _, _) => 15,
            Expr::Compose(_, _) => 16,
            Expr::Powerset => 17,
            Expr::PowersetM(_) => 18,
            Expr::While(_) => 19,
            Expr::Const(_, _) => 20,
        }
    }
}

/// Which language extensions an expression uses.
///
/// * plain `NRA` — all flags false (PTIME, §2);
/// * `NRA(powerset)` — `powerset` true (the paper's object of study);
/// * `NRA(while)` — `while_loop` true (polynomial fixpoints, §1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LangLevel {
    /// Uses the `powerset` primitive.
    pub powerset: bool,
    /// Uses the primitive `powersetₘ` approximation.
    pub powerset_m: bool,
    /// Uses the `while` fixpoint extension.
    pub while_loop: bool,
    /// Uses constant-function extension.
    pub consts: bool,
}

impl LangLevel {
    /// True iff the expression is a plain `NRA` term (possibly with
    /// `powersetₘ`, which is `NRA`-definable per Prop 4.2).
    pub fn is_nra(&self) -> bool {
        !self.powerset && !self.while_loop
    }

    /// True iff within `NRA(powerset)` (no `while`).
    pub fn is_nra_powerset(&self) -> bool {
        !self.while_loop
    }
}

impl fmt::Display for LangLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut exts: Vec<&str> = Vec::new();
        if self.powerset {
            exts.push("powerset");
        }
        if self.powerset_m {
            exts.push("powerset_m");
        }
        if self.while_loop {
            exts.push("while");
        }
        if self.consts {
            exts.push("const");
        }
        if exts.is_empty() {
            write!(f, "NRA")
        } else {
            write!(f, "NRA({})", exts.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compose(g: Expr, f: Expr) -> Expr {
        Expr::Compose(g.rc(), f.rc())
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Expr::Id.size(), 1);
        let e = Expr::Tuple(Expr::Fst.rc(), Expr::Snd.rc());
        assert_eq!(e.size(), 3);
        let m = Expr::Map(e.rc());
        assert_eq!(m.size(), 4);
        let c = Expr::Cond(Expr::EqNat.rc(), Expr::Fst.rc(), Expr::Snd.rc());
        assert_eq!(c.size(), 4);
    }

    #[test]
    fn levels() {
        assert!(Expr::Id.level().is_nra());
        let p = compose(Expr::Powerset, Expr::Id);
        assert!(!p.level().is_nra());
        assert!(p.level().is_nra_powerset());
        assert_eq!(p.level().to_string(), "NRA(powerset)");
        let w = Expr::While(Expr::Id.rc());
        assert!(w.level().while_loop);
        assert!(!w.level().is_nra_powerset());
        assert_eq!(
            Expr::Map(Expr::Powerset.rc()).level().to_string(),
            "NRA(powerset)"
        );
        assert_eq!(Expr::Id.level().to_string(), "NRA");
    }

    #[test]
    fn approximation_replaces_all_occurrences() {
        let f = compose(
            Expr::Map(Expr::Powerset.rc()),
            compose(Expr::Powerset, Expr::Id),
        );
        assert_eq!(f.powerset_occurrences(), 2);
        let f3 = f.approximate(3);
        assert_eq!(f3.powerset_occurrences(), 0);
        assert!(f3.level().powerset_m);
        assert!(f3.level().is_nra(), "approximations are NRA-definable");
    }

    #[test]
    fn head_names() {
        assert_eq!(Expr::Powerset.head_name(), "powerset");
        assert_eq!(Expr::While(Expr::Id.rc()).head_name(), "while");
    }
}
