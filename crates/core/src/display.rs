//! Pretty-printing of expressions in a concrete syntax that
//! [`crate::parser`] can read back (round-tripping is property-tested).
//!
//! The syntax is function-combinator style:
//!
//! ```text
//! compose(map(fst), powerset)
//! if(isempty, true, false)       -- if _ then _ else _
//! emptyset[nat * nat]            -- ∅ with its element-type annotation
//! const({(0, 1)} : {nat * nat})
//! ```

use crate::expr::Expr;
use std::fmt;

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Id
            | Expr::Bang
            | Expr::Fst
            | Expr::Snd
            | Expr::Sng
            | Expr::Flatten
            | Expr::PairWith
            | Expr::Union
            | Expr::EqNat
            | Expr::IsEmpty
            | Expr::ConstTrue
            | Expr::ConstFalse
            | Expr::Powerset => write!(f, "{}", self.head_name()),
            Expr::Tuple(a, b) => write!(f, "tuple({}, {})", a, b),
            Expr::Map(g) => write!(f, "map({})", g),
            Expr::EmptySet(t) => write!(f, "emptyset[{}]", t),
            Expr::Cond(c, t, e) => write!(f, "if({}, {}, {})", c, t, e),
            Expr::Compose(g, h) => write!(f, "compose({}, {})", g, h),
            Expr::PowersetM(m) => write!(f, "powerset_m({})", m),
            Expr::While(g) => write!(f, "while({})", g),
            Expr::Const(v, t) => write!(f, "const({} : {})", v, t),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::*;
    use crate::types::Type;
    use crate::value::Value;

    #[test]
    fn renders_compactly() {
        let e = compose(map(fst()), powerset());
        assert_eq!(e.to_string(), "compose(map(fst), powerset)");
        let e = cond(is_empty(), always_true(), always_false());
        assert_eq!(
            e.to_string(),
            "if(isempty, compose(true, bang), compose(false, bang))"
        );
        let e = empty_set(Type::nat_rel());
        assert_eq!(e.to_string(), "emptyset[{nat * nat}]");
        let e = konst(Value::chain(1), Type::nat_rel());
        assert_eq!(e.to_string(), "const({(0, 1)} : {nat * nat})");
        assert_eq!(powerset_m_prim(7).to_string(), "powerset_m(7)");
        assert_eq!(while_fix(id()).to_string(), "while(id)");
    }
}
