//! Complex objects (§3 of the paper).
//!
//! A complex object is denoted by the grammar
//!
//! ```text
//! C ::= x | false | true | () | (C, C) | {C, ..., C}
//! ```
//!
//! with `x ∈ N`, no duplicates inside set denotations, and sets compared up
//! to element order. The **size** measure is the paper's:
//!
//! ```text
//! size(x) = size(false) = size(true) = size(()) = 1
//! size((C1, C2))       = 1 + size(C1) + size(C2)
//! size({C1, ..., Ck})  = 1 + size(C1) + ... + size(Ck)
//! ```
//!
//! [`Value`] is the *tree* representation — convenient for construction,
//! display and the parser, but `O(size)` for `clone`/`==`/`size`. The
//! [`intern`] submodule provides the hash-consed arena representation
//! ([`intern::VId`] handles with cached metadata) that the evaluators use
//! on their hot paths; the two convert freely via [`intern::intern`] and
//! [`intern::resolve`].

pub mod dense;
pub mod intern;

use crate::types::Type;
use std::collections::BTreeSet;
use std::fmt;

/// A complex object.
///
/// Sets are represented by [`BTreeSet`], which guarantees the paper's two
/// structural requirements for free: duplicate freedom, and identification
/// of set denotations that differ only in element order (the `Ord`-derived
/// equality is order-canonical).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// `()`, the unique value of type `unit`.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A natural number.
    Nat(u64),
    /// A pair `(C1, C2)`.
    Pair(Box<Value>, Box<Value>),
    /// A finite duplicate-free set `{C1, ..., Ck}`.
    Set(BTreeSet<Value>),
}

impl Value {
    /// The true boolean.
    pub const TRUE: Value = Value::Bool(true);
    /// The false boolean.
    pub const FALSE: Value = Value::Bool(false);

    /// Construct a pair.
    pub fn pair(a: Value, b: Value) -> Value {
        Value::Pair(Box::new(a), Box::new(b))
    }

    /// Construct a natural number.
    pub fn nat(n: u64) -> Value {
        Value::Nat(n)
    }

    /// Construct a set from an iterator, deduplicating.
    pub fn set<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::Set(items.into_iter().collect())
    }

    /// The empty set.
    pub fn empty_set() -> Value {
        Value::Set(BTreeSet::new())
    }

    /// A pair of naturals `(a, b)` — an edge of a binary relation.
    pub fn edge(a: u64, b: u64) -> Value {
        Value::pair(Value::nat(a), Value::nat(b))
    }

    /// A relation `{(a, b), ...}` of type `{N × N}`.
    pub fn relation<I: IntoIterator<Item = (u64, u64)>>(edges: I) -> Value {
        Value::set(edges.into_iter().map(|(a, b)| Value::edge(a, b)))
    }

    /// The paper's chain `rₙ = {(0,1), (1,2), ..., (n−1,n)}` (§4).
    pub fn chain(n: u64) -> Value {
        Value::relation((0..n).map(|i| (i, i + 1)))
    }

    /// The transitive closure of the chain,
    /// `qₙ = tc(rₙ) = {(x,y) | 0 ≤ x < y ≤ n}` (§4).
    pub fn chain_tc(n: u64) -> Value {
        Value::relation((0..=n).flat_map(|x| (x + 1..=n).map(move |y| (x, y))))
    }

    /// The paper's size measure (§3). Computed in one pass, saturating at
    /// [`u64::MAX`] (matching the cached size of [`intern::ValueArena`],
    /// where structural sharing makes such sizes actually reachable).
    pub fn size(&self) -> u64 {
        match self {
            Value::Unit | Value::Bool(_) | Value::Nat(_) => 1,
            Value::Pair(a, b) => 1u64.saturating_add(a.size()).saturating_add(b.size()),
            Value::Set(items) => items
                .iter()
                .fold(1u64, |acc, item| acc.saturating_add(item.size())),
        }
    }

    /// Structural nesting depth (atoms have depth 0).
    pub fn depth(&self) -> usize {
        match self {
            Value::Unit | Value::Bool(_) | Value::Nat(_) => 0,
            Value::Pair(a, b) => 1 + a.depth().max(b.depth()),
            Value::Set(items) => 1 + items.iter().map(Value::depth).max().unwrap_or(0),
        }
    }

    /// Number of elements if this is a set.
    pub fn cardinality(&self) -> Option<usize> {
        match self {
            Value::Set(items) => Some(items.len()),
            _ => None,
        }
    }

    /// Borrow the underlying set.
    pub fn as_set(&self) -> Option<&BTreeSet<Value>> {
        match self {
            Value::Set(items) => Some(items),
            _ => None,
        }
    }

    /// Take ownership of the underlying set.
    pub fn into_set(self) -> Option<BTreeSet<Value>> {
        match self {
            Value::Set(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow the components if this is a pair.
    pub fn as_pair(&self) -> Option<(&Value, &Value)> {
        match self {
            Value::Pair(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// The natural number, if this is one.
    pub fn as_nat(&self) -> Option<u64> {
        match self {
            Value::Nat(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Decode a value of type `{N × N}` into an edge list.
    pub fn to_edges(&self) -> Option<Vec<(u64, u64)>> {
        let set = self.as_set()?;
        let mut out = Vec::with_capacity(set.len());
        for item in set {
            let (a, b) = item.as_pair()?;
            out.push((a.as_nat()?, b.as_nat()?));
        }
        Some(out)
    }

    /// Check whether the object is a well-typed inhabitant of `ty`.
    pub fn has_type(&self, ty: &Type) -> bool {
        match (self, ty) {
            (Value::Unit, Type::Unit) => true,
            (Value::Bool(_), Type::Bool) => true,
            (Value::Nat(_), Type::Nat) => true,
            (Value::Pair(a, b), Type::Prod(s, t)) => a.has_type(s) && b.has_type(t),
            (Value::Set(items), Type::Set(t)) => items.iter().all(|v| v.has_type(t)),
            _ => false,
        }
    }

    /// Infer the (least annotated) type of the object, when unambiguous.
    ///
    /// The empty set is polymorphic; we report it at the requested element
    /// type only through [`Value::has_type`], and return `None` here when an
    /// empty set makes the type ambiguous.
    pub fn infer_type(&self) -> Option<Type> {
        match self {
            Value::Unit => Some(Type::Unit),
            Value::Bool(_) => Some(Type::Bool),
            Value::Nat(_) => Some(Type::Nat),
            Value::Pair(a, b) => Some(Type::prod(a.infer_type()?, b.infer_type()?)),
            Value::Set(items) => {
                let mut elem: Option<Type> = None;
                for item in items {
                    let t = item.infer_type()?;
                    match &elem {
                        None => elem = Some(t),
                        Some(prev) if *prev == t => {}
                        Some(_) => return None,
                    }
                }
                elem.map(Type::set)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{}", b),
            Value::Nat(n) => write!(f, "{}", n),
            Value::Pair(a, b) => write!(f, "({}, {})", a, b),
            Value::Set(items) => {
                write!(f, "{{")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", item)?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_matches_paper_definition() {
        assert_eq!(Value::Unit.size(), 1);
        assert_eq!(Value::TRUE.size(), 1);
        assert_eq!(Value::nat(42).size(), 1);
        // (1, 2) has size 1 + 1 + 1 = 3
        assert_eq!(Value::edge(1, 2).size(), 3);
        // {} has size 1
        assert_eq!(Value::empty_set().size(), 1);
        // {(0,1),(1,2)} has size 1 + 3 + 3 = 7
        assert_eq!(Value::chain(2).size(), 7);
    }

    #[test]
    fn chain_and_closure() {
        let r3 = Value::chain(3);
        assert_eq!(r3.to_edges().unwrap(), vec![(0, 1), (1, 2), (2, 3)]);
        let q3 = Value::chain_tc(3);
        assert_eq!(
            q3.to_edges().unwrap(),
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        );
        // |tc(rₙ)| = n(n+1)/2
        assert_eq!(Value::chain_tc(10).cardinality().unwrap(), 55);
    }

    #[test]
    fn sets_deduplicate_and_canonicalise_order() {
        let a = Value::set([Value::nat(2), Value::nat(1), Value::nat(1)]);
        let b = Value::set([Value::nat(1), Value::nat(2)]);
        assert_eq!(a, b);
        assert_eq!(a.cardinality(), Some(2));
        // size counts the deduplicated denotation
        assert_eq!(a.size(), 3);
    }

    #[test]
    fn typing() {
        let r = Value::chain(2);
        assert!(r.has_type(&Type::nat_rel()));
        assert!(!r.has_type(&Type::set(Type::Nat)));
        assert_eq!(r.infer_type(), Some(Type::nat_rel()));
        // empty set is type-ambiguous for inference but checks at any set
        let e = Value::empty_set();
        assert!(e.has_type(&Type::nat_rel()));
        assert!(e.has_type(&Type::set(Type::Bool)));
        assert_eq!(e.infer_type(), None);
        // heterogeneous sets are ill-typed
        let h = Value::set([Value::nat(1), Value::TRUE]);
        assert_eq!(h.infer_type(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::chain(2).to_string(), "{(0, 1), (1, 2)}");
        assert_eq!(
            Value::pair(Value::Unit, Value::Bool(false)).to_string(),
            "((), false)"
        );
    }

    #[test]
    fn depth() {
        assert_eq!(Value::nat(0).depth(), 0);
        assert_eq!(Value::edge(0, 1).depth(), 1);
        assert_eq!(Value::chain(2).depth(), 2);
        assert_eq!(Value::set([Value::chain(1)]).depth(), 3);
    }
}
