//! A recursive-descent parser for the concrete expression syntax printed by
//! [`crate::display`], plus parsers for types and complex-object literals.
//!
//! The grammar (whitespace-insensitive):
//!
//! ```text
//! expr  := NAME                                   -- nullary primitive
//!        | "tuple" "(" expr "," expr ")"
//!        | "map" "(" expr ")" | "while" "(" expr ")"
//!        | "if" "(" expr "," expr "," expr ")"
//!        | "compose" "(" expr "," expr ")"
//!        | "emptyset" "[" type "]"
//!        | "powerset_m" "(" NUM ")"
//!        | "const" "(" value ":" type ")"
//! type  := prim ("*" prim)*                       -- right-associative
//! prim  := "unit" | "bool" | "nat" | "{" type "}" | "(" type ")"
//! value := "(" ")" | "true" | "false" | NUM
//!        | "(" value "," value ")" | "{" [value ("," value)*] "}"
//! ```

use crate::expr::Expr;
use crate::types::Type;
use crate::value::Value;
use std::fmt;

/// A parse error with byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input at which the error was detected.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            position: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        self.skip_ws();
        if self.input.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            self.error(format!("expected `{}`", c as char))
        }
    }

    fn try_eat(&mut self, c: u8) -> bool {
        self.skip_ws();
        if self.input.get(self.pos) == Some(&c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<&'a str, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len()
            && (self.input[self.pos].is_ascii_alphanumeric() || self.input[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return self.error("expected an identifier");
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos]).expect("ascii"))
    }

    fn number(&mut self) -> Result<u64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return self.error("expected a number");
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .expect("ascii")
            .parse()
            .or_else(|_| self.error("number out of range"))
    }

    // -- types ------------------------------------------------------------

    fn ty(&mut self) -> Result<Type, ParseError> {
        let first = self.ty_prim()?;
        if self.try_eat(b'*') {
            let rest = self.ty()?;
            Ok(Type::prod(first, rest))
        } else {
            Ok(first)
        }
    }

    fn ty_prim(&mut self) -> Result<Type, ParseError> {
        match self.peek() {
            Some(b'{') => {
                self.eat(b'{')?;
                let inner = self.ty()?;
                self.eat(b'}')?;
                Ok(Type::set(inner))
            }
            Some(b'(') => {
                self.eat(b'(')?;
                let inner = self.ty()?;
                self.eat(b')')?;
                Ok(inner)
            }
            _ => match self.ident()? {
                "unit" => Ok(Type::Unit),
                "bool" => Ok(Type::Bool),
                "nat" => Ok(Type::Nat),
                other => self.error(format!("unknown type `{}`", other)),
            },
        }
    }

    // -- values -----------------------------------------------------------

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'(') => {
                self.eat(b'(')?;
                if self.try_eat(b')') {
                    return Ok(Value::Unit);
                }
                let a = self.value()?;
                self.eat(b',')?;
                let b = self.value()?;
                self.eat(b')')?;
                Ok(Value::pair(a, b))
            }
            Some(b'{') => {
                self.eat(b'{')?;
                let mut items = Vec::new();
                if !self.try_eat(b'}') {
                    loop {
                        items.push(self.value()?);
                        if self.try_eat(b'}') {
                            break;
                        }
                        self.eat(b',')?;
                    }
                }
                Ok(Value::set(items))
            }
            Some(c) if c.is_ascii_digit() => Ok(Value::Nat(self.number()?)),
            _ => match self.ident()? {
                "true" => Ok(Value::Bool(true)),
                "false" => Ok(Value::Bool(false)),
                other => self.error(format!("unknown value `{}`", other)),
            },
        }
    }

    // -- expressions --------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let name = self.ident()?;
        match name {
            "id" => Ok(Expr::Id),
            "bang" => Ok(Expr::Bang),
            "fst" => Ok(Expr::Fst),
            "snd" => Ok(Expr::Snd),
            "sng" => Ok(Expr::Sng),
            "flatten" => Ok(Expr::Flatten),
            "pairwith" => Ok(Expr::PairWith),
            "union" => Ok(Expr::Union),
            "eq" => Ok(Expr::EqNat),
            "isempty" => Ok(Expr::IsEmpty),
            "true" => Ok(Expr::ConstTrue),
            "false" => Ok(Expr::ConstFalse),
            "powerset" => Ok(Expr::Powerset),
            "tuple" => {
                self.eat(b'(')?;
                let a = self.expr()?;
                self.eat(b',')?;
                let b = self.expr()?;
                self.eat(b')')?;
                Ok(Expr::Tuple(a.rc(), b.rc()))
            }
            "map" => {
                self.eat(b'(')?;
                let f = self.expr()?;
                self.eat(b')')?;
                Ok(Expr::Map(f.rc()))
            }
            "while" => {
                self.eat(b'(')?;
                let f = self.expr()?;
                self.eat(b')')?;
                Ok(Expr::While(f.rc()))
            }
            "if" => {
                self.eat(b'(')?;
                let c = self.expr()?;
                self.eat(b',')?;
                let t = self.expr()?;
                self.eat(b',')?;
                let e = self.expr()?;
                self.eat(b')')?;
                Ok(Expr::Cond(c.rc(), t.rc(), e.rc()))
            }
            "compose" => {
                self.eat(b'(')?;
                let g = self.expr()?;
                self.eat(b',')?;
                let f = self.expr()?;
                self.eat(b')')?;
                Ok(Expr::Compose(g.rc(), f.rc()))
            }
            "emptyset" => {
                self.eat(b'[')?;
                let t = self.ty()?;
                self.eat(b']')?;
                Ok(Expr::EmptySet(t))
            }
            "powerset_m" => {
                self.eat(b'(')?;
                let m = self.number()?;
                self.eat(b')')?;
                Ok(Expr::PowersetM(m))
            }
            "const" => {
                self.eat(b'(')?;
                let v = self.value()?;
                self.eat(b':')?;
                let t = self.ty()?;
                self.eat(b')')?;
                Ok(Expr::Const(v, t))
            }
            other => self.error(format!("unknown expression head `{}`", other)),
        }
    }

    fn finish(&mut self) -> Result<(), ParseError> {
        self.skip_ws();
        if self.pos == self.input.len() {
            Ok(())
        } else {
            self.error("trailing input")
        }
    }
}

/// Parse an expression from its concrete syntax.
pub fn parse_expr(input: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(input);
    let e = p.expr()?;
    p.finish()?;
    Ok(e)
}

/// Parse a type.
pub fn parse_type(input: &str) -> Result<Type, ParseError> {
    let mut p = Parser::new(input);
    let t = p.ty()?;
    p.finish()?;
    Ok(t)
}

/// Parse a complex-object literal.
pub fn parse_value(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser::new(input);
    let v = p.value()?;
    p.finish()?;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn parses_primitives() {
        assert_eq!(parse_expr("id").unwrap(), Expr::Id);
        assert_eq!(parse_expr(" powerset ").unwrap(), Expr::Powerset);
        assert_eq!(parse_expr("powerset_m(4)").unwrap(), Expr::PowersetM(4));
    }

    #[test]
    fn parses_nested() {
        let e = parse_expr("compose(map(fst), powerset)").unwrap();
        assert_eq!(e, compose(map(fst()), powerset()));
        let e = parse_expr("if(isempty, compose(true, bang), compose(false, bang))").unwrap();
        assert_eq!(e, cond(is_empty(), always_true(), always_false()));
    }

    #[test]
    fn parses_types() {
        assert_eq!(parse_type("{nat * nat}").unwrap(), Type::nat_rel());
        assert_eq!(
            parse_type("(nat * bool) * unit").unwrap(),
            Type::prod(Type::prod(Type::Nat, Type::Bool), Type::Unit)
        );
        // right-associativity
        assert_eq!(
            parse_type("nat * bool * unit").unwrap(),
            Type::prod(Type::Nat, Type::prod(Type::Bool, Type::Unit))
        );
    }

    #[test]
    fn parses_values() {
        assert_eq!(parse_value("()").unwrap(), Value::Unit);
        assert_eq!(parse_value("{(0, 1), (1, 2)}").unwrap(), Value::chain(2));
        assert_eq!(parse_value("{}").unwrap(), Value::empty_set());
        assert_eq!(
            parse_value("(true, 3)").unwrap(),
            Value::pair(Value::TRUE, Value::nat(3))
        );
    }

    #[test]
    fn errors_carry_position() {
        let err = parse_expr("compose(map(fst)").unwrap_err();
        assert!(err.position > 0);
        assert!(parse_expr("frobnicate").is_err());
        assert!(parse_expr("id id").is_err(), "trailing input rejected");
    }

    #[test]
    fn round_trips_displayed_expressions() {
        for e in [
            compose(map(fst()), powerset()),
            cond(is_empty(), always_true(), always_false()),
            empty_set(Type::nat_rel()),
            while_fix(compose(union(), tuple(id(), id()))),
            konst(Value::chain(2), Type::nat_rel()),
            crate::queries::tc_while(),
        ] {
            let text = e.to_string();
            let back = parse_expr(&text).unwrap_or_else(|err| panic!("{text}: {err}"));
            assert_eq!(back, e, "{text}");
        }
    }
}
