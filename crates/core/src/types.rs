//! Types of the nested relational algebra (§2 of the paper).
//!
//! The type grammar is
//!
//! ```text
//! t ::= unit | B | N | t × t | {t}
//! ```
//!
//! where `unit` has the single value `()`, `B` the booleans, `N` the natural
//! numbers, `s × t` pairs, and `{t}` finite duplicate-free sets.

use std::fmt;
use std::sync::Arc;

/// A type of the nested relational algebra.
///
/// Product and set types own their components through [`Arc`] so that large
/// type trees (which arise when type-checking deeply composed expressions)
/// can be shared cheaply.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// The single-valued type `unit = {()}`.
    Unit,
    /// The booleans `B`.
    Bool,
    /// The natural numbers `N`.
    Nat,
    /// The product type `s × t`.
    Prod(Arc<Type>, Arc<Type>),
    /// The finite-set type `{t}`.
    Set(Arc<Type>),
}

impl Type {
    /// Convenience constructor for `s × t`.
    pub fn prod(s: Type, t: Type) -> Type {
        Type::Prod(Arc::new(s), Arc::new(t))
    }

    /// Convenience constructor for `{t}`.
    pub fn set(t: Type) -> Type {
        Type::Set(Arc::new(t))
    }

    /// The type `{N × N}` of binary relations over the naturals — the
    /// input/output type of the paper's transitive-closure queries.
    pub fn nat_rel() -> Type {
        Type::set(Type::prod(Type::Nat, Type::Nat))
    }

    /// Returns the element type if `self` is a set type.
    pub fn elem(&self) -> Option<&Type> {
        match self {
            Type::Set(t) => Some(t),
            _ => None,
        }
    }

    /// Returns the component types if `self` is a product type.
    pub fn components(&self) -> Option<(&Type, &Type)> {
        match self {
            Type::Prod(s, t) => Some((s, t)),
            _ => None,
        }
    }

    /// True iff the type is a set type.
    pub fn is_set(&self) -> bool {
        matches!(self, Type::Set(_))
    }

    /// True iff the type mentions no set constructor (so its values have a
    /// size bounded by the type alone).
    pub fn is_flat(&self) -> bool {
        match self {
            Type::Unit | Type::Bool | Type::Nat => true,
            Type::Prod(s, t) => s.is_flat() && t.is_flat(),
            Type::Set(_) => false,
        }
    }

    /// Nesting depth of set constructors: `depth({ { N × N } }) = 2`.
    pub fn set_depth(&self) -> usize {
        match self {
            Type::Unit | Type::Bool | Type::Nat => 0,
            Type::Prod(s, t) => s.set_depth().max(t.set_depth()),
            Type::Set(t) => 1 + t.set_depth(),
        }
    }

    /// Number of nodes in the type tree.
    pub fn size(&self) -> usize {
        match self {
            Type::Unit | Type::Bool | Type::Nat => 1,
            Type::Prod(s, t) => 1 + s.size() + t.size(),
            Type::Set(t) => 1 + t.size(),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Unit => write!(f, "unit"),
            Type::Bool => write!(f, "bool"),
            Type::Nat => write!(f, "nat"),
            Type::Prod(s, t) => {
                // Products associate to the right and bind tighter than
                // nothing; parenthesise nested products on the left.
                match **s {
                    Type::Prod(_, _) => write!(f, "({}) * {}", s, t),
                    _ => write!(f, "{} * {}", s, t),
                }
            }
            Type::Set(t) => write!(f, "{{{}}}", t),
        }
    }
}

/// The type `f : s → t` of an NRA expression, which is always a function
/// type (§2: "its expressions are functions f : s → t").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FnType {
    /// Domain.
    pub dom: Type,
    /// Codomain.
    pub cod: Type,
}

impl FnType {
    /// Construct a function type.
    pub fn new(dom: Type, cod: Type) -> Self {
        FnType { dom, cod }
    }
}

impl fmt::Display for FnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.dom, self.cod)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trip_shapes() {
        let t = Type::nat_rel();
        assert_eq!(t.to_string(), "{nat * nat}");
        let u = Type::set(Type::set(Type::prod(
            Type::prod(Type::Nat, Type::Bool),
            Type::Unit,
        )));
        assert_eq!(u.to_string(), "{{(nat * bool) * unit}}");
    }

    #[test]
    fn set_depth_counts_nesting() {
        assert_eq!(Type::Nat.set_depth(), 0);
        assert_eq!(Type::nat_rel().set_depth(), 1);
        assert_eq!(Type::set(Type::nat_rel()).set_depth(), 2);
        let p = Type::prod(Type::nat_rel(), Type::Nat);
        assert_eq!(p.set_depth(), 1);
    }

    #[test]
    fn flatness() {
        assert!(Type::Nat.is_flat());
        assert!(Type::prod(Type::Nat, Type::Bool).is_flat());
        assert!(!Type::nat_rel().is_flat());
        assert!(!Type::prod(Type::Nat, Type::set(Type::Nat)).is_flat());
    }

    #[test]
    fn accessors() {
        let t = Type::nat_rel();
        let elem = t.elem().unwrap();
        let (a, b) = elem.components().unwrap();
        assert_eq!(*a, Type::Nat);
        assert_eq!(*b, Type::Nat);
        assert!(t.is_set());
        assert!(!elem.is_set());
        assert_eq!(t.size(), 4);
    }
}
