//! # nra-core
//!
//! The nested relational algebra `NRA`, its powerset extension
//! `NRA(powerset)`, and the `while` extension — the languages studied in
//!
//! > Dan Suciu and Jan Paredaens, *"Any Algorithm in the Complex Object
//! > Algebra with Powerset Needs Exponential Space to Compute Transitive
//! > Closure"*, UPenn MS-CIS-94-04, February 1994.
//!
//! This crate provides the static side of the system:
//!
//! * [`types`] — the type grammar `t ::= unit | B | N | t × t | {t}` (§2);
//! * [`value`] — complex objects with the paper's §3 size measure, plus
//!   the hash-consed interning arena ([`value::intern`]) that gives the
//!   evaluators O(1) `size`/`==`/`clone` on their hot paths;
//! * [`expr`] — the combinator language (§2 primitives + extensions),
//!   plus its own hash-consing arena ([`expr::intern`]) whose `EId`
//!   handles key the evaluators' `(EId, VId) → VId` apply cache;
//! * [`typecheck`] — codomain inference for `f : s → t`;
//! * [`builder`] — notation-level constructors;
//! * [`derived`] — Proposition 2.1's derived operations (cartesian product,
//!   equality at all types, difference, intersection, membership,
//!   inclusion, selection, nest, unnest) and Prop 4.2's `powersetₘ`;
//! * [`queries`] — the transitive-closure queries (via `powerset`, via its
//!   approximations, via `while`) used by every experiment;
//! * [`parser`] / [`display`] — a concrete syntax.
//!
//! Evaluation (and the complexity measure instrumentation) lives in the
//! `nra-eval` crate; the §5 proof machinery in `nra-symbolic`.

#![deny(missing_docs)]

pub mod builder;
pub mod derived;
pub mod display;
pub mod expr;
pub mod generate;
pub mod parser;
pub mod queries;
pub mod typecheck;
pub mod types;
pub mod value;

pub use expr::intern::{EId, ExprArena};
pub use expr::{Expr, ExprRef, LangLevel};
pub use typecheck::{check, fn_type, output_type, TypeError};
pub use types::{FnType, Type};
pub use value::intern::{VId, ValueArena};
pub use value::Value;
