//! Admission-soundness differential: the serving front's promises,
//! checked against the engine on every randomized graph family.
//!
//! Two contracts, mirroring the two sides of the Lemma 5.8 dichotomy:
//!
//! 1. **Admitted means affordable.** For every family graph and every
//!    query in the serving zoo, an admitted query must evaluate to the
//!    reference answer *within its declared budget* — the same
//!    `eval_vid_budgeted` enforcement the server runs under, so a
//!    too-tight budget would fail here as `SpaceBudgetExceeded` before
//!    it could fail in production. The §3 `max_object_size` actually
//!    observed must not exceed the declared budget (the probe-headroom
//!    honesty check).
//! 2. **Rejected means certifiably unaffordable.** The powerset-route
//!    TC rejected on growing chains must cite exactly the Theorem 4.1
//!    bound (`2^n` on the chain `rₙ`) that the repo's separation
//!    harness (`tests/differential.rs`) certifies pointwise — and on
//!    the chain lengths where eager evaluation is still feasible, this
//!    test re-certifies `max_object_size ≥ 2^n` itself, so the
//!    rejection text and the measured blow-up can never drift apart.

use nra_core::{queries, Expr, Value};
use nra_eval::{EvalConfig, EvalSession};
use nra_serve::{admit, AdmissionDecision, AdmissionPolicy};
use nra_symbolic::SpaceVerdict;
use nra_testkit::{check, graphs, Rng};

/// The serving zoo: both dichotomy classes, all answered by the engine.
fn serving_zoo() -> Vec<Expr> {
    vec![
        queries::tc_while(),
        queries::tc_step(),
        queries::compose_rel(),
        queries::siblings_direct(),
        queries::tc_paths(),
        queries::siblings_powerset(),
    ]
}

#[test]
fn every_admitted_query_evaluates_within_its_declared_budget() {
    let policy = AdmissionPolicy::default();
    let zoo = serving_zoo();
    check("admission_soundness", 12, |seed, rng| {
        for g in graphs::family_graphs(rng) {
            let input = Value::relation(g.edges.iter().copied());
            for q in &zoo {
                let mut session = EvalSession::new(EvalConfig::optimised());
                let eid = session.intern_expr(q);
                let vid = session.intern_value(&input);
                match admit(&mut session, eid, vid, &policy) {
                    AdmissionDecision::Admitted(a) => {
                        // the admitted run, enforced exactly as the server
                        // enforces it
                        let ev = session.eval_vid_budgeted(eid, vid, Some(a.budget));
                        let out = match ev.result {
                            Ok(out) => out,
                            Err(e) => panic!(
                                "[{}] seed {seed}: admitted {q} failed under its \
                                 declared budget {}: {e}",
                                g.family, a.budget
                            ),
                        };
                        // differential reference: a fresh memo-off session
                        let mut reference = EvalSession::new(EvalConfig::default());
                        let qr = reference.intern_expr(q);
                        let vr = reference.intern_value(&input);
                        let expect = reference.eval_vid(qr, vr);
                        let expect_out = expect
                            .result
                            .expect("reference evaluation of a family graph");
                        assert_eq!(
                            session.resolve(out),
                            reference.resolve(expect_out),
                            "[{}] seed {seed}: budgeted result diverged for {q}",
                            g.family
                        );
                        // headroom honesty: the space actually used fits the
                        // declared budget with room to spare
                        assert!(
                            expect.stats.max_object_size <= a.budget,
                            "[{}] seed {seed}: {q} used {} units against a declared \
                             budget of {}",
                            g.family,
                            expect.stats.max_object_size,
                            a.budget
                        );
                    }
                    AdmissionDecision::Rejected(r) => {
                        // the family sweep is sized to be servable: only a
                        // certified-exponential verdict may ever turn one away,
                        // and the polynomial class never can
                        assert!(
                            !matches!(r.verdict, SpaceVerdict::Polynomial { .. }),
                            "[{}] seed {seed}: polynomial-class {q} rejected: {}",
                            g.family,
                            r.reason
                        );
                        panic!(
                            "[{}] seed {seed}: {q} rejected on a ≤8-edge family \
                             graph: {}",
                            g.family, r.reason
                        );
                    }
                }
            }
        }
    });
}

/// The powerset-free half of the serving zoo — the only queries that
/// are feasible to *run* on the large-graph families.
fn polynomial_zoo() -> Vec<Expr> {
    vec![
        queries::tc_while(),
        queries::tc_step(),
        queries::compose_rel(),
        queries::siblings_direct(),
    ]
}

#[test]
fn large_graph_families_evaluate_within_domain_word_budgets() {
    // Small instances of the three large-graph families (road grid,
    // power law, two communities): the polynomial zoo must be admitted
    // with the domain-word budget and actually evaluate inside it —
    // the same soundness contract the ≤8-edge sweep enforces, extended
    // to the families the dense layer was built for.
    let policy = AdmissionPolicy::default();
    let zoo = polynomial_zoo();
    check("admission_large_families", 2, |seed, rng| {
        for g in graphs::large_family_graphs(rng, 16) {
            let input = Value::relation(g.edges.iter().copied());
            for q in &zoo {
                let mut session = EvalSession::new(EvalConfig::optimised());
                let eid = session.intern_expr(q);
                let vid = session.intern_value(&input);
                let admitted = match admit(&mut session, eid, vid, &policy) {
                    AdmissionDecision::Admitted(a) => a,
                    AdmissionDecision::Rejected(r) => panic!(
                        "[{}] seed {seed}: polynomial-class {q} rejected: {}",
                        g.family, r.reason
                    ),
                };
                assert!(
                    admitted.budget < u64::MAX,
                    "[{}] seed {seed}: {q} budget saturated",
                    g.family
                );
                let ev = session.eval_vid_budgeted(eid, vid, Some(admitted.budget));
                let out = match ev.result {
                    Ok(out) => out,
                    Err(e) => panic!(
                        "[{}] seed {seed}: admitted {q} failed under its declared \
                         budget {}: {e}",
                        g.family, admitted.budget
                    ),
                };
                let mut reference = EvalSession::new(EvalConfig::default());
                let qr = reference.intern_expr(q);
                let vr = reference.intern_value(&input);
                let expect = reference
                    .eval_vid(qr, vr)
                    .result
                    .expect("reference evaluation of a large-family instance");
                assert_eq!(
                    session.resolve(out),
                    reference.resolve(expect),
                    "[{}] seed {seed}: budgeted result diverged for {q}",
                    g.family
                );
            }
        }
    });
}

#[test]
fn serving_scale_inputs_get_finite_polynomial_budgets_and_reject_powerset_routes() {
    // At serving scale (n = 512, ≥ 512 edges) the per-element structural
    // clamp saturates — `size^degree` overflows on thousands of §3 units
    // — so admission prices by domain words instead. Polynomial queries
    // must come back with a *finite, meaningful* budget without any
    // evaluation, and the powerset routes must be turned away purely by
    // prediction (the probe sizes `powerset(r)` combinatorially; nothing
    // exponential ever runs).
    let policy = AdmissionPolicy::default();
    let mut rng = Rng::new(7);
    for g in graphs::large_family_graphs(&mut rng, 512) {
        let input = Value::relation(g.edges.iter().copied());
        for q in &polynomial_zoo() {
            let mut session = EvalSession::new(EvalConfig::optimised());
            let eid = session.intern_expr(q);
            let vid = session.intern_value(&input);
            match admit(&mut session, eid, vid, &policy) {
                AdmissionDecision::Admitted(a) => {
                    // d ≤ 512 ⇒ the domain-word clamp is ≤ 512⁴·64 + 4096
                    let cap = 512u64.pow(4) * 64 + 4096;
                    assert!(
                        a.budget <= cap,
                        "[{}] {q}: budget {} above the domain-word cap {cap}",
                        g.family,
                        a.budget
                    );
                    assert!(
                        matches!(a.verdict, SpaceVerdict::Polynomial { .. }),
                        "[{}] {q}: {:?}",
                        g.family,
                        a.verdict
                    );
                }
                AdmissionDecision::Rejected(r) => panic!(
                    "[{}] polynomial-class {q} rejected at serving scale: {}",
                    g.family, r.reason
                ),
            }
        }
        for q in [queries::tc_paths(), queries::tc_naive()] {
            let mut session = EvalSession::new(EvalConfig::optimised());
            let eid = session.intern_expr(&q);
            let vid = session.intern_value(&input);
            match admit(&mut session, eid, vid, &policy) {
                AdmissionDecision::Rejected(r) => assert!(
                    r.reason.contains("exceeds the serving ceiling")
                        || r.reason.contains("cannot be certified"),
                    "[{}] {q}: unexpected rejection text: {}",
                    g.family,
                    r.reason
                ),
                AdmissionDecision::Admitted(a) => panic!(
                    "[{}] powerset route {q} admitted at serving scale with budget {}",
                    g.family, a.budget
                ),
            }
        }
    }
}

#[test]
fn rejected_chains_cite_the_bound_the_separation_harness_certifies() {
    let policy = AdmissionPolicy::default();
    let mut threshold = None;
    for n in 1..=32u64 {
        let mut session = EvalSession::new(EvalConfig::optimised());
        let eid = session.intern_expr(&queries::tc_paths());
        let vid = session.intern_value(&Value::chain(n));
        match admit(&mut session, eid, vid, &policy) {
            AdmissionDecision::Admitted(a) => {
                assert!(
                    threshold.is_none(),
                    "admission must be monotone in chain length"
                );
                if n <= 8 {
                    // the feasible range: re-certify the separation this
                    // rejection text is built on — eager powerset TC on rₙ
                    // really does need ≥ 2ⁿ units (Theorem 4.1), and the
                    // declared budget really does cover it
                    let ev = nra_eval::evaluate(
                        &queries::tc_paths(),
                        &Value::chain(n),
                        &EvalConfig::default(),
                    );
                    assert_eq!(ev.result.unwrap(), Value::chain_tc(n));
                    assert!(
                        ev.stats.max_object_size >= 1 << n,
                        "chain({n}): separation bound violated"
                    );
                    assert!(
                        ev.stats.max_object_size <= a.budget,
                        "chain({n}): declared budget {} below the measured {}",
                        a.budget,
                        ev.stats.max_object_size
                    );
                }
            }
            AdmissionDecision::Rejected(r) => {
                threshold.get_or_insert(n);
                let SpaceVerdict::Exponential {
                    log2_lower_bound,
                    lower_bound,
                    ..
                } = r.verdict
                else {
                    panic!("chain({n}): wrong verdict class {:?}", r.verdict);
                };
                // the citation is the pointwise certificate: 2^n on rₙ
                assert_eq!(u64::from(log2_lower_bound), n, "chain({n})");
                assert_eq!(lower_bound, 1u64 << n, "chain({n})");
                assert!(
                    r.reason.contains("Theorem 4.1"),
                    "chain({n}): rejection must cite the theorem: {}",
                    r.reason
                );
            }
        }
    }
    let t = threshold.expect("long chains must be rejected");
    assert!(
        (9..=24).contains(&t),
        "flip at {t}: the differential range (n ≤ 8) must stay admitted and \
         the ceiling must bite before 2^24"
    );
}
