//! Serving-loop stress: four tenants, mixed seeded workloads, one
//! shared server — the books must balance and nothing may bleed.
//!
//! Modelled on the shared-store stress test in `nra-core`: concurrency
//! is real (submitter threads race over one cloned [`LineSender`]) but
//! every assertion is about *deterministic* accounting — per-tenant
//! stats fold coherently with the global report, rejections match the
//! workload's locally-computed expectations, tenant byte budgets bind
//! their own tenant and nobody else, and a panicking job surfaces as a
//! structured failure without poisoning the loop for the jobs around
//! it.

use nra_core::value::intern::VId;
use nra_core::{queries, Value};
use nra_serve::{encode_request, spawn, Outcome, Request, ServeConfig, Server, StagedJob};
use nra_testkit::{graphs, Rng};
use std::collections::BTreeMap;
use std::thread;

const TENANTS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
const PER_TENANT: u64 = 24;

/// The mixed workload, deterministic per (tenant, index): both
/// dichotomy classes, rescuable powerset-route TC (rewritten to the
/// while route at the door), and bare powersets large enough to be
/// rejected with their bound. Returns the request plus whether
/// admission must turn it away.
fn workload_item(tenant: &str, t: usize, i: u64) -> (Request, bool) {
    let mut rng = Rng::new(0x5EED_0000 ^ ((t as u64) << 32) ^ i);
    let (query, input, rejected) = if i == 0 {
        // every tenant leads with the common warm-up pair, so
        // cross-tenant warm hits are guaranteed load-bearing
        (queries::tc_while(), Value::chain(9), false)
    } else {
        match rng.below(6) {
            0 => (queries::tc_while(), Value::chain(9), false),
            1 => {
                let g = graphs::random_dag(&mut rng);
                (
                    queries::tc_step(),
                    Value::relation(g.edges.iter().copied()),
                    false,
                )
            }
            2 => {
                let g = graphs::random_cycle(&mut rng);
                (
                    queries::compose_rel(),
                    Value::relation(g.edges.iter().copied()),
                    false,
                )
            }
            3 => (queries::tc_paths(), Value::chain(3 + rng.below(3)), false),
            4 => {
                let g = graphs::random_sparse(&mut rng);
                (
                    queries::siblings_powerset(),
                    Value::relation(g.edges.iter().copied()),
                    false,
                )
            }
            // certified exponential at serving scale with nothing the
            // optimiser can rewrite (tc_paths would be rescued to the
            // while route): rejected with the Theorem 4.1 citation
            _ => (
                nra_core::builder::powerset(),
                Value::chain(20 + rng.below(8)),
                true,
            ),
        }
    };
    (
        Request {
            tenant: tenant.to_string(),
            id: (t as u64) * 1_000 + i,
            query,
            input,
        },
        rejected,
    )
}

#[test]
fn four_tenants_hammer_one_server_and_the_books_balance() {
    let (mut client, handle) = spawn(ServeConfig::default());

    // expected rejections, computed locally from the same seeds
    let mut expect_rejected: BTreeMap<&str, u64> = BTreeMap::new();
    for (t, tenant) in TENANTS.iter().enumerate() {
        for i in 0..PER_TENANT {
            let (_, rejected) = workload_item(tenant, t, i);
            *expect_rejected.entry(tenant).or_default() += u64::from(rejected);
        }
    }

    // four racing submitters over one cloned sender
    thread::scope(|scope| {
        for (t, tenant) in TENANTS.iter().enumerate() {
            let tx = client.tx.clone();
            scope.spawn(move || {
                for i in 0..PER_TENANT {
                    let (request, _) = workload_item(tenant, t, i);
                    let line = encode_request(&request).expect("encodable request");
                    tx.send_line(&line).expect("server inbox open");
                }
            });
        }
    });

    // collect every response; tally per tenant
    let mut ok: BTreeMap<String, u64> = BTreeMap::new();
    let mut rejected: BTreeMap<String, u64> = BTreeMap::new();
    for _ in 0..(TENANTS.len() as u64 * PER_TENANT) {
        let resp = client
            .recv()
            .expect("server alive until shutdown")
            .expect("decodable response");
        match resp.outcome {
            Outcome::Ok { .. } => *ok.entry(resp.tenant).or_default() += 1,
            Outcome::Rejected { reason } => {
                assert!(
                    reason.contains("Theorem 4.1"),
                    "only certified-exponential rejections exist in this workload: \
                     {reason}"
                );
                *rejected.entry(resp.tenant).or_default() += 1;
            }
            Outcome::Failed { detail } => panic!("no job of this workload may fail: {detail}"),
        }
    }
    client.shutdown().expect("shutdown frame");
    let report = handle.join().expect("server thread");

    // per-tenant books: responses == stats == local expectations
    for tenant in TENANTS {
        let stats = &report.tenants[tenant];
        let expect_r = expect_rejected[tenant];
        assert_eq!(stats.submitted, PER_TENANT, "{tenant}: submitted");
        assert_eq!(stats.rejected, expect_r, "{tenant}: rejected");
        assert_eq!(stats.admitted, PER_TENANT - expect_r, "{tenant}: admitted");
        assert_eq!(stats.completed, stats.admitted, "{tenant}: completed");
        assert_eq!(stats.errors, 0, "{tenant}: errors");
        assert_eq!(ok[tenant], stats.completed, "{tenant}: ok responses");
        assert_eq!(
            rejected.get(tenant).copied().unwrap_or(0),
            stats.rejected,
            "{tenant}: rejected responses"
        );
        assert!(stats.total_bytes > 0, "{tenant}: results were charged");
    }

    // global books fold from the tenant books
    let fold =
        |f: fn(&nra_serve::TenantStats) -> u64| -> u64 { report.tenants.values().map(f).sum() };
    assert_eq!(report.frames, TENANTS.len() as u64 * PER_TENANT);
    assert_eq!(report.admitted, fold(|t| t.admitted));
    assert_eq!(report.completed, fold(|t| t.completed));
    assert_eq!(report.rejected_exponential, fold(|t| t.rejected));
    assert_eq!(report.errors, 0);
    assert_eq!(report.decode_errors, 0);
    assert!(
        report.rejected_exponential > 0,
        "the workload must include certified-exponential submissions"
    );

    // the shared concurrent store pays across tenants: the common
    // warm-up pair makes later tenants' evaluations warm-hit judgments
    // derived for earlier ones
    let warmed = report.tenants.values().filter(|t| t.warm_hits > 0).count();
    assert!(
        warmed >= 2,
        "cross-tenant warm hits must reach at least two tenants: {:?}",
        report
            .tenants
            .iter()
            .map(|(t, s)| (t.clone(), s.warm_hits))
            .collect::<Vec<_>>()
    );
}

#[test]
fn tenant_byte_budgets_bind_their_tenant_and_nobody_else() {
    let mut server = Server::new(ServeConfig::default());
    server.set_tenant_budget("capped", 64); // one chain_tc(6) result exceeds this

    let request = |tenant: &str, id: u64| Request {
        tenant: tenant.to_string(),
        id,
        query: queries::tc_while(),
        input: Value::chain(6),
    };

    for round in 0..6u64 {
        let responses = server.process_batch(&[request("capped", round), request("free", round)]);
        // "free" must never feel "capped"'s ledger
        assert!(
            matches!(responses[1].outcome, Outcome::Ok { .. }),
            "round {round}: free tenant blocked: {:?}",
            responses[1]
        );
        if round == 0 {
            // the first capped request passes (nothing charged yet)…
            assert!(matches!(responses[0].outcome, Outcome::Ok { .. }));
        } else {
            // …and pays for it from then on
            assert!(
                matches!(
                    &responses[0].outcome,
                    Outcome::Rejected { reason } if reason.contains("byte budget exhausted")
                ),
                "round {round}: {:?}",
                responses[0]
            );
        }
    }
    let report = server.report();
    assert_eq!(report.tenants["free"].completed, 6);
    assert_eq!(report.tenants["free"].rejected, 0);
    assert_eq!(report.tenants["capped"].completed, 1);
    assert_eq!(report.tenants["capped"].rejected, 5);
    assert_eq!(report.rejected_tenant_budget, 5);

    // the ledger rides the eviction generations: an eviction voids the
    // old generation's charges and the capped tenant serves again
    server.session().evict();
    let responses = server.process_batch(&[request("capped", 99)]);
    assert!(
        matches!(responses[0].outcome, Outcome::Ok { .. }),
        "post-eviction: {:?}",
        responses[0]
    );
}

#[test]
fn a_panicking_job_is_contained_without_poisoning_the_loop() {
    let mut server = Server::new(ServeConfig::default());
    let (good_q, good_v) = {
        let session = server.session();
        let q = session.intern_expr(&queries::tc_while());
        let v = session.intern_value(&Value::chain(5));
        (q, v)
    };
    // a fabricated stale handle: panics inside the per-job guard
    let poison = VId::from_index((u16::MAX as usize) << 8);
    let job = |tenant: &str, id: u64, input: VId| StagedJob {
        tenant: tenant.to_string(),
        id,
        query: good_q,
        input,
        budget: u64::MAX,
    };
    let responses = server.run_staged(&[
        job("steady", 0, good_v),
        job("chaos", 1, poison),
        job("steady", 2, good_v),
    ]);
    for id in [0usize, 2] {
        match &responses[id].outcome {
            Outcome::Ok { value, .. } => assert_eq!(*value, Value::chain_tc(5)),
            other => panic!("neighbour job {id} of the panicking one: {other:?}"),
        }
    }
    assert!(
        matches!(
            &responses[1].outcome,
            Outcome::Failed { detail } if detail.contains("panicked")
        ),
        "{:?}",
        responses[1]
    );

    // the loop is not poisoned: the very next batch serves normally
    let responses = server.process_batch(&[Request {
        tenant: "steady".to_string(),
        id: 3,
        query: queries::tc_while(),
        input: Value::chain(6),
    }]);
    assert!(matches!(responses[0].outcome, Outcome::Ok { .. }));

    let report = server.report();
    assert_eq!(report.errors, 1);
    assert_eq!(report.tenants["chaos"].errors, 1);
    assert_eq!(report.tenants["steady"].completed, 3);
}
