//! Seeded round-trip fuzz for the wire format, framing layer included.
//!
//! Three layers, each `parse ∘ display = id`:
//!
//! 1. **Payload syntax** — type-directed random expressions
//!    ([`nra_core::generate`], well-typed by construction, powerset and
//!    `while` included) and structurally random values must survive
//!    `parse_expr(format!("{e}"))` / `parse_value(format!("{v}"))`
//!    exactly. This is the property the frame grammar leans on: the
//!    concrete syntax contains neither `;` nor newlines.
//! 2. **Frame grammar** — random requests and responses (free-text
//!    reasons salted with `;`, the field separator) must survive
//!    `decode(encode(x))` exactly.
//! 3. **Framing/transport** — whole batches of encoded frames,
//!    concatenated and re-chunked at *random byte boundaries* (chunks
//!    spanning frame ends, splitting UTF-8-safe ASCII frames anywhere),
//!    must reassemble into exactly the original frame sequence on the
//!    receiving [`LineReceiver`].

use nra_core::generate::{random_expr, GenConfig, Rng as GenRng};
use nra_core::parser::{parse_expr, parse_value};
use nra_core::types::Type;
use nra_core::Value;
use nra_serve::{
    decode_frame, decode_response, encode_request, encode_response, socketpair, Frame, Outcome,
    Request, Response,
};
use nra_testkit::{check, Rng};

/// Random well-typed expression over a random relational-ish domain.
fn fuzz_expr(rng: &mut Rng) -> nra_core::Expr {
    let edge = Type::prod(Type::Nat, Type::Nat);
    let dom = match rng.below(4) {
        0 => Type::set(edge.clone()),
        1 => Type::set(Type::Nat),
        2 => Type::prod(Type::set(edge.clone()), Type::set(edge)),
        _ => Type::Nat,
    };
    let cfg = GenConfig {
        max_depth: 4,
        allow_while: rng.bool(),
        ..GenConfig::default()
    };
    random_expr(&dom, &cfg, &mut GenRng::new(rng.next_u64()))
}

/// Random structurally-valid value (not necessarily well-typed for any
/// query — the wire does not care).
fn fuzz_value(rng: &mut Rng, depth: u64) -> Value {
    match if depth == 0 {
        rng.below(3)
    } else {
        rng.below(5)
    } {
        0 => Value::nat(rng.below(100)),
        1 => Value::Bool(rng.bool()),
        2 => Value::Unit,
        3 => Value::pair(fuzz_value(rng, depth - 1), fuzz_value(rng, depth - 1)),
        _ => Value::set((0..rng.below(4)).map(|_| fuzz_value(rng, depth - 1))),
    }
}

#[test]
fn payload_syntax_round_trips() {
    check("wire_payload_round_trip", 200, |seed, rng| {
        let e = fuzz_expr(rng);
        let rendered = format!("{e}");
        assert!(
            !rendered.contains(';') && !rendered.contains('\n'),
            "seed {seed}: expr syntax leaked a frame separator: {rendered}"
        );
        assert_eq!(
            parse_expr(&rendered).expect("generated exprs reparse"),
            e,
            "seed {seed}"
        );

        let v = fuzz_value(rng, 3);
        let rendered = format!("{v}");
        assert!(
            !rendered.contains(';') && !rendered.contains('\n'),
            "seed {seed}: value syntax leaked a frame separator: {rendered}"
        );
        assert_eq!(
            parse_value(&rendered).expect("generated values reparse"),
            v,
            "seed {seed}"
        );
    });
}

#[test]
fn frames_round_trip() {
    check("wire_frame_round_trip", 120, |seed, rng| {
        let request = Request {
            tenant: format!("tenant-{}", rng.below(10)),
            id: rng.next_u64(),
            query: fuzz_expr(rng),
            input: fuzz_value(rng, 3),
        };
        let line = encode_request(&request).expect("encodable");
        assert_eq!(
            decode_frame(&line).expect("decodable"),
            Frame::Request(request),
            "seed {seed}"
        );

        // free-text fields get the separator salted in on purpose
        let salt = [
            "plain",
            "with;semi",
            "a;b;c;",
            ";leading",
            "2^24 units; Theorem 4.1",
        ];
        let outcome = match rng.below(3) {
            0 => Outcome::Ok {
                declared_budget: rng.next_u64(),
                value: fuzz_value(rng, 3),
            },
            1 => Outcome::Rejected {
                reason: salt[rng.usize_below(salt.len())].to_string(),
            },
            _ => Outcome::Failed {
                detail: salt[rng.usize_below(salt.len())].to_string(),
            },
        };
        let response = Response {
            tenant: format!("t{}", rng.below(10)),
            id: rng.next_u64(),
            outcome,
        };
        let line = encode_response(&response).expect("encodable");
        assert_eq!(
            decode_response(&line).expect("decodable"),
            response,
            "seed {seed}"
        );
    });
}

#[test]
fn framing_survives_random_chunk_boundaries() {
    check("wire_framing_fuzz", 60, |seed, rng| {
        // a batch of frames, concatenated to one byte stream
        let requests: Vec<Request> = (0..rng.range_u64(1, 12))
            .map(|i| Request {
                tenant: format!("t{}", rng.below(4)),
                id: i,
                query: fuzz_expr(rng),
                input: fuzz_value(rng, 2),
            })
            .collect();
        let mut stream = Vec::new();
        for request in &requests {
            stream.extend_from_slice(encode_request(request).unwrap().as_bytes());
            stream.push(b'\n');
        }

        // re-chunk at random boundaries and push through the transport
        let (client, mut server) = socketpair();
        let mut rest: &[u8] = &stream;
        while !rest.is_empty() {
            let cut = (rng.usize_below(rest.len()) + 1).min(rest.len());
            let (chunk, tail) = rest.split_at(cut);
            client.tx.send_bytes(chunk.to_vec()).unwrap();
            rest = tail;
        }
        drop(client);

        // the receiver must reassemble exactly the original sequence
        let mut decoded = Vec::new();
        while let Some(line) = server.rx.recv_line() {
            match decode_frame(&line).expect("reassembled frames decode") {
                Frame::Request(r) => decoded.push(r),
                Frame::Shutdown => panic!("seed {seed}: phantom shutdown frame"),
            }
        }
        assert_eq!(decoded, requests, "seed {seed}");
    });
}
