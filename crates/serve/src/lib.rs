//! `nra_serve` — an offline query-serving front for the NRA(powerset)
//! engine, with cost-based admission control.
//!
//! The paper's separation (Suciu & Paredaens, PODS'94) is usually read
//! as a complexity result; this crate reads it as an **operations
//! manual**. A long-lived server cannot afford to discover at runtime
//! that a query needs `2^Ω(n)` space — Theorem 4.1 says some do, and
//! Lemma 5.8's dichotomy says the engine can often tell *which* before
//! evaluating. So admission here is a two-layer oracle:
//!
//! * the **symbolic layer** ([`nra_symbolic::predict_space`]) classifies
//!   the query's space behaviour from its shape — polynomial queries are
//!   admitted by class (the §4 upper bound), certified-exponential
//!   queries are priced by their `2^n` lower bound;
//! * the **concrete layer** ([`admission`]) prices each powerset site
//!   exactly (`1 + 2^c + 2^(c-1)·(size-1)` for an argument of
//!   cardinality `c`), catching the cases the symbolic bound
//!   underestimates (e.g. a powerset of `V×V` is `2^Θ(n²)`, not `2^n`).
//!
//! Admitted queries run under their **declared budget** — the engine's
//! §3 `max_object_size` instrumentation enforces at runtime exactly the
//! bound admission promised, so an admission bug degrades into a
//! budgeted failure, never an OOM.
//!
//! The rest of the crate is the serving machinery around that oracle:
//!
//! * [`wire`] — a newline-delimited frame format over an in-repo
//!   byte-chunk transport (no async runtime), reusing
//!   [`nra_core::parser`] as the payload syntax;
//! * [`schedule`] — cache-aware partitioning of admitted batches:
//!   jobs sharing hash-consed subtrees land on the same worker;
//! * [`server`] — the loop: drain a window of frames, admit, partition,
//!   evaluate on scoped threads over the shared concurrent store,
//!   charge per-tenant byte budgets that reset with the engine's
//!   eviction generations, answer every frame exactly once.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod schedule;
pub mod server;
pub mod wire;

pub use admission::{
    admit, powerset_object_size, AdmissionDecision, AdmissionPolicy, Admitted, Rejected,
    DEFAULT_POWERSET_CEILING, PROBE_HEADROOM,
};
pub use schedule::partition;
pub use server::{spawn, Client, ServeConfig, ServeReport, Server, StagedJob, TenantStats};
pub use wire::{
    decode_frame, decode_response, encode_request, encode_response, socketpair, Endpoint, Frame,
    LineReceiver, LineSender, Outcome, Request, Response, WireError, SHUTDOWN_FRAME,
};
