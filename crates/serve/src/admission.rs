//! Cost-based admission control: the paper's theorem as a production
//! safety rail.
//!
//! Before a query touches a worker, admission predicts the space its
//! eager evaluation needs and either **admits it with a declared budget**
//! (enforced by the engine via
//! [`EvalSession::eval_vid_budgeted`](nra_eval::EvalSession::eval_vid_budgeted),
//! so an overrun surfaces as a structured
//! [`SpaceBudgetExceeded`](nra_eval::EvalError::SpaceBudgetExceeded)
//! rather than an OOM) or **rejects it at the door with the certified
//! bound**. Prediction layers two sources:
//!
//! 1. **The symbolic verdict** ([`nra_symbolic::predict_space`]) — the
//!    Lemma 5.8 dichotomy run on the §5 chain abstraction. A query
//!    certified exponential carries a [`LinearCertificate`] and the
//!    Theorem 4.1 lower bound `2^c` for an input of cardinality `c`;
//!    a powerset-free query carries a structural polynomial degree.
//! 2. **A concrete argument probe** — for powerset-bearing queries the
//!    symbolic lower bound can be a wild *under*-estimate (`tc_naive`
//!    powersets `V × V`, costing `2^Θ(n²)` on an input of cardinality
//!    `n`), so admission walks the composition spine, evaluates the
//!    powerset-free prefix feeding each `powerset` site on the *actual*
//!    input (budgeted, inside the serving session — the probe warms the
//!    shared apply cache for the real run), and computes the **exact**
//!    §3 size of the powerset object combinatorially, without
//!    materialising it. The declared budget is the dominant site cost
//!    times a downstream headroom factor.
//!
//! Powerset-free (Polynomial-class) queries are admitted **by class** —
//! that is the point of the dichotomy: `NRA` without `powerset` cannot
//! express the exponential blow-up, and §4's upper bound for the while
//! route is a small polynomial. Their declared budget is the structural
//! envelope, clamped to [`AdmissionPolicy::poly_budget_degree`] because
//! the structural degree of a `while` body is capped pessimistically
//! (iterating a degree-`d` body has no finite structural degree — the
//! clamp is where §4's semantic bound takes over from syntax).
//!
//! [`LinearCertificate`]: nra_symbolic::LinearCertificate

use nra_core::expr::intern::EId;
use nra_core::value::intern::{VId, ValueArena};
use nra_core::Expr;
use nra_eval::EvalSession;
use nra_symbolic::{predict_space, SpaceVerdict};

/// Default ceiling (§3 space units) on the *predicted* requirement of
/// powerset-bearing queries. `2²⁴` ≈ sixteen million units keeps every
/// eager powerset evaluation that clears admission comfortably inside
/// test-scale time and memory, admits the whole ≤ 10-edge differential
/// family sweep, and turns chains away once `2^{n−1}` headroom-adjusted
/// passes it.
pub const DEFAULT_POWERSET_CEILING: u64 = 1 << 24;

/// Multiplier applied to the dominant concrete powerset-site size to
/// cover the stages downstream of the site (a `map` over `2^c` subsets
/// can multiply the object by a per-subset polynomial factor). The
/// admission-soundness differential test holds this headroom honest on
/// every graph family.
pub const PROBE_HEADROOM: u64 = 64;

/// How admission decides and what it charges.
#[derive(Debug, Clone)]
pub struct AdmissionPolicy {
    /// Reject a powerset-bearing query whose predicted requirement
    /// (symbolic lower bound ∨ concrete probe) exceeds this many §3
    /// units.
    pub powerset_ceiling: u64,
    /// Degree clamp for the declared budget of Polynomial-class
    /// queries whose structural envelope saturated (deep `while`
    /// bodies).
    pub poly_budget_degree: u32,
    /// Admit queries the symbolic layer cannot analyze (`powerset`
    /// under `while`), with the ceiling itself as the declared budget.
    /// Off by default: unanalyzable means uncertifiable.
    pub admit_unanalyzed: bool,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            powerset_ceiling: DEFAULT_POWERSET_CEILING,
            poly_budget_degree: 6,
            admit_unanalyzed: false,
        }
    }
}

/// An admitted query: its declared budget and the verdict that priced
/// it.
#[derive(Debug, Clone)]
pub struct Admitted {
    /// §3 space budget the evaluation will run under
    /// (`eval_vid_budgeted`).
    pub budget: u64,
    /// The predicted requirement (≤ `budget`).
    pub predicted: u64,
    /// The symbolic verdict.
    pub verdict: SpaceVerdict,
}

/// A rejected query: the reason cites the certified bound where one
/// exists.
#[derive(Debug, Clone)]
pub struct Rejected {
    /// Human-readable rejection, embedding the verdict rendering (for
    /// exponential queries: the Theorem 4.1 bound and the Lemma 5.8
    /// certificate).
    pub reason: String,
    /// The structured verdict, for callers that want the bound itself.
    pub verdict: SpaceVerdict,
}

/// The outcome of [`admit`].
#[derive(Debug, Clone)]
pub enum AdmissionDecision {
    /// Run it, under the declared budget.
    Admitted(Admitted),
    /// Turn it away, citing the bound.
    Rejected(Rejected),
}

/// Exact §3 size of `powerset(s)` for an interned set `s`, computed
/// combinatorially: `1 + 2^c + 2^{c−1}·(size(s) − 1)` for cardinality
/// `c` (every element of `s` appears in exactly half the subsets).
/// Saturates at `u64::MAX` — which any finite ceiling rejects.
pub fn powerset_object_size(values: &ValueArena, v: VId) -> Option<u64> {
    let card = values.cardinality(v)? as u32;
    let size = values.size(v);
    if card >= 63 {
        return Some(u64::MAX);
    }
    let subsets = 1u64 << card;
    Some(
        1u64.saturating_add(subsets)
            .saturating_add((subsets / 2).saturating_mul(size.saturating_sub(1))),
    )
}

/// Walk the composition spine of a powerset-bearing expression,
/// evaluating powerset-free prefixes on the live input, and return the
/// dominant **exact** powerset-object size among the sites reached.
/// `Err` carries the reason the query cannot be certified concretely
/// (a site argument that is not a set, a prefix whose probe evaluation
/// failed, a `powerset` nested under `map`/`while`/`if`, or a second
/// `powerset` downstream of the first).
fn probe_sites(
    session: &mut EvalSession,
    expr: &Expr,
    input: VId,
    probe_budget: u64,
) -> Result<u64, String> {
    match expr {
        Expr::Powerset | Expr::PowersetM(_) => powerset_object_size(session.values(), input)
            .ok_or_else(|| "admission probe: powerset applied to a non-set argument".to_string()),
        Expr::Compose(g, f) => {
            if f.powerset_occurrences() > 0 {
                let site = probe_sites(session, f, input, probe_budget)?;
                if g.powerset_occurrences() > 0 {
                    return Err(
                        "admission probe: a second powerset downstream of the first \
                         cannot be certified concretely"
                            .to_string(),
                    );
                }
                return Ok(site);
            }
            // the prefix is powerset-free: run it (budgeted) to reach
            // the site's actual argument — this also warms the shared
            // apply cache for the admitted run
            let feid = session.intern_expr(f);
            let ev = session.eval_vid_budgeted(feid, input, Some(probe_budget));
            match ev.result {
                Ok(out) => probe_sites(session, g, out, probe_budget),
                Err(e) => Err(format!("admission probe: prefix evaluation failed ({e})")),
            }
        }
        Expr::Tuple(f, g) => {
            // (f, g) applies both sides to the same argument — price
            // each powerset-bearing side on the live input and take the
            // dominant site
            let mut site = 0u64;
            for side in [f, g] {
                if side.powerset_occurrences() > 0 {
                    site = site.max(probe_sites(session, side, input, probe_budget)?);
                }
            }
            Ok(site)
        }
        _ if expr.powerset_occurrences() == 0 => Ok(0),
        _ => Err(
            "admission probe: powerset nested under map/while/if cannot be certified \
             concretely"
                .to_string(),
        ),
    }
}

/// Decide whether the query behind `eid` may run on `input`, and at
/// what declared budget. Probing may evaluate powerset-free prefixes
/// inside `session` (warming its cache for the admitted run).
pub fn admit(
    session: &mut EvalSession,
    eid: EId,
    input: VId,
    policy: &AdmissionPolicy,
) -> AdmissionDecision {
    let size = session.values().size(input);
    let card = session.values().cardinality(input).map_or(0, |c| c as u64);
    let verdict = predict_space(eid, session.exprs(), size, card);

    match &verdict {
        SpaceVerdict::Unanalyzed { reason } => {
            if policy.admit_unanalyzed {
                AdmissionDecision::Admitted(Admitted {
                    budget: policy.powerset_ceiling,
                    predicted: policy.powerset_ceiling,
                    verdict,
                })
            } else {
                AdmissionDecision::Rejected(Rejected {
                    reason: format!(
                        "admission: cannot certify space for this query ({reason}); \
                         rewrite without powerset-under-while or ask the operator to \
                         enable admit_unanalyzed"
                    ),
                    verdict,
                })
            }
        }
        SpaceVerdict::Polynomial {
            degree,
            upper_bound,
        } => {
            // powerset-free: admitted by class (the Lemma 5.8 dichotomy —
            // no exponential blow-up is expressible); budget = structural
            // envelope, clamped where the while rule saturated
            let mut clamp = size
                .max(2)
                .saturating_pow((*degree).min(policy.poly_budget_degree))
                .saturating_mul(64)
                .saturating_add(4096);
            // Inputs living in a bounded packed domain (sets of
            // small-coordinate atoms or edges — the dense layer's
            // territory) are priced by domain words instead: a relation
            // over `d` nodes has at most `d²` edges, and a polynomial
            // route's intermediates (joins of two such relations) stay
            // within `d⁴` elements, so `d⁴·64` §3 units cover them with
            // the same ×64 headroom the structural clamp carries. The
            // per-element clamp saturates on large graphs (thousands of
            // edges raised to the structural degree overflows), which
            // would declare a meaningless budget exactly where serving
            // large-graph TC matters.
            if let Some(d) = session.values().dense_domain_cap(input) {
                let by_domain_words = d
                    .max(2)
                    .saturating_pow(4)
                    .saturating_mul(64)
                    .saturating_add(4096);
                clamp = clamp.min(by_domain_words);
            }
            AdmissionDecision::Admitted(Admitted {
                budget: (*upper_bound).min(clamp),
                predicted: (*upper_bound).min(clamp),
                verdict,
            })
        }
        SpaceVerdict::Exponential { lower_bound, .. }
        | SpaceVerdict::BoundedPowerset {
            upper_bound: lower_bound,
            ..
        } => {
            // powerset-bearing: the symbolic figure alone is not enough
            // (a lower bound can under-estimate; the bounded-order
            // envelope prices the powerset_m *rewrite*, not the eager
            // run) — probe the actual powerset arguments
            let symbolic = *lower_bound;
            let expr = session.exprs().resolve(eid);
            let concrete = match probe_sites(session, &expr, input, policy.powerset_ceiling) {
                Ok(site) => site.saturating_mul(PROBE_HEADROOM),
                Err(reason) => {
                    return AdmissionDecision::Rejected(Rejected {
                        reason: format!("{reason}; verdict: {verdict}"),
                        verdict,
                    });
                }
            };
            let required = symbolic.max(concrete);
            if required > policy.powerset_ceiling {
                AdmissionDecision::Rejected(Rejected {
                    reason: format!(
                        "admission: predicted eager space requirement {required} units \
                         exceeds the serving ceiling {}; {verdict}",
                        policy.powerset_ceiling
                    ),
                    verdict,
                })
            } else {
                AdmissionDecision::Admitted(Admitted {
                    budget: required.max(4096),
                    predicted: required,
                    verdict,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_core::{queries, Value};
    use nra_eval::{EvalConfig, EvalSession};
    use nra_symbolic::SpaceVerdict;

    fn decide(query: &Expr, input: &Value, policy: &AdmissionPolicy) -> AdmissionDecision {
        let mut session = EvalSession::new(EvalConfig::optimised());
        let eid = session.intern_expr(query);
        let vid = session.intern_value(input);
        admit(&mut session, eid, vid, policy)
    }

    #[test]
    fn polynomial_queries_are_admitted_by_class() {
        let policy = AdmissionPolicy::default();
        for q in [
            queries::tc_while(),
            queries::tc_step(),
            queries::compose_rel(),
            queries::siblings_direct(),
        ] {
            match decide(&q, &Value::chain(10), &policy) {
                AdmissionDecision::Admitted(a) => {
                    assert!(
                        matches!(a.verdict, SpaceVerdict::Polynomial { .. }),
                        "{q}: {:?}",
                        a.verdict
                    );
                    assert!(a.budget < u64::MAX, "{q}: clamp failed, budget saturated");
                }
                AdmissionDecision::Rejected(r) => panic!("{q} rejected: {}", r.reason),
            }
        }
    }

    #[test]
    fn exponential_tc_flips_from_admitted_to_rejected_as_chains_grow() {
        let policy = AdmissionPolicy::default();
        let mut flipped_at = None;
        for n in 1..=40u64 {
            match decide(&queries::tc_paths(), &Value::chain(n), &policy) {
                AdmissionDecision::Admitted(_) => {
                    assert!(flipped_at.is_none(), "admission must be monotone in n");
                }
                AdmissionDecision::Rejected(r) => {
                    flipped_at.get_or_insert(n);
                    // the rejection cites the Theorem 4.1 bound for THIS n
                    match r.verdict {
                        SpaceVerdict::Exponential {
                            log2_lower_bound, ..
                        } => assert_eq!(u64::from(log2_lower_bound), n),
                        ref v => panic!("chain({n}): wrong verdict {v:?}"),
                    }
                    assert!(r.reason.contains("Theorem 4.1"), "{}", r.reason);
                }
            }
        }
        let t = flipped_at.expect("some chain length must be rejected");
        assert!(
            t > 8,
            "the differential-suite range (n ≤ 8) must be admitted, got {t}"
        );
    }

    #[test]
    fn tc_naive_is_rejected_on_inputs_its_square_powerset_cannot_afford() {
        // tc_naive powersets V×V: 2^Θ(n²), far beyond the symbolic 2^n
        // lower bound — only the concrete probe catches it
        let policy = AdmissionPolicy::default();
        match decide(&queries::tc_naive(), &Value::chain(4), &policy) {
            AdmissionDecision::Rejected(r) => {
                assert!(
                    r.reason.contains("exceeds the serving ceiling"),
                    "{}",
                    r.reason
                );
            }
            AdmissionDecision::Admitted(a) => {
                panic!("tc_naive on chain(4) admitted at budget {}", a.budget)
            }
        }
    }

    #[test]
    fn unanalyzed_queries_are_rejected_unless_the_policy_waives() {
        use nra_core::builder::*;
        let q = while_fix(powerset());
        let strict = AdmissionPolicy::default();
        assert!(matches!(
            decide(&q, &Value::chain(2), &strict),
            AdmissionDecision::Rejected(_)
        ));
        let waived = AdmissionPolicy {
            admit_unanalyzed: true,
            ..AdmissionPolicy::default()
        };
        assert!(matches!(
            decide(&q, &Value::chain(2), &waived),
            AdmissionDecision::Admitted(_)
        ));
    }

    #[test]
    fn powerset_object_size_is_exact() {
        let mut session = EvalSession::new(EvalConfig::default());
        let v = session.values_mut().chain(3); // card 3, size 10
                                               // enumerate: sum over the 8 subsets of their sizes, plus 1
        let expect = 1 + 8 + 4 * (10 - 1);
        assert_eq!(
            powerset_object_size(session.values(), v),
            Some(expect as u64)
        );
    }
}
