//! The wire format and the in-repo transport.
//!
//! Queries travel as **newline-delimited frames** whose payload is the
//! concrete syntax of [`nra_core::parser`] — the same parser-readable
//! [`Display`](std::fmt::Display) form every `Expr`/`Value` already
//! round-trips through (`parse(display(e)) == e`, property-tested in
//! `nra-core`). The concrete syntax contains neither `;` nor newlines,
//! so a frame is simply `;`-separated fields on one line:
//!
//! ```text
//! request   := TENANT ";" ID ";" EXPR ";" VALUE "\n"
//! response  := TENANT ";" ID ";" "ok" ";" BUDGET ";" VALUE "\n"
//!            | TENANT ";" ID ";" "rejected" ";" REASON "\n"
//!            | TENANT ";" ID ";" "failed" ";" DETAIL "\n"
//! shutdown  := "!shutdown" "\n"
//! ```
//!
//! `REASON`/`DETAIL` are free text (they may contain `;`), so they are
//! always the *last* field and decoded with a bounded split. Tenant
//! names must be non-empty and contain neither `;` nor newlines nor a
//! leading `!` (reserved for control frames).
//!
//! The transport is an in-repo **socketpair**: two [`Endpoint`]s joined
//! by a pair of `mpsc` byte-chunk channels (the offline counterpart of
//! a duplex socket — no tokio, per the workspace's no-external-deps
//! rule). Chunks are arbitrary byte slices; each receiver reassembles
//! them into `\n`-terminated lines, so frames survive any chunking the
//! sender (or a fuzzer) chooses — the framing layer is tested by
//! splitting encoded frames at random byte boundaries.

use nra_core::parser::{parse_expr, parse_value, ParseError};
use nra_core::{Expr, Value};
use std::fmt;
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};

/// The control frame that asks the server to drain and exit.
pub const SHUTDOWN_FRAME: &str = "!shutdown";

/// One parsed query submission.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Tenant the query is accounted to (validated: no `;`/newline).
    pub tenant: String,
    /// Client-chosen correlation id, echoed back on the response.
    pub id: u64,
    /// The NRA query, as parsed from the wire.
    pub query: Expr,
    /// The complex-object input the query is applied to.
    pub input: Value,
}

/// Everything a single inbound line can mean.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A query submission.
    Request(Request),
    /// The shutdown control frame.
    Shutdown,
}

/// The server's verdict on one request, echoed with its correlation id.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Tenant the original request was accounted to.
    pub tenant: String,
    /// Correlation id of the original request.
    pub id: u64,
    /// What happened.
    pub outcome: Outcome,
}

/// The three terminal states of an admitted-or-not request.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Admitted and evaluated within its declared budget.
    Ok {
        /// The space budget (§3 units) the job was admitted under.
        declared_budget: u64,
        /// The query result.
        value: Value,
    },
    /// Turned away at the door — by admission control (with the bound
    /// citation) or by an exhausted tenant byte budget.
    Rejected {
        /// Human-readable reason, citing the certified bound where one
        /// exists.
        reason: String,
    },
    /// Admitted but the evaluation itself erred (budget overrun,
    /// divergence cap, stuck term, worker panic).
    Failed {
        /// The `EvalError` rendering.
        detail: String,
    },
}

/// Wire-layer errors: invalid field, unparseable payload, or a closed
/// transport.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// Tenant failed validation (empty, contains `;`/newline, or starts
    /// with `!`).
    InvalidTenant(String),
    /// The line does not have the expected shape.
    Malformed(String),
    /// A payload field failed to parse as an expression or value.
    Parse(ParseError),
    /// The peer hung up.
    Closed,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::InvalidTenant(t) => write!(f, "invalid tenant name {t:?}"),
            WireError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            WireError::Parse(e) => write!(f, "payload parse error: {e}"),
            WireError::Closed => write!(f, "transport closed"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<ParseError> for WireError {
    fn from(e: ParseError) -> Self {
        WireError::Parse(e)
    }
}

/// Validate a tenant name for the wire: non-empty, single-line, no
/// field separator, no control prefix.
pub fn validate_tenant(tenant: &str) -> Result<(), WireError> {
    if tenant.is_empty() || tenant.contains(';') || tenant.contains('\n') || tenant.starts_with('!')
    {
        return Err(WireError::InvalidTenant(tenant.to_string()));
    }
    Ok(())
}

fn validate_line(line: &str) -> Result<(), WireError> {
    if line.contains('\n') {
        return Err(WireError::Malformed(
            "frame payload contains a newline".to_string(),
        ));
    }
    Ok(())
}

/// Encode a request as one frame line (no trailing newline — the
/// transport adds it).
pub fn encode_request(req: &Request) -> Result<String, WireError> {
    validate_tenant(&req.tenant)?;
    let line = format!("{};{};{};{}", req.tenant, req.id, req.query, req.input);
    validate_line(&line)?;
    Ok(line)
}

/// Decode one inbound line into a [`Frame`].
pub fn decode_frame(line: &str) -> Result<Frame, WireError> {
    if line == SHUTDOWN_FRAME {
        return Ok(Frame::Shutdown);
    }
    let mut fields = line.splitn(4, ';');
    let tenant = fields
        .next()
        .ok_or_else(|| WireError::Malformed("empty frame".into()))?;
    validate_tenant(tenant)?;
    let id = fields
        .next()
        .ok_or_else(|| WireError::Malformed("missing id field".into()))?
        .trim()
        .parse::<u64>()
        .map_err(|e| WireError::Malformed(format!("bad id field: {e}")))?;
    let query = parse_expr(
        fields
            .next()
            .ok_or_else(|| WireError::Malformed("missing query field".into()))?,
    )?;
    let input = parse_value(
        fields
            .next()
            .ok_or_else(|| WireError::Malformed("missing input field".into()))?,
    )?;
    Ok(Frame::Request(Request {
        tenant: tenant.to_string(),
        id,
        query,
        input,
    }))
}

/// Encode a response as one frame line.
pub fn encode_response(resp: &Response) -> Result<String, WireError> {
    validate_tenant(&resp.tenant)?;
    let line = match &resp.outcome {
        Outcome::Ok {
            declared_budget,
            value,
        } => format!(
            "{};{};ok;{};{}",
            resp.tenant, resp.id, declared_budget, value
        ),
        Outcome::Rejected { reason } => {
            format!("{};{};rejected;{}", resp.tenant, resp.id, reason)
        }
        Outcome::Failed { detail } => {
            format!("{};{};failed;{}", resp.tenant, resp.id, detail)
        }
    };
    validate_line(&line)?;
    Ok(line)
}

/// Decode one response line.
pub fn decode_response(line: &str) -> Result<Response, WireError> {
    let mut fields = line.splitn(4, ';');
    let tenant = fields
        .next()
        .ok_or_else(|| WireError::Malformed("empty response".into()))?;
    validate_tenant(tenant)?;
    let id = fields
        .next()
        .ok_or_else(|| WireError::Malformed("missing id field".into()))?
        .parse::<u64>()
        .map_err(|e| WireError::Malformed(format!("bad id field: {e}")))?;
    let tag = fields
        .next()
        .ok_or_else(|| WireError::Malformed("missing outcome tag".into()))?;
    let rest = fields
        .next()
        .ok_or_else(|| WireError::Malformed("missing outcome payload".into()))?;
    let outcome = match tag {
        "ok" => {
            let (budget, value) = rest
                .split_once(';')
                .ok_or_else(|| WireError::Malformed("ok without value field".into()))?;
            Outcome::Ok {
                declared_budget: budget
                    .parse::<u64>()
                    .map_err(|e| WireError::Malformed(format!("bad budget field: {e}")))?,
                value: parse_value(value)?,
            }
        }
        "rejected" => Outcome::Rejected {
            reason: rest.to_string(),
        },
        "failed" => Outcome::Failed {
            detail: rest.to_string(),
        },
        other => {
            return Err(WireError::Malformed(format!(
                "unknown outcome tag {other:?}"
            )));
        }
    };
    Ok(Response {
        tenant: tenant.to_string(),
        id,
        outcome,
    })
}

// ---------------------------------------------------------------------------
// The byte-chunk transport
// ---------------------------------------------------------------------------

/// The sending half of one direction: accepts arbitrary byte chunks
/// (lines need not align with chunks). Cloneable, so many producer
/// threads can share one server inbox.
#[derive(Debug, Clone)]
pub struct LineSender {
    tx: Sender<Vec<u8>>,
}

impl LineSender {
    /// Send one complete frame line (the trailing `\n` is appended).
    pub fn send_line(&self, line: &str) -> Result<(), WireError> {
        validate_line(line)?;
        let mut bytes = line.as_bytes().to_vec();
        bytes.push(b'\n');
        self.send_bytes(bytes)
    }

    /// Send a raw byte chunk — lines may span chunks arbitrarily. This
    /// is the seam the framing fuzzer drives.
    pub fn send_bytes(&self, chunk: Vec<u8>) -> Result<(), WireError> {
        self.tx.send(chunk).map_err(|_| WireError::Closed)
    }
}

/// The receiving half of one direction: reassembles byte chunks into
/// `\n`-terminated lines.
#[derive(Debug)]
pub struct LineReceiver {
    rx: Receiver<Vec<u8>>,
    buf: Vec<u8>,
}

impl LineReceiver {
    fn pop_line(&mut self) -> Option<String> {
        let nl = self.buf.iter().position(|&b| b == b'\n')?;
        let line: Vec<u8> = self.buf.drain(..=nl).take(nl).collect();
        Some(String::from_utf8_lossy(&line).into_owned())
    }

    /// Block until one complete line is available. `None` means the
    /// peer hung up (any trailing unterminated bytes are discarded —
    /// an incomplete frame is not a frame).
    pub fn recv_line(&mut self) -> Option<String> {
        loop {
            if let Some(line) = self.pop_line() {
                return Some(line);
            }
            match self.rx.recv() {
                Ok(chunk) => self.buf.extend_from_slice(&chunk),
                Err(_) => return None,
            }
        }
    }

    /// Non-blocking poll for one complete line. `Ok(None)` means no
    /// complete line is buffered right now; `Err(WireError::Closed)`
    /// means the peer hung up and nothing complete remains.
    pub fn try_recv_line(&mut self) -> Result<Option<String>, WireError> {
        loop {
            if let Some(line) = self.pop_line() {
                return Ok(Some(line));
            }
            match self.rx.try_recv() {
                Ok(chunk) => self.buf.extend_from_slice(&chunk),
                Err(TryRecvError::Empty) => return Ok(None),
                Err(TryRecvError::Disconnected) => return Err(WireError::Closed),
            }
        }
    }
}

/// One end of the duplex transport.
#[derive(Debug)]
pub struct Endpoint {
    /// Writes toward the peer.
    pub tx: LineSender,
    /// Reads from the peer.
    pub rx: LineReceiver,
}

/// An in-process duplex pipe: two connected [`Endpoint`]s, the offline
/// stand-in for a socketpair.
pub fn socketpair() -> (Endpoint, Endpoint) {
    let (a_tx, b_rx) = channel();
    let (b_tx, a_rx) = channel();
    (
        Endpoint {
            tx: LineSender { tx: a_tx },
            rx: LineReceiver {
                rx: a_rx,
                buf: Vec::new(),
            },
        },
        Endpoint {
            tx: LineSender { tx: b_tx },
            rx: LineReceiver {
                rx: b_rx,
                buf: Vec::new(),
            },
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_core::queries;

    #[test]
    fn request_frames_round_trip() {
        let req = Request {
            tenant: "acme".into(),
            id: 7,
            query: queries::tc_while(),
            input: Value::chain(4),
        };
        let line = encode_request(&req).unwrap();
        assert_eq!(decode_frame(&line).unwrap(), Frame::Request(req));
        assert_eq!(decode_frame(SHUTDOWN_FRAME).unwrap(), Frame::Shutdown);
    }

    #[test]
    fn responses_round_trip_with_free_text_reasons() {
        for outcome in [
            Outcome::Ok {
                declared_budget: 4096,
                value: Value::chain_tc(3),
            },
            Outcome::Rejected {
                reason: "certified exponential; see Theorem 4.1; bound 2^8".into(),
            },
            Outcome::Failed {
                detail: "space budget exceeded: required 512; budget 256".into(),
            },
        ] {
            let resp = Response {
                tenant: "acme".into(),
                id: 3,
                outcome,
            };
            let line = encode_response(&resp).unwrap();
            assert_eq!(decode_response(&line).unwrap(), resp);
        }
    }

    #[test]
    fn tenant_validation_rejects_separators_and_control_prefixes() {
        for bad in ["", "a;b", "a\nb", "!sneaky"] {
            assert!(validate_tenant(bad).is_err(), "{bad:?}");
        }
        assert!(validate_tenant("tenant-7_ok").is_ok());
    }

    #[test]
    fn lines_reassemble_across_arbitrary_chunk_boundaries() {
        let (client, mut server) = socketpair();
        let payload = b"alpha;1;id;{(0, 1)}\nbeta;2;";
        for byte in payload.iter() {
            client.tx.send_bytes(vec![*byte]).unwrap();
        }
        client.tx.send_bytes(b"fst;(1, 2)\n".to_vec()).unwrap();
        assert_eq!(server.rx.recv_line().unwrap(), "alpha;1;id;{(0, 1)}");
        assert_eq!(server.rx.recv_line().unwrap(), "beta;2;fst;(1, 2)");
        drop(client);
        assert_eq!(server.rx.recv_line(), None, "hangup after the last frame");
    }
}
