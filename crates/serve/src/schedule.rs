//! Cache-aware partitioning of admitted jobs across workers.
//!
//! Every worker session interns into the parent's shared concurrent
//! store and probes the shared apply table, so *any* placement is
//! correct — but placement still decides how often a worker's private
//! recognition/delta caches and the apply table's stripes are hit
//! warm. The scheduler therefore:
//!
//! 1. **Groups jobs by root [`EId`]** — hash-consing makes "same query"
//!    a handle comparison, and same-query jobs are each other's best
//!    warm-up (the body judgments of `while` iterates recur across
//!    inputs).
//! 2. **Places groups by subtree affinity** — groups whose hash-consed
//!    expression DAGs share descendant `EId`s (a common join subplan, a
//!    shared predicate) prefer the worker already holding the most
//!    overlapping subtrees; ties fall to the least-loaded worker
//!    (LPT-style, using the same `ops(query) · size(input)²` cost proxy
//!    as [`nra_eval::estimated_batch_cost`]).
//! 3. **Falls back to one worker for small batches** — below
//!    [`SMALL_BATCH_COST`] the
//!    fan-out tax exceeds the work, and `eval_batch_assigned` runs a
//!    single-partition assignment inline on the calling thread.
//!
//! The returned assignment is exactly what
//! [`nra_eval::eval_batch_assigned`] consumes: one index list per
//! worker, each job appearing exactly once.

use nra_core::expr::intern::{EId, ENode};
use nra_eval::batch::SMALL_BATCH_COST;
use nra_eval::EvalSession;
use std::collections::{BTreeMap, BTreeSet};

/// Per-job cost proxy, stale-handle safe (a fabricated handle prices at
/// zero here and panics inside the batch layer's per-job guard instead).
fn job_cost(session: &EvalSession, query: EId, input: nra_core::value::intern::VId) -> u64 {
    if query.index() >= session.exprs().node_count() || input.index() >= session.values().len() {
        return 0;
    }
    let s = session.values().size(input);
    session
        .exprs()
        .ops(query)
        .saturating_mul(s.saturating_mul(s))
}

/// All descendant `EId`s of `root` (inclusive) in the hash-consed DAG —
/// the subtree fingerprint affinity compares.
fn descendants(session: &EvalSession, root: EId) -> BTreeSet<u32> {
    let mut seen = BTreeSet::new();
    if root.index() >= session.exprs().node_count() {
        return seen;
    }
    let mut stack = vec![root];
    while let Some(e) = stack.pop() {
        if !seen.insert(e.index() as u32) {
            continue;
        }
        match session.exprs().node(e) {
            ENode::Leaf(_) => {}
            ENode::Map(f) | ENode::While(f) => stack.push(f),
            ENode::Tuple(f, g) | ENode::Compose(f, g) => {
                stack.push(f);
                stack.push(g);
            }
            ENode::Cond(c, t, e) => {
                stack.push(c);
                stack.push(t);
                stack.push(e);
            }
        }
    }
    seen
}

/// Partition `jobs` into an assignment for
/// [`nra_eval::eval_batch_assigned`]: `workers` index lists (some may
/// be empty), every job index appearing exactly once, same-query jobs
/// kept together, overlapping-subtree groups co-located, and the whole
/// batch collapsed to one inline partition when it is too small to pay
/// the fan-out tax.
pub fn partition(
    session: &EvalSession,
    jobs: &[(EId, nra_core::value::intern::VId)],
    workers: usize,
) -> Vec<Vec<usize>> {
    if jobs.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(1, jobs.len());
    let costs: Vec<u64> = jobs.iter().map(|&(q, v)| job_cost(session, q, v)).collect();
    let total: u64 = costs.iter().fold(0u64, |a, &c| a.saturating_add(c));
    if workers == 1 || total < SMALL_BATCH_COST {
        return vec![(0..jobs.len()).collect()];
    }

    // group by root EId, priced by summed job cost
    let mut groups: BTreeMap<u32, (u64, Vec<usize>)> = BTreeMap::new();
    for (i, &(q, _)) in jobs.iter().enumerate() {
        let entry = groups.entry(q.index() as u32).or_default();
        entry.0 = entry.0.saturating_add(costs[i]);
        entry.1.push(i);
    }

    // heaviest groups place first (LPT), deterministic tie-break on EId
    let mut order: Vec<(u64, u32)> = groups.iter().map(|(&e, &(c, _))| (c, e)).collect();
    order.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); workers];
    let mut loads: Vec<u64> = vec![0; workers];
    let mut fingerprints: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); workers];
    for (cost, eid_raw) in order {
        let subtree = descendants(session, EId::from_index(eid_raw as usize));
        // prefer the worker sharing the most hash-consed subtrees; break
        // affinity ties (including the all-zeros cold start) by load
        let w = (0..workers)
            .max_by(|&a, &b| {
                let affinity_a = fingerprints[a].intersection(&subtree).count();
                let affinity_b = fingerprints[b].intersection(&subtree).count();
                affinity_a
                    .cmp(&affinity_b)
                    .then(loads[b].cmp(&loads[a]))
                    .then(b.cmp(&a))
            })
            .expect("workers >= 1");
        let (_, indices) = &groups[&eid_raw];
        assignment[w].extend(indices.iter().copied());
        loads[w] = loads[w].saturating_add(cost);
        fingerprints[w].extend(subtree);
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_core::queries;
    use nra_eval::{eval_batch_assigned, BatchJob, EvalConfig, EvalSession};

    #[test]
    fn every_job_is_assigned_exactly_once() {
        let mut session = EvalSession::new(EvalConfig::optimised());
        let q1 = session.intern_expr(&queries::tc_while());
        let q2 = session.intern_expr(&queries::tc_step());
        let jobs: Vec<_> = (2..14u64)
            .map(|n| {
                let v = session.values_mut().chain(n);
                (if n % 2 == 0 { q1 } else { q2 }, v)
            })
            .collect();
        let assignment = partition(&session, &jobs, 4);
        let mut seen: Vec<usize> = assignment.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..jobs.len()).collect::<Vec<_>>());
    }

    #[test]
    fn same_query_jobs_share_a_worker() {
        let mut session = EvalSession::new(EvalConfig::optimised());
        let q1 = session.intern_expr(&queries::tc_while());
        let q2 = session.intern_expr(&queries::tc_paths());
        let jobs: Vec<_> = (8..16u64)
            .map(|n| {
                let v = session.values_mut().chain(n);
                (if n % 2 == 0 { q1 } else { q2 }, v)
            })
            .collect();
        let assignment = partition(&session, &jobs, 4);
        for (query, _) in [(q1, ()), (q2, ())] {
            let holders: Vec<usize> = assignment
                .iter()
                .enumerate()
                .filter(|(_, part)| part.iter().any(|&i| jobs[i].0 == query))
                .map(|(w, _)| w)
                .collect();
            assert_eq!(holders.len(), 1, "query split across workers {holders:?}");
        }
    }

    #[test]
    fn small_batches_collapse_to_one_inline_partition() {
        let mut session = EvalSession::new(EvalConfig::optimised());
        let q = session.intern_expr(&queries::tc_while());
        let jobs: Vec<_> = (2..6u64)
            .map(|n| {
                let v = session.values_mut().chain(n);
                (q, v)
            })
            .collect();
        let assignment = partition(&session, &jobs, 4);
        assert_eq!(assignment.len(), 1, "small batch must not fan out");
    }

    #[test]
    fn partitions_feed_eval_batch_assigned_bit_for_bit() {
        let mut parallel = EvalSession::new(EvalConfig::optimised());
        let mut sequential = EvalSession::new(EvalConfig::optimised());
        let queries_zoo = [
            queries::tc_while(),
            queries::tc_step(),
            queries::compose_rel(),
        ];
        let mut jobs = Vec::new();
        let mut seq_jobs = Vec::new();
        for (k, q) in queries_zoo.iter().enumerate() {
            let qp = parallel.intern_expr(q);
            let qs = sequential.intern_expr(q);
            for n in 8..12u64 {
                let vp = parallel.values_mut().chain(n + k as u64);
                let vs = sequential.values_mut().chain(n + k as u64);
                jobs.push((qp, vp));
                seq_jobs.push((qs, vs));
            }
        }
        let assignment = partition(&parallel, &jobs, 3);
        let batch: Vec<BatchJob> = jobs.iter().copied().map(BatchJob::from).collect();
        let evals = eval_batch_assigned(&mut parallel, &batch, &assignment);
        for (i, ev) in evals.iter().enumerate() {
            let (qs, vs) = seq_jobs[i];
            let expect = sequential.eval_vid(qs, vs);
            assert_eq!(
                parallel.resolve(*ev.result.as_ref().unwrap()),
                sequential.resolve(*expect.result.as_ref().unwrap()),
                "job {i}"
            );
        }
    }
}
