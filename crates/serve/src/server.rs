//! The long-lived serving loop: wire in, admission, cache-aware batch
//! scheduling, per-tenant byte budgets, wire out.
//!
//! One [`Server`] owns one [`EvalSession`] (the shared concurrent
//! store every batch's workers intern into) and a tenant ledger. Its
//! [`run`](Server::run) loop blocks on the transport, drains up to
//! [`ServeConfig::batch_window`] frames, admits each request
//! ([`crate::admission`]), places the admitted jobs with the
//! cache-aware scheduler ([`crate::schedule`]), evaluates them on
//! scoped worker threads via [`nra_eval::eval_batch_assigned`] — each
//! under its **declared budget** — and answers every frame exactly
//! once. A worker panic is contained by the batch layer and surfaces
//! as a `failed` response; the loop, the session, and the other jobs
//! of the batch are unaffected.
//!
//! **Per-tenant byte budgets** ride the engine's generational
//! eviction: every completed job charges its tenant the approximate
//! bytes of its result; a tenant over budget is rejected at staging
//! (`rejected` outcome, before any evaluation); and when the session's
//! resident-byte budget triggers an eviction — bumping
//! [`EvalSession::generation`] — the per-generation charges reset,
//! because the objects the tenants were paying residency for are gone.
//!
//! Embedders that want the loop without the wire (tests, benches, the
//! in-process front) call [`Server::process_batch`] /
//! [`Server::run_staged`] directly.

use crate::admission::{admit, AdmissionDecision, AdmissionPolicy};
use crate::schedule::partition;
use crate::wire::{
    decode_frame, encode_response, socketpair, Endpoint, Frame, Outcome, Request, Response,
    WireError,
};
use nra_core::expr::intern::EId;
use nra_core::typecheck::output_type;
use nra_core::value::intern::VId;
use nra_core::{Expr, Value};
use nra_eval::{eval_batch_assigned, BatchJob, EvalConfig, EvalSession, SessionStats};
use nra_symbolic::SpaceVerdict;
use std::collections::BTreeMap;
use std::thread::JoinHandle;

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker sessions per batch (scoped threads over the shared store).
    pub workers: usize,
    /// Maximum frames drained into one batch.
    pub batch_window: usize,
    /// Admission policy (ceilings, clamps, waivers).
    pub policy: AdmissionPolicy,
    /// Default per-tenant byte budget per eviction generation
    /// (override per tenant with [`Server::set_tenant_budget`]).
    pub tenant_budget_bytes: u64,
    /// Resident-byte ceiling for the session (eviction trigger); `None`
    /// disables eviction.
    pub resident_budget_bytes: Option<usize>,
    /// Evaluator configuration for the session and its workers.
    pub eval: EvalConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            batch_window: 16,
            policy: AdmissionPolicy::default(),
            tenant_budget_bytes: u64::MAX,
            resident_budget_bytes: None,
            // the serving front runs the full stack: the rewrite
            // optimiser in front of the compiled bytecode backend.
            // Programs are compiled once per *optimised* root within a
            // generation, bit-for-bit the interpreted results — and a
            // query admission would reject in its submitted form can be
            // rescued by a space-class-improving rewrite (the
            // powerset-route → while-route transitive closure headline)
            eval: EvalConfig::rewritten(),
        }
    }
}

/// Per-tenant accounting, folded across every batch the tenant touched.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Frames decoded for this tenant.
    pub submitted: u64,
    /// Requests that cleared admission (and the byte-budget check).
    pub admitted: u64,
    /// Requests turned away (admission or byte budget).
    pub rejected: u64,
    /// Admitted requests that evaluated successfully.
    pub completed: u64,
    /// Admitted requests that erred (budget overrun, panic, …).
    pub errors: u64,
    /// Cross-query warm-cache hits earned by this tenant's jobs.
    pub warm_hits: u64,
    /// Bytes charged in the current eviction generation.
    pub bytes_charged: u64,
    /// Lifetime bytes charged (never reset).
    pub total_bytes: u64,
    /// Per-tenant budget override; `None` uses
    /// [`ServeConfig::tenant_budget_bytes`].
    pub budget_override: Option<u64>,
}

/// What one serving run did — returned when the loop exits.
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// Batches evaluated.
    pub batches: u64,
    /// Frames decoded (requests only; control frames excluded).
    pub frames: u64,
    /// Lines that failed to decode (answered with a `failed` response
    /// when a tenant could be salvaged, dropped otherwise).
    pub decode_errors: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Admitted requests completing successfully.
    pub completed: u64,
    /// Admitted requests erring during evaluation.
    pub errors: u64,
    /// Rejections citing a certified-exponential verdict.
    pub rejected_exponential: u64,
    /// Other admission rejections (ceiling, unanalyzable, probe failure,
    /// ill-typed).
    pub rejected_admission: u64,
    /// Rejections for an exhausted tenant byte budget.
    pub rejected_tenant_budget: u64,
    /// Admitted requests whose *submitted* form admission would have
    /// rejected — the optimiser's rewrite moved them into the
    /// admissible class (e.g. powerset-route → while-route transitive
    /// closure).
    pub rescued: u64,
    /// Final eviction generation of the session.
    pub generation: u64,
    /// The session's aggregate counters (warm hits, evictions, …).
    pub session: SessionStats,
    /// The tenant ledger.
    pub tenants: BTreeMap<String, TenantStats>,
}

/// An admitted job, staged for one batch: session handles plus its
/// declared budget and provenance. Embedders can construct these
/// directly (handles must come from the server's [`Server::session`]
/// in its current generation) and push them through
/// [`Server::run_staged`].
#[derive(Debug, Clone)]
pub struct StagedJob {
    /// Tenant accounted.
    pub tenant: String,
    /// Correlation id.
    pub id: u64,
    /// Interned query.
    pub query: EId,
    /// Interned input.
    pub input: VId,
    /// Declared §3 space budget (enforced by the engine).
    pub budget: u64,
}

/// The serving state: session, config, ledger, counters.
pub struct Server {
    session: EvalSession,
    config: ServeConfig,
    report: ServeReport,
    charge_generation: u64,
}

impl Server {
    /// A fresh server with its own session.
    pub fn new(config: ServeConfig) -> Self {
        let mut session = EvalSession::new(config.eval.clone());
        // migrate to the shared concurrent store *before* the first
        // admission: the probe evaluates powerset-free prefixes inside
        // this session, and `make_shared` starts the shared apply table
        // cold (local entries are not migrated) — staying local until
        // the first batch split would throw the probe's warmth away
        session.make_shared();
        if config.eval.optimise {
            nra_opt::install(&mut session);
        }
        session.set_resident_budget(config.resident_budget_bytes);
        Server {
            session,
            config,
            report: ServeReport::default(),
            charge_generation: 0,
        }
    }

    /// The serving session (handles for [`StagedJob`] must be interned
    /// through this).
    pub fn session(&mut self) -> &mut EvalSession {
        &mut self.session
    }

    /// A snapshot of the report so far.
    pub fn report(&self) -> ServeReport {
        let mut report = self.report.clone();
        report.generation = self.session.generation();
        report.session = *self.session.stats();
        report
    }

    /// Override one tenant's per-generation byte budget.
    pub fn set_tenant_budget(&mut self, tenant: &str, bytes: u64) {
        self.report
            .tenants
            .entry(tenant.to_string())
            .or_default()
            .budget_override = Some(bytes);
    }

    fn tenant(&mut self, name: &str) -> &mut TenantStats {
        self.report.tenants.entry(name.to_string()).or_default()
    }

    /// Reset per-generation charges if the session evicted since the
    /// last check — the "byte budgets ride the generational eviction"
    /// contract.
    fn roll_generation(&mut self) {
        let generation = self.session.generation();
        if generation != self.charge_generation {
            self.charge_generation = generation;
            for tenant in self.report.tenants.values_mut() {
                tenant.bytes_charged = 0;
            }
        }
    }

    /// Admit one request: byte-budget check, typecheck, symbolic +
    /// concrete admission. Returns either a staged job or the rejection
    /// response.
    fn stage(&mut self, request: &Request) -> Result<StagedJob, Response> {
        let reject = |reason: String| Response {
            tenant: request.tenant.clone(),
            id: request.id,
            outcome: Outcome::Rejected { reason },
        };
        // an eviction since the last batch voids the old generation's
        // charges before they can block anyone
        self.roll_generation();
        self.tenant(&request.tenant).submitted += 1;

        // 1. tenant byte budget (per eviction generation)
        let default_budget = self.config.tenant_budget_bytes;
        let generation = self.charge_generation;
        let tenant = self.tenant(&request.tenant);
        let allowance = tenant.budget_override.unwrap_or(default_budget);
        if tenant.bytes_charged >= allowance {
            tenant.rejected += 1;
            let charged = tenant.bytes_charged;
            self.report.rejected_tenant_budget += 1;
            return Err(reject(format!(
                "tenant byte budget exhausted for generation {generation}: {charged} of \
                 {allowance} bytes charged; the ledger resets at the next eviction generation"
            )));
        }

        // 2. typecheck against the input's inferred type
        if let Some(dom) = request.input.infer_type() {
            if let Err(e) = output_type(&request.query, &dom) {
                self.tenant(&request.tenant).rejected += 1;
                self.report.rejected_admission += 1;
                return Err(reject(format!("ill-typed query for this input: {e}")));
            }
        }

        // 3. optimise, then cost-based admission on the *optimised*
        // form — a rewrite that provably improves the space class (the
        // cost gate guarantees it never worsens) can move a query from
        // the rejected into the admitted set
        let raw = self.session.intern_expr(&request.query);
        let input = self.session.intern_value(&request.input);
        let query = if self.config.eval.optimise {
            self.session.optimise_eid(raw)
        } else {
            raw
        };
        match admit(&mut self.session, query, input, &self.config.policy) {
            AdmissionDecision::Admitted(a) => {
                // a rescue = the rewrite changed the query AND the
                // submitted form would have been turned away on its own
                if query != raw
                    && matches!(
                        admit(&mut self.session, raw, input, &self.config.policy),
                        AdmissionDecision::Rejected(_)
                    )
                {
                    self.report.rescued += 1;
                }
                self.tenant(&request.tenant).admitted += 1;
                self.report.admitted += 1;
                Ok(StagedJob {
                    tenant: request.tenant.clone(),
                    id: request.id,
                    query,
                    input,
                    budget: a.budget,
                })
            }
            AdmissionDecision::Rejected(r) => {
                self.tenant(&request.tenant).rejected += 1;
                if matches!(r.verdict, SpaceVerdict::Exponential { .. }) {
                    self.report.rejected_exponential += 1;
                } else {
                    self.report.rejected_admission += 1;
                }
                Err(reject(r.reason))
            }
        }
    }

    /// Evaluate one staged batch: cache-aware partition, scoped-thread
    /// fan-out under per-job budgets, tenant charging, generation roll.
    /// One response per job, in job order.
    pub fn run_staged(&mut self, staged: &[StagedJob]) -> Vec<Response> {
        if staged.is_empty() {
            return Vec::new();
        }
        let pairs: Vec<(EId, VId)> = staged.iter().map(|j| (j.query, j.input)).collect();
        let assignment = partition(&self.session, &pairs, self.config.workers);
        let jobs: Vec<BatchJob> = staged
            .iter()
            .map(|j| BatchJob {
                query: j.query,
                input: j.input,
                max_object_size: Some(j.budget),
            })
            .collect();
        let evals = eval_batch_assigned(&mut self.session, &jobs, &assignment);
        self.report.batches += 1;
        // the batch tail may have evicted (and re-interned the results) —
        // roll the tenant ledgers before charging this batch
        self.roll_generation();
        staged
            .iter()
            .zip(evals)
            .map(|(job, ev)| {
                let tenant = self.report.tenants.entry(job.tenant.clone()).or_default();
                tenant.warm_hits += ev.stats.warm_hits;
                let outcome = match ev.result {
                    Ok(out) => {
                        let bytes = self.session.values().size(out).saturating_mul(8);
                        tenant.bytes_charged = tenant.bytes_charged.saturating_add(bytes);
                        tenant.total_bytes = tenant.total_bytes.saturating_add(bytes);
                        tenant.completed += 1;
                        self.report.completed += 1;
                        Outcome::Ok {
                            declared_budget: job.budget,
                            value: self.session.resolve(out),
                        }
                    }
                    Err(e) => {
                        tenant.errors += 1;
                        self.report.errors += 1;
                        Outcome::Failed {
                            detail: e.to_string(),
                        }
                    }
                };
                Response {
                    tenant: job.tenant.clone(),
                    id: job.id,
                    outcome,
                }
            })
            .collect()
    }

    /// Admit and evaluate one batch of parsed requests. One response
    /// per request, in request order.
    pub fn process_batch(&mut self, requests: &[Request]) -> Vec<Response> {
        let mut slots: Vec<Option<Response>> = vec![None; requests.len()];
        let mut staged = Vec::new();
        let mut staged_slots = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            self.report.frames += 1;
            match self.stage(request) {
                Ok(job) => {
                    staged.push(job);
                    staged_slots.push(i);
                }
                Err(response) => slots[i] = Some(response),
            }
        }
        for (slot, response) in staged_slots.into_iter().zip(self.run_staged(&staged)) {
            slots[slot] = Some(response);
        }
        slots
            .into_iter()
            .map(|r| r.expect("every request answered exactly once"))
            .collect()
    }

    /// The serving loop: block for a frame, drain the window, process,
    /// respond; exit on [`SHUTDOWN_FRAME`](crate::wire::SHUTDOWN_FRAME)
    /// or peer hangup. Returns the final report.
    pub fn run(mut self, mut transport: Endpoint) -> ServeReport {
        // exits when the peer hangs up or a shutdown frame arrives
        'serve: while let Some(first) = transport.rx.recv_line() {
            let mut lines = vec![first];
            while lines.len() < self.config.batch_window.max(1) {
                match transport.rx.try_recv_line() {
                    Ok(Some(line)) => lines.push(line),
                    Ok(None) | Err(_) => break,
                }
            }
            let mut requests = Vec::new();
            let mut shutdown = false;
            for line in &lines {
                match decode_frame(line) {
                    Ok(Frame::Request(request)) => requests.push(request),
                    Ok(Frame::Shutdown) => shutdown = true,
                    Err(e) => {
                        self.report.decode_errors += 1;
                        // salvage the tenant prefix when present so the
                        // client can correlate the failure
                        let tenant = line.split(';').next().unwrap_or("");
                        if crate::wire::validate_tenant(tenant).is_ok() {
                            let id = line
                                .split(';')
                                .nth(1)
                                .and_then(|f| f.parse::<u64>().ok())
                                .unwrap_or(0);
                            let resp = Response {
                                tenant: tenant.to_string(),
                                id,
                                outcome: Outcome::Failed {
                                    detail: format!("wire: {e}"),
                                },
                            };
                            if self.send(&transport, &resp).is_err() {
                                break 'serve;
                            }
                        }
                    }
                }
            }
            for response in self.process_batch(&requests) {
                if self.send(&transport, &response).is_err() {
                    break 'serve;
                }
            }
            if shutdown {
                break;
            }
        }
        self.report()
    }

    fn send(&self, transport: &Endpoint, response: &Response) -> Result<(), WireError> {
        transport.tx.send_line(&encode_response(response)?)
    }
}

/// A client for the wire front: submit parsed queries, receive
/// responses. Both halves are independently usable (the sender clones),
/// so many submitter threads can share one server.
#[derive(Debug)]
pub struct Client {
    /// Frame sender (cloneable).
    pub tx: crate::wire::LineSender,
    /// Response receiver.
    pub rx: crate::wire::LineReceiver,
}

impl Client {
    /// Submit one query under `tenant` with correlation id `id`.
    pub fn submit(
        &self,
        tenant: &str,
        id: u64,
        query: &Expr,
        input: &Value,
    ) -> Result<(), WireError> {
        let request = Request {
            tenant: tenant.to_string(),
            id,
            query: query.clone(),
            input: input.clone(),
        };
        self.tx.send_line(&crate::wire::encode_request(&request)?)
    }

    /// Block for the next response; `None` when the server exited.
    pub fn recv(&mut self) -> Option<Result<Response, WireError>> {
        self.rx
            .recv_line()
            .map(|line| crate::wire::decode_response(&line))
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&self) -> Result<(), WireError> {
        self.tx.send_line(crate::wire::SHUTDOWN_FRAME)
    }
}

/// Spawn a server on its own thread, returning the connected client
/// and the handle that yields the [`ServeReport`] after
/// [`Client::shutdown`] (or hangup).
pub fn spawn(config: ServeConfig) -> (Client, JoinHandle<ServeReport>) {
    let (client_end, server_end) = socketpair();
    let handle = std::thread::spawn(move || Server::new(config).run(server_end));
    (
        Client {
            tx: client_end.tx,
            rx: client_end.rx,
        },
        handle,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_core::queries;

    #[test]
    fn serve_round_trip_admits_rescues_and_rejects() {
        let (mut client, handle) = spawn(ServeConfig::default());
        client
            .submit("acme", 1, &queries::tc_while(), &Value::chain(6))
            .unwrap();
        // the powerset route: certified exponential as submitted, but
        // the optimiser rewrites it to the while route at the door
        client
            .submit("acme", 2, &queries::tc_paths(), &Value::chain(20))
            .unwrap();
        // a bare powerset really is exponential — nothing to rewrite
        client
            .submit("acme", 3, &nra_core::builder::powerset(), &Value::chain(20))
            .unwrap();
        let mut by_id = BTreeMap::new();
        for _ in 0..3 {
            let resp = client.recv().unwrap().unwrap();
            by_id.insert(resp.id, resp.outcome);
        }
        match &by_id[&1] {
            Outcome::Ok { value, .. } => assert_eq!(*value, Value::chain_tc(6)),
            other => panic!("tc_while: {other:?}"),
        }
        match &by_id[&2] {
            Outcome::Ok { value, .. } => assert_eq!(*value, Value::chain_tc(20)),
            other => panic!("tc_paths chain(20) must be rescued: {other:?}"),
        }
        match &by_id[&3] {
            Outcome::Rejected { reason } => {
                assert!(reason.contains("Theorem 4.1"), "{reason}")
            }
            other => panic!("powerset chain(20): {other:?}"),
        }
        client.shutdown().unwrap();
        let report = handle.join().unwrap();
        assert_eq!(report.completed, 2);
        assert_eq!(report.rescued, 1);
        assert_eq!(report.rejected_exponential, 1);
        assert_eq!(report.tenants["acme"].submitted, 3);
    }

    #[test]
    fn optimise_off_front_rejects_what_the_default_front_rescues() {
        let mut server = Server::new(ServeConfig {
            eval: EvalConfig::compiled(),
            ..ServeConfig::default()
        });
        let responses = server.process_batch(&[Request {
            tenant: "acme".into(),
            id: 1,
            query: queries::tc_paths(),
            input: Value::chain(20),
        }]);
        assert!(
            matches!(&responses[0].outcome, Outcome::Rejected { reason } if reason.contains("Theorem 4.1")),
            "{responses:?}"
        );
        assert_eq!(server.report().rescued, 0);
    }

    #[test]
    fn admission_probe_warms_the_shared_store_for_the_admitted_run() {
        // powerset over a nontrivial powerset-free prefix: admission
        // must evaluate `tc_step` on the live input to price the site,
        // and that judgment must land in the shared apply table so the
        // admitted run starts warm (a local cache is discarded, not
        // migrated, when the first batch split shares the store).
        // Interpreted memo config: it probes the cache at every node,
        // so the overlap with the probe's keys is exact rather than
        // call-grain dependent; optimise stays off so the query runs as
        // submitted
        let mut server = Server::new(ServeConfig {
            eval: EvalConfig::optimised(),
            ..ServeConfig::default()
        });
        let query = nra_core::builder::compose(nra_core::builder::powerset(), queries::tc_step());
        let responses = server.process_batch(&[Request {
            tenant: "acme".into(),
            id: 1,
            query,
            input: Value::chain(4),
        }]);
        assert!(
            matches!(&responses[0].outcome, Outcome::Ok { .. }),
            "{responses:?}"
        );
        let report = server.report();
        assert!(
            report.tenants["acme"].warm_hits > 0,
            "probe judgments must land in the shared store, not a doomed local cache: {report:?}"
        );
    }

    #[test]
    fn warm_hits_accrue_across_tenants_on_the_shared_store() {
        let (mut client, handle) = spawn(ServeConfig::default());
        for (round, tenant) in ["alpha", "beta", "alpha", "beta"].iter().enumerate() {
            client
                .submit(tenant, round as u64, &queries::tc_while(), &Value::chain(9))
                .unwrap();
            let resp = client.recv().unwrap().unwrap();
            assert!(matches!(resp.outcome, Outcome::Ok { .. }), "{resp:?}");
        }
        client.shutdown().unwrap();
        let report = handle.join().unwrap();
        assert!(
            report.tenants["beta"].warm_hits > 0,
            "beta must warm-hit judgments derived for alpha: {report:?}"
        );
    }

    #[test]
    fn ill_typed_queries_are_rejected_at_the_door() {
        let mut server = Server::new(ServeConfig::default());
        let responses = server.process_batch(&[Request {
            tenant: "acme".into(),
            id: 9,
            // fst of a set input: ill-typed
            query: nra_core::builder::fst(),
            input: Value::chain(3),
        }]);
        assert!(
            matches!(&responses[0].outcome, Outcome::Rejected { reason } if reason.contains("ill-typed")),
            "{responses:?}"
        );
    }
}
