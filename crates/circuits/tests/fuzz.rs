//! Differential fuzzing of Proposition 4.3's three artefacts: for random
//! flat relational queries and random relations, the reference semantics,
//! the compiled constant-depth circuit, and the translated `NRA` term must
//! all produce the same relation.

use nra_circuits::relalg::{compile, FlatQuery};
use nra_circuits::to_nra::run_via_nra;
use nra_testkit::{check, Rng};
use std::collections::BTreeSet;

const D: u64 = 3;

/// The depth-0 fallback: a projection of the binary input relation.
fn gen_base(arity: usize, rng: &mut Rng) -> FlatQuery {
    let cols = (0..arity).map(|_| rng.usize_below(2)).collect();
    FlatQuery::Project(Box::new(FlatQuery::Input(0, 2)), cols)
}

/// Random query of the given output arity, depth-bounded. Inner arities
/// are kept ≤ 4 so circuits stay below ~100 wires per node. Mirrors the
/// constructor mix of the original proptest strategy: base projections,
/// the raw input (at arity 2), the binary set operations, products of a
/// split, projections from a wider query, and both selections.
fn gen_query(arity: usize, depth: u32, rng: &mut Rng) -> FlatQuery {
    if depth == 0 {
        return gen_base(arity, rng);
    }
    #[derive(Clone, Copy)]
    enum Opt {
        Base,
        Input,
        SetOp(usize),
        Product(usize),
        ProjectFrom(usize),
        SelectEq,
        SelectConst,
    }
    let mut options = vec![Opt::Base];
    if arity == 2 {
        options.push(Opt::Input);
    }
    for op in 0..3usize {
        options.push(Opt::SetOp(op));
    }
    if arity >= 2 {
        for split in 1..arity {
            options.push(Opt::Product(split));
        }
    }
    for inner in (arity.max(2))..=4usize.min(arity + 2) {
        options.push(Opt::ProjectFrom(inner));
    }
    options.push(Opt::SelectEq);
    options.push(Opt::SelectConst);

    match *rng.choose(&options) {
        Opt::Base => gen_base(arity, rng),
        Opt::Input => FlatQuery::Input(0, 2),
        Opt::SetOp(op) => {
            let a = Box::new(gen_query(arity, depth - 1, rng));
            let b = Box::new(gen_query(arity, depth - 1, rng));
            match op {
                0 => FlatQuery::Union(a, b),
                1 => FlatQuery::Intersect(a, b),
                _ => FlatQuery::Difference(a, b),
            }
        }
        Opt::Product(split) => FlatQuery::Product(
            Box::new(gen_query(split, depth - 1, rng)),
            Box::new(gen_query(arity - split, depth - 1, rng)),
        ),
        Opt::ProjectFrom(inner) => {
            let source = gen_query(inner, depth - 1, rng);
            let cols = (0..arity).map(|_| rng.usize_below(inner)).collect();
            FlatQuery::Project(Box::new(source), cols)
        }
        Opt::SelectEq => FlatQuery::SelectEq(
            Box::new(gen_query(arity, depth - 1, rng)),
            rng.usize_below(arity),
            rng.usize_below(arity),
        ),
        Opt::SelectConst => FlatQuery::SelectConst(
            Box::new(gen_query(arity, depth - 1, rng)),
            rng.usize_below(arity),
            rng.below(D),
        ),
    }
}

fn gen_relation(rng: &mut Rng) -> BTreeSet<Vec<u64>> {
    let len = rng.usize_below(6);
    (0..len).map(|_| vec![rng.below(D), rng.below(D)]).collect()
}

#[test]
fn reference_circuit_and_nra_agree() {
    check("reference_circuit_and_nra_agree", 48, |_, rng| {
        let q = gen_query(2, 3, rng);
        let r = gen_relation(rng);
        let inputs = vec![r];
        let reference = q.eval(&inputs, D);
        let circuit = compile(&q, &[2], D).run(&inputs);
        assert_eq!(&circuit, &reference, "circuit mismatch on {:?}", q);
        let nra = run_via_nra(&q, &[2], &inputs);
        assert_eq!(&nra, &reference, "NRA mismatch on {:?}", q);
    });
}

#[test]
fn unary_and_ternary_arities_agree_too() {
    check("unary_and_ternary_arities_agree_too", 48, |_, rng| {
        let q1 = gen_query(1, 2, rng);
        let q3 = gen_query(3, 2, rng);
        let r = gen_relation(rng);
        let inputs = vec![r];
        for q in [q1, q3] {
            let reference = q.eval(&inputs, D);
            let circuit = compile(&q, &[2], D).run(&inputs);
            assert_eq!(&circuit, &reference, "circuit mismatch on {:?}", q);
            let nra = run_via_nra(&q, &[2], &inputs);
            assert_eq!(&nra, &reference, "NRA mismatch on {:?}", q);
        }
    });
}

#[test]
fn compiled_circuits_have_constant_depth() {
    check("compiled_circuits_have_constant_depth", 48, |_, rng| {
        let q = gen_query(2, 3, rng);
        // depth must not depend on the domain size — once the domain
        // exceeds every constant in the query (below that, constant
        // folding can collapse the circuit entirely, e.g. σ_{col=2} over
        // [2] is identically false)
        let d_small = compile(&q, &[2], 5).circuit.depth();
        let d_large = compile(&q, &[2], 9).circuit.depth();
        assert!(
            d_large <= d_small.max(1),
            "depth grew: {:?} vs {:?} on {:?}",
            d_small,
            d_large,
            q
        );
    });
}
