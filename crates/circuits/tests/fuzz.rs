//! Differential fuzzing of Proposition 4.3's three artefacts: for random
//! flat relational queries and random relations, the reference semantics,
//! the compiled constant-depth circuit, and the translated `NRA` term must
//! all produce the same relation.

use nra_circuits::relalg::{compile, FlatQuery};
use nra_circuits::to_nra::run_via_nra;
use proptest::prelude::*;
use proptest::strategy::Union;
use std::collections::BTreeSet;

const D: u64 = 3;

/// Random query of the given output arity, depth-bounded. Inner arities
/// are kept ≤ 4 so circuits stay below ~100 wires per node.
fn gen_query(arity: usize, depth: u32) -> BoxedStrategy<FlatQuery> {
    let base = proptest::collection::vec(0usize..2, arity)
        .prop_map(|cols| FlatQuery::Project(Box::new(FlatQuery::Input(0, 2)), cols))
        .boxed();
    if depth == 0 {
        return base;
    }
    let mut options: Vec<BoxedStrategy<FlatQuery>> = vec![base];
    if arity == 2 {
        options.push(Just(FlatQuery::Input(0, 2)).boxed());
    }
    // binary set operations preserve arity
    for op in 0..3usize {
        let lhs = gen_query(arity, depth - 1);
        let rhs = gen_query(arity, depth - 1);
        options.push(
            (lhs, rhs)
                .prop_map(move |(a, b)| match op {
                    0 => FlatQuery::Union(Box::new(a), Box::new(b)),
                    1 => FlatQuery::Intersect(Box::new(a), Box::new(b)),
                    _ => FlatQuery::Difference(Box::new(a), Box::new(b)),
                })
                .boxed(),
        );
    }
    // product of a split
    if arity >= 2 {
        for split in 1..arity {
            let lhs = gen_query(split, depth - 1);
            let rhs = gen_query(arity - split, depth - 1);
            options.push(
                (lhs, rhs)
                    .prop_map(|(a, b)| FlatQuery::Product(Box::new(a), Box::new(b)))
                    .boxed(),
            );
        }
    }
    // projection from a wider query
    for inner in (arity.max(2))..=4usize.min(arity + 2) {
        let source = gen_query(inner, depth - 1);
        let cols = proptest::collection::vec(0usize..inner, arity);
        options.push(
            (source, cols)
                .prop_map(|(q, cols)| FlatQuery::Project(Box::new(q), cols))
                .boxed(),
        );
    }
    // selections
    {
        let source = gen_query(arity, depth - 1);
        let idx = (0usize..arity, 0usize..arity);
        options.push(
            (source, idx)
                .prop_map(|(q, (i, j))| FlatQuery::SelectEq(Box::new(q), i, j))
                .boxed(),
        );
        let source = gen_query(arity, depth - 1);
        options.push(
            (source, 0usize..arity, 0u64..D)
                .prop_map(|(q, i, c)| FlatQuery::SelectConst(Box::new(q), i, c))
                .boxed(),
        );
    }
    Union::new(options).boxed()
}

fn gen_relation() -> impl Strategy<Value = BTreeSet<Vec<u64>>> {
    proptest::collection::btree_set(
        proptest::collection::vec(0u64..D, 2),
        0..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reference_circuit_and_nra_agree(
        q in gen_query(2, 3),
        r in gen_relation(),
    ) {
        let inputs = vec![r];
        let reference = q.eval(&inputs, D);
        let circuit = compile(&q, &[2], D).run(&inputs);
        prop_assert_eq!(&circuit, &reference, "circuit mismatch on {:?}", q);
        let nra = run_via_nra(&q, &[2], &inputs);
        prop_assert_eq!(&nra, &reference, "NRA mismatch on {:?}", q);
    }

    #[test]
    fn unary_and_ternary_arities_agree_too(
        q1 in gen_query(1, 2),
        q3 in gen_query(3, 2),
        r in gen_relation(),
    ) {
        let inputs = vec![r];
        for q in [q1, q3] {
            let reference = q.eval(&inputs, D);
            let circuit = compile(&q, &[2], D).run(&inputs);
            prop_assert_eq!(&circuit, &reference, "circuit mismatch on {:?}", q);
            let nra = run_via_nra(&q, &[2], &inputs);
            prop_assert_eq!(&nra, &reference, "NRA mismatch on {:?}", q);
        }
    }

    #[test]
    fn compiled_circuits_have_constant_depth(q in gen_query(2, 3)) {
        // depth must not depend on the domain size — once the domain
        // exceeds every constant in the query (below that, constant
        // folding can collapse the circuit entirely, e.g. σ_{col=2} over
        // [2] is identically false)
        let d_small = compile(&q, &[2], 5).circuit.depth();
        let d_large = compile(&q, &[2], 9).circuit.depth();
        prop_assert!(
            d_large <= d_small.max(1),
            "depth grew: {:?} vs {:?} on {:?}", d_small, d_large, q
        );
    }
}
