//! Flat relational algebra compiled to constant-depth circuits — the
//! executable content of Proposition 4.3 ("all functions in
//! `NRA(powerset)` having polynomially bounded complexity are in `TC⁰`";
//! its `NRA ⊆ AC⁰` companion generalises Immerman's `FO ⊆ AC⁰`).
//!
//! A relation of arity `a` over the domain `[d] = {0,…,d−1}` is encoded as
//! `dᵃ` wires, one per tuple (row-major). Every algebra operator becomes a
//! *constant* number of gate levels:
//!
//! | operator | gates |
//! |---|---|
//! | `∪, ∩, ∖` | pointwise OR / AND / AND-NOT |
//! | `×` | AND of the two tuple wires |
//! | `π` (projection) | OR over the dropped coordinates (∃) |
//! | `σ` (selection) | rewiring, no gates |
//! | `empty` | NOT-OR over all wires |
//! | `|R| ≥ k` | one threshold gate — the `TC⁰` extra |
//!
//! so the compiled circuit of a fixed query has depth independent of `d`
//! and size polynomial in `d` (experiment E8 tabulates both).

use crate::circuit::{Circuit, CircuitBuilder, GateId};
use std::collections::BTreeSet;

/// A flat relational-algebra query over named input relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlatQuery {
    /// The i-th input relation, with its arity.
    Input(usize, usize),
    /// Set union (same arity).
    Union(Box<FlatQuery>, Box<FlatQuery>),
    /// Set intersection.
    Intersect(Box<FlatQuery>, Box<FlatQuery>),
    /// Set difference.
    Difference(Box<FlatQuery>, Box<FlatQuery>),
    /// Cartesian product (arities add).
    Product(Box<FlatQuery>, Box<FlatQuery>),
    /// Keep the listed columns, in order (∃ over the dropped ones).
    Project(Box<FlatQuery>, Vec<usize>),
    /// Keep tuples whose two columns are equal.
    SelectEq(Box<FlatQuery>, usize, usize),
    /// Keep tuples whose column equals a constant.
    SelectConst(Box<FlatQuery>, usize, u64),
}

impl FlatQuery {
    /// The arity of the query result.
    pub fn arity(&self) -> usize {
        match self {
            FlatQuery::Input(_, a) => *a,
            FlatQuery::Union(a, _) | FlatQuery::Intersect(a, _) | FlatQuery::Difference(a, _) => {
                a.arity()
            }
            FlatQuery::Product(a, b) => a.arity() + b.arity(),
            FlatQuery::Project(_, cols) => cols.len(),
            FlatQuery::SelectEq(a, _, _) | FlatQuery::SelectConst(a, _, _) => a.arity(),
        }
    }

    /// Number of operators (query size).
    pub fn size(&self) -> usize {
        match self {
            FlatQuery::Input(_, _) => 1,
            FlatQuery::Union(a, b)
            | FlatQuery::Intersect(a, b)
            | FlatQuery::Difference(a, b)
            | FlatQuery::Product(a, b) => 1 + a.size() + b.size(),
            FlatQuery::Project(a, _)
            | FlatQuery::SelectEq(a, _, _)
            | FlatQuery::SelectConst(a, _, _) => 1 + a.size(),
        }
    }

    /// Reference evaluation over explicit tuple sets.
    pub fn eval(&self, inputs: &[BTreeSet<Vec<u64>>], d: u64) -> BTreeSet<Vec<u64>> {
        match self {
            FlatQuery::Input(i, a) => inputs[*i]
                .iter()
                .filter(|t| t.len() == *a && t.iter().all(|&v| v < d))
                .cloned()
                .collect(),
            FlatQuery::Union(a, b) => a
                .eval(inputs, d)
                .union(&b.eval(inputs, d))
                .cloned()
                .collect(),
            FlatQuery::Intersect(a, b) => a
                .eval(inputs, d)
                .intersection(&b.eval(inputs, d))
                .cloned()
                .collect(),
            FlatQuery::Difference(a, b) => a
                .eval(inputs, d)
                .difference(&b.eval(inputs, d))
                .cloned()
                .collect(),
            FlatQuery::Product(a, b) => {
                let xa = a.eval(inputs, d);
                let xb = b.eval(inputs, d);
                let mut out = BTreeSet::new();
                for t1 in &xa {
                    for t2 in &xb {
                        let mut t = t1.clone();
                        t.extend_from_slice(t2);
                        out.insert(t);
                    }
                }
                out
            }
            FlatQuery::Project(a, cols) => a
                .eval(inputs, d)
                .into_iter()
                .map(|t| cols.iter().map(|&c| t[c]).collect())
                .collect(),
            FlatQuery::SelectEq(a, i, j) => a
                .eval(inputs, d)
                .into_iter()
                .filter(|t| t[*i] == t[*j])
                .collect(),
            FlatQuery::SelectConst(a, i, c) => a
                .eval(inputs, d)
                .into_iter()
                .filter(|t| t[*i] == *c)
                .collect(),
        }
    }
}

/// Tuple → wire index (row-major over domain `d`).
pub fn tuple_to_index(tuple: &[u64], d: u64) -> usize {
    tuple
        .iter()
        .fold(0usize, |acc, &v| acc * d as usize + v as usize)
}

/// Wire index → tuple.
pub fn index_to_tuple(mut index: usize, arity: usize, d: u64) -> Vec<u64> {
    let mut t = vec![0u64; arity];
    for i in (0..arity).rev() {
        t[i] = (index % d as usize) as u64;
        index /= d as usize;
    }
    t
}

/// Enumerate all tuples of an arity over `[d]`, in wire order.
pub fn all_tuples(arity: usize, d: u64) -> Vec<Vec<u64>> {
    let count = (d as usize).pow(arity as u32);
    (0..count).map(|i| index_to_tuple(i, arity, d)).collect()
}

/// Encode a relation as its characteristic bit vector.
pub fn encode_relation(rel: &BTreeSet<Vec<u64>>, arity: usize, d: u64) -> Vec<bool> {
    let mut bits = vec![false; (d as usize).pow(arity as u32)];
    for t in rel {
        assert_eq!(t.len(), arity);
        bits[tuple_to_index(t, d)] = true;
    }
    bits
}

/// Decode a bit vector back into a relation.
pub fn decode_relation(bits: &[bool], arity: usize, d: u64) -> BTreeSet<Vec<u64>> {
    bits.iter()
        .enumerate()
        .filter(|(_, &b)| b)
        .map(|(i, _)| index_to_tuple(i, arity, d))
        .collect()
}

/// The compiled form of a query: the circuit plus the wire layout.
pub struct CompiledQuery {
    /// The circuit; inputs are the concatenated input-relation wires.
    pub circuit: Circuit,
    /// Arities of the input relations, in input order.
    pub input_arities: Vec<usize>,
    /// Arity of the output relation.
    pub output_arity: usize,
    /// Domain size.
    pub domain: u64,
}

impl CompiledQuery {
    /// Run the circuit on explicit relations.
    pub fn run(&self, inputs: &[BTreeSet<Vec<u64>>]) -> BTreeSet<Vec<u64>> {
        assert_eq!(inputs.len(), self.input_arities.len());
        let mut bits = Vec::new();
        for (rel, &a) in inputs.iter().zip(&self.input_arities) {
            bits.extend(encode_relation(rel, a, self.domain));
        }
        let out = self.circuit.eval(&bits);
        decode_relation(&out, self.output_arity, self.domain)
    }
}

/// Compile a relational query to a constant-depth circuit over domain
/// `[d]`. `input_arities[i]` is the arity of `Input(i, ·)`.
pub fn compile(query: &FlatQuery, input_arities: &[usize], d: u64) -> CompiledQuery {
    let mut b = CircuitBuilder::new();
    let mut input_wires: Vec<Vec<GateId>> = Vec::new();
    for &a in input_arities {
        input_wires.push(b.inputs((d as usize).pow(a as u32)));
    }
    let outputs = compile_rec(query, &input_wires, d, &mut b);
    let output_arity = query.arity();
    CompiledQuery {
        circuit: b.build(outputs),
        input_arities: input_arities.to_vec(),
        output_arity,
        domain: d,
    }
}

fn compile_rec(
    q: &FlatQuery,
    inputs: &[Vec<GateId>],
    d: u64,
    b: &mut CircuitBuilder,
) -> Vec<GateId> {
    match q {
        FlatQuery::Input(i, a) => {
            assert_eq!(
                inputs[*i].len(),
                (d as usize).pow(*a as u32),
                "arity annotation mismatch"
            );
            inputs[*i].clone()
        }
        FlatQuery::Union(x, y) => {
            let wx = compile_rec(x, inputs, d, b);
            let wy = compile_rec(y, inputs, d, b);
            wx.into_iter().zip(wy).map(|(p, q)| b.or([p, q])).collect()
        }
        FlatQuery::Intersect(x, y) => {
            let wx = compile_rec(x, inputs, d, b);
            let wy = compile_rec(y, inputs, d, b);
            wx.into_iter().zip(wy).map(|(p, q)| b.and([p, q])).collect()
        }
        FlatQuery::Difference(x, y) => {
            let wx = compile_rec(x, inputs, d, b);
            let wy = compile_rec(y, inputs, d, b);
            wx.into_iter()
                .zip(wy)
                .map(|(p, q)| {
                    let nq = b.not(q);
                    b.and([p, nq])
                })
                .collect()
        }
        FlatQuery::Product(x, y) => {
            let wx = compile_rec(x, inputs, d, b);
            let wy = compile_rec(y, inputs, d, b);
            let mut out = Vec::with_capacity(wx.len() * wy.len());
            for &p in &wx {
                for &q in &wy {
                    out.push(b.and([p, q]));
                }
            }
            out
        }
        FlatQuery::Project(x, cols) => {
            let inner_arity = x.arity();
            let wx = compile_rec(x, inputs, d, b);
            let out_arity = cols.len();
            let mut buckets: Vec<Vec<GateId>> =
                vec![Vec::new(); (d as usize).pow(out_arity as u32)];
            for (idx, &wire) in wx.iter().enumerate() {
                let t = index_to_tuple(idx, inner_arity, d);
                let projected: Vec<u64> = cols.iter().map(|&c| t[c]).collect();
                buckets[tuple_to_index(&projected, d)].push(wire);
            }
            buckets.into_iter().map(|ws| b.or(ws)).collect()
        }
        FlatQuery::SelectEq(x, i, j) => {
            let arity = x.arity();
            let wx = compile_rec(x, inputs, d, b);
            wx.iter()
                .enumerate()
                .map(|(idx, &wire)| {
                    let t = index_to_tuple(idx, arity, d);
                    if t[*i] == t[*j] {
                        wire
                    } else {
                        b.constant(false)
                    }
                })
                .collect()
        }
        FlatQuery::SelectConst(x, i, c) => {
            let arity = x.arity();
            let wx = compile_rec(x, inputs, d, b);
            wx.iter()
                .enumerate()
                .map(|(idx, &wire)| {
                    let t = index_to_tuple(idx, arity, d);
                    if t[*i] == *c {
                        wire
                    } else {
                        b.constant(false)
                    }
                })
                .collect()
        }
    }
}

/// Boolean queries over a relation query — single-output circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoolQuery {
    /// `empty(q)`.
    IsEmpty(FlatQuery),
    /// `q₁ ⊆ q₂` (same arity).
    Subset(FlatQuery, FlatQuery),
    /// `|q| ≥ k` — needs a threshold gate (`TC⁰`).
    CardAtLeast(FlatQuery, u32),
}

impl BoolQuery {
    /// Reference semantics.
    pub fn eval(&self, inputs: &[BTreeSet<Vec<u64>>], d: u64) -> bool {
        match self {
            BoolQuery::IsEmpty(q) => q.eval(inputs, d).is_empty(),
            BoolQuery::Subset(a, b) => a.eval(inputs, d).is_subset(&b.eval(inputs, d)),
            BoolQuery::CardAtLeast(q, k) => q.eval(inputs, d).len() as u32 >= *k,
        }
    }
}

/// Compile a boolean query to a single-output circuit.
pub fn compile_bool(query: &BoolQuery, input_arities: &[usize], d: u64) -> CompiledQuery {
    let mut b = CircuitBuilder::new();
    let mut input_wires: Vec<Vec<GateId>> = Vec::new();
    for &a in input_arities {
        input_wires.push(b.inputs((d as usize).pow(a as u32)));
    }
    let out = match query {
        BoolQuery::IsEmpty(q) => {
            let ws = compile_rec(q, &input_wires, d, &mut b);
            let any = b.or(ws);
            b.not(any)
        }
        BoolQuery::Subset(x, y) => {
            let wx = compile_rec(x, &input_wires, d, &mut b);
            let wy = compile_rec(y, &input_wires, d, &mut b);
            let implications: Vec<GateId> = wx
                .into_iter()
                .zip(wy)
                .map(|(p, q)| {
                    let np = b.not(p);
                    b.or([np, q])
                })
                .collect();
            b.and(implications)
        }
        BoolQuery::CardAtLeast(q, k) => {
            let ws = compile_rec(q, &input_wires, d, &mut b);
            b.threshold(*k, ws)
        }
    };
    CompiledQuery {
        circuit: b.build(vec![out]),
        input_arities: input_arities.to_vec(),
        output_arity: 0,
        domain: d,
    }
}

/// The relational join `r ∘ r = π₀,₃(σ₁₌₂(r × r))` — one TC round, used
/// to cross-check the circuit pipeline against the `NRA` evaluator.
pub fn join_query() -> FlatQuery {
    FlatQuery::Project(
        Box::new(FlatQuery::SelectEq(
            Box::new(FlatQuery::Product(
                Box::new(FlatQuery::Input(0, 2)),
                Box::new(FlatQuery::Input(0, 2)),
            )),
            1,
            2,
        )),
        vec![0, 3],
    )
}

/// `r ∪ r∘r` — the inflationary TC step as a flat query.
pub fn tc_step_query() -> FlatQuery {
    FlatQuery::Union(Box::new(FlatQuery::Input(0, 2)), Box::new(join_query()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(edges: &[(u64, u64)]) -> BTreeSet<Vec<u64>> {
        edges.iter().map(|&(a, b)| vec![a, b]).collect()
    }

    fn rnd_rel(d: u64, seed: u64) -> BTreeSet<Vec<u64>> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut out = BTreeSet::new();
        for a in 0..d {
            for b in 0..d {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state.is_multiple_of(3) {
                    out.insert(vec![a, b]);
                }
            }
        }
        out
    }

    #[test]
    fn tuple_indexing_round_trips() {
        let d = 4;
        for arity in 1..4 {
            for (i, t) in all_tuples(arity, d).iter().enumerate() {
                assert_eq!(tuple_to_index(t, d), i);
                assert_eq!(&index_to_tuple(i, arity, d), t);
            }
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let r = rel(&[(0, 1), (2, 3), (3, 0)]);
        let bits = encode_relation(&r, 2, 4);
        assert_eq!(decode_relation(&bits, 2, 4), r);
    }

    #[test]
    fn circuit_agrees_with_reference_semantics() {
        let d = 4;
        let queries: Vec<FlatQuery> = vec![
            FlatQuery::Input(0, 2),
            FlatQuery::Union(
                Box::new(FlatQuery::Input(0, 2)),
                Box::new(FlatQuery::Input(1, 2)),
            ),
            FlatQuery::Intersect(
                Box::new(FlatQuery::Input(0, 2)),
                Box::new(FlatQuery::Input(1, 2)),
            ),
            FlatQuery::Difference(
                Box::new(FlatQuery::Input(0, 2)),
                Box::new(FlatQuery::Input(1, 2)),
            ),
            FlatQuery::Project(Box::new(FlatQuery::Input(0, 2)), vec![0]),
            FlatQuery::Project(Box::new(FlatQuery::Input(0, 2)), vec![1, 0]),
            FlatQuery::SelectEq(Box::new(FlatQuery::Input(0, 2)), 0, 1),
            FlatQuery::SelectConst(Box::new(FlatQuery::Input(0, 2)), 0, 2),
            join_query(),
            tc_step_query(),
        ];
        for (qi, q) in queries.iter().enumerate() {
            let arities = vec![2usize, 2usize];
            let compiled = compile(q, &arities, d);
            for seed in 0..5 {
                let inputs = vec![rnd_rel(d, seed), rnd_rel(d, seed + 100)];
                let expect = q.eval(&inputs, d);
                let got = compiled.run(&inputs);
                assert_eq!(got, expect, "query {qi}, seed {seed}");
            }
        }
    }

    #[test]
    fn join_matches_relational_composition() {
        let d = 5;
        let r = rel(&[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let compiled = compile(&join_query(), &[2], d);
        let got = compiled.run(std::slice::from_ref(&r));
        assert_eq!(got, rel(&[(0, 2), (1, 3), (2, 4)]));
    }

    #[test]
    fn depth_is_constant_while_size_grows_polynomially() {
        let q = tc_step_query();
        let mut last_depth = None;
        let mut sizes = Vec::new();
        for d in [2u64, 3, 4, 6, 8] {
            let compiled = compile(&q, &[2], d);
            let depth = compiled.circuit.depth();
            if let Some(prev) = last_depth {
                assert_eq!(depth, prev, "depth must not grow with the domain");
            }
            last_depth = Some(depth);
            sizes.push((d, compiled.circuit.size()));
        }
        // size grows ≈ d⁴ (the product dominates): check the growth rate
        // is polynomial, i.e. size(8)/size(4) ≲ (8/4)⁴⁺ᵋ
        let s4 = sizes.iter().find(|(d, _)| *d == 4).unwrap().1 as f64;
        let s8 = sizes.iter().find(|(d, _)| *d == 8).unwrap().1 as f64;
        assert!(s8 / s4 < 2f64.powi(5), "polynomial growth, got {s4} → {s8}");
    }

    #[test]
    fn bool_queries() {
        let d = 4;
        let q_empty =
            BoolQuery::IsEmpty(FlatQuery::SelectEq(Box::new(FlatQuery::Input(0, 2)), 0, 1));
        let q_sub = BoolQuery::Subset(FlatQuery::Input(0, 2), FlatQuery::Input(1, 2));
        let q_card = BoolQuery::CardAtLeast(FlatQuery::Input(0, 2), 3);
        for seed in 0..8 {
            let inputs = vec![rnd_rel(d, seed), rnd_rel(d, seed * 7 + 1)];
            for (qi, q) in [&q_empty, &q_sub, &q_card].into_iter().enumerate() {
                let arities = vec![2usize, 2usize];
                let compiled = compile_bool(q, &arities, d);
                let got = compiled.circuit.eval(&{
                    let mut bits = Vec::new();
                    for (r, &a) in inputs.iter().zip(&arities) {
                        bits.extend(encode_relation(r, a, d));
                    }
                    bits
                })[0];
                assert_eq!(got, q.eval(&inputs, d), "query {qi}, seed {seed}");
            }
        }
    }

    #[test]
    fn cardinality_needs_threshold_but_emptiness_does_not() {
        let d = 3;
        let empty = compile_bool(&BoolQuery::IsEmpty(FlatQuery::Input(0, 2)), &[2], d);
        assert!(!empty.circuit.uses_threshold(), "emptiness is AC⁰");
        let card = compile_bool(&BoolQuery::CardAtLeast(FlatQuery::Input(0, 2), 4), &[2], d);
        assert!(card.circuit.uses_threshold(), "counting is the TC⁰ extra");
    }
}
