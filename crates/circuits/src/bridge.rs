//! Cross-validation bridge: run flat queries both as circuits and through
//! the `NRA` evaluator, on the same binary relations.
//!
//! Proposition 4.3 relates the polynomially-bounded fragment of
//! `NRA(powerset)` to `TC⁰`. The bridge makes the relationship checkable
//! on real queries: a binary relation is encoded once as a complex object
//! `{N × N}` and once as a `d²`-wire bit vector; the `NRA` term and the
//! compiled circuit must produce the same relation.

use crate::relalg::{compile, CompiledQuery, FlatQuery};
use nra_core::expr::Expr;
use nra_core::value::intern;
use std::collections::BTreeSet;

/// An edge set over `u64` node ids.
pub type EdgeSet = BTreeSet<(u64, u64)>;

/// A pair of equivalent artefacts for one query over binary relations.
pub struct BridgedQuery {
    /// The `NRA` term, of type `{N×N} → {N×N}`.
    pub nra: Expr,
    /// The flat query over one binary input.
    pub flat: FlatQuery,
}

/// The relational-composition round `r ∘ r`.
pub fn join_bridge() -> BridgedQuery {
    BridgedQuery {
        nra: nra_core::queries::compose_rel(),
        flat: crate::relalg::join_query(),
    }
}

/// The inflationary TC step `r ∪ r∘r`.
pub fn tc_step_bridge() -> BridgedQuery {
    BridgedQuery {
        nra: nra_core::queries::tc_step(),
        flat: crate::relalg::tc_step_query(),
    }
}

/// Evaluate both sides on the same relation (nodes must be `< d`) and
/// return `(nra_result, circuit_result)`.
pub fn run_both(bridged: &BridgedQuery, edges: &EdgeSet, d: u64) -> (EdgeSet, EdgeSet) {
    // NRA side, on the interned hot path: the relation is hash-consed
    // straight into the arena and the result decoded from its handle —
    // no tree Value is ever materialised.
    let input = intern::relation(edges.iter().copied());
    let nra_out = nra_eval::evaluate_vid(&bridged.nra, input, &nra_eval::EvalConfig::default())
        .result
        .expect("NRA evaluation");
    let nra_edges: EdgeSet = intern::to_edges(nra_out)
        .expect("relation out")
        .into_iter()
        .collect();
    // circuit side
    let compiled: CompiledQuery = compile(&bridged.flat, &[2], d);
    let rel: BTreeSet<Vec<u64>> = edges.iter().map(|&(a, b)| vec![a, b]).collect();
    let circ_out = compiled.run(std::slice::from_ref(&rel));
    let circ_edges: EdgeSet = circ_out.into_iter().map(|t| (t[0], t[1])).collect();
    (nra_edges, circ_edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: u64) -> BTreeSet<(u64, u64)> {
        (0..n).map(|i| (i, i + 1)).collect()
    }

    #[test]
    fn join_agrees_with_nra_on_chains() {
        for n in 0..6u64 {
            let (nra, circ) = run_both(&join_bridge(), &chain(n), n + 1);
            assert_eq!(nra, circ, "n={n}");
        }
    }

    #[test]
    fn tc_step_agrees_with_nra_on_chains_and_cycles() {
        for n in 1..6u64 {
            let (nra, circ) = run_both(&tc_step_bridge(), &chain(n), n + 1);
            assert_eq!(nra, circ, "chain n={n}");
            let cycle: BTreeSet<(u64, u64)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
            let (nra, circ) = run_both(&tc_step_bridge(), &cycle, n);
            assert_eq!(nra, circ, "cycle n={n}");
        }
    }

    #[test]
    fn agrees_on_random_relations() {
        let d = 5u64;
        let mut state = 0xC0FFEEu64;
        for case in 0..10 {
            let mut edges = BTreeSet::new();
            for a in 0..d {
                for b in 0..d {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    if state.is_multiple_of(4) {
                        edges.insert((a, b));
                    }
                }
            }
            for bridged in [join_bridge(), tc_step_bridge()] {
                let (nra, circ) = run_both(&bridged, &edges, d);
                assert_eq!(nra, circ, "case {case}");
            }
        }
    }
}
