//! # nra-circuits
//!
//! The circuit-complexity substrate of Proposition 4.3 of Suciu &
//! Paredaens (1994): unbounded fan-in boolean circuits with threshold
//! gates (`AC⁰`/`TC⁰`), a flat relational algebra compiled to
//! constant-depth polynomial-size circuits, and a bridge that
//! cross-validates compiled circuits against the `NRA` evaluator on the
//! same relations.

#![deny(missing_docs)]

pub mod bridge;
pub mod circuit;
pub mod relalg;
pub mod to_nra;

pub use circuit::{Circuit, CircuitBuilder, Gate, GateId};
pub use relalg::{compile, compile_bool, BoolQuery, CompiledQuery, FlatQuery};
pub use to_nra::{flat_to_nra, run_via_nra};
