//! Unbounded fan-in boolean circuits with threshold gates — the `AC⁰`/`TC⁰`
//! machinery of Proposition 4.3.
//!
//! > "the class TC⁰ … is defined similarly to AC⁰, but by allowing the
//! > circuits to contain an additional type of gates, the **threshold
//! > gates**: a threshold gate is labeled by some number k, and its output
//! > is 1 iff at least k of its inputs are 1."
//!
//! Circuits are DAGs in an arena ([`Circuit::gates`]); the
//! [`CircuitBuilder`] hash-conses structurally equal gates and constant-
//! folds, so the size/depth metrics reported by the experiments measure
//! real structure rather than construction noise.

use std::collections::HashMap;

/// Index of a gate in the circuit arena.
pub type GateId = usize;

/// A gate. `And`/`Or`/`Threshold` have unbounded fan-in (that is the
/// defining feature of `AC⁰`/`TC⁰` circuits).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Gate {
    /// The i-th circuit input.
    Input(usize),
    /// A constant.
    Const(bool),
    /// Negation.
    Not(GateId),
    /// Unbounded fan-in conjunction.
    And(Vec<GateId>),
    /// Unbounded fan-in disjunction.
    Or(Vec<GateId>),
    /// `Threshold(k, xs)`: true iff at least `k` of `xs` are true — the
    /// `TC⁰` extra beyond `AC⁰`.
    Threshold(u32, Vec<GateId>),
}

/// An immutable circuit: gates in topological order plus output gates.
#[derive(Debug, Clone)]
pub struct Circuit {
    /// Arena; every gate references only earlier gates.
    pub gates: Vec<Gate>,
    /// Output gate ids, in order.
    pub outputs: Vec<GateId>,
    /// Number of inputs.
    pub num_inputs: usize,
}

impl Circuit {
    /// Evaluate on an input assignment.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs, "input arity mismatch");
        let mut values: Vec<bool> = Vec::with_capacity(self.gates.len());
        for gate in &self.gates {
            let v = match gate {
                Gate::Input(i) => inputs[*i],
                Gate::Const(b) => *b,
                Gate::Not(x) => !values[*x],
                Gate::And(xs) => xs.iter().all(|&x| values[x]),
                Gate::Or(xs) => xs.iter().any(|&x| values[x]),
                Gate::Threshold(k, xs) => (xs.iter().filter(|&&x| values[x]).count() as u32) >= *k,
            };
            values.push(v);
        }
        self.outputs.iter().map(|&o| values[o]).collect()
    }

    /// Number of non-input, non-constant gates (the size measure of the
    /// `AC⁰`/`TC⁰` definitions).
    pub fn size(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| !matches!(g, Gate::Input(_) | Gate::Const(_)))
            .count()
    }

    /// Depth: inputs/constants at level 0, every other gate one above its
    /// deepest child. Constant depth as the input grows is the `AC⁰`/`TC⁰`
    /// membership criterion.
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.gates.len()];
        for (i, gate) in self.gates.iter().enumerate() {
            depth[i] = match gate {
                Gate::Input(_) | Gate::Const(_) => 0,
                Gate::Not(x) => depth[*x] + 1,
                Gate::And(xs) | Gate::Or(xs) | Gate::Threshold(_, xs) => {
                    xs.iter().map(|&x| depth[x]).max().unwrap_or(0) + 1
                }
            };
        }
        self.outputs.iter().map(|&o| depth[o]).max().unwrap_or(0)
    }

    /// True iff the circuit uses a threshold gate (i.e. needs `TC⁰`
    /// rather than `AC⁰`).
    pub fn uses_threshold(&self) -> bool {
        self.gates
            .iter()
            .any(|g| matches!(g, Gate::Threshold(_, _)))
    }
}

/// A hash-consing, constant-folding circuit builder.
#[derive(Debug, Default)]
pub struct CircuitBuilder {
    gates: Vec<Gate>,
    dedup: HashMap<Gate, GateId>,
    num_inputs: usize,
}

impl CircuitBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        CircuitBuilder::default()
    }

    fn intern(&mut self, gate: Gate) -> GateId {
        if let Some(&id) = self.dedup.get(&gate) {
            return id;
        }
        let id = self.gates.len();
        self.gates.push(gate.clone());
        self.dedup.insert(gate, id);
        id
    }

    /// Declare the next input wire.
    pub fn input(&mut self) -> GateId {
        let i = self.num_inputs;
        self.num_inputs += 1;
        self.intern(Gate::Input(i))
    }

    /// Declare `k` input wires.
    pub fn inputs(&mut self, k: usize) -> Vec<GateId> {
        (0..k).map(|_| self.input()).collect()
    }

    /// A constant gate.
    pub fn constant(&mut self, b: bool) -> GateId {
        self.intern(Gate::Const(b))
    }

    fn const_value(&self, id: GateId) -> Option<bool> {
        match self.gates[id] {
            Gate::Const(b) => Some(b),
            _ => None,
        }
    }

    /// Negation (folds constants and double negation).
    pub fn not(&mut self, x: GateId) -> GateId {
        if let Some(b) = self.const_value(x) {
            return self.constant(!b);
        }
        if let Gate::Not(inner) = self.gates[x] {
            return inner;
        }
        self.intern(Gate::Not(x))
    }

    /// Unbounded fan-in AND (drops true children, folds to false on a
    /// false child, deduplicates and sorts children).
    pub fn and(&mut self, children: impl IntoIterator<Item = GateId>) -> GateId {
        let mut xs: Vec<GateId> = Vec::new();
        for c in children {
            match self.const_value(c) {
                Some(true) => continue,
                Some(false) => return self.constant(false),
                None => xs.push(c),
            }
        }
        xs.sort_unstable();
        xs.dedup();
        match xs.len() {
            0 => self.constant(true),
            1 => xs[0],
            _ => self.intern(Gate::And(xs)),
        }
    }

    /// Unbounded fan-in OR.
    pub fn or(&mut self, children: impl IntoIterator<Item = GateId>) -> GateId {
        let mut xs: Vec<GateId> = Vec::new();
        for c in children {
            match self.const_value(c) {
                Some(false) => continue,
                Some(true) => return self.constant(true),
                None => xs.push(c),
            }
        }
        xs.sort_unstable();
        xs.dedup();
        match xs.len() {
            0 => self.constant(false),
            1 => xs[0],
            _ => self.intern(Gate::Or(xs)),
        }
    }

    /// Threshold-k gate (constant inputs are folded into k; k = 0 is
    /// true; k > fan-in is false; k = 1 becomes OR; k = fan-in becomes
    /// AND).
    pub fn threshold(&mut self, k: u32, children: impl IntoIterator<Item = GateId>) -> GateId {
        let mut k = k as i64;
        let mut xs: Vec<GateId> = Vec::new();
        for c in children {
            match self.const_value(c) {
                Some(true) => k -= 1,
                Some(false) => continue,
                None => xs.push(c),
            }
        }
        xs.sort_unstable();
        if k <= 0 {
            return self.constant(true);
        }
        if k > xs.len() as i64 {
            return self.constant(false);
        }
        if k == 1 {
            let mut dd = xs.clone();
            dd.dedup();
            return self.or(dd);
        }
        if k == xs.len() as i64 && xs.windows(2).all(|w| w[0] != w[1]) {
            return self.and(xs);
        }
        self.intern(Gate::Threshold(k as u32, xs))
    }

    /// Finish, fixing the outputs.
    pub fn build(self, outputs: Vec<GateId>) -> Circuit {
        Circuit {
            gates: self.gates,
            outputs,
            num_inputs: self.num_inputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(n: usize, mask: u32) -> Vec<bool> {
        (0..n).map(|i| mask & (1 << i) != 0).collect()
    }

    #[test]
    fn gates_compute_their_truth_tables() {
        let mut b = CircuitBuilder::new();
        let xs = b.inputs(3);
        let and = b.and(xs.clone());
        let or = b.or(xs.clone());
        let maj = b.threshold(2, xs.clone());
        let not0 = b.not(xs[0]);
        let c = b.build(vec![and, or, maj, not0]);
        for mask in 0..8u32 {
            let input = bits(3, mask);
            let out = c.eval(&input);
            let ones = input.iter().filter(|&&x| x).count();
            assert_eq!(out[0], ones == 3, "and, mask {mask}");
            assert_eq!(out[1], ones >= 1, "or, mask {mask}");
            assert_eq!(out[2], ones >= 2, "majority, mask {mask}");
            assert_eq!(out[3], !input[0], "not, mask {mask}");
        }
    }

    #[test]
    fn constant_folding() {
        let mut b = CircuitBuilder::new();
        let x = b.input();
        let t = b.constant(true);
        let f = b.constant(false);
        assert_eq!(b.and([x, t]), x, "AND with true is identity");
        assert_eq!(b.and([x, f]), f, "AND with false is false");
        assert_eq!(b.or([x, f]), x);
        assert_eq!(b.or([x, t]), t);
        let n = b.not(x);
        assert_eq!(b.not(n), x, "double negation");
        let nt = b.not(t);
        assert_eq!(b.const_value(nt), Some(false));
        // thresholds
        assert_eq!(b.threshold(0, [x]), t);
        assert_eq!(b.threshold(2, [x]), f);
        assert_eq!(b.threshold(1, [x, x]), x, "k=1 collapses to OR");
    }

    #[test]
    fn hash_consing_dedupes() {
        let mut b = CircuitBuilder::new();
        let xs = b.inputs(2);
        let a1 = b.and(xs.clone());
        let a2 = b.and([xs[1], xs[0]]);
        assert_eq!(a1, a2, "children are sorted, structure shared");
        let c = b.build(vec![a1, a2]);
        assert_eq!(c.size(), 1);
    }

    #[test]
    fn size_and_depth() {
        let mut b = CircuitBuilder::new();
        let xs = b.inputs(4);
        let a = b.and([xs[0], xs[1]]);
        let o = b.or([a, xs[2]]);
        let n = b.not(o);
        let out = b.and([n, xs[3]]);
        let c = b.build(vec![out]);
        assert_eq!(c.size(), 4);
        assert_eq!(c.depth(), 4);
        assert!(!c.uses_threshold());
        let mut b = CircuitBuilder::new();
        let xs = b.inputs(5);
        let t = b.threshold(3, xs);
        let c = b.build(vec![t]);
        assert!(c.uses_threshold());
        assert_eq!(c.depth(), 1);
    }

    #[test]
    fn threshold_matches_counting_semantics() {
        let mut b = CircuitBuilder::new();
        let xs = b.inputs(6);
        let outs: Vec<GateId> = (0..=7).map(|k| b.threshold(k, xs.clone())).collect();
        let c = b.build(outs);
        for mask in 0..64u32 {
            let input = bits(6, mask);
            let ones = input.iter().filter(|&&x| x).count() as u32;
            let out = c.eval(&input);
            for (k, &bit) in out.iter().enumerate() {
                assert_eq!(bit, ones >= k as u32, "k={k} mask={mask}");
            }
        }
    }
}
