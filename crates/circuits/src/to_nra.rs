//! Translation of flat relational queries into `NRA` terms — the
//! constructive half of Prop 4.3's `NRA ⊆ AC⁰` inclusion, made total.
//!
//! Arity-k tuples over `[d]` are encoded as right-nested pairs
//! (`T(1) = N`, `T(k) = N × T(k−1)`), so a k-ary relation is a complex
//! object of type `{T(k)}` and every [`FlatQuery`] operator maps to a
//! Prop 2.1 derived operation. With this translation every compiled
//! circuit can be differentially tested against the `NRA` evaluator on
//! *arbitrary* flat queries, not just hand-bridged ones.

use crate::relalg::FlatQuery;
use nra_core::builder::*;
use nra_core::derived;
use nra_core::expr::Expr;
use nra_core::types::Type;
use nra_core::value::Value;
use std::collections::BTreeSet;

/// The nested-pair tuple type `T(arity)`.
pub fn tuple_type(arity: usize) -> Type {
    assert!(arity >= 1, "relations have arity ≥ 1");
    if arity == 1 {
        Type::Nat
    } else {
        Type::prod(Type::Nat, tuple_type(arity - 1))
    }
}

/// The type of the translated query's input: the `num_inputs` relations as
/// a right-nested pair of sets `({T(a₀)} × ({T(a₁)} × …))`.
pub fn inputs_type(arities: &[usize]) -> Type {
    assert!(!arities.is_empty());
    let mut it = arities.iter().rev();
    let mut ty = Type::set(tuple_type(*it.next().unwrap()));
    for &a in it {
        ty = Type::prod(Type::set(tuple_type(a)), ty);
    }
    ty
}

/// Encode a tuple as a nested pair.
pub fn encode_tuple(t: &[u64]) -> Value {
    assert!(!t.is_empty());
    if t.len() == 1 {
        Value::nat(t[0])
    } else {
        Value::pair(Value::nat(t[0]), encode_tuple(&t[1..]))
    }
}

/// Encode a relation as a complex object `{T(arity)}`.
pub fn encode_rel(rel: &BTreeSet<Vec<u64>>) -> Value {
    Value::set(rel.iter().map(|t| encode_tuple(t)))
}

/// Encode several input relations as the nested input pair.
pub fn encode_inputs(rels: &[BTreeSet<Vec<u64>>]) -> Value {
    assert!(!rels.is_empty());
    let mut it = rels.iter().rev();
    let mut v = encode_rel(it.next().unwrap());
    for r in it {
        v = Value::pair(encode_rel(r), v);
    }
    v
}

/// Decode a nested-pair tuple.
pub fn decode_tuple(v: &Value, arity: usize) -> Option<Vec<u64>> {
    let mut out = Vec::with_capacity(arity);
    let mut cur = v;
    for i in 0..arity {
        if i + 1 == arity {
            out.push(cur.as_nat()?);
        } else {
            let (head, rest) = cur.as_pair()?;
            out.push(head.as_nat()?);
            cur = rest;
        }
    }
    Some(out)
}

/// Decode a relation value back into tuple sets.
pub fn decode_rel(v: &Value, arity: usize) -> Option<BTreeSet<Vec<u64>>> {
    v.as_set()?.iter().map(|t| decode_tuple(t, arity)).collect()
}

/// Accessor for column `i` of a `T(arity)` tuple.
fn coord(i: usize, arity: usize) -> Expr {
    assert!(i < arity);
    let mut e = id();
    for _ in 0..i {
        e = compose(snd(), e);
    }
    if i + 1 < arity {
        e = compose(fst(), e);
    }
    e
}

/// Reassociate a pair of tuples `(T(a), T(b))` into `T(a+b)`.
fn reassoc(a: usize, b: usize) -> Expr {
    assert!(a >= 1 && b >= 1);
    if a == 1 {
        // (N, T(b)) is already T(1 + b)
        id()
    } else {
        // ((x, rest), t2) ↦ (x, reassoc(a−1, b)(rest, t2))
        tuple(
            compose(fst(), fst()),
            compose(reassoc(a - 1, b), tuple(compose(snd(), fst()), snd())),
        )
    }
}

/// Projection of a `T(arity)` tuple onto the listed columns, as a nested
/// pair `T(cols.len())`.
fn project_tuple(cols: &[usize], arity: usize) -> Expr {
    assert!(!cols.is_empty());
    if cols.len() == 1 {
        coord(cols[0], arity)
    } else {
        tuple(coord(cols[0], arity), project_tuple(&cols[1..], arity))
    }
}

/// Accessor for the i-th input relation inside the nested input pair.
fn input_accessor(i: usize, num_inputs: usize) -> Expr {
    let mut e = id();
    for _ in 0..i {
        e = compose(snd(), e);
    }
    if i + 1 < num_inputs {
        e = compose(fst(), e);
    }
    e
}

/// Translate a flat query into an `NRA` expression over the nested input
/// encoding. The result is plain `NRA` except for `SelectConst`, which
/// uses the `const` extension (the paper's language has no numeric
/// literals; constants arrive through inputs there).
pub fn flat_to_nra(query: &FlatQuery, input_arities: &[usize]) -> Expr {
    let n = input_arities.len();
    match query {
        FlatQuery::Input(i, a) => {
            assert_eq!(input_arities[*i], *a, "arity annotation mismatch");
            input_accessor(*i, n)
        }
        FlatQuery::Union(x, y) => compose(
            union(),
            tuple(flat_to_nra(x, input_arities), flat_to_nra(y, input_arities)),
        ),
        FlatQuery::Intersect(x, y) => compose(
            derived::intersect(&tuple_type(x.arity())),
            tuple(flat_to_nra(x, input_arities), flat_to_nra(y, input_arities)),
        ),
        FlatQuery::Difference(x, y) => compose(
            derived::difference(&tuple_type(x.arity())),
            tuple(flat_to_nra(x, input_arities), flat_to_nra(y, input_arities)),
        ),
        FlatQuery::Product(x, y) => {
            let (a, b) = (x.arity(), y.arity());
            pipeline([
                tuple(flat_to_nra(x, input_arities), flat_to_nra(y, input_arities)),
                derived::cartprod(),
                map(reassoc(a, b)),
            ])
        }
        FlatQuery::Project(x, cols) => {
            let a = x.arity();
            compose(map(project_tuple(cols, a)), flat_to_nra(x, input_arities))
        }
        FlatQuery::SelectEq(x, i, j) => {
            let a = x.arity();
            let pred = compose(eq_nat(), tuple(coord(*i, a), coord(*j, a)));
            compose(
                derived::select(pred, tuple_type(a)),
                flat_to_nra(x, input_arities),
            )
        }
        FlatQuery::SelectConst(x, i, c) => {
            let a = x.arity();
            let constant = compose(konst(Value::nat(*c), Type::Nat), bang());
            let pred = compose(eq_nat(), tuple(coord(*i, a), constant));
            compose(
                derived::select(pred, tuple_type(a)),
                flat_to_nra(x, input_arities),
            )
        }
    }
}

/// Run a flat query through the `NRA` evaluator on explicit relations.
pub fn run_via_nra(
    query: &FlatQuery,
    input_arities: &[usize],
    inputs: &[BTreeSet<Vec<u64>>],
) -> BTreeSet<Vec<u64>> {
    let expr = flat_to_nra(query, input_arities);
    let value = encode_inputs(inputs);
    let out = nra_eval::eval(&expr, &value).expect("translated query evaluates");
    decode_rel(&out, query.arity()).expect("relation-shaped output")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_core::typecheck::output_type;

    fn rel(ts: &[&[u64]]) -> BTreeSet<Vec<u64>> {
        ts.iter().map(|t| t.to_vec()).collect()
    }

    #[test]
    fn tuple_encoding_round_trips() {
        for t in [vec![3u64], vec![1, 2], vec![4, 5, 6, 7]] {
            let v = encode_tuple(&t);
            assert!(v.has_type(&tuple_type(t.len())));
            assert_eq!(decode_tuple(&v, t.len()), Some(t));
        }
    }

    #[test]
    fn translations_typecheck() {
        let arities = [2usize, 3usize];
        let in_ty = inputs_type(&arities);
        for (q, out_arity) in [
            (FlatQuery::Input(0, 2), 2usize),
            (FlatQuery::Input(1, 3), 3),
            (
                FlatQuery::Product(
                    Box::new(FlatQuery::Input(0, 2)),
                    Box::new(FlatQuery::Input(1, 3)),
                ),
                5,
            ),
            (
                FlatQuery::Project(Box::new(FlatQuery::Input(1, 3)), vec![2, 0]),
                2,
            ),
            (
                FlatQuery::SelectEq(Box::new(FlatQuery::Input(1, 3)), 0, 2),
                3,
            ),
        ] {
            let e = flat_to_nra(&q, &arities);
            let ty = output_type(&e, &in_ty).unwrap_or_else(|err| panic!("{q:?}: {err}"));
            assert_eq!(ty, Type::set(tuple_type(out_arity)), "{q:?}");
        }
    }

    #[test]
    fn nra_matches_reference_semantics_on_fixed_queries() {
        let arities = [2usize, 2usize];
        let r0 = rel(&[&[0, 1], &[1, 2], &[2, 0]]);
        let r1 = rel(&[&[1, 2], &[3, 3]]);
        let inputs = vec![r0, r1];
        let d = 4;
        for q in [
            FlatQuery::Input(0, 2),
            FlatQuery::Union(
                Box::new(FlatQuery::Input(0, 2)),
                Box::new(FlatQuery::Input(1, 2)),
            ),
            FlatQuery::Intersect(
                Box::new(FlatQuery::Input(0, 2)),
                Box::new(FlatQuery::Input(1, 2)),
            ),
            FlatQuery::Difference(
                Box::new(FlatQuery::Input(0, 2)),
                Box::new(FlatQuery::Input(1, 2)),
            ),
            FlatQuery::Product(
                Box::new(FlatQuery::Input(0, 2)),
                Box::new(FlatQuery::Input(1, 2)),
            ),
            FlatQuery::Project(Box::new(FlatQuery::Input(0, 2)), vec![1]),
            FlatQuery::Project(Box::new(FlatQuery::Input(0, 2)), vec![1, 0]),
            FlatQuery::SelectEq(Box::new(FlatQuery::Input(1, 2)), 0, 1),
            FlatQuery::SelectConst(Box::new(FlatQuery::Input(0, 2)), 1, 2),
            crate::relalg::join_query(),
            crate::relalg::tc_step_query(),
        ] {
            let expect = q.eval(&inputs, d);
            let got = run_via_nra(&q, &arities, &inputs);
            assert_eq!(got, expect, "{q:?}");
        }
    }

    #[test]
    fn three_way_agreement_on_deep_queries() {
        // flat reference vs compiled circuit vs NRA evaluator
        let d = 3u64;
        let arities = [2usize];
        let q = FlatQuery::Project(
            Box::new(FlatQuery::SelectEq(
                Box::new(FlatQuery::Product(
                    Box::new(crate::relalg::join_query()),
                    Box::new(FlatQuery::Input(0, 2)),
                )),
                1,
                2,
            )),
            vec![0, 3],
        );
        let mut state = 7u64;
        for case in 0..6 {
            let mut r = BTreeSet::new();
            for a in 0..d {
                for b in 0..d {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    if state.is_multiple_of(3) {
                        r.insert(vec![a, b]);
                    }
                }
            }
            let inputs = vec![r];
            let reference = q.eval(&inputs, d);
            let circuit = crate::relalg::compile(&q, &arities, d).run(&inputs);
            let nra = run_via_nra(&q, &arities, &inputs);
            assert_eq!(circuit, reference, "case {case}");
            assert_eq!(nra, reference, "case {case}");
        }
    }

    #[test]
    fn only_select_const_needs_the_const_extension() {
        let plain = flat_to_nra(&crate::relalg::tc_step_query(), &[2]);
        assert!(plain.level().is_nra());
        assert!(!plain.level().consts);
        let with_const = flat_to_nra(
            &FlatQuery::SelectConst(Box::new(FlatQuery::Input(0, 2)), 0, 1),
            &[2],
        );
        assert!(with_const.level().consts);
    }
}
