//! Semantic integration tests: the Proposition 2.1 derived operations and
//! the paper's queries, evaluated by the §3 engine against independent
//! ground truth (`std` set operations and the `nra-graph` baselines).

use nra_core::builder::*;
use nra_core::derived;
use nra_core::queries;
use nra_core::types::Type;
use nra_core::value::Value;
use nra_eval::{eval, evaluate, EvalConfig};
use nra_graph::{graph_to_value, tc, value_to_graph, DiGraph};

fn run(e: &nra_core::Expr, v: &Value) -> Value {
    eval(e, v).unwrap_or_else(|err| panic!("{e}: {err}"))
}

fn edge_ty() -> Type {
    Type::prod(Type::Nat, Type::Nat)
}

// ---------------------------------------------------------------------------
// Prop 2.1 derived operations
// ---------------------------------------------------------------------------

#[test]
fn boolean_connectives() {
    for a in [false, true] {
        assert_eq!(run(&derived::not(), &Value::Bool(a)), Value::Bool(!a));
        for b in [false, true] {
            let input = Value::pair(Value::Bool(a), Value::Bool(b));
            assert_eq!(run(&derived::and2(), &input), Value::Bool(a && b));
            assert_eq!(run(&derived::or2(), &input), Value::Bool(a || b));
        }
    }
}

#[test]
fn selection_filters_by_predicate() {
    // σ_{fst = snd} over pairs
    let input = Value::relation([(1, 1), (1, 2), (3, 3), (4, 5)]);
    let out = run(&derived::select(eq_nat(), edge_ty()), &input);
    assert_eq!(out, Value::relation([(1, 1), (3, 3)]));
    // selection by a constant-true keeps everything
    let out = run(&derived::select(always_true(), edge_ty()), &input);
    assert_eq!(out, input);
    // selection by constant-false empties
    let out = run(&derived::select(always_false(), edge_ty()), &input);
    assert_eq!(out, Value::empty_set());
}

#[test]
fn cartesian_product() {
    let a = Value::set([Value::nat(1), Value::nat(2)]);
    let b = Value::set([Value::nat(8), Value::nat(9)]);
    let out = run(&derived::cartprod(), &Value::pair(a, b));
    assert_eq!(out, Value::relation([(1, 8), (1, 9), (2, 8), (2, 9)]));
    // with an empty factor
    let out = run(
        &derived::cartprod(),
        &Value::pair(Value::empty_set(), Value::set([Value::nat(1)])),
    );
    assert_eq!(out, Value::empty_set());
}

#[test]
fn rho1_pairs_left_elements() {
    let input = Value::pair(Value::set([Value::nat(1), Value::nat(2)]), Value::nat(7));
    assert_eq!(
        run(&derived::rho1(), &input),
        Value::relation([(1, 7), (2, 7)])
    );
}

#[test]
fn equality_at_nested_types() {
    // naturals
    let eqn = derived::eq_at(&Type::Nat);
    assert_eq!(run(&eqn, &Value::edge(3, 3)), Value::TRUE);
    assert_eq!(run(&eqn, &Value::edge(3, 4)), Value::FALSE);
    // pairs
    let eqp = derived::eq_at(&edge_ty());
    let p = |a: u64, b: u64| Value::edge(a, b);
    assert_eq!(run(&eqp, &Value::pair(p(1, 2), p(1, 2))), Value::TRUE);
    assert_eq!(run(&eqp, &Value::pair(p(1, 2), p(1, 3))), Value::FALSE);
    // sets (order-insensitive, duplicate-insensitive by construction)
    let eqs = derived::eq_at(&Type::set(Type::Nat));
    let s1 = Value::set([Value::nat(1), Value::nat(2)]);
    let s2 = Value::set([Value::nat(2), Value::nat(1)]);
    let s3 = Value::set([Value::nat(1)]);
    assert_eq!(run(&eqs, &Value::pair(s1.clone(), s2.clone())), Value::TRUE);
    assert_eq!(
        run(&eqs, &Value::pair(s1.clone(), s3.clone())),
        Value::FALSE
    );
    assert_eq!(
        run(&eqs, &Value::pair(s3.clone(), s1.clone())),
        Value::FALSE
    );
    // sets of sets
    let eqss = derived::eq_at(&Type::set(Type::set(Type::Nat)));
    let nested1 = Value::set([s1.clone(), Value::empty_set()]);
    let nested2 = Value::set([Value::empty_set(), s2.clone()]);
    assert_eq!(
        run(&eqss, &Value::pair(nested1.clone(), nested2)),
        Value::TRUE
    );
    assert!(!run(&eqss, &Value::pair(nested1, Value::set([s3])))
        .as_bool()
        .unwrap());
    // booleans and unit
    let eqb = derived::eq_at(&Type::Bool);
    assert_eq!(
        run(&eqb, &Value::pair(Value::TRUE, Value::TRUE)),
        Value::TRUE
    );
    assert_eq!(
        run(&eqb, &Value::pair(Value::TRUE, Value::FALSE)),
        Value::FALSE
    );
    assert_eq!(
        run(&eqb, &Value::pair(Value::FALSE, Value::FALSE)),
        Value::TRUE
    );
    let equ = derived::eq_at(&Type::Unit);
    assert_eq!(
        run(&equ, &Value::pair(Value::Unit, Value::Unit)),
        Value::TRUE
    );
}

#[test]
fn membership_and_inclusion() {
    let s = Value::set([Value::nat(1), Value::nat(2), Value::nat(3)]);
    let member = derived::member(&Type::Nat);
    assert_eq!(
        run(&member, &Value::pair(Value::nat(2), s.clone())),
        Value::TRUE
    );
    assert_eq!(
        run(&member, &Value::pair(Value::nat(9), s.clone())),
        Value::FALSE
    );
    let subset = derived::subset(&Type::Nat);
    let small = Value::set([Value::nat(1), Value::nat(3)]);
    assert_eq!(
        run(&subset, &Value::pair(small.clone(), s.clone())),
        Value::TRUE
    );
    assert_eq!(
        run(&subset, &Value::pair(s.clone(), small.clone())),
        Value::FALSE
    );
    assert_eq!(
        run(&subset, &Value::pair(Value::empty_set(), s.clone())),
        Value::TRUE
    );
    assert_eq!(run(&subset, &Value::pair(s.clone(), s)), Value::TRUE);
}

#[test]
fn difference_and_intersection() {
    let a = Value::set([Value::nat(1), Value::nat(2), Value::nat(3)]);
    let b = Value::set([Value::nat(2), Value::nat(4)]);
    let input = Value::pair(a, b);
    assert_eq!(
        run(&derived::difference(&Type::Nat), &input),
        Value::set([Value::nat(1), Value::nat(3)])
    );
    assert_eq!(
        run(&derived::intersect(&Type::Nat), &input),
        Value::set([Value::nat(2)])
    );
}

#[test]
fn big_intersection() {
    let s1 = Value::set([Value::nat(1), Value::nat(2), Value::nat(3)]);
    let s2 = Value::set([Value::nat(2), Value::nat(3), Value::nat(4)]);
    let s3 = Value::set([Value::nat(3), Value::nat(2)]);
    let input = Value::set([s1, s2, s3]);
    assert_eq!(
        run(&derived::big_intersect(&Type::Nat), &input),
        Value::set([Value::nat(2), Value::nat(3)])
    );
    // ⋂∅ = ∅ by convention
    assert_eq!(
        run(&derived::big_intersect(&Type::Nat), &Value::empty_set()),
        Value::empty_set()
    );
}

#[test]
fn nest_unnest() {
    // unnest({(1,{8,9}), (2,{})}) = {(1,8),(1,9)}
    let nested = Value::set([
        Value::pair(Value::nat(1), Value::set([Value::nat(8), Value::nat(9)])),
        Value::pair(Value::nat(2), Value::empty_set()),
    ]);
    let out = run(&derived::unnest(), &nested);
    assert_eq!(out, Value::relation([(1, 8), (1, 9)]));
    // nest groups by the first column
    let flat = Value::relation([(1, 8), (1, 9), (2, 5)]);
    let out = run(&derived::nest(&Type::Nat, &Type::Nat), &flat);
    let expect = Value::set([
        Value::pair(Value::nat(1), Value::set([Value::nat(8), Value::nat(9)])),
        Value::pair(Value::nat(2), Value::set([Value::nat(5)])),
    ]);
    assert_eq!(out, expect);
    // unnest ∘ nest = id on relations
    let back = run(&derived::unnest(), &out);
    assert_eq!(back, flat);
}

#[test]
fn singleton_test() {
    let is1 = derived::is_singleton(&Type::Nat);
    assert_eq!(run(&is1, &Value::set([Value::nat(5)])), Value::TRUE);
    assert_eq!(run(&is1, &Value::empty_set()), Value::FALSE);
    assert_eq!(
        run(&is1, &Value::set([Value::nat(1), Value::nat(2)])),
        Value::FALSE
    );
}

#[test]
fn derived_powerset_m_equals_primitive() {
    for m in 0..=4u64 {
        let term = derived::powerset_m(m, &Type::Nat);
        let prim = powerset_m_prim(m);
        for k in 0..=4u64 {
            let input = Value::set((0..k).map(Value::nat));
            assert_eq!(run(&term, &input), run(&prim, &input), "m={m}, k={k}");
        }
    }
}

#[test]
fn derived_powerset_m_on_edges() {
    let input = Value::chain(3);
    let term = derived::powerset_m(2, &edge_ty());
    let out = run(&term, &input);
    // C(3,0)+C(3,1)+C(3,2) = 1+3+3 = 7
    assert_eq!(out.cardinality(), Some(7));
}

#[test]
fn rel_nodes_computes_the_node_set() {
    let out = run(&derived::rel_nodes(), &Value::chain(3));
    assert_eq!(out, Value::set((0..=3).map(Value::nat)));
}

// ---------------------------------------------------------------------------
// The paper's queries
// ---------------------------------------------------------------------------

fn tc_ground_truth(g: &DiGraph) -> Value {
    graph_to_value(&tc(g))
}

#[test]
fn sources_and_sinks() {
    let out = run(&queries::sources(), &Value::chain(4));
    assert_eq!(out, Value::set([Value::nat(0)]));
    let out = run(&queries::sinks(), &Value::chain(4));
    assert_eq!(out, Value::set([Value::nat(4)]));
    // a cycle has neither
    let cyc = graph_to_value(&DiGraph::cycle(3));
    assert_eq!(run(&queries::sources(), &cyc), Value::empty_set());
    assert_eq!(run(&queries::sinks(), &cyc), Value::empty_set());
}

#[test]
fn tc_while_equals_ground_truth_on_chains() {
    for n in 0..10u64 {
        let g = DiGraph::chain(n);
        let out = run(&queries::tc_while(), &graph_to_value(&g));
        assert_eq!(out, tc_ground_truth(&g), "n={n}");
        assert_eq!(out, Value::chain_tc(n), "n={n} (paper's qₙ)");
    }
}

#[test]
fn tc_while_equals_ground_truth_on_random_graphs() {
    for seed in 0..10u64 {
        let g = DiGraph::random(8, 0.2, seed);
        let out = run(&queries::tc_while(), &graph_to_value(&g));
        assert_eq!(out, tc_ground_truth(&g), "seed={seed}");
    }
}

#[test]
fn tc_paths_equals_ground_truth_on_chains() {
    for n in 0..7u64 {
        let g = DiGraph::chain(n);
        let out = run(&queries::tc_paths(), &graph_to_value(&g));
        assert_eq!(out, Value::chain_tc(n), "n={n}");
    }
}

#[test]
fn tc_paths_handles_cycles_and_self_loops() {
    // cycle: complete closure including reflexive pairs
    for n in 1..5u64 {
        let g = DiGraph::cycle(n);
        let out = run(&queries::tc_paths(), &graph_to_value(&g));
        assert_eq!(out, tc_ground_truth(&g), "cycle {n}");
    }
    // self loop
    let g = DiGraph::from_edges([(2, 2)]);
    let out = run(&queries::tc_paths(), &graph_to_value(&g));
    assert_eq!(out, tc_ground_truth(&g));
    // chain into a cycle
    let g = DiGraph::from_edges([(0, 1), (1, 2), (2, 1)]);
    let out = run(&queries::tc_paths(), &graph_to_value(&g));
    assert_eq!(out, tc_ground_truth(&g));
}

#[test]
fn tc_paths_on_small_functional_and_random_graphs() {
    for seed in 0..8u64 {
        // keep the edge count small: tc_paths is 2^{|edges|}
        let g = DiGraph::random(5, 0.15, seed);
        if g.edge_count() > 8 {
            continue;
        }
        let out = run(&queries::tc_paths(), &graph_to_value(&g));
        assert_eq!(out, tc_ground_truth(&g), "seed={seed}");
    }
    // deterministic graphs (outdegree ≤ 1) — the Immerman regime
    let g = DiGraph::functional(&[1, 2, 3, 3]);
    assert!(g.is_deterministic());
    let out = run(&queries::tc_paths(), &graph_to_value(&g));
    assert_eq!(out, tc_ground_truth(&g));
}

#[test]
fn tc_naive_equals_ground_truth_on_tiny_chains() {
    for n in 1..3u64 {
        let g = DiGraph::chain(n);
        let out = run(&queries::tc_naive(), &graph_to_value(&g));
        assert_eq!(out, Value::chain_tc(n), "n={n}");
    }
}

#[test]
fn tc_approximations_need_m_at_least_n() {
    // Prop 4.2 on tc_paths: fₘ(rₙ) = f(rₙ) iff m ≥ n — witnesses that no
    // single m works for every n.
    for n in 1..6u64 {
        let input = Value::chain(n);
        let full = run(&queries::tc_paths(), &input);
        for m in 0..(n + 2) {
            let approx = run(&queries::tc_paths_approx(m), &input);
            if m >= n {
                assert_eq!(approx, full, "n={n} m={m} should be exact");
            } else {
                assert_ne!(approx, full, "n={n} m={m} must be incomplete");
                // the approximation is sound (a subset), just incomplete
                let sub = derived::subset(&edge_ty());
                assert_eq!(run(&sub, &Value::pair(approx, full.clone())), Value::TRUE);
            }
        }
    }
}

#[test]
fn siblings_queries_agree_and_stabilise_at_m_2() {
    for seed in 0..6u64 {
        let g = DiGraph::random(5, 0.25, seed);
        if g.edge_count() > 9 {
            continue;
        }
        let input = graph_to_value(&g);
        let direct = run(&queries::siblings_direct(), &input);
        let via_powerset = run(&queries::siblings_powerset(), &input);
        assert_eq!(direct, via_powerset, "seed={seed}");
        // the bounded side of the dichotomy: m = 2 is exact for every input
        let approx2 = run(&queries::siblings_approx(2), &input);
        assert_eq!(approx2, direct, "seed={seed}");
        // m = 1 yields no 2-element witnesses, hence ∅
        let approx1 = run(&queries::siblings_approx(1), &input);
        assert_eq!(approx1, Value::empty_set(), "seed={seed}");
    }
}

#[test]
fn compose_rel_is_one_join_round() {
    let input = Value::chain(4);
    let out = run(&queries::compose_rel(), &input);
    assert_eq!(out, Value::relation([(0, 2), (1, 3), (2, 4)]));
}

// ---------------------------------------------------------------------------
// Complexity behaviour (the theorems, quantitatively)
// ---------------------------------------------------------------------------

#[test]
fn powerset_tc_complexity_grows_exponentially() {
    // Theorem 4.1's shape: log₂(complexity) grows linearly in n with
    // slope ≈ 1 for tc_paths.
    let cfg = EvalConfig::default();
    let mut logs = Vec::new();
    for n in 4..9u64 {
        let ev = evaluate(&queries::tc_paths(), &Value::chain(n), &cfg);
        assert!(ev.result.is_ok());
        logs.push(ev.stats.log2_complexity());
    }
    for w in logs.windows(2) {
        let slope = w[1] - w[0];
        assert!(
            slope > 0.8 && slope < 1.5,
            "per-step log₂ growth ≈ 1, got {slope} ({logs:?})"
        );
    }
}

#[test]
fn while_tc_complexity_grows_polynomially() {
    let cfg = EvalConfig::default();
    let mut sizes = Vec::new();
    for n in [4u64, 8, 16] {
        let ev = evaluate(&queries::tc_while(), &Value::chain(n), &cfg);
        assert!(ev.result.is_ok());
        sizes.push(ev.stats.max_object_size as f64);
    }
    // the largest object is the closure's self-product, Θ(n⁴): doubling n
    // multiplies complexity by ≈16 — polynomial, nowhere near the ×2ⁿ⁺
    // jumps of the powerset route
    for w in sizes.windows(2) {
        let ratio = w[1] / w[0];
        assert!(ratio < 20.0, "polynomial growth, ratio {ratio}");
    }
}

#[test]
fn budgeted_tc_reports_exact_requirement() {
    // With a tiny budget the evaluation fails but reports the exact
    // powerset size it would have needed.
    let n = 20u64;
    let cfg = EvalConfig::with_space_budget(10_000);
    let ev = evaluate(&queries::tc_paths(), &Value::chain(n), &cfg);
    match ev.result {
        Err(nra_eval::EvalError::SpaceBudgetExceeded { required, .. }) => {
            // powerset(r₂₀) has 2²⁰ subsets of total size 1 + 2²⁰ + 2¹⁹·Σsize
            let expected = 1u64 + (1 << 20) + (1 << 19) * (3 * 20);
            assert_eq!(required, expected);
        }
        other => panic!("expected budget error, got {other:?}"),
    }
}

#[test]
fn node_count_polynomially_related_to_complexity() {
    // §3: "the total number of nodes of the evaluation tree is
    // polynomially bounded by this complexity" — with an f-dependent
    // constant (the derivation height depends only on f).
    let cfg = EvalConfig::default();
    let k = 16.0;
    for n in 2..7u64 {
        let ev = evaluate(&queries::tc_paths(), &Value::chain(n), &cfg);
        let c = ev.stats.max_object_size as f64;
        let nodes = ev.stats.nodes as f64;
        assert!(nodes < k * c * c, "nodes {nodes} ≤ {k}·complexity² ({c}²)");
    }
}

#[test]
fn roundtrip_graph_value_queries() {
    // decoding query outputs back to graphs matches graph-level TC
    for n in 1..6u64 {
        let g = DiGraph::chain(n);
        let out = run(&queries::tc_while(), &graph_to_value(&g));
        assert_eq!(value_to_graph(&out).unwrap(), tc(&g));
    }
}
