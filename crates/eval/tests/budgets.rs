//! Memo-aware budget regression tests.
//!
//! A cache hit used to cost **0** against [`EvalConfig::max_nodes`], so
//! a budget that cut the plain derivation mid-way could let the
//! memoised run of the *same* evaluation slip through — budget
//! exhaustion depended on the strategy. Hits now charge the recorded
//! as-if-uncached cost of their cached subtree, so across the whole
//! budget range the outcome (completes vs `NodeBudgetExceeded`) is
//! identical with the cache on or off, for the eager and the traced
//! builder alike.
//!
//! Semi-naive (delta-driven) iteration follows a weaker, one-sided
//! contract by design: a delta skip charges the recorded cost of the
//! skipped frontier, and the fused Prop 2.1 rules do strictly *less*
//! work than the spread they replace — so a budget that admits the
//! naive run always admits the semi-naive run (never the reverse).

use nra_core::{queries, Value};
use nra_eval::{evaluate, evaluate_traced, EvalConfig, EvalError};
use nra_graph::{graph_to_value, DiGraph};

/// Workload corpus: while-route fixpoints (where the apply cache
/// actually fires) plus a small powerset route.
fn corpus() -> Vec<(nra_core::Expr, Value)> {
    vec![
        (queries::tc_while(), Value::chain(5)),
        (
            queries::tc_while(),
            graph_to_value(&DiGraph::random_dag(6, 0.4, 3)),
        ),
        (queries::tc_step(), Value::chain(4)),
        (queries::tc_paths(), Value::chain(4)),
    ]
}

/// Budget sweep points around the true (unbudgeted) node total:
/// everything interesting happens at the boundaries.
fn budget_points(total: u64) -> Vec<u64> {
    let mut pts = vec![1, 2, 3, total / 7, total / 3, total / 2];
    pts.extend([
        total.saturating_sub(2),
        total.saturating_sub(1),
        total,
        total + 1,
        total * 2,
    ]);
    pts.retain(|&b| b > 0);
    pts.dedup();
    pts
}

/// Outcome classifier: success or the error variant (partial stats and
/// `required` payloads legitimately differ between strategies).
fn outcome(r: &Result<Value, EvalError>) -> &'static str {
    match r {
        Ok(_) => "ok",
        Err(EvalError::NodeBudgetExceeded { .. }) => "node-budget",
        Err(EvalError::SpaceBudgetExceeded { .. }) => "space-budget",
        Err(e) => panic!("unexpected error class: {e}"),
    }
}

#[test]
fn node_budget_exhaustion_is_memo_independent() {
    for (q, input) in corpus() {
        let total = evaluate(&q, &input, &EvalConfig::default()).stats.nodes;
        for budget in budget_points(total) {
            let cfg = EvalConfig {
                max_nodes: Some(budget),
                ..EvalConfig::default()
            };
            let memo_cfg = EvalConfig {
                memo: true,
                ..cfg.clone()
            };
            let plain = evaluate(&q, &input, &cfg);
            let memo = evaluate(&q, &input, &memo_cfg);
            assert_eq!(
                outcome(&plain.result),
                outcome(&memo.result),
                "{q} under node budget {budget}/{total}: memo-on diverged from memo-off"
            );
            if let (Ok(a), Ok(b)) = (&plain.result, &memo.result) {
                assert_eq!(a, b, "{q} under node budget {budget}");
            }
            // the traced builder shares the same contract
            let t_plain = evaluate_traced(&q, &input, &cfg);
            let t_memo = evaluate_traced(&q, &input, &memo_cfg);
            assert_eq!(
                outcome(&t_plain.result.map(|n| n.output)),
                outcome(&t_memo.result.map(|n| n.output)),
                "traced {q} under node budget {budget}/{total}"
            );
        }
    }
}

#[test]
fn space_budget_exhaustion_is_memo_independent() {
    for (q, input) in corpus() {
        let peak = evaluate(&q, &input, &EvalConfig::default())
            .stats
            .max_object_size;
        for budget in budget_points(peak) {
            let cfg = EvalConfig {
                max_object_size: Some(budget),
                ..EvalConfig::default()
            };
            let memo_cfg = EvalConfig {
                memo: true,
                ..cfg.clone()
            };
            let plain = evaluate(&q, &input, &cfg);
            let memo = evaluate(&q, &input, &memo_cfg);
            assert_eq!(
                outcome(&plain.result),
                outcome(&memo.result),
                "{q} under space budget {budget}/{peak}"
            );
        }
    }
}

/// Semi-naive does strictly less budgeted work: whenever the naive run
/// fits a budget, the delta-driven run fits it too and produces the
/// identical value.
#[test]
fn seminaive_never_trips_budgets_the_naive_run_survives() {
    for (q, input) in corpus() {
        let stats = evaluate(&q, &input, &EvalConfig::default()).stats;
        for budget in budget_points(stats.nodes) {
            let cfg = EvalConfig {
                max_nodes: Some(budget),
                ..EvalConfig::default()
            };
            let plain = evaluate(&q, &input, &cfg);
            if let Ok(expect) = plain.result {
                for delta_cfg in [
                    EvalConfig {
                        semi_naive: true,
                        ..cfg.clone()
                    },
                    EvalConfig {
                        semi_naive: true,
                        memo: true,
                        ..cfg.clone()
                    },
                ] {
                    let delta = evaluate(&q, &input, &delta_cfg);
                    assert_eq!(
                        delta.result.as_ref().ok(),
                        Some(&expect),
                        "{q} under node budget {budget}: semi-naive tripped a budget \
                         the naive run survived"
                    );
                }
            }
        }
    }
}
