//! Dense-vs-sorted differential tests: the arena's packed-word
//! representation (`SetRepr::Dense`) must be *invisible* — every
//! set-algebra op, every evaluator strategy, and both transitive-closure
//! routes return bit-for-bit the sorted-spine results (same canonical
//! `VId`, same `EvalStats` modulo the `dense_*` counters) whether the
//! dense path is on or off, across the seven small graph families and
//! the three large ones (road-grid, power-law, two-community).
//!
//! The toggle is [`ValueArena::set_dense_enabled`]; within one arena the
//! canonical-dedup invariant makes VId equality the strongest possible
//! agreement check. Across twin arenas the lockstep argument holds
//! because neither path interns intermediates the other doesn't — the
//! fuzz test at the bottom drives that through randomized
//! promotion/demotion at merge boundaries.

use nra_core::value::intern::{self, VId, ValueArena};
use nra_core::{queries, Value};
use nra_eval::{EvalConfig, EvalSession};
use nra_graph::{tc, tc_arena, DiGraph};
use nra_testkit::graphs::{family_graphs, large_family_graphs};
use nra_testkit::{check, Rng};

/// Evaluate in a fresh session whose arena has the dense path toggled.
/// Fresh tables each run keep the stats deterministic per
/// (query, input, cfg) — see the compiled differential for why.
fn eval_with_dense(
    q: &nra_core::Expr,
    input: &Value,
    cfg: &EvalConfig,
    dense: bool,
) -> nra_eval::Evaluation {
    let mut s = EvalSession::new(cfg.clone());
    s.values_mut().set_dense_enabled(dense);
    s.eval(q, input)
}

/// The config mixes the dense toggle must be invisible under.
fn modes() -> Vec<(&'static str, EvalConfig)> {
    vec![
        ("plain", EvalConfig::default()),
        ("memo", EvalConfig::memoised()),
        ("semi-naive", EvalConfig::semi_naive()),
        ("memo+semi-naive", EvalConfig::optimised()),
        ("compiled", EvalConfig::compiled()),
    ]
}

/// Dense-on results and statistics are the dense-off ones on every small
/// family, every strategy mix, and both TC routes (`EvalStats` equality
/// ignores exactly the `dense_*` counters, nothing else).
#[test]
fn dense_toggle_is_invisible_on_all_families() {
    check("dense_toggle_is_invisible_on_all_families", 12, |_, rng| {
        for g in family_graphs(rng) {
            let family = g.family;
            let input = Value::relation(g.edges.iter().copied());
            for q in [queries::tc_paths(), queries::tc_while(), queries::tc_step()] {
                for (mode, cfg) in modes() {
                    let sorted = eval_with_dense(&q, &input, &cfg, false);
                    let dense = eval_with_dense(&q, &input, &cfg, true);
                    assert_eq!(sorted.result, dense.result, "{family}: {mode} {q}");
                    assert_eq!(sorted.stats, dense.stats, "{family}: {mode} {q}");
                    assert_eq!(
                        sorted.stats.dense_ops, 0,
                        "{family}: {mode} {q} — dense-off runs must never take the dense path"
                    );
                }
            }
        }
    });
}

/// Through the handle-level facade the agreement is *handle identity*:
/// toggling the thread arena's dense switch between two evaluations of
/// the same judgment must hand back the same `VId`.
#[test]
fn dense_vid_handles_match_sorted_handles() {
    let q = queries::tc_while();
    let mut rng = Rng::new(5);
    let mut inputs = vec![Value::chain(16)];
    inputs.extend(
        family_graphs(&mut rng)
            .into_iter()
            .map(|g| Value::relation(g.edges)),
    );
    for input in &inputs {
        let iv = intern::intern(input);
        for (mode, cfg) in modes() {
            intern::with_arena(|va| va.set_dense_enabled(false));
            let sorted = nra_eval::evaluate_vid(&q, iv, &cfg);
            intern::with_arena(|va| va.set_dense_enabled(true));
            let dense = nra_eval::evaluate_vid(&q, iv, &cfg);
            assert_eq!(
                sorted.result.as_ref().unwrap(),
                dense.result.as_ref().unwrap(),
                "{mode}: the routes must intern to the same handle"
            );
        }
    }
}

/// The counters observably fire where the representation can pay: a
/// chain long enough to clear the min-cardinality gate runs its closure
/// with dense ops (and at least one promotion), and the disabled arena
/// reports exact zeros.
#[test]
fn dense_counters_fire_and_stay_zero_when_disabled() {
    // chain(12): the closure has 78 edges — past the 64-card dense gate,
    // so the while route's accumulating merges promote and word-op, at a
    // small fraction of the cost of a longer chain (the evaluator's
    // compose step is quadratic in the closure)
    let q = queries::tc_while();
    let input = Value::chain(12);
    for (mode, cfg) in modes() {
        let dense = eval_with_dense(&q, &input, &cfg, true);
        let sorted = eval_with_dense(&q, &input, &cfg, false);
        assert_eq!(sorted.result, dense.result, "{mode}");
        assert!(
            dense.stats.dense_ops > 0,
            "{mode}: expected dense ops on chain(12) tc_while, stats {:?}",
            dense.stats
        );
        assert!(
            dense.stats.dense_promotions > 0,
            "{mode}: expected at least one promotion, stats {:?}",
            dense.stats
        );
        assert_eq!(sorted.stats.dense_ops, 0, "{mode}");
        assert_eq!(sorted.stats.dense_promotions, 0, "{mode}");
    }
}

/// Every set-algebra op agrees — dense on vs off in the *same* arena, so
/// agreement is VId equality — on the large families at all three
/// standard sizes. Ops only (no closure): this is the part that is cheap
/// at n = 8192, where the closure spine would dwarf the test.
#[test]
fn set_algebra_ops_agree_dense_vs_sorted_on_large_families() {
    for n in nra_testkit::graphs::LARGE_SIZES {
        let mut rng = Rng::new(n);
        let graphs = large_family_graphs(&mut rng, n);
        let mut va = ValueArena::new();
        let rels: Vec<(&str, VId)> = graphs
            .iter()
            .map(|g| (g.family, va.relation(g.edges.iter().copied())))
            .collect();
        for &(fa, a) in &rels {
            for &(fb, b) in &rels {
                let label = format!("n={n} {fa}×{fb}");
                va.set_dense_enabled(false);
                let union_s = va.set_union(a, b).unwrap();
                let inter_s = va.set_intersection(a, b).unwrap();
                let diff_s = va.set_difference(a, b).unwrap();
                let sub_s = va.is_subset(a, b).unwrap();
                let (merged_s, delta_s) = va.set_merge_delta(a, union_s).unwrap();
                let frontier_s = va.set_merge_frontier(a, &[b, diff_s]).unwrap();
                va.set_dense_enabled(true);
                let (ops0, _) = va.dense_counters();
                assert_eq!(va.set_union(a, b).unwrap(), union_s, "{label}: union");
                assert_eq!(
                    va.set_intersection(a, b).unwrap(),
                    inter_s,
                    "{label}: intersection"
                );
                assert_eq!(
                    va.set_difference(a, b).unwrap(),
                    diff_s,
                    "{label}: difference"
                );
                assert_eq!(va.is_subset(a, b).unwrap(), sub_s, "{label}: subset");
                assert_eq!(
                    va.set_merge_delta(a, union_s).unwrap(),
                    (merged_s, delta_s),
                    "{label}: merge_delta"
                );
                assert_eq!(
                    va.set_merge_frontier(a, &[b, diff_s]).unwrap(),
                    frontier_s,
                    "{label}: merge_frontier"
                );
                let (ops1, _) = va.dense_counters();
                // the density heuristic accepts the raw edge relations
                // only at n = 512 (at larger strides the bitmap words
                // outgrow 8·card and the arena rightly stays sorted —
                // closures re-densify, which the closure tests cover)
                if n == 512 {
                    assert!(ops1 > ops0, "{label}: the dense path must actually run");
                }
                // membership probes against a handful of elements of b
                let elems = va.as_set(b).unwrap();
                for &e in elems.iter().take(5) {
                    va.set_dense_enabled(false);
                    let sorted = va.set_contains(a, e).unwrap();
                    va.set_dense_enabled(true);
                    assert_eq!(va.set_contains(a, e).unwrap(), sorted, "{label}: contains");
                }
            }
        }
    }
}

/// `tc_arena`'s two routes agree with each other *and* with the
/// evaluator's `tc_while` on the small families — three independent
/// closure implementations interning to one canonical handle.
#[test]
fn tc_arena_agrees_with_evaluator_on_small_families() {
    check(
        "tc_arena_agrees_with_evaluator_on_small_families",
        12,
        |_, rng| {
            for g in family_graphs(rng) {
                let family = g.family;
                let input = Value::relation(g.edges.iter().copied());
                let iv = intern::intern(&input);
                let ev = nra_eval::evaluate_vid(&queries::tc_while(), iv, &EvalConfig::default());
                let expect = ev.result.unwrap();
                intern::with_arena(|va| {
                    va.set_dense_enabled(false);
                    let sorted = tc_arena(va, iv).unwrap();
                    va.set_dense_enabled(true);
                    let dense = tc_arena(va, iv).unwrap();
                    assert_eq!(sorted, expect, "{family}: sorted tc_arena vs evaluator");
                    assert_eq!(dense, expect, "{family}: dense tc_arena vs evaluator");
                });
            }
        },
    );
}

/// The large-graph closure differential at n = 512: dense and sorted
/// `tc_arena` routes return the same handle on every large family, and
/// the edge set matches the classical BFS closure. (The evaluator's
/// `tc_while` is not in this loop: its compose step is a cartesian
/// self-product, certifiably infeasible at this scale — which is the
/// point of the prediction layer.)
#[test]
fn tc_arena_routes_agree_on_large_families() {
    let mut rng = Rng::new(512);
    for g in large_family_graphs(&mut rng, 512) {
        let digraph = DiGraph::from_edges(g.edges.iter().copied());
        let mut va = ValueArena::new();
        let rel = va.relation(g.edges.iter().copied());
        va.set_dense_enabled(false);
        let sorted = tc_arena(&mut va, rel).unwrap();
        va.set_dense_enabled(true);
        let dense = tc_arena(&mut va, rel).unwrap();
        assert_eq!(sorted, dense, "{}: routes split at n=512", g.family);
        let got: std::collections::BTreeSet<(u64, u64)> =
            va.to_edges(dense).unwrap().into_iter().collect();
        let expect: std::collections::BTreeSet<(u64, u64)> = tc(&digraph).edges().collect();
        assert_eq!(got, expect, "{}: closure vs BFS referee", g.family);
    }
}

/// The release-sized rung of the large-graph differential (CI runs this
/// suite under `--release`): closures at n = 2048 on every large family,
/// multiple seeds at n = 512. Ignored in debug builds — the sorted rung
/// alone would dominate the tier-1 wall clock.
#[test]
#[cfg_attr(debug_assertions, ignore = "release-sized: run with --release")]
fn tc_arena_routes_agree_on_large_families_release() {
    for n in [512u64, 2048] {
        let seeds = if n == 512 { 0..3 } else { 0..1 };
        for seed in seeds {
            let mut rng = Rng::new(n + seed);
            for g in large_family_graphs(&mut rng, n) {
                let digraph = DiGraph::from_edges(g.edges.iter().copied());
                let mut va = ValueArena::new();
                let rel = va.relation(g.edges.iter().copied());
                va.set_dense_enabled(false);
                let sorted = tc_arena(&mut va, rel).unwrap();
                va.set_dense_enabled(true);
                let dense = tc_arena(&mut va, rel).unwrap();
                assert_eq!(
                    sorted, dense,
                    "{} n={n} seed={seed}: routes split",
                    g.family
                );
                let got: std::collections::BTreeSet<(u64, u64)> =
                    va.to_edges(dense).unwrap().into_iter().collect();
                let expect: std::collections::BTreeSet<(u64, u64)> = tc(&digraph).edges().collect();
                assert_eq!(got, expect, "{} n={n} seed={seed}", g.family);
            }
        }
    }
}

/// Seeded promotion/demotion fuzz at merge boundaries: twin arenas (one
/// dense, one sorted) fed the same randomized op sequence over a pool of
/// relations that straddles every representation boundary — below the
/// min-cardinality gate, dense small-domain, sparse wide-domain (the
/// density heuristic refuses), and coords beyond `DENSE_MAX_COORD`
/// (never densifiable). Results feed back into the pool, so grown sets
/// re-promote and shrunk ones fall back. The arenas must stay in
/// lockstep: same node count, same structure at every index, same
/// handles from every op.
#[test]
fn promotion_demotion_fuzz_keeps_twin_arenas_in_lockstep() {
    check(
        "promotion_demotion_fuzz_keeps_twin_arenas_in_lockstep",
        30,
        |_, rng| {
            let mut on = ValueArena::new();
            let mut off = ValueArena::new();
            off.set_dense_enabled(false);
            let mut pool: Vec<VId> = Vec::new();
            // one guaranteed-densifiable chain per seed (rng.relation's
            // length is random and can undershoot the min-card gate on
            // every draw), then the boundary-straddling randoms
            let len = rng.range_u64(70, 120);
            let chain: Vec<(u64, u64)> = (0..len).map(|i| (i, i + 1)).collect();
            let shifted: Vec<(u64, u64)> = (0..len).map(|i| (i + 1, i + 2)).collect();
            for edges in [&chain, &shifted] {
                let a = on.relation(edges.iter().copied());
                assert_eq!(
                    a,
                    off.relation(edges.iter().copied()),
                    "pool interning must be in lockstep"
                );
                pool.push(a);
            }
            // op the two chains together up front so at least one dense
            // word-parallel operation is guaranteed regardless of which
            // pairs the random walk below happens to draw
            let seeded = on.set_union(pool[0], pool[1]).unwrap();
            assert_eq!(
                seeded,
                off.set_union(pool[0], pool[1]).unwrap(),
                "seeded union must be in lockstep"
            );
            pool.push(seeded);
            for _ in 0..6 {
                let edges = match rng.below(4) {
                    0 => rng.relation(8, 6),       // below the min-card gate
                    1 => rng.relation(40, 120),    // dense, small domain
                    2 => rng.relation(2_000, 90),  // sparse, wide domain
                    _ => rng.relation(50_000, 80), // beyond DENSE_MAX_COORD
                };
                let a = on.relation(edges.iter().copied());
                let b = off.relation(edges.iter().copied());
                assert_eq!(a, b, "pool interning must be in lockstep");
                pool.push(a);
            }
            for step in 0..50 {
                let a = *rng.choose(&pool);
                let b = *rng.choose(&pool);
                let result = match rng.below(6) {
                    0 => {
                        let x = on.set_union(a, b).unwrap();
                        assert_eq!(x, off.set_union(a, b).unwrap(), "step {step}: union");
                        x
                    }
                    1 => {
                        let x = on.set_intersection(a, b).unwrap();
                        assert_eq!(
                            x,
                            off.set_intersection(a, b).unwrap(),
                            "step {step}: intersection"
                        );
                        x
                    }
                    2 => {
                        let x = on.set_difference(a, b).unwrap();
                        assert_eq!(x, off.set_difference(a, b).unwrap(), "step {step}: diff");
                        x
                    }
                    3 => {
                        assert_eq!(
                            on.is_subset(a, b),
                            off.is_subset(a, b),
                            "step {step}: subset"
                        );
                        if let Some(&e) = on.as_set(b).unwrap().first() {
                            assert_eq!(
                                on.set_contains(a, e),
                                off.set_contains(a, e),
                                "step {step}: contains"
                            );
                        }
                        continue;
                    }
                    4 => {
                        let grown = on.set_union(a, b).unwrap();
                        assert_eq!(grown, off.set_union(a, b).unwrap(), "step {step}");
                        let (merged, delta) = on.set_merge_delta(a, grown).unwrap();
                        assert_eq!(
                            (merged, delta),
                            off.set_merge_delta(a, grown).unwrap(),
                            "step {step}: merge_delta"
                        );
                        delta
                    }
                    _ => {
                        let x = on.set_merge_frontier(a, &[b]).unwrap();
                        assert_eq!(
                            x,
                            off.set_merge_frontier(a, &[b]).unwrap(),
                            "step {step}: merge_frontier"
                        );
                        x
                    }
                };
                pool.push(result);
            }
            // full lockstep: identical tables, structurally
            assert_eq!(on.len(), off.len(), "twin arenas diverged in size");
            for i in 0..on.len() {
                let v = VId::from_index(i);
                assert_eq!(
                    on.structural_hash(v),
                    off.structural_hash(v),
                    "twin arenas diverged at index {i}"
                );
            }
            let (ops, _) = on.dense_counters();
            assert!(ops > 0, "the fuzz never exercised the dense path");
            assert_eq!(off.dense_counters(), (0, 0), "sorted twin stayed sorted");
        },
    );
}
