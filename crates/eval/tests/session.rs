//! Session-layer property tests: arena occupancy accounting,
//! generation-based eviction, and cross-query warm starts.
//!
//! The contracts under test (see `nra_eval::session`):
//!
//! * eviction never changes results — only cache hit counters;
//! * `approx_resident_bytes` is monotone over queries *within* one
//!   generation, and drops at an eviction;
//! * warm starts report `memo_hits > 0` (and `warm_hits > 0`) on
//!   re-evaluation, and never survive an eviction.

use nra_core::{queries, Value};
use nra_eval::{evaluate, EvalConfig, EvalSession};
use nra_testkit::{check, Rng};

const CASES: u64 = 16;

fn family_inputs(rng: &mut Rng) -> Vec<(&'static str, Value)> {
    nra_testkit::graphs::family_graphs(rng)
        .into_iter()
        .map(|g| (g.family, Value::relation(g.edges)))
        .collect()
}

/// Generation-based eviction must be invisible in the results: a
/// session evicting after every query (1-byte budget), a never-evicting
/// session, and the thread-local facade all produce bit-for-bit the
/// same values on every family and route — only `memo_hits`/`warm_hits`
/// differ.
#[test]
fn eviction_never_changes_results() {
    check("eviction_never_changes_results", CASES, |_, rng| {
        let config = EvalConfig::optimised();
        let mut warm = EvalSession::new(config.clone());
        let mut evicting = EvalSession::with_resident_budget(config.clone(), 1);
        for (family, input) in family_inputs(rng) {
            for q in [queries::tc_while(), queries::tc_step(), queries::tc_paths()] {
                let reference = evaluate(&q, &input, &config);
                let from_warm = warm.eval(&q, &input);
                let from_evicting = evicting.eval(&q, &input);
                let expect = reference.result.unwrap();
                assert_eq!(from_warm.result.unwrap(), expect, "{family}: {q} (warm)");
                assert_eq!(
                    from_evicting.result.unwrap(),
                    expect,
                    "{family}: {q} (evicting)"
                );
                // an evicted cache is cold by construction
                assert_eq!(
                    from_evicting.stats.warm_hits, 0,
                    "{family}: {q} — warm hit across an eviction"
                );
                // cache hits never *re-observe* skipped derivations, so
                // the §3 counters of a warm run only ever shrink (down
                // to 0 when the whole judgment is cached); the evicting
                // session restarts cold every query, so its measure is
                // exactly the reference one
                assert!(
                    from_warm.stats.max_object_size <= reference.stats.max_object_size,
                    "{family}: {q}"
                );
                assert_eq!(
                    from_evicting.stats.max_object_size, reference.stats.max_object_size,
                    "{family}: {q} (cold restart must report the exact measure)"
                );
            }
        }
        // the 1-byte budget evicted at every query boundary
        assert_eq!(evicting.stats().evictions, evicting.stats().queries);
        assert_eq!(evicting.generation(), evicting.stats().queries);
        assert_eq!(warm.stats().evictions, 0);
        assert_eq!(warm.generation(), 0);
    });
}

/// Within one generation the resident-byte estimate is monotone (arenas
/// and cache state only grow); an eviction drops it back.
#[test]
fn resident_bytes_are_monotone_within_a_generation() {
    check(
        "resident_bytes_are_monotone_within_a_generation",
        CASES,
        |_, rng| {
            let mut session = EvalSession::new(EvalConfig::optimised());
            let mut last = session.approx_resident_bytes();
            let baseline = last;
            for (family, input) in family_inputs(rng) {
                for q in [queries::tc_while(), queries::tc_step()] {
                    session.eval(&q, &input).result.unwrap();
                    let now = session.approx_resident_bytes();
                    assert!(
                        now >= last,
                        "{family}: resident bytes shrank {last} → {now} without an eviction"
                    );
                    last = now;
                }
            }
            assert!(last > baseline, "evaluations must grow the session");
            let before_eviction = session.generation();
            session.evict();
            assert_eq!(session.generation(), before_eviction + 1);
            assert!(
                session.approx_resident_bytes() < last,
                "eviction must drop the resident estimate"
            );
        },
    );
}

/// The acceptance workload: warm-start re-evaluation of `tc_while` on
/// the chain n = 12 hits the surviving apply cache on the second call.
#[test]
fn warm_start_on_chain_12_hits_the_cache() {
    let mut session = EvalSession::new(EvalConfig::optimised());
    let input = Value::chain(12);
    let cold = session.eval(&queries::tc_while(), &input);
    assert_eq!(cold.result.unwrap(), Value::chain_tc(12));
    assert_eq!(cold.stats.warm_hits, 0);
    let second = session.eval(&queries::tc_while(), &input);
    assert_eq!(second.result.unwrap(), Value::chain_tc(12));
    assert!(
        second.stats.memo_hits > 0,
        "second call must hit the surviving cache: {:?}",
        second.stats
    );
    assert!(second.stats.warm_hits > 0, "{:?}", second.stats);
    // the warm start collapses the whole derivation: the root judgment
    // itself is cached, so the §3 node count drops to (almost) nothing
    assert!(
        second.stats.nodes < cold.stats.nodes / 10,
        "warm re-evaluation should skip the bulk of the derivation: \
         cold {} vs warm {} nodes",
        cold.stats.nodes,
        second.stats.nodes
    );
}

/// Warm starts also fire across *related* (not identical) queries: a
/// closure over a grown input reuses the judgments shared with the
/// smaller run.
#[test]
fn warm_starts_cross_related_queries() {
    let mut session = EvalSession::new(EvalConfig::optimised());
    session
        .eval(&queries::tc_while(), &Value::chain(8))
        .result
        .unwrap();
    // same query, different input: shared sub-judgments (per-element
    // map bodies over the shared prefix) warm-start
    let grown = session.eval(&queries::tc_while(), &Value::chain(9));
    assert_eq!(grown.result.unwrap(), Value::chain_tc(9));
    assert!(grown.stats.warm_hits > 0, "{:?}", grown.stats);
}
