//! Session-layer property tests: arena occupancy accounting,
//! generation-based eviction, and cross-query warm starts.
//!
//! The contracts under test (see `nra_eval::session`):
//!
//! * eviction never changes results — only cache hit counters;
//! * `approx_resident_bytes` is monotone over queries *within* one
//!   generation, and drops at an eviction;
//! * warm starts report `memo_hits > 0` (and `warm_hits > 0`) on
//!   re-evaluation, and never survive an eviction.

use nra_core::{queries, Value};
use nra_eval::{evaluate, EvalConfig, EvalSession};
use nra_testkit::{check, Rng};

const CASES: u64 = 16;

fn family_inputs(rng: &mut Rng) -> Vec<(&'static str, Value)> {
    nra_testkit::graphs::family_graphs(rng)
        .into_iter()
        .map(|g| (g.family, Value::relation(g.edges)))
        .collect()
}

/// Generation-based eviction must be invisible in the results: a
/// session evicting after every query (1-byte budget), a never-evicting
/// session, and the thread-local facade all produce bit-for-bit the
/// same values on every family and route — only `memo_hits`/`warm_hits`
/// differ.
#[test]
fn eviction_never_changes_results() {
    check("eviction_never_changes_results", CASES, |_, rng| {
        let config = EvalConfig::optimised();
        let mut warm = EvalSession::new(config.clone());
        let mut evicting = EvalSession::with_resident_budget(config.clone(), 1);
        for (family, input) in family_inputs(rng) {
            for q in [queries::tc_while(), queries::tc_step(), queries::tc_paths()] {
                let reference = evaluate(&q, &input, &config);
                let from_warm = warm.eval(&q, &input);
                let from_evicting = evicting.eval(&q, &input);
                let expect = reference.result.unwrap();
                assert_eq!(from_warm.result.unwrap(), expect, "{family}: {q} (warm)");
                assert_eq!(
                    from_evicting.result.unwrap(),
                    expect,
                    "{family}: {q} (evicting)"
                );
                // an evicted cache is cold by construction
                assert_eq!(
                    from_evicting.stats.warm_hits, 0,
                    "{family}: {q} — warm hit across an eviction"
                );
                // cache hits never *re-observe* skipped derivations, so
                // the §3 counters of a warm run only ever shrink (down
                // to 0 when the whole judgment is cached); the evicting
                // session restarts cold every query, so its measure is
                // exactly the reference one
                assert!(
                    from_warm.stats.max_object_size <= reference.stats.max_object_size,
                    "{family}: {q}"
                );
                assert_eq!(
                    from_evicting.stats.max_object_size, reference.stats.max_object_size,
                    "{family}: {q} (cold restart must report the exact measure)"
                );
            }
        }
        // the 1-byte budget evicted at every query boundary
        assert_eq!(evicting.stats().evictions, evicting.stats().queries);
        assert_eq!(evicting.generation(), evicting.stats().queries);
        assert_eq!(warm.stats().evictions, 0);
        assert_eq!(warm.generation(), 0);
    });
}

/// Within one generation the resident-byte estimate is monotone (arenas
/// and cache state only grow); an eviction drops it back.
#[test]
fn resident_bytes_are_monotone_within_a_generation() {
    check(
        "resident_bytes_are_monotone_within_a_generation",
        CASES,
        |_, rng| {
            let mut session = EvalSession::new(EvalConfig::optimised());
            let mut last = session.approx_resident_bytes();
            let baseline = last;
            for (family, input) in family_inputs(rng) {
                for q in [queries::tc_while(), queries::tc_step()] {
                    session.eval(&q, &input).result.unwrap();
                    let now = session.approx_resident_bytes();
                    assert!(
                        now >= last,
                        "{family}: resident bytes shrank {last} → {now} without an eviction"
                    );
                    last = now;
                }
            }
            assert!(last > baseline, "evaluations must grow the session");
            let before_eviction = session.generation();
            session.evict();
            assert_eq!(session.generation(), before_eviction + 1);
            assert!(
                session.approx_resident_bytes() < last,
                "eviction must drop the resident estimate"
            );
        },
    );
}

/// The acceptance workload: warm-start re-evaluation of `tc_while` on
/// the chain n = 12 hits the surviving apply cache on the second call.
#[test]
fn warm_start_on_chain_12_hits_the_cache() {
    let mut session = EvalSession::new(EvalConfig::optimised());
    let input = Value::chain(12);
    let cold = session.eval(&queries::tc_while(), &input);
    assert_eq!(cold.result.unwrap(), Value::chain_tc(12));
    assert_eq!(cold.stats.warm_hits, 0);
    let second = session.eval(&queries::tc_while(), &input);
    assert_eq!(second.result.unwrap(), Value::chain_tc(12));
    assert!(
        second.stats.memo_hits > 0,
        "second call must hit the surviving cache: {:?}",
        second.stats
    );
    assert!(second.stats.warm_hits > 0, "{:?}", second.stats);
    // the warm start collapses the whole derivation: the root judgment
    // itself is cached, so the §3 node count drops to (almost) nothing
    assert!(
        second.stats.nodes < cold.stats.nodes / 10,
        "warm re-evaluation should skip the bulk of the derivation: \
         cold {} vs warm {} nodes",
        cold.stats.nodes,
        second.stats.nodes
    );
}

/// Warm starts also fire across *related* (not identical) queries: a
/// closure over a grown input reuses the judgments shared with the
/// smaller run.
#[test]
fn warm_starts_cross_related_queries() {
    let mut session = EvalSession::new(EvalConfig::optimised());
    session
        .eval(&queries::tc_while(), &Value::chain(8))
        .result
        .unwrap();
    // same query, different input: shared sub-judgments (per-element
    // map bodies over the shared prefix) warm-start
    let grown = session.eval(&queries::tc_while(), &Value::chain(9));
    assert_eq!(grown.result.unwrap(), Value::chain_tc(9));
    assert!(grown.stats.warm_hits > 0, "{:?}", grown.stats);
}

/// A session's jobs, interned fresh: `tc_while` and `tc_step` over the
/// chains `2..8`.
fn chain_jobs(
    session: &mut EvalSession,
) -> Vec<(nra_core::expr::intern::EId, nra_core::value::intern::VId)> {
    let q_while = session.intern_expr(&queries::tc_while());
    let q_step = session.intern_expr(&queries::tc_step());
    (2..8u64)
        .flat_map(|n| {
            let input = session.values_mut().chain(n);
            [(q_while, input), (q_step, input)]
        })
        .collect()
}

/// Regression (batch bug 2): `eval_batch` used to bypass
/// [`SessionStats`](nra_eval::SessionStats) entirely — after a batch,
/// `session.stats().queries` still read 0. A batch must count against
/// the parent's books exactly like the equivalent sequential
/// `eval_vid` loop. Under the default configuration (apply cache off)
/// the whole `SessionStats` is a pure function of the job list, so
/// batch and sequential sessions must agree field for field.
#[test]
fn batch_folds_into_session_stats_like_a_sequential_loop() {
    let mut sequential = EvalSession::new(EvalConfig::default());
    let jobs = chain_jobs(&mut sequential);
    for &(eid, input) in &jobs {
        sequential.eval_vid(eid, input);
    }

    let mut batched = EvalSession::new(EvalConfig::default());
    let jobs = chain_jobs(&mut batched);
    nra_eval::eval_batch(&mut batched, &jobs, 3);

    assert_eq!(
        sequential.stats(),
        batched.stats(),
        "batch and sequential SessionStats must agree"
    );
    assert_eq!(batched.stats().queries, jobs.len() as u64);
}

/// The same accounting under the optimised configuration: per-query
/// cache counters depend on the (shared vs local) table layout, so
/// only the layout-independent fields are pinned exactly — but the
/// cache activity itself must be *visible* in the parent's stats,
/// which is precisely what the bug lost.
#[test]
fn batch_cache_activity_is_visible_in_session_stats() {
    let mut session = EvalSession::new(EvalConfig::optimised());
    let jobs = chain_jobs(&mut session);
    nra_eval::eval_batch(&mut session, &jobs, 3);
    let first = *session.stats();
    assert_eq!(first.queries, jobs.len() as u64);
    assert!(
        first.memo_hits > 0,
        "batch memo activity must reach SessionStats: {first:?}"
    );
    // a second identical batch runs fully warm against the shared
    // apply table the first one filled
    nra_eval::eval_batch(&mut session, &jobs, 3);
    let second = *session.stats();
    assert_eq!(second.queries, 2 * jobs.len() as u64);
    assert!(
        second.warm_hits > first.warm_hits,
        "second batch must report warm hits: {second:?}"
    );
}

/// Satellite (stale handles): `evict` bumps the generation and the
/// docs demand handle-level callers re-intern — in debug builds,
/// `eval_vid` now *detects* a pre-eviction `VId` instead of silently
/// denoting an arbitrary object.
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "stale handle")]
fn stale_value_handle_after_eviction_is_detected() {
    let mut session = EvalSession::new(EvalConfig::default());
    let eid = session.intern_expr(&queries::tc_while());
    let input = session.values_mut().chain(5);
    session.evict();
    // `eid` happens to be re-issued by the post-eviction re-interning,
    // but the input handle points past the cleared value arena
    let _ = session.eval_vid(eid, input);
}

/// A fabricated expression handle no arena ever issued is detected the
/// same way.
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "stale handle")]
fn fabricated_expr_handle_is_detected() {
    let mut session = EvalSession::new(EvalConfig::default());
    let input = session.values_mut().chain(3);
    let stale = nra_core::expr::intern::EId::from_index(1 << 20);
    let _ = session.eval_vid(stale, input);
}

/// The documented remedy works: re-interning through the current
/// arenas after an eviction yields valid handles and the same result.
#[test]
fn reinterning_after_eviction_recovers() {
    let mut session = EvalSession::new(EvalConfig::default());
    let eid = session.intern_expr(&queries::tc_while());
    let input = session.values_mut().chain(5);
    let before = session.eval_vid(eid, input);
    session.evict();
    let eid = session.intern_expr(&queries::tc_while());
    let input = session.values_mut().chain(5);
    let after = session.eval_vid(eid, input);
    assert_eq!(
        session.resolve(*after.result.as_ref().unwrap()),
        Value::chain_tc(5)
    );
    assert_eq!(before.stats, after.stats, "cold restart, same measure");
}
