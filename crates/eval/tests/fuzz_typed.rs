//! Type-soundness and strategy-agreement fuzzing: evaluate randomly
//! generated *well-typed* expressions and check that
//!
//! 1. results inhabit the statically computed output type (type
//!    soundness of the §3 semantics);
//! 2. the plain, traced, streaming, memoised and compiled (bytecode
//!    VM) evaluators agree;
//! 3. budget errors are the only failures (no `Stuck`, ever, on
//!    well-typed terms).

use nra_core::generate::{random_expr, GenConfig, Rng};
use nra_core::typecheck::output_type;
use nra_core::types::Type;
use nra_core::value::Value;
use nra_eval::{evaluate, evaluate_lazy, evaluate_traced, EvalConfig, EvalError};

fn inputs_for(dom: &Type) -> Vec<Value> {
    match dom {
        t if *t == Type::nat_rel() => vec![
            Value::chain(3),
            Value::empty_set(),
            Value::relation([(0, 0), (1, 2), (2, 1)]),
        ],
        Type::Nat => vec![Value::nat(0), Value::nat(5)],
        Type::Bool => vec![Value::TRUE, Value::FALSE],
        Type::Set(elem) => {
            let mut out = vec![Value::empty_set()];
            let elems = inputs_for(elem);
            out.push(Value::set(elems.clone()));
            if let Some(first) = elems.first() {
                out.push(Value::set([first.clone()]));
            }
            out
        }
        Type::Prod(a, b) => {
            let xs = inputs_for(a);
            let ys = inputs_for(b);
            xs.iter()
                .zip(ys.iter().cycle())
                .map(|(x, y)| Value::pair(x.clone(), y.clone()))
                .take(3)
                .collect()
        }
        Type::Unit => vec![Value::Unit],
    }
}

fn fuzz_domain(dom: &Type, seeds: std::ops::Range<u64>, cfg_gen: &GenConfig) {
    // small budget: generated powerset towers explode quickly, and the
    // point is soundness, not scale
    let cfg = EvalConfig {
        max_object_size: Some(200_000),
        max_nodes: Some(500_000),
        max_while_iters: 50,
        ..EvalConfig::default()
    };
    for seed in seeds {
        let mut rng = Rng::new(seed);
        let e = random_expr(dom, cfg_gen, &mut rng);
        let out_ty = output_type(&e, dom).expect("generator produces well-typed terms");
        for input in inputs_for(dom) {
            assert!(input.has_type(dom), "test harness input at {dom}");
            let plain = evaluate(&e, &input, &cfg);
            match &plain.result {
                Ok(v) => {
                    // 1. type soundness
                    assert!(
                        v.has_type(&out_ty),
                        "seed {seed}: {e} produced {v} not of type {out_ty}"
                    );
                    // 2. the traced evaluator agrees, including statistics
                    let traced = evaluate_traced(&e, &input, &cfg);
                    let tree = traced.result.expect("traced agrees on success");
                    assert_eq!(&tree.output, v, "seed {seed}");
                    assert_eq!(traced.stats, plain.stats, "seed {seed}");
                    // 3. the streaming evaluator agrees on the value
                    let lazy = evaluate_lazy(&e, &input, &cfg);
                    if let Ok(lv) = lazy.result {
                        assert_eq!(&lv, v, "seed {seed} (lazy)");
                    }
                    // 4. the apply cache changes cost, never the value —
                    // and since hits only ever *shrink* the §3 counters,
                    // the same budgets cannot trip earlier
                    let memo_cfg = EvalConfig {
                        memo: true,
                        ..cfg.clone()
                    };
                    let memoised = evaluate(&e, &input, &memo_cfg);
                    assert_eq!(
                        memoised.result.as_ref().expect("memoised succeeds"),
                        v,
                        "seed {seed} (memoised)"
                    );
                    // 5. semi-naive (delta-driven) iteration and its
                    // fused Prop 2.1 rules change cost, never the value
                    // — and never the fixpoint trajectory; a delta skip
                    // does strictly less work, so the same budgets
                    // cannot trip earlier here either
                    for (mode, memo) in [("semi-naive", false), ("memo+semi-naive", true)] {
                        let delta_cfg = EvalConfig {
                            semi_naive: true,
                            memo,
                            ..cfg.clone()
                        };
                        let delta = evaluate(&e, &input, &delta_cfg);
                        assert_eq!(
                            delta.result.as_ref().expect("semi-naive succeeds"),
                            v,
                            "seed {seed} ({mode})"
                        );
                        assert_eq!(
                            delta.stats.while_iterations, plain.stats.while_iterations,
                            "seed {seed} ({mode}): exact trajectory"
                        );
                        assert!(
                            delta.stats.nodes <= plain.stats.nodes,
                            "seed {seed} ({mode}): counters may only shrink"
                        );
                        // the traced builder under semi-naive grafts
                        // shared subtrees but materialises the same tree
                        let traced_delta = evaluate_traced(&e, &input, &delta_cfg);
                        assert_eq!(
                            &traced_delta
                                .result
                                .expect("traced semi-naive succeeds")
                                .output,
                            v,
                            "seed {seed} (traced {mode})"
                        );
                    }
                    // 6. the bytecode VM is a faithful image of the
                    // interpreter: same value and same fixpoint
                    // trajectory under every optimisation mix
                    for (mode, memo, semi_naive) in [
                        ("compiled", false, false),
                        ("compiled+memo", true, false),
                        ("compiled+semi-naive", false, true),
                        ("compiled+optimised", true, true),
                    ] {
                        let vm_cfg = EvalConfig {
                            compiled: true,
                            memo,
                            semi_naive,
                            ..cfg.clone()
                        };
                        let vm = evaluate(&e, &input, &vm_cfg);
                        assert_eq!(
                            vm.result.as_ref().expect("compiled succeeds"),
                            v,
                            "seed {seed} ({mode})"
                        );
                        assert_eq!(
                            vm.stats.while_iterations, plain.stats.while_iterations,
                            "seed {seed} ({mode}): exact trajectory"
                        );
                    }
                }
                Err(
                    EvalError::SpaceBudgetExceeded { .. }
                    | EvalError::NodeBudgetExceeded { .. }
                    | EvalError::WhileDiverged { .. }
                    | EvalError::PowersetOverflow { .. },
                ) => {
                    // resource exhaustion is legitimate for random towers
                }
                Err(EvalError::Stuck { rule, detail }) => {
                    panic!("seed {seed}: well-typed {e} got stuck at {rule}: {detail}")
                }
                Err(EvalError::WorkerPanicked { detail }) => {
                    panic!(
                        "seed {seed}: sequential evaluation cannot report a worker panic: {detail}"
                    )
                }
            }
        }
    }
}

#[test]
fn fuzz_relations() {
    fuzz_domain(&Type::nat_rel(), 0..400, &GenConfig::default());
}

#[test]
fn fuzz_relations_with_while() {
    let cfg = GenConfig {
        allow_while: true,
        max_depth: 4,
        ..GenConfig::default()
    };
    fuzz_domain(&Type::nat_rel(), 0..200, &cfg);
}

#[test]
fn fuzz_nested_sets() {
    fuzz_domain(
        &Type::set(Type::set(Type::Nat)),
        0..200,
        &GenConfig::default(),
    );
}

#[test]
fn fuzz_mixed_products() {
    fuzz_domain(
        &Type::prod(Type::set(Type::Nat), Type::nat_rel()),
        0..200,
        &GenConfig::default(),
    );
}

#[test]
fn fuzz_deeper_terms() {
    let cfg = GenConfig {
        max_depth: 7,
        allow_powerset: false, // keep sizes sane at depth 7
        ..GenConfig::default()
    };
    fuzz_domain(&Type::nat_rel(), 0..150, &cfg);
}
