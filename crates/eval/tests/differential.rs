//! Evaluator-strategy differential tests: the plain eager evaluator, the
//! derivation-tree-materialising traced evaluator, the streaming (lazy)
//! evaluator, and the memoised (apply-cache) variants must agree — on
//! results *and* on the statistics they share — across randomized graphs
//! from seven families (chains, cycles, DAGs, disconnected graphs,
//! grids, cliques, sparse random graphs), with the `nra-graph` closure
//! as the external referee.
//!
//! The workspace-level `tests/differential.rs` checks agreement between
//! *routes* (powerset vs while vs classical algorithms); this file checks
//! agreement between *strategies* evaluating the same route.

use nra_core::builder::*;
use nra_core::types::Type;
use nra_core::{derived, queries, Value};
use nra_eval::{evaluate, evaluate_lazy, evaluate_traced, evaluate_tree, EvalConfig, EvalSession};
use nra_graph::{graph_to_value, graph_to_vid, tc, DiGraph};
use nra_testkit::{check, Rng};

const CASES: u64 = 24;

/// The edge type `N × N`.
fn edge_ty() -> Type {
    Type::prod(Type::Nat, Type::Nat)
}

/// Queries exercising the fused derived shapes — `nest`/`unnest`,
/// membership and inclusion predicates (via `∩`, `∖`, `⊆`, `=` at set
/// types) — each of type `{N × N} → t` so the family graphs feed them
/// directly, and each wrapping a growing `tc_step` so the semi-naive
/// walker sees the shapes re-fire on grown inputs.
fn fused_shape_queries() -> Vec<(&'static str, nra_core::Expr)> {
    let rel = Type::set(edge_ty());
    vec![
        // nest ∘ unnest round-trips inside the fixpoint: the body is
        // exactly tc_step followed by an identity detour through the
        // grouping operators, so the trajectory is tc_while's
        (
            "while(unnest ∘ nest ∘ tc_step)",
            while_fix(pipeline([
                queries::tc_step(),
                derived::nest(&Type::Nat, &Type::Nat),
                derived::unnest(),
            ])),
        ),
        ("nest", derived::nest(&Type::Nat, &Type::Nat)),
        (
            "unnest ∘ nest",
            pipeline([derived::nest(&Type::Nat, &Type::Nat), derived::unnest()]),
        ),
        // tc_step(r) ∩ r = r (membership predicate inside ∩)
        (
            "tc_step ∩ id",
            compose(
                derived::intersect(&edge_ty()),
                tuple(queries::tc_step(), id()),
            ),
        ),
        // tc_step(r) ∖ r — the freshly derived edges (¬∈ inside ∖)
        (
            "tc_step ∖ id",
            compose(
                derived::difference(&edge_ty()),
                tuple(queries::tc_step(), id()),
            ),
        ),
        // r ⊆ tc_step(r) — the inclusion predicate itself
        (
            "id ⊆ tc_step",
            compose(derived::subset(&edge_ty()), tuple(id(), queries::tc_step())),
        ),
        // =_{ {N×N} } — set equality, i.e. antisymmetric inclusion
        (
            "tc_step = tc_while",
            compose(
                derived::eq_at(&rel),
                tuple(queries::tc_step(), queries::tc_while()),
            ),
        ),
    ]
}

/// One random graph from each of the seven shared families per seed,
/// lifted to `DiGraph` — the family definitions live in
/// `nra_testkit::graphs` so this harness and the route-level
/// `tests/differential.rs` can never drift apart.
fn family_graphs(rng: &mut Rng) -> Vec<(&'static str, DiGraph)> {
    nra_testkit::graphs::family_graphs(rng)
        .into_iter()
        .map(|g| (g.family, DiGraph::from_edges(g.edges)))
        .collect()
}

/// Eager and traced are the same semantics with different bookkeeping:
/// identical results, node counts, and §3 complexities.
#[test]
fn traced_agrees_with_eager_on_all_families() {
    check(
        "traced_agrees_with_eager_on_all_families",
        CASES,
        |_, rng| {
            let cfg = EvalConfig::default();
            for (family, g) in family_graphs(rng) {
                let input = graph_to_value(&g);
                for q in [queries::tc_step(), queries::tc_while()] {
                    let plain = evaluate(&q, &input, &cfg);
                    let traced = evaluate_traced(&q, &input, &cfg);
                    let tree = traced.result.unwrap();
                    assert_eq!(tree.output, plain.result.unwrap(), "{family}: {q}");
                    assert_eq!(tree.node_count(), plain.stats.nodes, "{family}: {q}");
                    assert_eq!(
                        tree.max_object_size(),
                        plain.stats.max_object_size,
                        "{family}: {q}"
                    );
                }
            }
        },
    );
}

/// The interned (hash-consed) evaluation path must be indistinguishable
/// from the original tree-walking implementation: same results **and**
/// byte-for-byte the same §3 statistics, across all four graph families
/// and both TC routes. This is the differential gate for the arena.
#[test]
fn interned_path_agrees_with_tree_evaluator_on_all_families() {
    check(
        "interned_path_agrees_with_tree_evaluator_on_all_families",
        CASES,
        |_, rng| {
            let cfg = EvalConfig::default();
            for (family, g) in family_graphs(rng) {
                let input = graph_to_value(&g);
                for q in [queries::tc_paths(), queries::tc_while(), queries::tc_step()] {
                    let tree = evaluate_tree(&q, &input, &cfg);
                    let interned = evaluate(&q, &input, &cfg);
                    assert_eq!(
                        tree.result.as_ref().unwrap(),
                        interned.result.as_ref().unwrap(),
                        "{family}: {q}"
                    );
                    assert_eq!(tree.stats, interned.stats, "{family}: {q}");
                }
                // the handle-to-handle entry point and the graph_to_vid
                // encoding boundary, on the cheap query only — evaluate()
                // already delegates to evaluate_vid, so this checks the
                // boundary, not the (identical) evaluation
                let q = queries::tc_step();
                let interned = evaluate(&q, &input, &cfg);
                let vid_ev = nra_eval::evaluate_vid(&q, graph_to_vid(&g), &cfg);
                assert_eq!(
                    nra_core::value::intern::resolve(vid_ev.result.unwrap()),
                    interned.result.unwrap(),
                    "{family}: {q} (vid path)"
                );
                assert_eq!(vid_ev.stats, interned.stats, "{family}: {q} (vid stats)");
            }
        },
    );
}

/// The apply cache must change the cost, never the answer: memoised
/// eager evaluation is bit-for-bit the non-memoised interned result on
/// every family and route, memoised *traced* evaluation materialises the
/// identical derivation tree, and the default (memo-off) statistics are
/// untouched — the §3 counters of a memoised run never exceed the exact
/// ones, with the skipped work reported in `memo_hits` instead.
#[test]
fn memoised_agrees_with_unmemoised_on_all_families() {
    check(
        "memoised_agrees_with_unmemoised_on_all_families",
        CASES,
        |_, rng| {
            let cfg = EvalConfig::default();
            let memo_cfg = EvalConfig::memoised();
            for (family, g) in family_graphs(rng) {
                let input = graph_to_value(&g);
                for q in [queries::tc_paths(), queries::tc_while(), queries::tc_step()] {
                    let plain = evaluate(&q, &input, &cfg);
                    let memoised = evaluate(&q, &input, &memo_cfg);
                    assert_eq!(
                        plain.result.as_ref().unwrap(),
                        memoised.result.as_ref().unwrap(),
                        "{family}: {q}"
                    );
                    assert_eq!(
                        plain.stats.memo_hits + plain.stats.memo_misses,
                        0,
                        "{family}: {q} — memo-off stats must not count the cache"
                    );
                    assert!(
                        memoised.stats.nodes <= plain.stats.nodes,
                        "{family}: {q} — hits may only shrink the node count"
                    );
                    assert_eq!(
                        memoised.stats.max_object_size, plain.stats.max_object_size,
                        "{family}: {q} — the §3 complexity is a max over the same judgments"
                    );
                }
                // the traced strategy under memo grafts shared subtrees:
                // the materialised derivation must still be bit-identical
                let q = queries::tc_step();
                let plain = evaluate_traced(&q, &input, &cfg);
                let memoised = evaluate_traced(&q, &input, &memo_cfg);
                assert_eq!(
                    plain.result.unwrap(),
                    memoised.result.unwrap(),
                    "{family}: traced {q}"
                );
            }
        },
    );
}

/// The streaming strategy must change the cost *model*, never the answer.
#[test]
fn lazy_agrees_with_eager_on_all_families() {
    check("lazy_agrees_with_eager_on_all_families", CASES, |_, rng| {
        let cfg = EvalConfig::default();
        for (family, g) in family_graphs(rng) {
            let input = graph_to_value(&g);
            for q in [
                queries::tc_paths(),
                queries::tc_while(),
                queries::siblings_powerset(),
            ] {
                let eager_out = evaluate(&q, &input, &cfg).result.unwrap();
                let lazy_out = evaluate_lazy(&q, &input, &cfg).result.unwrap();
                assert_eq!(eager_out, lazy_out, "{family}: {q}");
            }
        }
    });
}

/// Both strategies must agree with the classical closure as an external
/// referee (not just with each other).
#[test]
fn strategies_agree_with_the_graph_referee() {
    check(
        "strategies_agree_with_the_graph_referee",
        CASES,
        |_, rng| {
            let cfg = EvalConfig::default();
            for (family, g) in family_graphs(rng) {
                let input = graph_to_value(&g);
                let expect = graph_to_value(&tc(&g));
                assert_eq!(
                    evaluate(&queries::tc_while(), &input, &cfg).result.unwrap(),
                    expect,
                    "{family}: eager tc_while vs graph closure"
                );
                assert_eq!(
                    evaluate_lazy(&queries::tc_paths(), &input, &cfg)
                        .result
                        .unwrap(),
                    expect,
                    "{family}: lazy tc_paths vs graph closure"
                );
            }
        },
    );
}

/// Semi-naive (delta-driven) iteration must change the cost, never the
/// answer — or the trajectory: on every family and route, semi-naive-on
/// results are bit-for-bit the semi-naive-off results, `while_iterations`
/// is exactly the naive count (the fixpoint sequence is threaded, not
/// approximated), and the §3 counters only ever shrink, with the skipped
/// work reported in `delta_hits`/`delta_skipped` instead.
#[test]
fn seminaive_agrees_with_naive_on_all_families() {
    check(
        "seminaive_agrees_with_naive_on_all_families",
        CASES,
        |_, rng| {
            let cfg = EvalConfig::default();
            for (family, g) in family_graphs(rng) {
                let input = graph_to_value(&g);
                for q in [queries::tc_paths(), queries::tc_while(), queries::tc_step()] {
                    let naive = evaluate(&q, &input, &cfg);
                    for (mode, delta_cfg) in [
                        ("semi-naive", EvalConfig::semi_naive()),
                        ("memo+semi-naive", EvalConfig::optimised()),
                    ] {
                        let delta = evaluate(&q, &input, &delta_cfg);
                        assert_eq!(
                            naive.result.as_ref().unwrap(),
                            delta.result.as_ref().unwrap(),
                            "{family}: {mode} {q}"
                        );
                        assert_eq!(
                            naive.stats.while_iterations, delta.stats.while_iterations,
                            "{family}: {mode} {q} — the fixpoint trajectory must be exact"
                        );
                        assert!(
                            delta.stats.nodes <= naive.stats.nodes,
                            "{family}: {mode} {q} — delta skips may only shrink the node count"
                        );
                        assert!(
                            delta.stats.max_object_size <= naive.stats.max_object_size,
                            "{family}: {mode} {q} — fused rules observe a subset of the objects"
                        );
                    }
                    // the default mode never counts delta activity
                    assert_eq!(
                        naive.stats.delta_hits + naive.stats.delta_skipped,
                        0,
                        "{family}: {q} — semi-naive-off stats must not count the delta cache"
                    );
                    assert!(naive.stats.while_frontiers.is_empty(), "{family}: {q}");
                }
                // the traced strategy under semi-naive grafts the reused
                // per-element sub-derivations: the materialised tree must
                // still be bit-identical, with the same frontier trace
                let q = queries::tc_while();
                let plain = evaluate_traced(&q, &input, &cfg);
                let delta = evaluate_traced(&q, &input, &EvalConfig::semi_naive());
                assert_eq!(
                    plain.result.unwrap(),
                    delta.result.unwrap(),
                    "{family}: traced {q}"
                );
                assert_eq!(
                    plain.stats.while_iterations, delta.stats.while_iterations,
                    "{family}: traced {q}"
                );
                let eager_delta = evaluate(&q, &input, &EvalConfig::semi_naive());
                assert_eq!(
                    eager_delta.stats.while_frontiers, delta.stats.while_frontiers,
                    "{family}: eager and traced must thread the same (total, delta) pairs"
                );
            }
        },
    );
}

/// The compiled bytecode backend is a dispatch change, not a semantics
/// change: under every `memo`/`semi_naive` combination, compiled-on
/// results and the **entire** `EvalStats` — §3 node and rule counters,
/// complexities, fixpoint trajectory and frontier trace, cache
/// activity — are bit-for-bit the compiled-off ones, across all seven
/// graph families, both tc routes, and (under the semi-naive modes,
/// where the fused superinstructions are emitted) the fused-shape
/// query zoo.
#[test]
fn compiled_agrees_with_interpreted_on_all_families() {
    // Each side runs in a fresh session: the direct-mapped apply cache
    // grows as entries accumulate, so two back-to-back runs through the
    // pooled facade see different table sizes — and hence different
    // collision patterns and memo_hits — even for the *same* backend.
    // Fresh tables make the stats deterministic per (query, input, cfg).
    fn eval_fresh(q: &nra_core::Expr, input: &Value, cfg: &EvalConfig) -> nra_eval::Evaluation {
        EvalSession::new(cfg.clone()).eval(q, input)
    }
    check(
        "compiled_agrees_with_interpreted_on_all_families",
        CASES / 2,
        |_, rng| {
            for (family, g) in family_graphs(rng) {
                let input = graph_to_value(&g);
                let modes = [
                    ("plain", EvalConfig::default()),
                    ("memo", EvalConfig::memoised()),
                    ("semi-naive", EvalConfig::semi_naive()),
                    ("memo+semi-naive", EvalConfig::optimised()),
                ];
                for q in [queries::tc_paths(), queries::tc_while()] {
                    for (mode, base) in &modes {
                        let compiled_cfg = EvalConfig {
                            compiled: true,
                            ..base.clone()
                        };
                        let walked = eval_fresh(&q, &input, base);
                        let compiled = eval_fresh(&q, &input, &compiled_cfg);
                        assert_eq!(walked.result, compiled.result, "{family}: {mode} {q}");
                        assert_eq!(walked.stats, compiled.stats, "{family}: {mode} {q}");
                    }
                }
                // the fused superinstructions only exist under
                // semi-naive — drive every recognised shape through them
                for (name, q) in fused_shape_queries() {
                    for (mode, base) in &modes[2..] {
                        let compiled_cfg = EvalConfig {
                            compiled: true,
                            ..base.clone()
                        };
                        let walked = eval_fresh(&q, &input, base);
                        let compiled = eval_fresh(&q, &input, &compiled_cfg);
                        assert_eq!(walked.result, compiled.result, "{family}: {mode} {name}");
                        assert_eq!(walked.stats, compiled.stats, "{family}: {mode} {name}");
                    }
                }
            }
        },
    );
}

/// On set-valued inflationary fixpoints, the threaded `(total, delta)`
/// pair is internally consistent: the frontier cardinalities sum to
/// `|final| − |input|` and the last frontier is empty (the fixpoint
/// test).
#[test]
fn seminaive_frontiers_reconstruct_the_closure() {
    check(
        "seminaive_frontiers_reconstruct_the_closure",
        CASES,
        |_, rng| {
            for (family, g) in family_graphs(rng) {
                let input = graph_to_value(&g);
                let ev = evaluate(&queries::tc_while(), &input, &EvalConfig::semi_naive());
                let out = ev.result.unwrap();
                let frontiers = &ev.stats.while_frontiers;
                assert_eq!(
                    frontiers.len() as u64,
                    ev.stats.while_iterations,
                    "{family}: one frontier per iterate"
                );
                assert_eq!(frontiers.last().copied(), Some(0), "{family}: fixpoint");
                let grown: u64 = frontiers.iter().sum();
                let (n_in, n_out) = (
                    input.cardinality().unwrap() as u64,
                    out.cardinality().unwrap() as u64,
                );
                assert_eq!(grown, n_out - n_in, "{family}: frontiers sum to the growth");
            }
        },
    );
}

/// Extending the apply cache to the lazy strategy's per-subset
/// evaluations must change the cost, never the answer: lazy-cache-on is
/// bit-for-bit lazy-cache-off on every family, the cache actually fires
/// on the powerset route, and cache-off stats never count it.
#[test]
fn lazy_cache_agrees_with_uncached_on_all_families() {
    check(
        "lazy_cache_agrees_with_uncached_on_all_families",
        CASES,
        |_, rng| {
            let cfg = EvalConfig::default();
            let memo_cfg = EvalConfig::memoised();
            for (family, g) in family_graphs(rng) {
                let input = graph_to_value(&g);
                for q in [
                    queries::tc_paths(),
                    queries::tc_while(),
                    queries::siblings_powerset(),
                ] {
                    let plain = evaluate_lazy(&q, &input, &cfg);
                    let cached = evaluate_lazy(&q, &input, &memo_cfg);
                    assert_eq!(
                        plain.result.as_ref().unwrap(),
                        cached.result.as_ref().unwrap(),
                        "{family}: lazy cache {q}"
                    );
                    assert_eq!(
                        plain.stats.memo_hits + plain.stats.memo_misses,
                        0,
                        "{family}: {q} — cache-off lazy stats must not count the cache"
                    );
                    assert_eq!(
                        plain.stats.streamed_subsets, cached.stats.streamed_subsets,
                        "{family}: {q} — the same subsets are streamed either way"
                    );
                }
                // the semi-naive lazy context delegates powerset-free
                // fixpoints to the delta walker: same answer again
                let q = queries::tc_while();
                let plain = evaluate_lazy(&q, &input, &cfg);
                let delta = evaluate_lazy(&q, &input, &EvalConfig::semi_naive());
                assert_eq!(
                    plain.result.unwrap(),
                    delta.result.unwrap(),
                    "{family}: semi-naive lazy {q}"
                );
                assert_eq!(
                    plain.stats.while_iterations, delta.stats.while_iterations,
                    "{family}: semi-naive lazy {q}"
                );
            }
        },
    );
}

/// The lazy apply cache earns its keep on the powerset route: streamed
/// subsets share sub-derivations, so the shared cache must actually hit.
#[test]
fn lazy_cache_fires_on_streamed_subsets() {
    let input = Value::chain(7);
    let ev = evaluate_lazy(&queries::tc_paths(), &input, &EvalConfig::memoised());
    assert_eq!(ev.result.unwrap(), Value::chain_tc(7));
    assert_eq!(ev.stats.streamed_subsets, 128);
    assert!(
        ev.stats.memo_hits > 10_000,
        "expected the shared apply cache to fire across subsets: {} hits / {} misses",
        ev.stats.memo_hits,
        ev.stats.memo_misses
    );
    assert!(ev.stats.memo_hit_rate() > 0.4);
}

/// The §3 caveat, quantified: on chains the lazy strategy's peak resident
/// size must undercut the eager complexity once `2ⁿ` dominates — while
/// the *streamed subset count* stays exponential (time is not saved).
#[test]
fn lazy_space_undercuts_eager_on_chains() {
    let cfg = EvalConfig::default();
    for n in 5..=8u64 {
        let input = Value::chain(n);
        let eager = evaluate(&queries::tc_paths(), &input, &cfg);
        let lazy = evaluate_lazy(&queries::tc_paths(), &input, &cfg);
        assert_eq!(eager.result.unwrap(), lazy.result.clone().unwrap());
        assert!(
            lazy.stats.peak_resident < eager.stats.max_object_size,
            "n={n}: lazy peak {} should undercut eager complexity {}",
            lazy.stats.peak_resident,
            eager.stats.max_object_size
        );
        assert!(
            lazy.stats.streamed_subsets >= 1 << n,
            "n={n}: streamed {} subsets, expected ≥ 2^{n}",
            lazy.stats.streamed_subsets
        );
    }
}

/// The fused rules for `nest`/`unnest` and the membership/inclusion
/// predicates must change the cost, never the answer: on every family,
/// semi-naive evaluation of the shape-bearing queries is bit-for-bit
/// the naive (and tree-path) result, with the §3 counters only ever
/// shrinking.
#[test]
fn fused_derived_shapes_agree_with_naive_on_all_families() {
    check(
        "fused_derived_shapes_agree_with_naive_on_all_families",
        CASES,
        |_, rng| {
            let cfg = EvalConfig::default();
            for (family, g) in family_graphs(rng) {
                let input = graph_to_value(&g);
                for (label, q) in fused_shape_queries() {
                    let tree = evaluate_tree(&q, &input, &cfg);
                    let naive = evaluate(&q, &input, &cfg);
                    assert_eq!(
                        tree.result.as_ref().unwrap(),
                        naive.result.as_ref().unwrap(),
                        "{family}: {label} (tree vs interned)"
                    );
                    for (mode, delta_cfg) in [
                        ("semi-naive", EvalConfig::semi_naive()),
                        ("memo+semi-naive", EvalConfig::optimised()),
                    ] {
                        let delta = evaluate(&q, &input, &delta_cfg);
                        assert_eq!(
                            naive.result.as_ref().unwrap(),
                            delta.result.as_ref().unwrap(),
                            "{family}: {mode} {label}"
                        );
                        assert!(
                            delta.stats.nodes <= naive.stats.nodes,
                            "{family}: {mode} {label} — fusion may only shrink the node count"
                        );
                        assert!(
                            delta.stats.max_object_size <= naive.stats.max_object_size,
                            "{family}: {mode} {label} — fused rules observe a subset of the objects"
                        );
                        assert_eq!(
                            naive.stats.while_iterations, delta.stats.while_iterations,
                            "{family}: {mode} {label} — the fixpoint trajectory must be exact"
                        );
                    }
                }
            }
        },
    );
}

/// The fused membership/inclusion/nest rules actually fire: on a
/// non-trivial input the semi-naive derivation is strictly smaller than
/// the exact §3 one (the combinator spreads collapse to single fused
/// judgments), and the delta-driven `unnest` reports frontier skips
/// inside the fixpoint.
#[test]
fn fused_derived_shapes_fire() {
    let input = Value::chain(5);
    for (label, q) in fused_shape_queries() {
        let naive = evaluate(&q, &input, &EvalConfig::default());
        let delta = evaluate(&q, &input, &EvalConfig::semi_naive());
        assert_eq!(
            naive.result.as_ref().unwrap(),
            delta.result.as_ref().unwrap(),
            "{label}"
        );
        assert!(
            delta.stats.nodes < naive.stats.nodes,
            "{label}: expected fused rules to shrink {} nodes, got {}",
            naive.stats.nodes,
            delta.stats.nodes
        );
    }
    // the round-trip fixpoint re-fires unnest on grown groupings:
    // the delta rule must serve it incrementally
    let (label, roundtrip) = &fused_shape_queries()[0];
    let delta = evaluate(roundtrip, &input, &EvalConfig::semi_naive());
    assert!(
        delta.stats.delta_hits > 0,
        "{label}: expected delta hits, stats {:?}",
        delta.stats
    );
}

/// Bounded-witness transitive closure: each iterate joins the ≤2-edge
/// subsets of the current relation, so the body is `powersetₘ` applied
/// to a *growing* base — the workload the semi-naive lazy context
/// serves by streaming only frontier subsets.
fn tc_bounded_witness() -> nra_core::Expr {
    let step = compose(
        union(),
        tuple(
            id(),
            pipeline([powerset_m_prim(2), map(queries::compose_rel()), flatten()]),
        ),
    );
    while_fix(step)
}

/// The semi-naive lazy context must stream only *frontier* subsets for
/// `powersetₘ` chains — same answer as the full re-enumeration, on
/// every family, with the skipped re-enumeration reported in
/// `LazyStats::frontier_subsets_skipped`.
#[test]
fn lazy_frontier_streaming_agrees_on_all_families() {
    check(
        "lazy_frontier_streaming_agrees_on_all_families",
        CASES / 2,
        |_, rng| {
            let q = tc_bounded_witness();
            for (family, g) in family_graphs(rng) {
                let input = graph_to_value(&g);
                let expect = graph_to_value(&tc(&g));
                let plain = evaluate_lazy(&q, &input, &EvalConfig::default());
                assert_eq!(
                    plain.result.as_ref().unwrap(),
                    &expect,
                    "{family}: lazy bounded-witness TC vs graph closure"
                );
                for (mode, cfg) in [
                    ("semi-naive", EvalConfig::semi_naive()),
                    ("memo+semi-naive", EvalConfig::optimised()),
                ] {
                    let delta = evaluate_lazy(&q, &input, &cfg);
                    assert_eq!(
                        plain.result.as_ref().unwrap(),
                        delta.result.as_ref().unwrap(),
                        "{family}: {mode} lazy bounded-witness TC"
                    );
                    assert_eq!(
                        plain.stats.while_iterations, delta.stats.while_iterations,
                        "{family}: {mode} — the fixpoint trajectory must be exact"
                    );
                    assert!(
                        delta.stats.streamed_subsets <= plain.stats.streamed_subsets,
                        "{family}: {mode} — resumption may only shrink the stream"
                    );
                }
                // the eager strategy is a second referee
                let eager_ev = evaluate(&q, &input, &EvalConfig::default());
                assert_eq!(eager_ev.result.unwrap(), expect, "{family}: eager referee");
            }
        },
    );
}

/// On a chain long enough to iterate, frontier resumption actually
/// kicks in: incremental streams fire, whole sub-powersets are skipped,
/// and the semi-naive stream is strictly shorter than the naive one.
#[test]
fn lazy_frontier_streaming_skips_resumed_subsets() {
    let q = tc_bounded_witness();
    let input = Value::chain(5);
    let plain = evaluate_lazy(&q, &input, &EvalConfig::default());
    let delta = evaluate_lazy(&q, &input, &EvalConfig::semi_naive());
    assert_eq!(
        plain.result.as_ref().unwrap(),
        delta.result.as_ref().unwrap()
    );
    assert_eq!(plain.result.unwrap(), Value::chain_tc(5));
    assert!(delta.stats.frontier_streams > 0, "{:?}", delta.stats);
    assert!(
        delta.stats.frontier_subsets_skipped > 0,
        "{:?}",
        delta.stats
    );
    assert!(
        delta.stats.streamed_subsets < plain.stats.streamed_subsets,
        "semi-naive streamed {} vs naive {}",
        delta.stats.streamed_subsets,
        plain.stats.streamed_subsets
    );
    // the default mode never counts frontier activity
    assert_eq!(plain.stats.frontier_streams, 0);
    assert_eq!(plain.stats.frontier_subsets_skipped, 0);
}

/// The conformance gate of the fused predicate rules: on *ill-typed*
/// inputs the derived terms have observable behaviour of their own
/// (stuck states; `=_unit` constantly true), and the fused rules must
/// fall back rather than answer from handle comparisons — semi-naive
/// stays bit-for-bit the exact derivation even off the well-typed path.
#[test]
fn fused_predicates_preserve_ill_typed_semantics() {
    use nra_eval::EvalError;
    let configs = [
        EvalConfig::default(),
        EvalConfig::semi_naive(),
        EvalConfig::optimised(),
    ];
    // member(N) on (true, {1, 2}): eq_nat gets stuck comparing a boolean
    let q = derived::member(&Type::Nat);
    let input = Value::pair(Value::TRUE, Value::set([Value::nat(1), Value::nat(2)]));
    for cfg in &configs {
        let ev = evaluate(&q, &input, cfg);
        assert!(
            matches!(ev.result, Err(EvalError::Stuck { .. })),
            "member(N) on an ill-typed pair must stay stuck: {:?}",
            ev.result
        );
    }
    // member(unit) on ((), {1}): =_unit is constantly true on ANY
    // elements, so the derived term says "yes" even though no element
    // is structurally () — a handle search would say "no"
    let q = derived::member(&Type::Unit);
    let input = Value::pair(Value::Unit, Value::set([Value::nat(1)]));
    for cfg in &configs {
        let ev = evaluate(&q, &input, cfg);
        assert_eq!(
            ev.result.unwrap(),
            Value::TRUE,
            "member(unit) ignores element structure — fused must agree"
        );
    }
    // subset(N) with a boolean hiding in the left set: stuck preserved
    let q = derived::subset(&Type::Nat);
    let input = Value::pair(
        Value::set([Value::TRUE]),
        Value::set([Value::nat(1), Value::nat(2)]),
    );
    for cfg in &configs {
        let ev = evaluate(&q, &input, cfg);
        assert!(
            matches!(ev.result, Err(EvalError::Stuck { .. })),
            "subset(N) over ill-typed elements must stay stuck: {:?}",
            ev.result
        );
    }
    // nest(N, N) with a boolean key: the same-key eq_nat gets stuck
    let q = derived::nest(&Type::Nat, &Type::Nat);
    let input = Value::set([Value::pair(Value::TRUE, Value::nat(1))]);
    for cfg in &configs {
        let ev = evaluate(&q, &input, cfg);
        assert!(
            matches!(ev.result, Err(EvalError::Stuck { .. })),
            "nest(N, N) on an ill-typed key must stay stuck: {:?}",
            ev.result
        );
    }
}
