//! Evaluator-strategy differential tests: the plain eager evaluator, the
//! derivation-tree-materialising traced evaluator, and the streaming
//! (lazy) evaluator must agree — on results *and* on the statistics they
//! share — across randomized graphs from four families (chains, cycles,
//! DAGs, disconnected graphs), with the `nra-graph` closure as the
//! external referee.
//!
//! The workspace-level `tests/differential.rs` checks agreement between
//! *routes* (powerset vs while vs classical algorithms); this file checks
//! agreement between *strategies* evaluating the same route.

use nra_core::{queries, Value};
use nra_eval::{evaluate, evaluate_lazy, evaluate_traced, evaluate_tree, EvalConfig};
use nra_graph::{graph_to_value, graph_to_vid, tc, DiGraph};
use nra_testkit::{check, Rng};

const CASES: u64 = 24;

/// One random graph from each family per seed, tagged for diagnostics.
fn family_graphs(rng: &mut Rng) -> Vec<(&'static str, DiGraph)> {
    let chain = DiGraph::chain(rng.below(8));
    let cycle = DiGraph::cycle(rng.range_u64(1, 8));
    let dag = DiGraph::random_dag(rng.below(8), 1.0 / 3.0, rng.next_u64());
    // edge-count-bounded components (≤ 5 each): powerset cost is 2^|edges|
    let disconnected = DiGraph::from_edges(rng.relation(4, 5))
        .union(&DiGraph::from_edges(rng.relation(4, 5)).shifted(100));
    vec![
        ("chain", chain),
        ("cycle", cycle),
        ("dag", dag),
        ("disconnected", disconnected),
    ]
}

/// Eager and traced are the same semantics with different bookkeeping:
/// identical results, node counts, and §3 complexities.
#[test]
fn traced_agrees_with_eager_on_all_families() {
    check(
        "traced_agrees_with_eager_on_all_families",
        CASES,
        |_, rng| {
            let cfg = EvalConfig::default();
            for (family, g) in family_graphs(rng) {
                let input = graph_to_value(&g);
                for q in [queries::tc_step(), queries::tc_while()] {
                    let plain = evaluate(&q, &input, &cfg);
                    let traced = evaluate_traced(&q, &input, &cfg);
                    let tree = traced.result.unwrap();
                    assert_eq!(tree.output, plain.result.unwrap(), "{family}: {q}");
                    assert_eq!(tree.node_count(), plain.stats.nodes, "{family}: {q}");
                    assert_eq!(
                        tree.max_object_size(),
                        plain.stats.max_object_size,
                        "{family}: {q}"
                    );
                }
            }
        },
    );
}

/// The interned (hash-consed) evaluation path must be indistinguishable
/// from the original tree-walking implementation: same results **and**
/// byte-for-byte the same §3 statistics, across all four graph families
/// and both TC routes. This is the differential gate for the arena.
#[test]
fn interned_path_agrees_with_tree_evaluator_on_all_families() {
    check(
        "interned_path_agrees_with_tree_evaluator_on_all_families",
        CASES,
        |_, rng| {
            let cfg = EvalConfig::default();
            for (family, g) in family_graphs(rng) {
                let input = graph_to_value(&g);
                for q in [queries::tc_paths(), queries::tc_while(), queries::tc_step()] {
                    let tree = evaluate_tree(&q, &input, &cfg);
                    let interned = evaluate(&q, &input, &cfg);
                    assert_eq!(
                        tree.result.as_ref().unwrap(),
                        interned.result.as_ref().unwrap(),
                        "{family}: {q}"
                    );
                    assert_eq!(tree.stats, interned.stats, "{family}: {q}");
                }
                // the handle-to-handle entry point and the graph_to_vid
                // encoding boundary, on the cheap query only — evaluate()
                // already delegates to evaluate_vid, so this checks the
                // boundary, not the (identical) evaluation
                let q = queries::tc_step();
                let interned = evaluate(&q, &input, &cfg);
                let vid_ev = nra_eval::evaluate_vid(&q, graph_to_vid(&g), &cfg);
                assert_eq!(
                    nra_core::value::intern::resolve(vid_ev.result.unwrap()),
                    interned.result.unwrap(),
                    "{family}: {q} (vid path)"
                );
                assert_eq!(vid_ev.stats, interned.stats, "{family}: {q} (vid stats)");
            }
        },
    );
}

/// The streaming strategy must change the cost *model*, never the answer.
#[test]
fn lazy_agrees_with_eager_on_all_families() {
    check("lazy_agrees_with_eager_on_all_families", CASES, |_, rng| {
        let cfg = EvalConfig::default();
        for (family, g) in family_graphs(rng) {
            let input = graph_to_value(&g);
            for q in [
                queries::tc_paths(),
                queries::tc_while(),
                queries::siblings_powerset(),
            ] {
                let eager_out = evaluate(&q, &input, &cfg).result.unwrap();
                let lazy_out = evaluate_lazy(&q, &input, &cfg).result.unwrap();
                assert_eq!(eager_out, lazy_out, "{family}: {q}");
            }
        }
    });
}

/// Both strategies must agree with the classical closure as an external
/// referee (not just with each other).
#[test]
fn strategies_agree_with_the_graph_referee() {
    check(
        "strategies_agree_with_the_graph_referee",
        CASES,
        |_, rng| {
            let cfg = EvalConfig::default();
            for (family, g) in family_graphs(rng) {
                let input = graph_to_value(&g);
                let expect = graph_to_value(&tc(&g));
                assert_eq!(
                    evaluate(&queries::tc_while(), &input, &cfg).result.unwrap(),
                    expect,
                    "{family}: eager tc_while vs graph closure"
                );
                assert_eq!(
                    evaluate_lazy(&queries::tc_paths(), &input, &cfg)
                        .result
                        .unwrap(),
                    expect,
                    "{family}: lazy tc_paths vs graph closure"
                );
            }
        },
    );
}

/// The §3 caveat, quantified: on chains the lazy strategy's peak resident
/// size must undercut the eager complexity once `2ⁿ` dominates — while
/// the *streamed subset count* stays exponential (time is not saved).
#[test]
fn lazy_space_undercuts_eager_on_chains() {
    let cfg = EvalConfig::default();
    for n in 5..=8u64 {
        let input = Value::chain(n);
        let eager = evaluate(&queries::tc_paths(), &input, &cfg);
        let lazy = evaluate_lazy(&queries::tc_paths(), &input, &cfg);
        assert_eq!(eager.result.unwrap(), lazy.result.clone().unwrap());
        assert!(
            lazy.stats.peak_resident < eager.stats.max_object_size,
            "n={n}: lazy peak {} should undercut eager complexity {}",
            lazy.stats.peak_resident,
            eager.stats.max_object_size
        );
        assert!(
            lazy.stats.streamed_subsets >= 1 << n,
            "n={n}: streamed {} subsets, expected ≥ 2^{n}",
            lazy.stats.streamed_subsets
        );
    }
}
