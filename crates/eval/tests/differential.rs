//! Evaluator-strategy differential tests: the plain eager evaluator, the
//! derivation-tree-materialising traced evaluator, the streaming (lazy)
//! evaluator, and the memoised (apply-cache) variants must agree — on
//! results *and* on the statistics they share — across randomized graphs
//! from seven families (chains, cycles, DAGs, disconnected graphs,
//! grids, cliques, sparse random graphs), with the `nra-graph` closure
//! as the external referee.
//!
//! The workspace-level `tests/differential.rs` checks agreement between
//! *routes* (powerset vs while vs classical algorithms); this file checks
//! agreement between *strategies* evaluating the same route.

use nra_core::{queries, Value};
use nra_eval::{evaluate, evaluate_lazy, evaluate_traced, evaluate_tree, EvalConfig};
use nra_graph::{graph_to_value, graph_to_vid, tc, DiGraph};
use nra_testkit::{check, Rng};

const CASES: u64 = 24;

/// One random graph from each family per seed, tagged for diagnostics.
/// Every family is edge-count-bounded (≤ 8): the powerset route costs
/// `2^|edges|`, so an unbounded tail would make unlucky seeds
/// pathologically slow.
fn family_graphs(rng: &mut Rng) -> Vec<(&'static str, DiGraph)> {
    let chain = DiGraph::chain(rng.below(8));
    let cycle = DiGraph::cycle(rng.range_u64(1, 8));
    let dag = DiGraph::random_dag(rng.below(8), 1.0 / 3.0, rng.next_u64());
    let disconnected = DiGraph::from_edges(rng.relation(4, 5))
        .union(&DiGraph::from_edges(rng.relation(4, 5)).shifted(100));
    // 2×2 or 2×3 grid (4 or 7 edges), at a random label offset
    let grid = DiGraph::grid(2, rng.range_u64(2, 4)).shifted(rng.below(5));
    // complete digraph on 1–3 nodes (≤ 6 edges)
    let clique = DiGraph::clique(rng.range_u64(1, 4)).shifted(rng.below(5));
    // sparse random relation: ≤ 6 edges over ≤ 5 nodes
    let sparse = DiGraph::from_edges(rng.relation(5, 6));
    vec![
        ("chain", chain),
        ("cycle", cycle),
        ("dag", dag),
        ("disconnected", disconnected),
        ("grid", grid),
        ("clique", clique),
        ("sparse", sparse),
    ]
}

/// Eager and traced are the same semantics with different bookkeeping:
/// identical results, node counts, and §3 complexities.
#[test]
fn traced_agrees_with_eager_on_all_families() {
    check(
        "traced_agrees_with_eager_on_all_families",
        CASES,
        |_, rng| {
            let cfg = EvalConfig::default();
            for (family, g) in family_graphs(rng) {
                let input = graph_to_value(&g);
                for q in [queries::tc_step(), queries::tc_while()] {
                    let plain = evaluate(&q, &input, &cfg);
                    let traced = evaluate_traced(&q, &input, &cfg);
                    let tree = traced.result.unwrap();
                    assert_eq!(tree.output, plain.result.unwrap(), "{family}: {q}");
                    assert_eq!(tree.node_count(), plain.stats.nodes, "{family}: {q}");
                    assert_eq!(
                        tree.max_object_size(),
                        plain.stats.max_object_size,
                        "{family}: {q}"
                    );
                }
            }
        },
    );
}

/// The interned (hash-consed) evaluation path must be indistinguishable
/// from the original tree-walking implementation: same results **and**
/// byte-for-byte the same §3 statistics, across all four graph families
/// and both TC routes. This is the differential gate for the arena.
#[test]
fn interned_path_agrees_with_tree_evaluator_on_all_families() {
    check(
        "interned_path_agrees_with_tree_evaluator_on_all_families",
        CASES,
        |_, rng| {
            let cfg = EvalConfig::default();
            for (family, g) in family_graphs(rng) {
                let input = graph_to_value(&g);
                for q in [queries::tc_paths(), queries::tc_while(), queries::tc_step()] {
                    let tree = evaluate_tree(&q, &input, &cfg);
                    let interned = evaluate(&q, &input, &cfg);
                    assert_eq!(
                        tree.result.as_ref().unwrap(),
                        interned.result.as_ref().unwrap(),
                        "{family}: {q}"
                    );
                    assert_eq!(tree.stats, interned.stats, "{family}: {q}");
                }
                // the handle-to-handle entry point and the graph_to_vid
                // encoding boundary, on the cheap query only — evaluate()
                // already delegates to evaluate_vid, so this checks the
                // boundary, not the (identical) evaluation
                let q = queries::tc_step();
                let interned = evaluate(&q, &input, &cfg);
                let vid_ev = nra_eval::evaluate_vid(&q, graph_to_vid(&g), &cfg);
                assert_eq!(
                    nra_core::value::intern::resolve(vid_ev.result.unwrap()),
                    interned.result.unwrap(),
                    "{family}: {q} (vid path)"
                );
                assert_eq!(vid_ev.stats, interned.stats, "{family}: {q} (vid stats)");
            }
        },
    );
}

/// The apply cache must change the cost, never the answer: memoised
/// eager evaluation is bit-for-bit the non-memoised interned result on
/// every family and route, memoised *traced* evaluation materialises the
/// identical derivation tree, and the default (memo-off) statistics are
/// untouched — the §3 counters of a memoised run never exceed the exact
/// ones, with the skipped work reported in `memo_hits` instead.
#[test]
fn memoised_agrees_with_unmemoised_on_all_families() {
    check(
        "memoised_agrees_with_unmemoised_on_all_families",
        CASES,
        |_, rng| {
            let cfg = EvalConfig::default();
            let memo_cfg = EvalConfig::memoised();
            for (family, g) in family_graphs(rng) {
                let input = graph_to_value(&g);
                for q in [queries::tc_paths(), queries::tc_while(), queries::tc_step()] {
                    let plain = evaluate(&q, &input, &cfg);
                    let memoised = evaluate(&q, &input, &memo_cfg);
                    assert_eq!(
                        plain.result.as_ref().unwrap(),
                        memoised.result.as_ref().unwrap(),
                        "{family}: {q}"
                    );
                    assert_eq!(
                        plain.stats.memo_hits + plain.stats.memo_misses,
                        0,
                        "{family}: {q} — memo-off stats must not count the cache"
                    );
                    assert!(
                        memoised.stats.nodes <= plain.stats.nodes,
                        "{family}: {q} — hits may only shrink the node count"
                    );
                    assert_eq!(
                        memoised.stats.max_object_size, plain.stats.max_object_size,
                        "{family}: {q} — the §3 complexity is a max over the same judgments"
                    );
                }
                // the traced strategy under memo grafts shared subtrees:
                // the materialised derivation must still be bit-identical
                let q = queries::tc_step();
                let plain = evaluate_traced(&q, &input, &cfg);
                let memoised = evaluate_traced(&q, &input, &memo_cfg);
                assert_eq!(
                    plain.result.unwrap(),
                    memoised.result.unwrap(),
                    "{family}: traced {q}"
                );
            }
        },
    );
}

/// The streaming strategy must change the cost *model*, never the answer.
#[test]
fn lazy_agrees_with_eager_on_all_families() {
    check("lazy_agrees_with_eager_on_all_families", CASES, |_, rng| {
        let cfg = EvalConfig::default();
        for (family, g) in family_graphs(rng) {
            let input = graph_to_value(&g);
            for q in [
                queries::tc_paths(),
                queries::tc_while(),
                queries::siblings_powerset(),
            ] {
                let eager_out = evaluate(&q, &input, &cfg).result.unwrap();
                let lazy_out = evaluate_lazy(&q, &input, &cfg).result.unwrap();
                assert_eq!(eager_out, lazy_out, "{family}: {q}");
            }
        }
    });
}

/// Both strategies must agree with the classical closure as an external
/// referee (not just with each other).
#[test]
fn strategies_agree_with_the_graph_referee() {
    check(
        "strategies_agree_with_the_graph_referee",
        CASES,
        |_, rng| {
            let cfg = EvalConfig::default();
            for (family, g) in family_graphs(rng) {
                let input = graph_to_value(&g);
                let expect = graph_to_value(&tc(&g));
                assert_eq!(
                    evaluate(&queries::tc_while(), &input, &cfg).result.unwrap(),
                    expect,
                    "{family}: eager tc_while vs graph closure"
                );
                assert_eq!(
                    evaluate_lazy(&queries::tc_paths(), &input, &cfg)
                        .result
                        .unwrap(),
                    expect,
                    "{family}: lazy tc_paths vs graph closure"
                );
            }
        },
    );
}

/// The §3 caveat, quantified: on chains the lazy strategy's peak resident
/// size must undercut the eager complexity once `2ⁿ` dominates — while
/// the *streamed subset count* stays exponential (time is not saved).
#[test]
fn lazy_space_undercuts_eager_on_chains() {
    let cfg = EvalConfig::default();
    for n in 5..=8u64 {
        let input = Value::chain(n);
        let eager = evaluate(&queries::tc_paths(), &input, &cfg);
        let lazy = evaluate_lazy(&queries::tc_paths(), &input, &cfg);
        assert_eq!(eager.result.unwrap(), lazy.result.clone().unwrap());
        assert!(
            lazy.stats.peak_resident < eager.stats.max_object_size,
            "n={n}: lazy peak {} should undercut eager complexity {}",
            lazy.stats.peak_resident,
            eager.stats.max_object_size
        );
        assert!(
            lazy.stats.streamed_subsets >= 1 << n,
            "n={n}: streamed {} subsets, expected ≥ 2^{n}",
            lazy.stats.streamed_subsets
        );
    }
}
