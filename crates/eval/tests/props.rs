//! Property-based tests (nra-testkit): algebraic laws of the evaluator,
//! the Prop 2.1 derived operations against `std` set semantics, and the
//! TC queries against the graph baselines.

use nra_core::builder::*;
use nra_core::derived;
use nra_core::queries;
use nra_core::types::Type;
use nra_core::value::Value;
use nra_eval::{eval, evaluate, evaluate_lazy, EvalConfig};
use nra_graph::{graph_to_value, tc, DiGraph};
use nra_testkit::{check, Rng};
use std::collections::BTreeSet;

const CASES: u64 = 64;

fn nat_set(rng: &mut Rng) -> BTreeSet<u64> {
    rng.nat_set(12, 7)
}

fn small_relation(rng: &mut Rng) -> BTreeSet<(u64, u64)> {
    rng.relation(6, 8)
}

fn to_value(s: &BTreeSet<u64>) -> Value {
    Value::set(s.iter().copied().map(Value::nat))
}

#[test]
fn flatten_after_map_sng_is_identity() {
    check("flatten_after_map_sng_is_identity", CASES, |_, rng| {
        let v = to_value(&nat_set(rng));
        let f = compose(flatten(), map(sng()));
        assert_eq!(eval(&f, &v).unwrap(), v);
    });
}

#[test]
fn union_is_set_union() {
    check("union_is_set_union", CASES, |_, rng| {
        let (a, b) = (nat_set(rng), nat_set(rng));
        let out = eval(&union(), &Value::pair(to_value(&a), to_value(&b))).unwrap();
        let expect: BTreeSet<u64> = a.union(&b).copied().collect();
        assert_eq!(out, to_value(&expect));
    });
}

#[test]
fn difference_and_intersection_match_std() {
    check("difference_and_intersection_match_std", CASES, |_, rng| {
        let (a, b) = (nat_set(rng), nat_set(rng));
        let input = Value::pair(to_value(&a), to_value(&b));
        let diff = eval(&derived::difference(&Type::Nat), &input).unwrap();
        let expect: BTreeSet<u64> = a.difference(&b).copied().collect();
        assert_eq!(diff, to_value(&expect));
        let inter = eval(&derived::intersect(&Type::Nat), &input).unwrap();
        let expect: BTreeSet<u64> = a.intersection(&b).copied().collect();
        assert_eq!(inter, to_value(&expect));
    });
}

#[test]
fn subset_matches_std() {
    check("subset_matches_std", CASES, |_, rng| {
        let (a, b) = (nat_set(rng), nat_set(rng));
        let input = Value::pair(to_value(&a), to_value(&b));
        let out = eval(&derived::subset(&Type::Nat), &input).unwrap();
        assert_eq!(out, Value::Bool(a.is_subset(&b)));
    });
}

#[test]
fn member_matches_std() {
    check("member_matches_std", CASES, |_, rng| {
        let x = rng.below(12);
        let s = nat_set(rng);
        let input = Value::pair(Value::nat(x), to_value(&s));
        let out = eval(&derived::member(&Type::Nat), &input).unwrap();
        assert_eq!(out, Value::Bool(s.contains(&x)));
    });
}

#[test]
fn structural_equality_matches_derived_equality() {
    check(
        "structural_equality_matches_derived_equality",
        CASES,
        |_, rng| {
            let a = small_relation(rng);
            // make collisions likely enough to exercise the `true` branch
            let b = if rng.bool() {
                a.clone()
            } else {
                small_relation(rng)
            };
            let va = Value::relation(a.iter().copied());
            let vb = Value::relation(b.iter().copied());
            let eq = derived::eq_at(&Type::nat_rel());
            let out = eval(&eq, &Value::pair(va.clone(), vb.clone())).unwrap();
            assert_eq!(out, Value::Bool(va == vb));
        },
    );
}

#[test]
fn select_partitions_the_input() {
    check("select_partitions_the_input", CASES, |_, rng| {
        let v = Value::relation(small_relation(rng).iter().copied());
        let e = Type::prod(Type::Nat, Type::Nat);
        let keep = eval(&derived::select(eq_nat(), e.clone()), &v).unwrap();
        let drop = eval(&derived::select(derived::pnot(eq_nat()), e.clone()), &v).unwrap();
        let merged = eval(&union(), &Value::pair(keep.clone(), drop.clone())).unwrap();
        assert_eq!(merged, v);
        // and the parts are disjoint
        let inter = eval(&derived::intersect(&e), &Value::pair(keep, drop)).unwrap();
        assert_eq!(inter, Value::empty_set());
    });
}

#[test]
fn cartprod_cardinality() {
    check("cartprod_cardinality", CASES, |_, rng| {
        let (a, b) = (nat_set(rng), nat_set(rng));
        let out = eval(
            &derived::cartprod(),
            &Value::pair(to_value(&a), to_value(&b)),
        )
        .unwrap();
        assert_eq!(out.cardinality(), Some(a.len() * b.len()));
    });
}

#[test]
fn powerset_has_2_to_k_subsets() {
    check("powerset_has_2_to_k_subsets", CASES, |_, rng| {
        let s = rng.nat_set(20, 6);
        let v = to_value(&s);
        let out = eval(&powerset(), &v).unwrap();
        assert_eq!(out.cardinality(), Some(1usize << s.len()));
        // every subset is indeed a subset
        for sub in out.as_set().unwrap() {
            let subset = sub.as_set().unwrap();
            assert!(subset.iter().all(|x| v.as_set().unwrap().contains(x)));
        }
    });
}

#[test]
fn derived_powerset_m_matches_primitive() {
    check("derived_powerset_m_matches_primitive", CASES, |_, rng| {
        let s = rng.nat_set(9, 4);
        let m = rng.below(4);
        let v = to_value(&s);
        let term = derived::powerset_m(m, &Type::Nat);
        assert_eq!(
            eval(&term, &v).unwrap(),
            eval(&powerset_m_prim(m), &v).unwrap()
        );
    });
}

#[test]
fn nest_unnest_roundtrip() {
    check("nest_unnest_roundtrip", CASES, |_, rng| {
        let v = Value::relation(small_relation(rng).iter().copied());
        let nested = eval(&derived::nest(&Type::Nat, &Type::Nat), &v).unwrap();
        let back = eval(&derived::unnest(), &nested).unwrap();
        assert_eq!(back, v);
    });
}

#[test]
fn tc_while_matches_graph_baselines() {
    check("tc_while_matches_graph_baselines", CASES, |_, rng| {
        let g = DiGraph::from_edges(small_relation(rng));
        let out = eval(&queries::tc_while(), &graph_to_value(&g)).unwrap();
        assert_eq!(out, graph_to_value(&tc(&g)));
    });
}

#[test]
fn tc_paths_matches_graph_baselines() {
    check("tc_paths_matches_graph_baselines", CASES, |_, rng| {
        let g = DiGraph::from_edges(rng.relation(5, 7));
        let out = eval(&queries::tc_paths(), &graph_to_value(&g)).unwrap();
        assert_eq!(out, graph_to_value(&tc(&g)));
    });
}

#[test]
fn lazy_strategy_agrees_with_eager() {
    check("lazy_strategy_agrees_with_eager", CASES, |_, rng| {
        let g = DiGraph::from_edges(rng.relation(5, 6));
        let v = graph_to_value(&g);
        let cfg = EvalConfig::default();
        for q in [queries::tc_paths(), queries::siblings_powerset()] {
            let eager_out = evaluate(&q, &v, &cfg).result.unwrap();
            let lazy_out = evaluate_lazy(&q, &v, &cfg).result.unwrap();
            assert_eq!(eager_out, lazy_out);
        }
    });
}

#[test]
fn traced_evaluation_is_consistent() {
    check("traced_evaluation_is_consistent", CASES, |_, rng| {
        let v = Value::relation(small_relation(rng).iter().copied());
        let q = queries::tc_step();
        let cfg = EvalConfig::default();
        let plain = evaluate(&q, &v, &cfg);
        let traced = nra_eval::evaluate_traced(&q, &v, &cfg);
        let tree = traced.result.unwrap();
        assert_eq!(tree.output.clone(), plain.result.unwrap());
        assert_eq!(tree.node_count(), plain.stats.nodes);
        assert_eq!(tree.max_object_size(), plain.stats.max_object_size);
    });
}

#[test]
fn complexity_monotone_under_budget() {
    check("complexity_monotone_under_budget", CASES, |_, rng| {
        // a run that succeeds under a budget reports the same stats as an
        // unbudgeted run
        let v = Value::relation(small_relation(rng).iter().copied());
        let q = queries::tc_step();
        let free = evaluate(&q, &v, &EvalConfig::default());
        let budget = free.stats.max_object_size;
        let bounded = evaluate(&q, &v, &EvalConfig::with_space_budget(budget));
        assert!(bounded.result.is_ok());
        assert_eq!(bounded.stats, free.stats);
        // one less and it must fail (whenever the budget is binding)
        if budget > 1 {
            let tight = evaluate(&q, &v, &EvalConfig::with_space_budget(budget - 1));
            assert!(tight.result.is_err());
        }
    });
}

#[test]
fn parser_roundtrips_programmatic_queries() {
    for m in 0u64..4 {
        for q in [
            queries::tc_paths_approx(m),
            queries::tc_while(),
            queries::siblings_direct(),
            derived::powerset_m(m, &Type::Nat),
        ] {
            let text = q.to_string();
            let parsed = nra_core::parser::parse_expr(&text).unwrap();
            assert_eq!(parsed, q);
        }
    }
}
